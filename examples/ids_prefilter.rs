//! IDS/IPS signature pre-filtering — the paper's performance scenario.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release -p iustitia --example ids_prefilter
//! ```
//!
//! "High-speed flow nature identification allows an IDS/IPS to apply
//! binary related attack signatures on binary flows and text related
//! attack signatures on text flows, which is more efficient than
//! applying all signatures on all flows." (§1.1)
//!
//! This example models an IDS with text-only signatures (SQLi, XSS,
//! shellcode-in-scripts) and binary-only signatures (PE headers, ELF
//! shellcode, media exploits). With Iustitia in front, each flow is
//! matched against one signature family instead of both; the example
//! reports the saved signature evaluations.

use iustitia::prelude::*;

/// Cost model: signature evaluations per data packet.
const TEXT_SIGNATURES: u64 = 1200;
const BINARY_SIGNATURES: u64 = 800;

fn main() {
    let b = 32;
    let widths = FeatureWidths::svm_selected();
    let corpus = CorpusBuilder::new(3).files_per_class(120).size_range(1024, 8192).build();
    let model = iustitia::model::train_from_corpus(
        &corpus,
        &widths,
        TrainingMethod::Prefix { b },
        FeatureMode::Exact,
        &ModelKind::paper_cart(),
        3,
    )
    .expect("balanced corpus has every class");
    let mut iustitia = Iustitia::new(model, PipelineConfig::headline(3));

    let mut config = TraceConfig::small_test(23);
    config.n_flows = 500;
    config.content = ContentMode::Realistic;

    let mut baseline_cost = 0u64; // all signatures on all data packets
    let mut filtered_cost = 0u64; // family chosen by flow nature
    let mut skipped_encrypted = 0u64;
    let mut per_class_packets = [0u64; 4];

    for packet in TraceGenerator::new(config) {
        if !packet.is_data() {
            continue;
        }
        baseline_cost += TEXT_SIGNATURES + BINARY_SIGNATURES;
        match iustitia.process_packet(&packet) {
            Verdict::Hit(label) | Verdict::Classified(label) => {
                per_class_packets[label.index()] += 1;
                filtered_cost += match label {
                    FileClass::Text => TEXT_SIGNATURES,
                    FileClass::Binary => BINARY_SIGNATURES,
                    // Compressed bodies would be inflated by a separate
                    // preprocessor before matching; charge the binary set.
                    FileClass::Compressed => BINARY_SIGNATURES,
                    // Encrypted payloads cannot match content signatures;
                    // they are logged for policy handling instead.
                    FileClass::Encrypted => {
                        skipped_encrypted += 1;
                        0
                    }
                };
            }
            // While buffering, the IDS must stay conservative.
            Verdict::Buffering => filtered_cost += TEXT_SIGNATURES + BINARY_SIGNATURES,
            Verdict::Ignored => {}
        }
    }

    println!("IDS signature-evaluation cost over the trace:");
    println!("  without Iustitia: {baseline_cost:>14} evaluations");
    println!("  with Iustitia:    {filtered_cost:>14} evaluations");
    println!(
        "  saved:            {:>13.1}%",
        100.0 * (baseline_cost - filtered_cost) as f64 / baseline_cost.max(1) as f64
    );
    println!(
        "  packets routed: text={} binary={} encrypted={} (encrypted skipped deep inspection {} times)",
        per_class_packets[0], per_class_packets[1], per_class_packets[2], skipped_encrypted
    );
}
