//! ISP traffic prioritization — the paper's first motivating scenario.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release -p iustitia --example isp_prioritization
//! ```
//!
//! "Considering an ISP serving a bank and a call center: among the
//! traffic to/from the bank network, the ISP may give higher priority
//! to the encrypted flows because they most likely carry banking
//! transactions. Among the traffic to/from the call center, the ISP may
//! give higher priority to the binary flows because they most likely
//! carry voice data." (§1.1)
//!
//! This example drives a synthetic gateway trace through Iustitia and
//! schedules packets out of the three nature queues under two policies,
//! reporting how much of the priority traffic the classifier promoted.

use iustitia::prelude::*;

/// A customer network with a queue priority over flow natures.
struct Customer {
    name: &'static str,
    /// Queue service order, most-important first.
    priority: [FileClass; 3],
    /// Mix of flow natures this customer actually generates.
    class_mix: [f64; 4],
}

fn main() {
    let customers = [
        Customer {
            name: "bank",
            priority: [FileClass::Encrypted, FileClass::Text, FileClass::Binary],
            class_mix: [0.25, 0.15, 0.45, 0.15], // heavy on TLS transactions
        },
        Customer {
            name: "call-center",
            priority: [FileClass::Binary, FileClass::Encrypted, FileClass::Text],
            class_mix: [0.20, 0.55, 0.15, 0.10], // heavy on voice (binary) data
        },
    ];

    // One model shared across customers, trained at b = 64.
    let b = 64;
    let widths = FeatureWidths::svm_selected();
    let corpus = CorpusBuilder::new(9).files_per_class(120).size_range(1024, 8192).build();
    let model = iustitia::model::train_from_corpus(
        &corpus,
        &widths,
        TrainingMethod::Prefix { b },
        FeatureMode::Exact,
        &ModelKind::paper_cart(),
        9,
    )
    .expect("balanced corpus has every class");

    for customer in &customers {
        let mut config = TraceConfig::small_test(17);
        config.n_flows = 400;
        config.class_mix = customer.class_mix;
        config.content = ContentMode::Realistic;

        let pipeline_config = PipelineConfig {
            buffer_size: b,
            widths: widths.clone(),
            ..PipelineConfig::headline(17)
        };
        let mut iustitia = Iustitia::new(model.clone(), pipeline_config);

        // Count data packets landing in each nature queue.
        let mut queued: [u64; 3] = [0; 3];
        let mut unclassified = 0u64;
        for packet in TraceGenerator::new(config) {
            match iustitia.process_packet(&packet) {
                Verdict::Hit(label) | Verdict::Classified(label) => queued[label.index()] += 1,
                Verdict::Buffering => unclassified += 1,
                Verdict::Ignored => {}
            }
        }

        let total: u64 = queued.iter().sum::<u64>() + unclassified;
        println!("── customer: {} ──", customer.name);
        println!("   data packets: {total} ({unclassified} still buffering at trace end)");
        for (rank, class) in customer.priority.iter().enumerate() {
            let share = 100.0 * queued[class.index()] as f64 / total.max(1) as f64;
            println!(
                "   priority {} queue [{}]: {:>7} packets ({share:.1}%)",
                rank + 1,
                class,
                queued[class.index()],
            );
        }
        println!(
            "   CDB: {} live flows, peak {}, {} closed by FIN/RST, {} timed out",
            iustitia.cdb().len(),
            iustitia.cdb().stats().peak_size,
            iustitia.cdb().stats().removed_by_close,
            iustitia.cdb().stats().removed_by_timeout,
        );
    }
}
