//! Forensics & law enforcement — the paper's logging scenario, plus the
//! §4.6 adversarial-padding defense.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release -p iustitia --example forensics_scan
//! ```
//!
//! "Identifying binary flows may help copyright enforcement as they may
//! carry copyrighted software and multimedia. Identifying text flows
//! may allow law enforcement to perform complex keyword searching."
//! (§1.1)
//!
//! Part 1 routes a mixed trace into per-nature logs. Part 2 shows an
//! attacker defeating the naive classifier with encrypted-looking
//! padding, and the random-skip defense recovering most of the loss.

use iustitia::defense::{pad_flow, skip_evasion_probability};
use iustitia::prelude::*;
use iustitia_netsim::{FiveTuple, TcpFlags};
use std::net::Ipv4Addr;

fn model_at(b: usize, seed: u64) -> NatureModel {
    let corpus = CorpusBuilder::new(seed).files_per_class(120).size_range(1024, 8192).build();
    iustitia::model::train_from_corpus(
        &corpus,
        &FeatureWidths::svm_selected(),
        TrainingMethod::Prefix { b },
        FeatureMode::Exact,
        &ModelKind::paper_cart(),
        seed,
    )
    .expect("balanced corpus has every class")
}

fn main() {
    // ── Part 1: routed logging ───────────────────────────────────────
    let b = 64;
    let model = model_at(b, 11);
    let mut iustitia = Iustitia::new(
        model.clone(),
        PipelineConfig { buffer_size: b, ..PipelineConfig::headline(11) },
    );

    let mut config = TraceConfig::small_test(31);
    config.n_flows = 300;
    config.content = ContentMode::Realistic;

    let mut flows_per_log = [0u64; 3];
    for packet in TraceGenerator::new(config) {
        if let Verdict::Classified(label) = iustitia.process_packet(&packet) {
            flows_per_log[label.index()] += 1;
        }
    }
    println!("forensic log routing ({} flows classified):", flows_per_log.iter().sum::<u64>());
    println!("  keyword-search queue (text):      {:>5} flows", flows_per_log[0]);
    println!("  copyright-audit queue (binary):   {:>5} flows", flows_per_log[1]);
    println!("  metadata-only queue (encrypted):  {:>5} flows", flows_per_log[2]);

    // ── Part 2: padding attack vs random-skip defense ────────────────
    println!("\nadversarial padding (§4.6): 64 B of ciphertext-like padding on text flows");
    let trials = 200u64;
    let padding = 64usize;
    let t_max = 512usize;

    let run = |policy: HeaderPolicy, seed: u64| -> u64 {
        let model = model_at(b, 11);
        let mut evaded = 0u64;
        for i in 0..trials {
            let config = PipelineConfig {
                buffer_size: b,
                header_policy: policy,
                ..PipelineConfig::headline(seed + i)
            };
            let mut ius = Iustitia::new(model.clone(), config);
            let payload = pad_flow(
                &b"confidential: meet at the usual place, bring the documents. ".repeat(20),
                FileClass::Encrypted,
                padding,
                seed + i,
            );
            let packet = Packet {
                timestamp: 0.0,
                tuple: FiveTuple::tcp(
                    Ipv4Addr::new(10, 9, 8, 7),
                    (1000 + i) as u16,
                    Ipv4Addr::new(172, 16, 0, 1),
                    8080,
                ),
                flags: TcpFlags::ACK,
                payload,
            };
            if ius.process_packet(&packet) != Verdict::Classified(FileClass::Text) {
                evaded += 1;
            }
        }
        evaded
    };

    let naive = run(HeaderPolicy::None, 100);
    let defended = run(HeaderPolicy::RandomSkip { t_max }, 200);
    println!("  naive pipeline:        {naive}/{trials} text flows evaded keyword logging");
    println!("  random-skip (T={t_max}): {defended}/{trials} evaded");
    println!(
        "  analytic bound: skip clears the padding with p = {:.2}",
        skip_evasion_probability(padding, t_max)
    );
}
