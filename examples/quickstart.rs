//! Quickstart: train a flow-nature classifier and use it online.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release -p iustitia --example quickstart
//! ```
//!
//! Walks the full Iustitia loop: synthesize a labeled corpus, train on
//! the entropy vectors of 32-byte prefixes (the paper's headline
//! configuration), then classify live packets through the pipeline.

use iustitia::prelude::*;
use iustitia_netsim::{FiveTuple, TcpFlags};
use rand::SeedableRng;
use std::net::Ipv4Addr;

fn main() {
    // ── 1. Offline: corpus → entropy vectors → model ────────────────
    println!("synthesizing labeled corpus (text / binary / encrypted / compressed)...");
    let corpus = CorpusBuilder::new(42).files_per_class(150).size_range(1024, 16384).build();

    let widths = FeatureWidths::svm_selected(); // φ'_SVM = {h1, h2, h3, h5}
    let b = 32; // classify from the first 32 bytes, as in §1.3

    println!("training CART on H_b vectors (b = {b})...");
    let train =
        dataset_from_corpus(&corpus, &widths, TrainingMethod::Prefix { b }, FeatureMode::Exact, 7);
    let model = NatureModel::train(&train, &ModelKind::paper_cart()).expect("train");

    // Hold-out sanity check.
    let test_corpus = CorpusBuilder::new(1042).files_per_class(60).size_range(1024, 16384).build();
    let test = dataset_from_corpus(
        &test_corpus,
        &widths,
        TrainingMethod::Prefix { b },
        FeatureMode::Exact,
        8,
    );
    println!("hold-out accuracy: {:.1}%", 100.0 * model.accuracy_on(&test));
    println!("{}", model.confusion_on(&test));

    // ── 2. Online: packets → CDB → classification ───────────────────
    let mut iustitia = Iustitia::new(model, PipelineConfig::headline(7));
    let flows: [(&str, Vec<u8>); 3] = [
        ("chat session", b"hey, are we still meeting for lunch today at noon? ".repeat(4)),
        ("file download", {
            let mut rng = rand::rngs::StdRng::seed_from_u64(5);
            iustitia_corpus::generate_file(FileClass::Binary, 256, &mut rng)
        }),
        ("tls transfer", {
            let mut rc4 = iustitia_corpus::Rc4::new(b"session-key");
            rc4.keystream(256)
        }),
    ];

    println!("classifying three live flows from their first {b} bytes:");
    for (i, (name, payload)) in flows.iter().enumerate() {
        let packet = Packet {
            timestamp: i as f64 * 0.01,
            tuple: FiveTuple::tcp(
                Ipv4Addr::new(10, 0, 0, 1),
                40000 + i as u16,
                Ipv4Addr::new(192, 168, 0, 1),
                443,
            ),
            flags: TcpFlags::ACK,
            payload: payload.clone(),
        };
        match iustitia.process_packet(&packet) {
            Verdict::Classified(label) => println!("  {name:>14} -> {label}"),
            other => println!("  {name:>14} -> {other:?}"),
        }
    }
    println!(
        "CDB now holds {} flows ({} bits under the paper's 194-bit records)",
        iustitia.cdb().len(),
        iustitia.cdb().size_bits()
    );
}
