//! Production deployment patterns: train once → persist → load in a
//! multi-core sharded pipeline, plus §4.6 tunnel handling.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release -p iustitia --example deployment
//! ```

use iustitia::prelude::*;
use iustitia_corpus::Rc4;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ── 1. Train once, persist to disk ──────────────────────────────
    let b = 64;
    let widths = FeatureWidths::svm_selected();
    let corpus = CorpusBuilder::new(21).files_per_class(120).size_range(1024, 8192).build();
    println!("training flow-nature model (b = {b})...");
    let model = iustitia::model::train_from_corpus(
        &corpus,
        &widths,
        TrainingMethod::Prefix { b },
        FeatureMode::Exact,
        &ModelKind::paper_cart(),
        21,
    )
    .expect("balanced corpus has every class");
    let model_path = std::env::temp_dir().join("iustitia-deployment-model.json");
    model.save(&model_path)?;
    println!(
        "model persisted to {} ({} bytes)",
        model_path.display(),
        std::fs::metadata(&model_path)?.len()
    );

    // ── 2. Load it in the "router" process and shard across cores ───
    let loaded = NatureModel::load(&model_path)?;
    let shards = 4;
    let sharded = ShardedIustitia::new(
        loaded.clone(),
        PipelineConfig { buffer_size: b, ..PipelineConfig::headline(21) },
        shards,
    );

    let mut trace = TraceConfig::small_test(22);
    trace.n_flows = 600;
    trace.content = ContentMode::Realistic;
    println!("\nprocessing a {}-flow trace across {shards} shards...", trace.n_flows);
    let report = sharded.process_stream(TraceGenerator::new(trace));
    println!(
        "  {} packets, {} CDB hits, {} flows classified",
        report.packets, report.hits, report.flows_classified
    );
    println!("  per-shard CDB sizes: {:?}", report.cdb_sizes);
    let mean_c =
        report.log.iter().map(|f| f.packets as f64).sum::<f64>() / report.log.len().max(1) as f64;
    println!("  mean packets-to-classify c = {mean_c:.2}");

    // ── 3. Tunnel policy (§4.6) ──────────────────────────────────────
    println!("\ntunnel handling:");
    let mut fx = FeatureExtractor::new(widths, FeatureMode::Exact, 23);

    // An IPsec-style tunnel: everything inside is ciphertext on the wire.
    let mut tunnel_cipher = Rc4::new(b"ipsec-session");
    let encrypted_tunnel: Vec<TunnelSegment> = (0..3)
        .map(|i| TunnelSegment { inner: InnerFlowKey(i), payload: tunnel_cipher.keystream(200) })
        .collect();
    match classify_tunnel(&encrypted_tunnel, &loaded, &mut fx, b) {
        TunnelVerdict::EncryptedTunnel => {
            println!("  ipsec-like tunnel -> encrypted (inner flows opaque)")
        }
        TunnelVerdict::PerFlow(_) => println!("  unexpected cleartext verdict"),
    }

    // A GRE-style cleartext tunnel carrying one chat flow and one
    // encrypted inner flow.
    let mut inner_cipher = Rc4::new(b"inner-tls");
    let cleartext_tunnel = vec![
        TunnelSegment {
            inner: InnerFlowKey(1),
            payload: b"hey, lunch at noon? the usual place sounds good to me. ".repeat(3),
        },
        TunnelSegment { inner: InnerFlowKey(2), payload: inner_cipher.keystream(180) },
    ];
    match classify_tunnel(&cleartext_tunnel, &loaded, &mut fx, b) {
        TunnelVerdict::PerFlow(map) => {
            let mut entries: Vec<_> = map.into_iter().collect();
            entries.sort_by_key(|&(k, _)| k);
            for (key, label) in entries {
                println!("  gre-like tunnel, inner flow {} -> {label}", key.0);
            }
        }
        TunnelVerdict::EncryptedTunnel => println!("  unexpected encrypted verdict"),
    }

    std::fs::remove_file(&model_path).ok();
    Ok(())
}
