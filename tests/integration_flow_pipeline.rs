//! Cross-crate integration: trained model + synthetic trace → online
//! pipeline, scored against the trace generator's ground truth.

use iustitia::features::{FeatureMode, TrainingMethod};
use iustitia::model::{train_from_corpus, ModelKind};
use iustitia::pipeline::{Iustitia, PipelineConfig, Verdict};
use iustitia_corpus::{CorpusBuilder, FileClass};
use iustitia_entropy::FeatureWidths;
use iustitia_netsim::{ContentMode, TraceConfig, TraceGenerator};
use std::collections::HashMap;

fn trained_model(b: usize) -> iustitia::model::NatureModel {
    let corpus = CorpusBuilder::new(7).files_per_class(40).size_range(1024, 8192).build();
    train_from_corpus(
        &corpus,
        &FeatureWidths::svm_selected(),
        TrainingMethod::Prefix { b },
        FeatureMode::Exact,
        &ModelKind::paper_cart(),
        7,
    )
    .expect("balanced corpus")
}

#[test]
fn pipeline_labels_match_trace_ground_truth() {
    let b = 64;
    let mut config = TraceConfig::small_test(99);
    config.n_flows = 150;
    config.content = ContentMode::Realistic;
    config.content_budget = 2048;

    let mut pipeline = Iustitia::new(
        trained_model(b),
        PipelineConfig { buffer_size: b, ..PipelineConfig::headline(99) },
    );

    let mut generator = TraceGenerator::new(config);
    let mut assigned: HashMap<iustitia_netsim::FiveTuple, FileClass> = HashMap::new();
    for packet in generator.by_ref() {
        if let Verdict::Classified(label) = pipeline.process_packet(&packet) {
            assigned.insert(packet.tuple, label);
        }
    }
    let truth = generator.ground_truth();
    assert!(assigned.len() > 100, "most flows should get classified, got {}", assigned.len());

    let correct = assigned.iter().filter(|(tuple, label)| truth.get(tuple) == Some(label)).count();
    let acc = correct as f64 / assigned.len() as f64;
    assert!(acc > 0.6, "online accuracy vs ground truth {acc} (offline ~0.85+)");
}

#[test]
fn cdb_hits_avoid_reclassification() {
    let mut config = TraceConfig::small_test(5);
    config.n_flows = 60;
    config.mean_data_packets = 20.0;
    let mut pipeline = Iustitia::new(trained_model(32), PipelineConfig::headline(5));
    let mut classified = 0u64;
    let mut hits = 0u64;
    for packet in TraceGenerator::new(config) {
        match pipeline.process_packet(&packet) {
            Verdict::Classified(_) => classified += 1,
            Verdict::Hit(_) => hits += 1,
            _ => {}
        }
    }
    assert!(classified > 0);
    // With ~20 data packets per flow and b=32 (one packet fills the
    // buffer), the overwhelming majority of data packets are CDB hits.
    assert!(hits > classified * 5, "hits {hits} should dwarf classifications {classified}");
}

#[test]
fn consistent_labels_within_a_flow() {
    // Once classified, every subsequent data packet of the flow gets
    // the same label from the CDB.
    let mut config = TraceConfig::small_test(6);
    config.n_flows = 40;
    let mut pipeline = Iustitia::new(trained_model(32), PipelineConfig::headline(6));
    let mut first_label: HashMap<iustitia_netsim::FiveTuple, FileClass> = HashMap::new();
    for packet in TraceGenerator::new(config) {
        match pipeline.process_packet(&packet) {
            Verdict::Classified(label) => {
                first_label.insert(packet.tuple, label);
            }
            Verdict::Hit(label) => {
                if let Some(first) = first_label.get(&packet.tuple) {
                    assert_eq!(*first, label, "label changed mid-flow for {}", packet.tuple);
                }
            }
            _ => {}
        }
    }
    assert!(!first_label.is_empty());
}

#[test]
fn per_flow_state_is_bounded_by_buffer_capacity() {
    // The paper's space claim: per new flow, Iustitia holds only the
    // b-byte buffer plus counters. The pipeline must never buffer more
    // than the configured capacity per flow.
    let b = 32;
    let mut config = TraceConfig::small_test(8);
    config.n_flows = 50;
    let mut pipeline = Iustitia::new(trained_model(b), PipelineConfig::headline(8));
    let mut generator = TraceGenerator::new(config);
    for packet in generator.by_ref() {
        pipeline.process_packet(&packet);
    }
    pipeline.flush_idle(f64::INFINITY);
    for flow in pipeline.take_log() {
        assert!(flow.buffered_bytes <= pipeline.buffer_capacity());
    }
    assert_eq!(pipeline.pending_flows(), 0);
}
