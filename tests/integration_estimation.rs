//! Cross-crate integration: `(δ,ε)` streaming estimation end to end —
//! estimated feature vectors feed the same classifiers with a bounded
//! accuracy drop, at a fraction of the counter budget (§4.4).

use iustitia::features::{dataset_from_corpus, FeatureExtractor, FeatureMode, TrainingMethod};
use iustitia::model::{ModelKind, NatureModel};
use iustitia_corpus::{generate_file, CorpusBuilder, FileClass};
use iustitia_entropy::{counters_required, min_epsilon, EstimatorConfig, FeatureWidths};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn estimated_vectors_classify_with_bounded_drop() {
    let corpus = CorpusBuilder::new(11).files_per_class(40).size_range(2048, 8192).build();
    let widths = FeatureWidths::svm_selected();
    let b = 1024;

    let exact_train =
        dataset_from_corpus(&corpus, &widths, TrainingMethod::Prefix { b }, FeatureMode::Exact, 1);
    let cfg = EstimatorConfig::new(0.25, 0.25).expect("valid");
    let est_train = dataset_from_corpus(
        &corpus,
        &widths,
        TrainingMethod::Prefix { b },
        FeatureMode::Estimated(cfg),
        1,
    );

    let test_corpus = CorpusBuilder::new(12).files_per_class(20).size_range(2048, 8192).build();
    let exact_test = dataset_from_corpus(
        &test_corpus,
        &widths,
        TrainingMethod::Prefix { b },
        FeatureMode::Exact,
        2,
    );
    let est_test = dataset_from_corpus(
        &test_corpus,
        &widths,
        TrainingMethod::Prefix { b },
        FeatureMode::Estimated(cfg),
        2,
    );

    let exact_model = NatureModel::train(&exact_train, &ModelKind::paper_cart()).expect("train");
    let est_model = NatureModel::train(&est_train, &ModelKind::paper_cart()).expect("train");
    let exact_acc = exact_model.accuracy_on(&exact_test);
    let est_acc = est_model.accuracy_on(&est_test);
    // Paper: exact ~80% at b'=1024 with headers; estimated 76–83%.
    assert!(exact_acc > 0.7, "exact accuracy {exact_acc}");
    assert!(
        est_acc > exact_acc - 0.2,
        "estimated accuracy {est_acc} dropped too far from exact {exact_acc}"
    );
}

#[test]
fn estimation_saves_counters_at_1k_buffer() {
    let widths = FeatureWidths::svm_selected();
    let cfg = EstimatorConfig::svm_optimal();
    let mut rng = StdRng::seed_from_u64(4);
    let data = generate_file(FileClass::Binary, 1024, &mut rng);

    let exact = FeatureExtractor::new(widths.clone(), FeatureMode::Exact, 0);
    let est = FeatureExtractor::new(widths.clone(), FeatureMode::Estimated(cfg), 0);
    let c_exact = exact.counters_for_buffer(&data);
    let c_est = est.counters_for_buffer(&data);
    // Paper Table 3: ≈ 3× space saving at b=1024.
    assert!(
        (c_est as f64) < 0.7 * c_exact as f64,
        "estimated counters {c_est} should be well below exact {c_exact}"
    );
}

#[test]
fn formula_4_bound_is_respected_by_counter_budget() {
    // If ε is chosen above the Formula-4 lower bound computed from the
    // exact counter budget α, the sketch uses fewer than α counters.
    let widths = FeatureWidths::svm_selected();
    let b = 1024usize;
    let mut rng = StdRng::seed_from_u64(5);
    let data = generate_file(FileClass::Binary, b, &mut rng);
    let alpha = FeatureExtractor::new(widths.clone(), FeatureMode::Exact, 0)
        .counters_for_buffer(&data)
        .saturating_sub(256); // Formula 3 excludes h1's counters
    let delta = 0.5;
    let eps_min = min_epsilon(&widths, b, alpha, delta);
    let eps = eps_min * 1.3;
    let cfg = EstimatorConfig::new(eps, delta).expect("valid");
    let total: usize = widths
        .iter()
        .filter(|&k| k >= 2)
        .map(|k| counters_required(&cfg, k, b).expect("k >= 2"))
        .sum();
    assert!(
        total < alpha,
        "sketch budget {total} must undercut exact budget {alpha} at ε={eps:.3}"
    );
}

#[test]
fn estimation_rejected_for_h1_everywhere() {
    let cfg = EstimatorConfig::svm_optimal();
    assert!(counters_required(&cfg, 1, 1024).is_err());
    let mut est = iustitia_entropy::StreamingEntropyEstimator::with_seed(cfg, 0);
    assert!(est.estimate_hk(&[0u8; 128], 1).is_err());
}
