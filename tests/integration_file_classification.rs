//! Cross-crate integration: corpus → entropy features → classifiers.
//!
//! Exercises the full offline path of the paper (Section 3): synthesize
//! labeled files, extract entropy vectors, train CART and SVM, and
//! check the qualitative results the paper reports.

use iustitia::features::{dataset_from_corpus, FeatureMode, TrainingMethod};
use iustitia::model::{ModelKind, NatureModel};
use iustitia_corpus::{CorpusBuilder, FileClass};
use iustitia_entropy::FeatureWidths;
use iustitia_ml::cross_validate;
use iustitia_ml::svm::{Kernel, SvmParams};

fn corpus(seed: u64, n: usize) -> Vec<iustitia_corpus::LabeledFile> {
    CorpusBuilder::new(seed).files_per_class(n).size_range(1024, 16384).build()
}

/// Restricts a 4-class dataset to the paper's three classes. The
/// corpus now carries a fourth, compressed class that entropy-only
/// feature sets cannot separate from ciphertext (that is what the
/// randomness battery is for), so tests reproducing the paper's
/// accuracy bands run the paper's exact 3-class experiment.
fn paper_classes_only(ds: &iustitia_ml::Dataset) -> iustitia_ml::Dataset {
    let paper = [FileClass::Text, FileClass::Binary, FileClass::Encrypted];
    let mut out = iustitia_ml::Dataset::new(
        ds.n_features(),
        paper.iter().map(|c| c.name().to_string()).collect(),
    );
    for (features, label) in ds.iter() {
        if label < paper.len() {
            out.push(features.to_vec(), label);
        }
    }
    out
}

#[test]
fn cart_beats_chance_by_wide_margin_on_whole_files() {
    let ds = paper_classes_only(&dataset_from_corpus(
        &corpus(1, 40),
        &FeatureWidths::full(),
        TrainingMethod::WholeFile,
        FeatureMode::Exact,
        1,
    ));
    let report = cross_validate(&ds, 4, 1, |t| {
        NatureModel::train(t, &ModelKind::paper_cart()).expect("train")
    });
    let acc = report.total().accuracy();
    assert!(acc > 0.75, "CV accuracy {acc} (paper: 0.79)");
}

#[test]
fn svm_rbf_reaches_paper_band_on_whole_files() {
    // Small C keeps the debug-mode SMO fast; the paper band is ~0.86.
    let ds = dataset_from_corpus(
        &corpus(2, 30),
        &FeatureWidths::full(),
        TrainingMethod::WholeFile,
        FeatureMode::Exact,
        2,
    );
    let (train, test) = ds.train_test_split(0.3, 1);
    let params = SvmParams { c: 100.0, kernel: Kernel::Rbf { gamma: 50.0 }, ..Default::default() };
    let model = NatureModel::train(&train, &ModelKind::Svm(params)).expect("train");
    let acc = model.accuracy_on(&test);
    assert!(acc > 0.75, "SVM accuracy {acc}");
}

#[test]
fn dominant_confusion_is_binary_vs_encrypted() {
    // Table 1's structure: text is the easiest class; the binary and
    // encrypted classes confuse into each other far more than either
    // confuses with text.
    let ds = dataset_from_corpus(
        &corpus(3, 50),
        &FeatureWidths::full(),
        TrainingMethod::WholeFile,
        FeatureMode::Exact,
        3,
    );
    let report = cross_validate(&ds, 4, 2, |t| {
        NatureModel::train(t, &ModelKind::paper_cart()).expect("train")
    });
    let cm = report.total();
    let t = FileClass::Text.index();
    let b = FileClass::Binary.index();
    let e = FileClass::Encrypted.index();
    let cross = cm.misclassification_rate(b, e) + cm.misclassification_rate(e, b);
    let with_text = cm.misclassification_rate(b, t) + cm.misclassification_rate(t, b);
    assert!(
        cross > with_text,
        "binary<->encrypted ({cross:.3}) should dominate text confusion ({with_text:.3})"
    );
    assert!(cm.class_accuracy(t) > 0.9, "text should be the easiest class");
}

#[test]
fn prefix_training_matches_paper_small_buffer_result() {
    // Figure 4(b): training on the first b bytes keeps accuracy high
    // even at b = 32.
    let files = corpus(4, 50);
    let ds32 = paper_classes_only(&dataset_from_corpus(
        &files,
        &FeatureWidths::svm_selected(),
        TrainingMethod::Prefix { b: 32 },
        FeatureMode::Exact,
        4,
    ));
    let report = cross_validate(&ds32, 4, 3, |t| {
        NatureModel::train(t, &ModelKind::paper_cart()).expect("train")
    });
    let acc = report.total().accuracy();
    assert!(acc > 0.7, "b=32 prefix-trained accuracy {acc} (paper: ~0.86)");
}

#[test]
fn whole_file_training_degrades_on_small_buffers() {
    // Figure 4(a) vs 4(b): classifying 32-byte prefixes with a model
    // trained on whole files is much worse than prefix-training,
    // because h_k of a 32-byte window lives in a compressed range.
    let train_files = corpus(5, 50);
    let test_files = corpus(6, 30);
    let widths = FeatureWidths::svm_selected();
    let mode = FeatureMode::Exact;

    let train_whole =
        dataset_from_corpus(&train_files, &widths, TrainingMethod::WholeFile, mode.clone(), 5);
    let train_prefix = dataset_from_corpus(
        &train_files,
        &widths,
        TrainingMethod::Prefix { b: 32 },
        mode.clone(),
        5,
    );
    let test = dataset_from_corpus(&test_files, &widths, TrainingMethod::Prefix { b: 32 }, mode, 6);

    let whole_model = NatureModel::train(&train_whole, &ModelKind::paper_cart()).expect("train");
    let prefix_model = NatureModel::train(&train_prefix, &ModelKind::paper_cart()).expect("train");
    let whole_acc = whole_model.accuracy_on(&test);
    let prefix_acc = prefix_model.accuracy_on(&test);
    assert!(
        prefix_acc > whole_acc + 0.1,
        "prefix-trained {prefix_acc} should clearly beat whole-file-trained {whole_acc} at b=32"
    );
}

#[test]
fn feature_selection_keeps_accuracy_within_band() {
    // Table 2: dropping from 10 features to the 4 preferred ones
    // changes accuracy only slightly.
    let files = corpus(7, 50);
    let full = dataset_from_corpus(
        &files,
        &FeatureWidths::full(),
        TrainingMethod::WholeFile,
        FeatureMode::Exact,
        7,
    );
    let selected = full.select_features(&[0, 2, 3, 4]); // φ'_CART
    let acc_full = cross_validate(&full, 4, 4, |t| {
        NatureModel::train(t, &ModelKind::paper_cart()).expect("train")
    })
    .total()
    .accuracy();
    let acc_sel = cross_validate(&selected, 4, 4, |t| {
        NatureModel::train(t, &ModelKind::paper_cart()).expect("train")
    })
    .total()
    .accuracy();
    assert!(
        (acc_full - acc_sel).abs() < 0.08,
        "full {acc_full} vs selected {acc_sel} should be within a few points"
    );
}
