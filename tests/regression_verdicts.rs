//! Verdict regression: the kernel-level rewrites (dense/fx-hashed
//! histograms, single-pass multi-width counting, flow-state pooling)
//! must be observably invisible — every fixed-seed corpus/trace/model
//! combination must produce confusion matrices bit-identical to the
//! pre-rewrite pipeline.
//!
//! The golden matrices below were captured from the pipeline at the
//! commit immediately before the kernel overhaul ("Stream per-packet
//! features instead of buffering flow payloads"), using the exact
//! corpus, model, trace, and pipeline seeds reproduced here. Any drift
//! means a float path changed — the sorted-sum `sum_m_log_m` invariant
//! or the per-width RNG derivation broke — and is a bug, not noise.

use iustitia::features::{FeatureMode, TrainingMethod};
use iustitia::model::{train_from_corpus, ModelKind};
use iustitia::pipeline::{Iustitia, PipelineConfig};
use iustitia_entropy::{EstimatorConfig, FeatureWidths};
use iustitia_netsim::trace::{ContentMode, TraceConfig, TraceGenerator};
use iustitia_netsim::Packet;

/// Runs the fixed-seed pipeline and tallies truth × label counts
/// (classes indexed text, binary, encrypted).
fn confusion(mode: FeatureMode, b: usize) -> [[u64; 3]; 3] {
    let corpus =
        iustitia_corpus::CorpusBuilder::new(33).files_per_class(80).size_range(1024, 4096).build();
    let model = train_from_corpus(
        &corpus,
        &FeatureWidths::svm_selected(),
        TrainingMethod::Prefix { b },
        FeatureMode::Exact,
        &ModelKind::paper_cart(),
        33,
    );
    let mut config = PipelineConfig::headline(33);
    config.buffer_size = b;
    config.mode = mode;
    let mut pipeline = Iustitia::new(model, config);

    let mut trace_config = TraceConfig::small_test(42);
    trace_config.n_flows = 400;
    trace_config.duration = 10.0;
    trace_config.content = ContentMode::Realistic;
    let mut generator = TraceGenerator::new(trace_config);
    let packets: Vec<Packet> = generator.by_ref().collect();
    for packet in &packets {
        pipeline.process_packet(packet);
    }
    pipeline.sweep_idle(f64::INFINITY);

    let truth = generator.ground_truth();
    let mut matrix = [[0u64; 3]; 3];
    for flow in pipeline.take_log() {
        let tuple = packets
            .iter()
            .find(|p| iustitia::cdb::FlowId::of_tuple(&p.tuple) == flow.id)
            .map(|p| p.tuple)
            .expect("flow id maps back to a tuple");
        if let Some(actual) = truth.get(&tuple) {
            matrix[actual.index()][flow.label.index()] += 1;
        }
    }
    matrix
}

#[test]
fn exact_mode_b32_confusion_matrix_is_frozen() {
    assert_eq!(confusion(FeatureMode::Exact, 32), [[106, 13, 2], [15, 131, 1], [0, 1, 131]],);
}

#[test]
fn exact_mode_b2048_confusion_matrix_is_frozen() {
    assert_eq!(confusion(FeatureMode::Exact, 2048), [[90, 31, 0], [1, 139, 7], [0, 23, 109]],);
}

#[test]
fn estimated_mode_b1024_confusion_matrix_is_frozen() {
    assert_eq!(
        confusion(FeatureMode::Estimated(EstimatorConfig::svm_optimal()), 1024),
        [[92, 29, 0], [2, 135, 10], [0, 29, 103]],
    );
}
