//! Verdict regression: the kernel-level rewrites (dense/fx-hashed
//! histograms, single-pass multi-width counting, flow-state pooling,
//! and the randomness-battery feature extension) must be observably
//! deterministic — every fixed-seed corpus/trace/model combination
//! must produce confusion matrices bit-identical to the matrices
//! frozen here.
//!
//! The golden matrices below were captured at the 4-class upgrade
//! (text / binary / encrypted / compressed), using the exact corpus,
//! model, trace, and pipeline seeds reproduced here. Any drift means a
//! float path changed — the sorted-sum `sum_m_log_m` invariant, the
//! per-width RNG derivation, or the battery's integer accumulators
//! broke — and is a bug, not noise.
//!
//! The final test is the reason the battery exists: on the same
//! 4-class trace, the entropy-only feature set must confuse compressed
//! with encrypted strictly more often than the entropy + battery set
//! (the HEDGE/EnCoD observation that compressed streams pass entropy
//! screens but fail randomness tests).

use iustitia::features::{FeatureMode, TrainingMethod};
use iustitia::model::{
    train_anytime_from_corpus, train_from_corpus, train_from_corpus_battery, ModelKind,
    ANYTIME_THRESHOLD_DISABLED,
};
use iustitia::pipeline::{AnytimeConfig, Iustitia, PipelineConfig};
use iustitia_corpus::FileClass;
use iustitia_entropy::{EstimatorConfig, FeatureWidths};
use iustitia_netsim::trace::{ContentMode, TraceConfig, TraceGenerator};
use iustitia_netsim::Packet;

/// Runs the fixed-seed pipeline and tallies truth × label counts
/// (classes indexed text, binary, encrypted, compressed).
fn confusion(mode: FeatureMode, b: usize, battery: bool) -> [[u64; 4]; 4] {
    confusion_with(mode, b, battery, false)
}

fn confusion_with(
    mode: FeatureMode,
    b: usize,
    battery: bool,
    anytime_disabled: bool,
) -> [[u64; 4]; 4] {
    let corpus =
        iustitia_corpus::CorpusBuilder::new(33).files_per_class(80).size_range(1024, 4096).build();
    let train = if battery { train_from_corpus_battery } else { train_from_corpus };
    let model = train(
        &corpus,
        &FeatureWidths::svm_selected(),
        TrainingMethod::Prefix { b },
        FeatureMode::Exact,
        &ModelKind::paper_cart(),
        33,
    )
    .expect("balanced corpus");
    let mut config = PipelineConfig::headline(33);
    config.buffer_size = b;
    config.mode = mode;
    config.battery = battery;
    let mut pipeline = if anytime_disabled {
        // Attach a fully trained anytime model but pin the threshold to
        // the disabled sentinel: probes run on every stride boundary yet
        // can never fire, so every verdict must still come from the
        // `fed >= b` rule — bit-identical to the plain pipeline.
        let report = train_anytime_from_corpus(
            &corpus,
            &FeatureWidths::svm_selected(),
            b,
            FeatureMode::Exact,
            &ModelKind::paper_cart(),
            33,
            battery,
            0.01,
        )
        .expect("balanced corpus");
        let mut probe = AnytimeConfig::calibrated(&report.anytime.confidence);
        probe.threshold = ANYTIME_THRESHOLD_DISABLED;
        probe.probe_stride = 32; // probe aggressively to stress the identity
        config.anytime = Some(probe);
        Iustitia::new(model, config).with_anytime(report.anytime)
    } else {
        Iustitia::new(model, config)
    };

    let mut trace_config = TraceConfig::small_test(42);
    trace_config.n_flows = 400;
    trace_config.duration = 10.0;
    trace_config.content = ContentMode::Realistic;
    let mut generator = TraceGenerator::new(trace_config);
    let packets: Vec<Packet> = generator.by_ref().collect();
    for packet in &packets {
        pipeline.process_packet(packet);
    }
    pipeline.sweep_idle(f64::INFINITY);
    assert_eq!(
        pipeline.early_exit_verdicts(),
        0,
        "a disabled threshold (or no anytime model) must never exit early"
    );

    let truth = generator.ground_truth();
    let mut matrix = [[0u64; 4]; 4];
    for flow in pipeline.take_log() {
        let tuple = packets
            .iter()
            .find(|p| iustitia::cdb::FlowId::of_tuple(&p.tuple) == flow.id)
            .map(|p| p.tuple)
            .expect("flow id maps back to a tuple");
        if let Some(actual) = truth.get(&tuple) {
            matrix[actual.index()][flow.label.index()] += 1;
        }
    }
    matrix
}

#[test]
fn exact_mode_b32_confusion_matrix_is_frozen() {
    assert_eq!(
        confusion(FeatureMode::Exact, 32, false),
        [[82, 8, 1, 11], [10, 90, 0, 9], [0, 1, 84, 5], [20, 4, 32, 43]],
    );
}

#[test]
fn exact_mode_b2048_confusion_matrix_is_frozen() {
    assert_eq!(
        confusion(FeatureMode::Exact, 2048, false),
        [[78, 24, 0, 0], [4, 95, 3, 7], [0, 13, 72, 5], [0, 32, 6, 61]],
    );
}

#[test]
fn battery_b2048_confusion_matrix_is_frozen() {
    assert_eq!(
        confusion(FeatureMode::Exact, 2048, true),
        [[78, 24, 0, 0], [4, 96, 6, 3], [0, 8, 82, 0], [0, 20, 1, 78]],
    );
}

#[test]
fn estimated_mode_b1024_confusion_matrix_is_frozen() {
    assert_eq!(
        confusion(FeatureMode::Estimated(EstimatorConfig::svm_optimal()), 1024, false),
        [[82, 20, 0, 0], [0, 81, 5, 23], [0, 16, 68, 6], [0, 29, 3, 67]],
    );
}

/// The anytime tentpole's compatibility contract: a pipeline carrying
/// a fully trained anytime model whose threshold is the disabled
/// sentinel probes on every stride boundary but fires on none of them,
/// so its confusion matrix is bit-identical to the plain pipeline's
/// frozen matrix above.
#[test]
fn anytime_disabled_matches_frozen_battery_b2048_matrix() {
    assert_eq!(
        confusion_with(FeatureMode::Exact, 2048, true, true),
        [[78, 24, 0, 0], [4, 96, 6, 3], [0, 8, 82, 0], [0, 20, 1, 78]],
    );
}

/// The calibration itself is deterministic: fixed corpus and seed must
/// reproduce the exact accuracy-vs-mean-bytes operating points. Any
/// drift means the split, the per-stage models, the patience replay,
/// or the exit-policy search changed.
#[test]
fn anytime_curve_operating_points_are_frozen() {
    let corpus =
        iustitia_corpus::CorpusBuilder::new(33).files_per_class(40).size_range(1024, 4096).build();
    let report = train_anytime_from_corpus(
        &corpus,
        &FeatureWidths::svm_selected(),
        1024,
        FeatureMode::Exact,
        &ModelKind::paper_cart(),
        33,
        true,
        0.01,
    )
    .expect("balanced corpus");

    let point = |t: f64| {
        report
            .curve
            .iter()
            .find(|p| p.threshold == t)
            .unwrap_or_else(|| panic!("threshold {t} must be on the grid"))
    };
    assert_eq!(report.full_accuracy, 0.95, "fixed-b baseline accuracy drifted");
    assert_eq!(report.full_mean_bytes, 1024.0, "every held-out file fills b=1024");

    let frozen = [(0.05, 0.95, 438.4), (0.5, 0.95, 556.8), (0.9, 0.95, 588.8)];
    for (t, accuracy, mean_bytes) in frozen {
        let p = point(t);
        assert_eq!(
            (p.threshold, p.accuracy, p.mean_bytes_to_verdict),
            (t, accuracy, mean_bytes),
            "curve drifted at threshold {t}: accuracy {}, mean bytes {}",
            p.accuracy,
            p.mean_bytes_to_verdict,
        );
    }

    // The joint exit-policy search lands on the same operating point as
    // the full-scale sweep: the cheapest threshold on the grid, with
    // byte floors on the two high-entropy classes and the trusted mark
    // at the stage whose model matches full-b accuracy.
    assert_eq!(report.anytime.confidence.threshold(), 0.05);
    assert_eq!(report.anytime.confidence.class_floor(), [0, 0, 512, 512]);
    assert_eq!(report.anytime.confidence.trusted_bytes(), 512);
}

#[test]
fn battery_separates_compressed_from_encrypted_better_than_entropy_alone() {
    let baseline = confusion(FeatureMode::Exact, 1024, false);
    let battery = confusion(FeatureMode::Exact, 1024, true);
    let enc = FileClass::Encrypted.index();
    let comp = FileClass::Compressed.index();

    let cross = |m: &[[u64; 4]; 4]| m[comp][enc] + m[enc][comp];
    assert!(
        cross(&battery) < cross(&baseline),
        "battery must confuse compressed/encrypted strictly less: \
         baseline {} cross-labels, battery {}",
        cross(&baseline),
        cross(&battery),
    );

    // And the battery must not buy that separation by giving up the
    // compressed class overall.
    let class_correct = |m: &[[u64; 4]; 4], c: usize| (m[c][c], m[c].iter().sum::<u64>());
    let (base_ok, base_n) = class_correct(&baseline, comp);
    let (batt_ok, batt_n) = class_correct(&battery, comp);
    assert_eq!(base_n, batt_n, "same trace, same compressed flows");
    assert!(
        batt_ok >= base_ok,
        "compressed accuracy must not regress: baseline {base_ok}/{base_n}, \
         battery {batt_ok}/{batt_n}"
    );
}
