//! Verdict regression: the kernel-level rewrites (dense/fx-hashed
//! histograms, single-pass multi-width counting, flow-state pooling,
//! and the randomness-battery feature extension) must be observably
//! deterministic — every fixed-seed corpus/trace/model combination
//! must produce confusion matrices bit-identical to the matrices
//! frozen here.
//!
//! The golden matrices below were captured at the 4-class upgrade
//! (text / binary / encrypted / compressed), using the exact corpus,
//! model, trace, and pipeline seeds reproduced here. Any drift means a
//! float path changed — the sorted-sum `sum_m_log_m` invariant, the
//! per-width RNG derivation, or the battery's integer accumulators
//! broke — and is a bug, not noise.
//!
//! The final test is the reason the battery exists: on the same
//! 4-class trace, the entropy-only feature set must confuse compressed
//! with encrypted strictly more often than the entropy + battery set
//! (the HEDGE/EnCoD observation that compressed streams pass entropy
//! screens but fail randomness tests).

use iustitia::features::{FeatureMode, TrainingMethod};
use iustitia::model::{train_from_corpus, train_from_corpus_battery, ModelKind};
use iustitia::pipeline::{Iustitia, PipelineConfig};
use iustitia_corpus::FileClass;
use iustitia_entropy::{EstimatorConfig, FeatureWidths};
use iustitia_netsim::trace::{ContentMode, TraceConfig, TraceGenerator};
use iustitia_netsim::Packet;

/// Runs the fixed-seed pipeline and tallies truth × label counts
/// (classes indexed text, binary, encrypted, compressed).
fn confusion(mode: FeatureMode, b: usize, battery: bool) -> [[u64; 4]; 4] {
    let corpus =
        iustitia_corpus::CorpusBuilder::new(33).files_per_class(80).size_range(1024, 4096).build();
    let train = if battery { train_from_corpus_battery } else { train_from_corpus };
    let model = train(
        &corpus,
        &FeatureWidths::svm_selected(),
        TrainingMethod::Prefix { b },
        FeatureMode::Exact,
        &ModelKind::paper_cart(),
        33,
    )
    .expect("balanced corpus");
    let mut config = PipelineConfig::headline(33);
    config.buffer_size = b;
    config.mode = mode;
    config.battery = battery;
    let mut pipeline = Iustitia::new(model, config);

    let mut trace_config = TraceConfig::small_test(42);
    trace_config.n_flows = 400;
    trace_config.duration = 10.0;
    trace_config.content = ContentMode::Realistic;
    let mut generator = TraceGenerator::new(trace_config);
    let packets: Vec<Packet> = generator.by_ref().collect();
    for packet in &packets {
        pipeline.process_packet(packet);
    }
    pipeline.sweep_idle(f64::INFINITY);

    let truth = generator.ground_truth();
    let mut matrix = [[0u64; 4]; 4];
    for flow in pipeline.take_log() {
        let tuple = packets
            .iter()
            .find(|p| iustitia::cdb::FlowId::of_tuple(&p.tuple) == flow.id)
            .map(|p| p.tuple)
            .expect("flow id maps back to a tuple");
        if let Some(actual) = truth.get(&tuple) {
            matrix[actual.index()][flow.label.index()] += 1;
        }
    }
    matrix
}

#[test]
fn exact_mode_b32_confusion_matrix_is_frozen() {
    assert_eq!(
        confusion(FeatureMode::Exact, 32, false),
        [[82, 8, 1, 11], [10, 90, 0, 9], [0, 1, 84, 5], [20, 4, 32, 43]],
    );
}

#[test]
fn exact_mode_b2048_confusion_matrix_is_frozen() {
    assert_eq!(
        confusion(FeatureMode::Exact, 2048, false),
        [[78, 24, 0, 0], [4, 95, 3, 7], [0, 13, 72, 5], [0, 32, 6, 61]],
    );
}

#[test]
fn battery_b2048_confusion_matrix_is_frozen() {
    assert_eq!(
        confusion(FeatureMode::Exact, 2048, true),
        [[78, 24, 0, 0], [4, 96, 6, 3], [0, 8, 82, 0], [0, 20, 1, 78]],
    );
}

#[test]
fn estimated_mode_b1024_confusion_matrix_is_frozen() {
    assert_eq!(
        confusion(FeatureMode::Estimated(EstimatorConfig::svm_optimal()), 1024, false),
        [[82, 20, 0, 0], [0, 81, 5, 23], [0, 16, 68, 6], [0, 29, 3, 67]],
    );
}

#[test]
fn battery_separates_compressed_from_encrypted_better_than_entropy_alone() {
    let baseline = confusion(FeatureMode::Exact, 1024, false);
    let battery = confusion(FeatureMode::Exact, 1024, true);
    let enc = FileClass::Encrypted.index();
    let comp = FileClass::Compressed.index();

    let cross = |m: &[[u64; 4]; 4]| m[comp][enc] + m[enc][comp];
    assert!(
        cross(&battery) < cross(&baseline),
        "battery must confuse compressed/encrypted strictly less: \
         baseline {} cross-labels, battery {}",
        cross(&baseline),
        cross(&battery),
    );

    // And the battery must not buy that separation by giving up the
    // compressed class overall.
    let class_correct = |m: &[[u64; 4]; 4], c: usize| (m[c][c], m[c].iter().sum::<u64>());
    let (base_ok, base_n) = class_correct(&baseline, comp);
    let (batt_ok, batt_n) = class_correct(&battery, comp);
    assert_eq!(base_n, batt_n, "same trace, same compressed flows");
    assert!(
        batt_ok >= base_ok,
        "compressed accuracy must not regress: baseline {base_ok}/{base_n}, \
         battery {batt_ok}/{batt_n}"
    );
}
