//! Cross-crate integration: trace → pipeline → CDB dynamics (§4.5).

use iustitia::analysis::{run_over_trace, DelayComponents};
use iustitia::cdb::CdbConfig;
use iustitia::features::{FeatureMode, TrainingMethod};
use iustitia::model::{train_from_corpus, ModelKind};
use iustitia::pipeline::{Iustitia, PipelineConfig};
use iustitia_corpus::CorpusBuilder;
use iustitia_entropy::FeatureWidths;
use iustitia_netsim::{ContentMode, TraceConfig, TraceGenerator};

fn model() -> iustitia::model::NatureModel {
    let corpus = CorpusBuilder::new(3).files_per_class(30).size_range(1024, 4096).build();
    train_from_corpus(
        &corpus,
        &FeatureWidths::svm_selected(),
        TrainingMethod::Prefix { b: 32 },
        FeatureMode::Exact,
        &ModelKind::paper_cart(),
        3,
    )
    .expect("balanced corpus")
}

fn trace(seed: u64, n_flows: usize) -> TraceConfig {
    let mut config = TraceConfig::small_test(seed);
    config.n_flows = n_flows;
    config.content = ContentMode::SizesOnly;
    config
}

#[test]
fn purging_keeps_cdb_below_unpurged() {
    let run = |cdb: CdbConfig| {
        let config = PipelineConfig { cdb, idle_timeout: 1.0, ..PipelineConfig::headline(1) };
        let mut pipeline = Iustitia::new(model(), config);
        let packets = TraceGenerator::new(trace(42, 400));
        let report = run_over_trace(&mut pipeline, packets, 1.0, DelayComponents::default());
        (pipeline.cdb().len(), report.total_flows, *pipeline.cdb().stats())
    };
    let (purged_size, flows_a, stats_a) =
        run(CdbConfig { purge_trigger: 50, ..CdbConfig::default() });
    let (unpurged_size, flows_b, _) = run(CdbConfig { n: None, ..CdbConfig::default() });
    // Purging can evict still-active flows, which then get reclassified
    // when their next packet arrives — the trade-off §4.5 tunes `n` for.
    assert!(flows_a >= flows_b, "purged run reclassifies, never classifies less");
    assert!(
        purged_size < unpurged_size,
        "purged {purged_size} must be below unpurged {unpurged_size}"
    );
    assert!(stats_a.removed_by_timeout > 0, "inactivity purging must fire");
}

#[test]
fn fin_rst_removal_fraction_matches_trace() {
    // Paper: up to 46% of flows are removed by FIN/RST alone.
    let config = PipelineConfig {
        cdb: CdbConfig { n: None, ..CdbConfig::default() },
        idle_timeout: 0.5,
        ..PipelineConfig::headline(2)
    };
    let mut pipeline = Iustitia::new(model(), config);
    let mut tc = trace(7, 500);
    tc.tcp_fraction = 1.0;
    tc.proper_close_fraction = 0.46;
    for packet in TraceGenerator::new(tc) {
        pipeline.process_packet(&packet);
    }
    let stats = pipeline.cdb().stats();
    let frac = stats.removed_by_close as f64 / stats.inserted.max(1) as f64;
    assert!(
        (0.25..=0.60).contains(&frac),
        "FIN/RST removal fraction {frac} out of band (paper ~0.46)"
    );
}

#[test]
fn delay_grows_with_buffer_size() {
    // Figure 10's shape: τ is dominated by buffer fill; bigger b means
    // more packets and more wall-clock before classification.
    let mean_tau = |b: usize| {
        let config =
            PipelineConfig { buffer_size: b, idle_timeout: 5.0, ..PipelineConfig::headline(3) };
        let mut pipeline = Iustitia::new(model(), config);
        let packets = TraceGenerator::new(trace(11, 300));
        run_over_trace(&mut pipeline, packets, 1.0, DelayComponents::default()).mean_tau()
    };
    let small = mean_tau(32);
    let large = mean_tau(2000);
    assert!(large > small, "tau(2000)={large} must exceed tau(32)={small}");
    // Small-buffer delay is dominated by fixed costs (paper: ~tens of ms
    // at trace timescales; here bounded by the first packet's size).
    assert!(small < 0.5, "small-buffer delay unexpectedly large: {small}");
}

#[test]
fn reclassification_ttl_forces_periodic_rework() {
    let ttl = 0.5;
    let config = PipelineConfig {
        cdb: CdbConfig { reclassify_after: Some(ttl), ..CdbConfig::default() },
        ..PipelineConfig::headline(4)
    };
    let mut with_ttl = Iustitia::new(model(), config);
    let mut baseline = Iustitia::new(model(), PipelineConfig::headline(4));
    let mut tc = trace(13, 150);
    tc.mean_data_packets = 30.0;
    for packet in TraceGenerator::new(tc.clone()) {
        with_ttl.process_packet(&packet);
    }
    for packet in TraceGenerator::new(tc) {
        baseline.process_packet(&packet);
    }
    let ttl_expired = with_ttl.cdb().stats().removed_by_ttl;
    assert!(ttl_expired > 0, "TTL must expire some records");
    assert!(
        with_ttl.cdb().stats().inserted > baseline.cdb().stats().inserted,
        "TTL expiry must force reclassification (more inserts)"
    );
}
