//! Vendored, std-only subset of the `rand` 0.8 API.
//!
//! The build environment has no registry access, so this crate
//! re-implements exactly the surface the workspace uses: [`Rng`]
//! (`gen`, `gen_range`, `gen_bool`, `fill_bytes`),
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`] (a xoshiro256++
//! generator), and [`seq::SliceRandom::shuffle`].
//!
//! The generated stream differs from upstream `StdRng`; everything in
//! this workspace only relies on self-consistency of a seeded stream.

#![forbid(unsafe_code)]

/// Low-level entropy source: 64 random bits per call.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;

    /// Builds a generator from ambient entropy (wall clock plus a
    /// process-wide counter; not cryptographically secure).
    fn from_entropy() -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
        Self::seed_from_u64(nanos ^ unique.rotate_left(32))
    }
}

/// Types samplable uniformly over their "natural" domain by
/// [`Rng::gen`]: full range for integers, `[0, 1)` for floats.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl<T: Standard, const N: usize> Standard for [T; N] {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        std::array::from_fn(|_| T::sample_standard(rng))
    }
}

/// A range usable with [`Rng::gen_range`], producing `T`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, bound)` by widening multiply (Lemire).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((u128::from(rng.next_u64()) * u128::from(bound)) >> 64) as u64
}

/// Element types uniformly samplable between two bounds; the blanket
/// range impls below build on this, mirroring upstream's
/// `SampleUniform` so integer-literal inference works through
/// [`Rng::gen_range`].
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` (or `[lo, hi]` when `inclusive`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: $t,
                hi: $t,
                inclusive: bool,
            ) -> $t {
                if inclusive {
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    if span > u64::MAX as u128 {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(uniform_below(rng, span as u64) as $t)
                } else {
                    assert!(lo < hi, "cannot sample empty range");
                    let span = (hi as i128 - lo as i128) as u64;
                    lo.wrapping_add(uniform_below(rng, span) as $t)
                }
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_between<R: RngCore + ?Sized>(rng: &mut R, lo: f64, hi: f64, inclusive: bool) -> f64 {
        if inclusive {
            assert!(lo <= hi, "cannot sample empty range");
            let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
            lo + u * (hi - lo)
        } else {
            assert!(lo < hi, "cannot sample empty range");
            lo + f64::sample_standard(rng) * (hi - lo)
        }
    }
}

impl SampleUniform for f32 {
    fn sample_between<R: RngCore + ?Sized>(rng: &mut R, lo: f32, hi: f32, inclusive: bool) -> f32 {
        if inclusive {
            assert!(lo <= hi, "cannot sample empty range");
            let u = (rng.next_u64() >> 40) as f32 * (1.0 / ((1u64 << 24) - 1) as f32);
            lo + u * (hi - lo)
        } else {
            assert!(lo < hi, "cannot sample empty range");
            lo + f32::sample_standard(rng) * (hi - lo)
        }
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, *self.start(), *self.end(), true)
    }
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of an inferred type (full integer range, `[0,1)`
    /// for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws uniformly from a range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of [0,1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard PRNG: xoshiro256++, seeded via
    /// SplitMix64. Fast, 256-bit state, passes BigCrush; **not** the
    /// upstream `StdRng` stream and not cryptographically secure.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, per the xoshiro authors' guidance.
            let mut sm = state;
            let mut next = move || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }
}

pub mod seq {
    //! Slice sampling helpers.

    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic_and_distinct() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_is_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let a = rng.gen_range(10u32..20);
            assert!((10..20).contains(&a));
            let b = rng.gen_range(5usize..=7);
            assert!((5..=7).contains(&b));
            let c = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&c));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(7);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4500..5500).contains(&heads), "heads={heads}");
    }
}
