//! Vendored, std-only subset of the `serde` API.
//!
//! Instead of upstream serde's visitor-based zero-copy architecture,
//! this shim round-trips through an owned [`Value`] tree: types
//! implement [`Serialize::to_value`] and [`Deserialize::from_value`],
//! and `serde_json` renders/parses `Value` as JSON text. The derive
//! macros (feature `derive`, crate `serde_derive`) emit impls against
//! this model with serde's usual JSON shape conventions: objects for
//! named fields, externally tagged enums, `null` for `None`.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The serialization data model: a JSON-shaped tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Integral number (kept exact; i128 covers u64 and i64).
    Int(i128),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object, as insertion-ordered pairs.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// The object pairs, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view: integers widen, floats pass through.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Exact integer view.
    pub fn as_int(&self) -> Option<i128> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Looks up a field in an object's pair list.
pub fn get_field<'a>(obj: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Deserialization error: a human-readable path/diagnosis string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Conversion into the [`Value`] data model.
pub trait Serialize {
    /// Serializes `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Conversion from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the tree does not match `Self`'s shape.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ------------------------------------------------------------ primitives

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let i = v
                    .as_int()
                    .ok_or_else(|| DeError::new(concat!("expected integer for ", stringify!($t))))?;
                <$t>::try_from(i)
                    .map_err(|_| DeError::new(concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}
impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(f64::NAN), // non-finite floats render as null
            _ => v.as_f64().ok_or_else(|| DeError::new("expected number for f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::new("expected bool"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str().map(str::to_owned).ok_or_else(|| DeError::new("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v.as_str().ok_or_else(|| DeError::new("expected char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::new("expected single-char string")),
        }
    }
}

// ----------------------------------------------------------- containers

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_arr()
            .ok_or_else(|| DeError::new("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        <[T; N]>::try_from(items).map_err(|_| DeError::new("wrong array length"))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut pairs: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Obj(pairs)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_obj()
            .ok_or_else(|| DeError::new("expected object"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Obj(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_obj()
            .ok_or_else(|| DeError::new("expected object"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let arr = v.as_arr().ok_or_else(|| DeError::new("expected tuple array"))?;
                let expected = [$($n),+].len();
                if arr.len() != expected {
                    return Err(DeError::new("wrong tuple arity"));
                }
                Ok(($($t::from_value(&arr[$n])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl Serialize for std::net::Ipv4Addr {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for std::net::Ipv4Addr {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .ok_or_else(|| DeError::new("expected dotted-quad string"))?
            .parse()
            .map_err(|_| DeError::new("invalid IPv4 address"))
    }
}

impl Serialize for std::net::SocketAddr {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for std::net::SocketAddr {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .ok_or_else(|| DeError::new("expected socket address string"))?
            .parse()
            .map_err(|_| DeError::new("invalid socket address"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(bool::from_value(&true.to_value()).unwrap(), true);
        assert_eq!(String::from_value(&"hi".to_string().to_value()).unwrap(), "hi");
    }

    #[test]
    fn containers_round_trip() {
        let v: Vec<u32> = vec![1, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let o: Option<f64> = None;
        assert_eq!(Option::<f64>::from_value(&o.to_value()).unwrap(), None);
        let a: [u8; 4] = [9, 8, 7, 6];
        assert_eq!(<[u8; 4]>::from_value(&a.to_value()).unwrap(), a);
        let t = (1u8, 0.5f64);
        assert_eq!(<(u8, f64)>::from_value(&t.to_value()).unwrap(), t);
    }

    #[test]
    fn out_of_range_int_is_an_error() {
        assert!(u8::from_value(&Value::Int(300)).is_err());
        assert!(u64::from_value(&Value::Int(-1)).is_err());
    }

    #[test]
    fn ipv4_round_trips() {
        let ip: std::net::Ipv4Addr = "10.1.2.3".parse().unwrap();
        assert_eq!(std::net::Ipv4Addr::from_value(&ip.to_value()).unwrap(), ip);
    }
}
