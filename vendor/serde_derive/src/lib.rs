//! Hand-rolled `Serialize`/`Deserialize` derive macros for the vendored
//! serde shim. No syn/quote: the item is parsed by walking the raw
//! token stream and the impls are emitted as source strings.
//!
//! Supported shapes (everything this workspace derives on):
//! named-field structs, tuple structs, unit structs, and enums with
//! unit / tuple / named-field variants. Generic types are rejected.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: VariantShape,
}

#[derive(Debug)]
enum Item {
    NamedStruct { name: String, fields: Vec<String> },
    TupleStruct { name: String, arity: usize },
    UnitStruct { name: String },
    Enum { name: String, variants: Vec<Variant> },
}

/// Derives `serde::Serialize` (shim data model: `to_value`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` (shim data model: `from_value`).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Item {
    let mut it = input.into_iter().peekable();
    loop {
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // Attribute: consume the bracket group (and `!` if inner).
                match it.peek() {
                    Some(TokenTree::Punct(q)) if q.as_char() == '!' => {
                        it.next();
                        it.next();
                    }
                    _ => {
                        it.next();
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                if let Some(TokenTree::Group(g)) = it.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        it.next();
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {
                let name = expect_ident(&mut it);
                reject_generics(&mut it, &name);
                return match it.next() {
                    None => Item::UnitStruct { name },
                    Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::UnitStruct { name },
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        Item::NamedStruct { name, fields: parse_named_fields(g.stream()) }
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        Item::TupleStruct { name, arity: count_tuple_fields(g.stream()) }
                    }
                    other => {
                        panic!("serde shim derive: unexpected token after struct {name}: {other:?}")
                    }
                };
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                let name = expect_ident(&mut it);
                reject_generics(&mut it, &name);
                let body = match it.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                    other => panic!("serde shim derive: expected enum body for {name}: {other:?}"),
                };
                return Item::Enum { name, variants: parse_variants(body) };
            }
            Some(other) => panic!("serde shim derive: unexpected token {other:?}"),
            None => panic!("serde shim derive: no struct/enum found"),
        }
    }
}

fn expect_ident(it: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) -> String {
    match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected identifier, got {other:?}"),
    }
}

fn reject_generics(it: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>, name: &str) {
    if let Some(TokenTree::Punct(p)) = it.peek() {
        if p.as_char() == '<' {
            panic!("serde shim derive: generic type {name} is not supported");
        }
    }
}

/// Field names of a named-field body (struct or enum variant).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut it = stream.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        loop {
            match it.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    it.next();
                    it.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    it.next();
                    if let Some(TokenTree::Group(g)) = it.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            it.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(tt) = it.next() else { break };
        let TokenTree::Ident(field) = tt else {
            panic!("serde shim derive: expected field name, got {tt:?}");
        };
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde shim derive: expected ':' after field, got {other:?}"),
        }
        fields.push(field.to_string());
        // Skip the type: commas inside angle brackets are not separators.
        let mut angle: i32 = 0;
        for tt in it.by_ref() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => break,
                _ => {}
            }
        }
    }
    fields
}

/// Number of fields in a tuple body `(A, B<C, D>, E)`.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut angle: i32 = 0;
    let mut count = 0usize;
    let mut pending = false;
    for tt in stream {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                count += 1;
                pending = false;
            }
            _ => pending = true,
        }
    }
    count + usize::from(pending)
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut it = stream.into_iter().peekable();
    loop {
        while let Some(TokenTree::Punct(p)) = it.peek() {
            if p.as_char() == '#' {
                it.next();
                it.next();
            } else {
                break;
            }
        }
        let Some(tt) = it.next() else { break };
        let TokenTree::Ident(name) = tt else {
            panic!("serde shim derive: expected variant name, got {tt:?}");
        };
        let shape = match it.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                it.next();
                VariantShape::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                it.next();
                VariantShape::Named(fields)
            }
            _ => VariantShape::Unit,
        };
        // Consume up to and including the variant separator (skips
        // explicit discriminants, which never occur on serde'd enums
        // here but are cheap to tolerate).
        for tt in it.by_ref() {
            if let TokenTree::Punct(p) = &tt {
                if p.as_char() == ',' {
                    break;
                }
            }
        }
        variants.push(Variant { name: name.to_string(), shape });
    }
    variants
}

// ------------------------------------------------------------- generation

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> serde::Value {{\n\
                 serde::Value::Obj(vec![{}])\n}}\n}}",
                pairs.join(", ")
            )
        }
        Item::TupleStruct { name, arity } => {
            let elems: Vec<String> =
                (0..*arity).map(|i| format!("serde::Serialize::to_value(&self.{i})")).collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> serde::Value {{\n\
                 serde::Value::Arr(vec![{}])\n}}\n}}",
                elems.join(", ")
            )
        }
        Item::UnitStruct { name } => format!(
            "impl serde::Serialize for {name} {{\n\
             fn to_value(&self) -> serde::Value {{ serde::Value::Null }}\n}}"
        ),
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => format!(
                            "{name}::{vn} => serde::Value::Str(::std::string::String::from(\"{vn}\"))"
                        ),
                        VariantShape::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let vals: Vec<String> = binds
                                .iter()
                                .map(|b| format!("serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => serde::Value::Obj(vec![(::std::string::String::from(\"{vn}\"), serde::Value::Arr(vec![{}]))])",
                                binds.join(", "),
                                vals.join(", ")
                            )
                        }
                        VariantShape::Named(fields) => {
                            let binds = fields.join(", ");
                            let pairs: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => serde::Value::Obj(vec![(::std::string::String::from(\"{vn}\"), serde::Value::Obj(vec![{}]))])",
                                pairs.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> serde::Value {{\n\
                 match self {{ {} }}\n}}\n}}",
                arms.join(",\n")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: serde::Deserialize::from_value(serde::get_field(obj, \"{f}\").ok_or_else(|| serde::DeError::new(\"{name}: missing field {f}\"))?)?"
                    )
                })
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{\n\
                 fn from_value(v: &serde::Value) -> ::std::result::Result<Self, serde::DeError> {{\n\
                 let obj = v.as_obj().ok_or_else(|| serde::DeError::new(\"{name}: expected object\"))?;\n\
                 ::std::result::Result::Ok({name} {{ {} }})\n}}\n}}",
                inits.join(", ")
            )
        }
        Item::TupleStruct { name, arity } => {
            let inits: Vec<String> = (0..*arity)
                .map(|i| format!("serde::Deserialize::from_value(&arr[{i}])?"))
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{\n\
                 fn from_value(v: &serde::Value) -> ::std::result::Result<Self, serde::DeError> {{\n\
                 let arr = v.as_arr().ok_or_else(|| serde::DeError::new(\"{name}: expected array\"))?;\n\
                 if arr.len() != {arity} {{ return ::std::result::Result::Err(serde::DeError::new(\"{name}: wrong arity\")); }}\n\
                 ::std::result::Result::Ok({name}({}))\n}}\n}}",
                inits.join(", ")
            )
        }
        Item::UnitStruct { name } => format!(
            "impl serde::Deserialize for {name} {{\n\
             fn from_value(_v: &serde::Value) -> ::std::result::Result<Self, serde::DeError> {{\n\
             ::std::result::Result::Ok({name})\n}}\n}}"
        ),
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.shape, VariantShape::Unit))
                .map(|v| {
                    let vn = &v.name;
                    format!("\"{vn}\" => ::std::result::Result::Ok({name}::{vn})")
                })
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => None,
                        VariantShape::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| format!("serde::Deserialize::from_value(&arr[{i}])?"))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                 let arr = inner.as_arr().ok_or_else(|| serde::DeError::new(\"{name}::{vn}: expected array\"))?;\n\
                                 if arr.len() != {n} {{ return ::std::result::Result::Err(serde::DeError::new(\"{name}::{vn}: wrong arity\")); }}\n\
                                 ::std::result::Result::Ok({name}::{vn}({}))\n}}",
                                inits.join(", ")
                            ))
                        }
                        VariantShape::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: serde::Deserialize::from_value(serde::get_field(obj, \"{f}\").ok_or_else(|| serde::DeError::new(\"{name}::{vn}: missing field {f}\"))?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                 let obj = inner.as_obj().ok_or_else(|| serde::DeError::new(\"{name}::{vn}: expected object\"))?;\n\
                                 ::std::result::Result::Ok({name}::{vn} {{ {} }})\n}}",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{\n\
                 fn from_value(v: &serde::Value) -> ::std::result::Result<Self, serde::DeError> {{\n\
                 match v {{\n\
                 serde::Value::Str(s) => match s.as_str() {{\n\
                 {unit}\n\
                 _ => ::std::result::Result::Err(serde::DeError::new(\"{name}: unknown variant\")),\n\
                 }},\n\
                 serde::Value::Obj(pairs) if pairs.len() == 1 => {{\n\
                 let (tag, inner) = &pairs[0];\n\
                 let _ = inner;\n\
                 match tag.as_str() {{\n\
                 {data}\n\
                 _ => ::std::result::Result::Err(serde::DeError::new(\"{name}: unknown variant\")),\n\
                 }}\n\
                 }},\n\
                 _ => ::std::result::Result::Err(serde::DeError::new(\"{name}: expected variant\")),\n\
                 }}\n}}\n}}",
                unit = if unit_arms.is_empty() {
                    String::new()
                } else {
                    format!("{},", unit_arms.join(",\n"))
                },
                data = if data_arms.is_empty() {
                    String::new()
                } else {
                    format!("{},", data_arms.join(",\n"))
                },
            )
        }
    }
}
