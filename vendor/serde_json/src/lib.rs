//! Vendored, std-only JSON text layer over the serde shim.
//!
//! Provides [`to_string`], [`to_string_pretty`], and [`from_str`] with
//! the shapes the shim's derives emit. Non-finite floats render as
//! `null` (matching upstream serde_json's lossy default).

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize, Value};

/// JSON serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.to_string())
    }
}

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Infallible in practice; the `Result` mirrors upstream's signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to two-space-indented JSON.
///
/// # Errors
///
/// Infallible in practice; the `Result` mirrors upstream's signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

/// Parses JSON text into any shim-deserializable type.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

/// Parses JSON text into a raw [`Value`] tree.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or trailing garbage.
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    let value = parse_at(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {pos}")));
    }
    Ok(value)
}

// -------------------------------------------------------------- writing

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{}` prints the shortest round-trip representation.
                out.push_str(&f.to_string());
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_json_string(out, s),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Obj(pairs) => {
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_json_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            if !pairs.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(pad);
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// -------------------------------------------------------------- parsing

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_at(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(bytes, pos);
    let Some(&b) = bytes.get(*pos) else {
        return Err(Error::new("unexpected end of input"));
    };
    match b {
        b'n' => parse_lit(bytes, pos, "null", Value::Null),
        b't' => parse_lit(bytes, pos, "true", Value::Bool(true)),
        b'f' => parse_lit(bytes, pos, "false", Value::Bool(false)),
        b'"' => parse_string(bytes, pos).map(Value::Str),
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_at(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(Error::new(format!("expected ',' or ']' at byte {pos}"))),
                }
            }
        }
        b'{' => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(Error::new(format!("expected ':' at byte {pos}")));
                }
                *pos += 1;
                let value = parse_at(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(pairs));
                    }
                    _ => return Err(Error::new(format!("expected ',' or '}}' at byte {pos}"))),
                }
            }
        }
        b'-' | b'0'..=b'9' => parse_number(bytes, pos),
        other => Err(Error::new(format!("unexpected byte {other:#x} at {pos}"))),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, Error> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(Error::new(format!("invalid literal at byte {pos}")))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| Error::new("invalid number encoding"))?;
    if float {
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number {text:?}")))
    } else {
        match text.parse::<i128>() {
            Ok(i) => Ok(Value::Int(i)),
            Err(_) => text
                .parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number {text:?}"))),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(Error::new(format!("expected string at byte {pos}")));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return Err(Error::new("unterminated string"));
        };
        match b {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                let Some(&esc) = bytes.get(*pos) else {
                    return Err(Error::new("unterminated escape"));
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .ok_or_else(|| Error::new("truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                        *pos += 4;
                        // Surrogate pairs are not emitted by our writer;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    }
                    other => return Err(Error::new(format!("unknown escape \\{}", other as char))),
                }
            }
            _ => {
                // Consume one UTF-8 scalar.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                let c = rest.chars().next().expect("nonempty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(parse_value("42").unwrap(), Value::Int(42));
        assert_eq!(parse_value("-1.5e3").unwrap(), Value::Float(-1500.0));
        assert_eq!(parse_value("true").unwrap(), Value::Bool(true));
        assert_eq!(parse_value("null").unwrap(), Value::Null);
        assert_eq!(parse_value("\"a\\nb\"").unwrap(), Value::Str("a\nb".into()));
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = Value::Obj(vec![
            ("xs".into(), Value::Arr(vec![Value::Int(1), Value::Float(0.5)])),
            ("name".into(), Value::Str("flow \"q\"".into())),
            ("none".into(), Value::Null),
        ]);
        let compact = to_string(&WrapperForTest(v.clone())).unwrap();
        let back = parse_value(&compact).unwrap();
        assert_eq!(back.as_arr().unwrap()[0], v);
    }

    // Serialize isn't implemented for Value itself; wrap for the test.
    struct WrapperForTest(Value);
    impl serde::Serialize for WrapperForTest {
        fn to_value(&self) -> Value {
            Value::Arr(vec![self.0.clone()])
        }
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = WrapperForTest(Value::Obj(vec![
            ("a".into(), Value::Int(1)),
            ("b".into(), Value::Arr(vec![])),
        ]));
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert!(parse_value(&pretty).is_ok());
    }

    #[test]
    fn trailing_garbage_is_an_error() {
        assert!(parse_value("1 2").is_err());
        assert!(parse_value("{\"a\":}").is_err());
    }

    #[test]
    fn float_precision_round_trips() {
        for f in [0.1f64, 1.0 / 3.0, 1e-300, 123456789.123456789] {
            let text = Value::Float(f);
            let mut s = String::new();
            super::write_value(&mut s, &text, None, 0);
            assert_eq!(s.parse::<f64>().unwrap(), f, "{s}");
        }
    }
}
