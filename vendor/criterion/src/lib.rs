//! Vendored, std-only subset of the `criterion` API.
//!
//! Implements the harness surface the workspace's benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] with
//! `bench_function` / `bench_with_input` / `finish`, [`BenchmarkId`],
//! and the `criterion_group!` / `criterion_main!` macros.
//!
//! Differences from upstream: a fixed-duration wall-clock measurement
//! reporting mean ns/iter only — no warm-up tuning, outlier analysis,
//! statistics, or HTML reports. Good enough to compare orders of
//! magnitude; not a precision instrument.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP: Duration = Duration::from_millis(30);
const MEASURE: Duration = Duration::from_millis(120);

/// Identifier combining a function name and a parameter, used by
/// [`BenchmarkGroup::bench_with_input`].
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Joins a function name and a parameter into `name/param`.
    #[must_use]
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { text: format!("{function_name}/{parameter}") }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    nanos_per_iter: f64,
}

impl Bencher {
    /// Runs `routine` repeatedly: a short warm-up, then a fixed-length
    /// timed window; records mean wall-clock ns per iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP {
            black_box(routine());
            warm_iters += 1;
        }

        // Batch iterations so Instant::now() overhead stays negligible
        // for sub-microsecond routines.
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let batch = ((1e-5 / per_iter.max(1e-12)) as u64).clamp(1, 1 << 20);

        let start = Instant::now();
        let mut iters: u64 = 0;
        while start.elapsed() < MEASURE {
            for _ in 0..batch {
                black_box(routine());
            }
            iters += batch;
        }
        self.nanos_per_iter = start.elapsed().as_nanos() as f64 / iters as f64;
    }
}

fn run_one(label: &str, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher { nanos_per_iter: f64::NAN };
    f(&mut bencher);
    if bencher.nanos_per_iter.is_nan() {
        println!("{label:<50} (no measurement)");
    } else {
        println!("{label:<50} {:>14.1} ns/iter", bencher.nanos_per_iter);
    }
}

/// Named set of related benchmarks; prefixes each label.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `f` under `group/id`.
    pub fn bench_function(&mut self, id: impl std::fmt::Display, f: impl FnOnce(&mut Bencher)) {
        run_one(&format!("{}/{id}", self.name), f);
    }

    /// Benchmarks `f` with a borrowed input under `group/id`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) {
        run_one(&format!("{}/{id}", self.name), |b| f(b, input));
    }

    /// Ends the group (a no-op; upstream flushes reports here).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Benchmarks `f` under `id`.
    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        run_one(&id.to_string(), f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), _criterion: self }
    }
}

/// Bundles benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_formats_as_name_slash_param() {
        assert_eq!(BenchmarkId::new("hk", 3).to_string(), "hk/3");
        assert_eq!(BenchmarkId::new("config", "svm").to_string(), "config/svm");
    }

    #[test]
    fn bencher_measures_a_cheap_routine() {
        let mut b = Bencher { nanos_per_iter: f64::NAN };
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            x
        });
        assert!(b.nanos_per_iter.is_finite() && b.nanos_per_iter > 0.0);
    }
}
