//! Vendored, std-only subset of the `proptest` API.
//!
//! Implements exactly the surface this workspace's property tests use:
//! the [`Strategy`] trait (`generate` + `prop_map`), `any::<T>()`,
//! range strategies, [`collection::vec`], tuple strategies, [`Just`],
//! `prop_oneof!`, the `proptest!` test macro, `prop_assert*!`, and
//! `prop_assume!`.
//!
//! Differences from upstream: **no shrinking** (a failing case panics
//! with the generated inputs unreduced) and deterministic seeding — the
//! RNG seed is derived from the test function's name, so runs are
//! reproducible without a persistence file.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SampleRange, SeedableRng};

/// How a single generated test case terminated, other than success.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
}

/// Per-test configuration; only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` generated inputs per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Builds the deterministic RNG for a named test.
///
/// Seeded by an FNV-1a hash of the test name so each test gets a
/// distinct but stable stream.
#[must_use]
pub fn test_rng(test_name: &str) -> StdRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(hash)
}

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draws one value from the type's full domain.
    fn arbitrary_value(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut StdRng) -> Self {
                rng.gen()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize, bool, f64, f32);

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary_value(rng: &mut StdRng) -> Self {
        std::array::from_fn(|_| T::arbitrary_value(rng))
    }
}

/// Strategy over a type's full domain; see [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// The canonical whole-domain strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T> Strategy for std::ops::Range<T>
where
    std::ops::Range<T>: SampleRange<T> + Clone,
{
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T> Strategy for std::ops::RangeInclusive<T>
where
    std::ops::RangeInclusive<T>: SampleRange<T> + Clone,
{
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_strategy_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_strategy_tuple!(A: 0);
impl_strategy_tuple!(A: 0, B: 1);
impl_strategy_tuple!(A: 0, B: 1, C: 2);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);

/// Uniform choice among boxed alternative strategies; built by
/// `prop_oneof!`.
pub struct Union<T> {
    alternatives: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Wraps a non-empty set of alternatives.
    ///
    /// # Panics
    ///
    /// Panics if `alternatives` is empty.
    #[must_use]
    pub fn new(alternatives: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!alternatives.is_empty(), "prop_oneof! needs at least one alternative");
        Union { alternatives }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        let idx = rng.gen_range(0..self.alternatives.len());
        self.alternatives[idx].generate(rng)
    }
}

/// Boxes a strategy for use in a [`Union`]; used by `prop_oneof!`.
#[must_use]
pub fn boxed_strategy<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

pub mod collection {
    //! Collection strategies.

    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Strategy for `Vec<S::Value>` with length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vectors of `element` values with length in `size`.
    #[must_use]
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

/// Uniform choice among alternatives, as a [`Union`] of boxed
/// strategies. Unlike upstream, all alternatives are equally weighted.
#[macro_export]
macro_rules! prop_oneof {
    ($($alternative:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed_strategy($alternative)),+])
    };
}

/// Asserts a condition inside a property test, reporting the failing
/// expression. Unlike upstream this panics immediately (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+)
    };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_ne!($left, $right, $($fmt)+)
    };
}

/// Skips the current generated case when its inputs don't satisfy a
/// precondition. Must appear directly in the test body (not inside a
/// nested closure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Declares property tests: each `#[test] fn name(pat in strategy, ..)`
/// runs its body against `cases` generated inputs (default 64, or the
/// count from an optional leading `#![proptest_config(..)]`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::test_rng(stringify!($name));
                for _case in 0..config.cases {
                    $(let $pat = $crate::Strategy::generate(&($strategy), &mut rng);)*
                    let mut run = move || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    };
                    match run() {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => continue,
                    }
                }
            }
        )*
    };
}

pub mod prelude {
    //! Single-import surface mirroring `proptest::prelude`.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_any_generate_in_domain() {
        let mut rng = super::test_rng("ranges_and_any");
        for _ in 0..200 {
            let x = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&x));
            let y = (0.0f64..=1.0).generate(&mut rng);
            assert!((0.0..=1.0).contains(&y));
            let z = any::<[u8; 4]>().generate(&mut rng);
            assert_eq!(z.len(), 4);
        }
    }

    #[test]
    fn vec_strategy_respects_length_range() {
        let mut rng = super::test_rng("vec_strategy");
        let s = super::collection::vec(any::<u8>(), 2..7);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..7).contains(&v.len()));
        }
    }

    #[test]
    fn oneof_covers_all_alternatives() {
        let mut rng = super::test_rng("oneof");
        let s = prop_oneof![Just(1u8), Just(2), Just(3)];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(s.generate(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn prop_map_transforms_values() {
        let mut rng = super::test_rng("prop_map");
        let s = (1u32..5).prop_map(|x| x * 10);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!(v % 10 == 0 && (10..50).contains(&v));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_and_asserts(x in 0u8..100, v in crate::collection::vec(any::<u16>(), 0..5)) {
            prop_assert!(x < 100);
            prop_assert!(v.len() < 5);
        }

        #[test]
        fn macro_supports_assume(x in 0u32..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }

    proptest! {
        #[test]
        fn macro_without_config_uses_default(seed in any::<u64>()) {
            let _ = seed;
        }
    }
}
