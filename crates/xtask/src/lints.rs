//! The project-specific lints and the file-scoping rules that decide
//! where each one applies.
//!
//! | id | check | scope |
//! |------|-------|-------|
//! | L001 | no `.unwrap()` / `.expect(` | `serve`/`core`/`entropy`/`ml`/`corpus` library code |
//! | L002 | no narrowing `as` casts (use `try_from`) | `serve/src/proto.rs` |
//! | L003 | no `_ =>` arm in a `match` over `Request`/`Response` | `serve/src/{proto,server}.rs` |
//! | L004 | no `println!` / `eprintln!` (metrics, not stdout) | `serve`/`core`/`entropy`/`ml`/`corpus` library code |
//! | L005 | every `AtomicU64` counter of `ServeMetrics` appears in `StatsSnapshot` (and every `ShardGauges` gauge in `ShardStats`) | `serve/src/metrics.rs` |
//! | L006 | no `.extend_from_slice(` onto per-flow buffers other than the bounded `staging` buffer | `core/src/pipeline.rs` |
//! | L007 | no `std::collections::HashMap` (SipHash) — use `fastmap::FxHashMap` or `CounterTable` | `entropy` library code |
//! | L008 | no panic site (panic!/unwrap/expect/`[]`/assert!) reachable from a declared hot-path root | whole workspace, interprocedural |
//! | L009 | no allocation (Vec/Box/String/format!/collect/…) reachable from a declared steady-state root | whole workspace, interprocedural |
//! | L010 | lock discipline: locks acquired in declared order, never re-acquired, never held across a channel send | `serve` library code + `core/src/concurrent.rs` |
//! | L011 | no bare `+`/`*`/`+=`/`*=` on lengths and counters — use `checked_`/`wrapping_`/`saturating_` | `serve/src/proto.rs`, `entropy/src/fastmap.rs` |
//!
//! L001–L007 are per-token checks implemented in this module. L008–L011
//! are interprocedural: [`crate::parser`] extracts per-function events,
//! [`crate::callgraph`] resolves calls across the workspace, and
//! [`crate::analyses`] walks reachability from roots declared in
//! `crates/xtask/roots.toml`.
//!
//! "Library code" excludes `src/bin/`, `tests/`, `benches/`, and
//! `#[cfg(test)]` / `#[test]` regions inside library files.
//!
//! A violation is suppressed by an inline comment on the same or the
//! preceding line:
//!
//! ```text
//! // lint: allow(L001) — <mandatory justification>
//! // lint: allow(L008, L009) — <one justification for several lints>
//! ```
//!
//! Interprocedural findings are reported at the *sink* (the panicking or
//! allocating line), so that is where the suppression goes. A
//! suppression without a justification (or naming an unknown lint) is
//! itself reported as `E000`.
//!
//! # `roots.toml` format
//!
//! The interprocedural lints are driven by `crates/xtask/roots.toml`, a
//! committed declaration of what "the hot path" is:
//!
//! ```text
//! [panic_roots]
//! fns = ["Iustitia::process_packet", "CompiledTree::try_predict"]  # L008 roots
//!
//! [alloc_roots]
//! fns = ["Iustitia::process_packet"]   # L009 roots; must cover pool_alloc.rs
//!
//! [lock_order]
//! order = ["inner", "results"]         # outermost lock first
//! guard_fns = ["lock_state:inner"]     # fns returning a guard for a lock
//! ```
//!
//! Root specs are `Type::method` (matched against the enclosing `impl`
//! type) or a bare free-function name. A spec that matches no workspace
//! function is itself a hard error — rename drift must not silently
//! disable an analysis. Lock names are the receiver identifiers the
//! guards are acquired from (`self.inner.lock()` acquires `inner`).

use std::fmt;
use std::path::Path;

use crate::lexer::{lex, Comment, Lexed, TokKind, Token};

/// Every lint this pass implements: `(id, one-line description)`.
pub const LINTS: &[(&str, &str)] = &[
    ("L001", "no .unwrap()/.expect( in serve/core/entropy/ml/corpus library code"),
    ("L002", "no narrowing `as` casts in serve/src/proto.rs; use try_from"),
    ("L003", "no `_ =>` wildcard arms in matches over Request/Response"),
    ("L004", "no println!/eprintln! in library code (bins exempt)"),
    ("L005", "every ServeMetrics counter must appear in StatsSnapshot"),
    ("L006", "no unbounded payload accumulation in core pipeline (staging only)"),
    ("L007", "no SipHash HashMap in entropy library code; use fastmap"),
    ("L008", "no panic site reachable from a declared hot-path root (roots.toml)"),
    ("L009", "no allocation reachable from a declared steady-state root (roots.toml)"),
    ("L010", "locks follow the declared order; never re-acquired or held across a send"),
    ("L011", "no bare +/* on lengths and counters in proto.rs/fastmap.rs; use checked_/wrapping_/saturating_"),
];

/// One diagnostic produced by the pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Lint id (`L001`..`L006`, or `E000` for a bad suppression).
    pub lint: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.lint, self.message)
    }
}

/// Lints one file. `rel_path` is the workspace-relative path (forward
/// slashes), which selects the applicable lints.
pub fn check_file(rel_path: &str, src: &str) -> Vec<Violation> {
    let in_scope = is_panic_free_scope(rel_path)
        || rel_path == "crates/serve/src/proto.rs"
        || rel_path == "crates/serve/src/server.rs"
        || rel_path == "crates/serve/src/metrics.rs";
    if !in_scope {
        return Vec::new();
    }
    let lexed = lex(src);
    let tests = test_line_ranges(&lexed.tokens);
    let (supp, mut violations) = parse_suppressions(rel_path, &lexed.comments);

    let mut raw: Vec<Violation> = Vec::new();
    if is_panic_free_scope(rel_path) {
        raw.extend(l001_no_unwrap(rel_path, &lexed, &tests));
        raw.extend(l004_no_println(rel_path, &lexed, &tests));
    }
    if rel_path == "crates/serve/src/proto.rs" {
        raw.extend(l002_no_narrowing_casts(rel_path, &lexed, &tests));
    }
    if rel_path == "crates/serve/src/proto.rs" || rel_path == "crates/serve/src/server.rs" {
        raw.extend(l003_no_protocol_wildcards(rel_path, &lexed, &tests));
    }
    if rel_path == "crates/serve/src/metrics.rs" {
        raw.extend(l005_metrics_drift(rel_path, &lexed));
    }
    if rel_path == "crates/core/src/pipeline.rs" {
        raw.extend(l006_no_payload_accumulation(rel_path, &lexed, &tests));
    }
    if rel_path.starts_with("crates/entropy/src/") && !rel_path.contains("/bin/") {
        raw.extend(l007_no_siphash_hashmap(rel_path, &lexed, &tests));
    }

    violations.extend(raw.into_iter().filter(|v| !supp.covers(v.lint, v.line)));
    violations.sort_by(|a, b| (a.line, a.lint).cmp(&(b.line, b.lint)));
    violations
}

/// Walks `root` and lints every in-scope file; diagnostics are sorted
/// by path and line.
pub fn run(root: &Path) -> std::io::Result<Vec<Violation>> {
    let mut violations = Vec::new();
    let crates_dir = root.join("crates");
    let mut files = Vec::new();
    for entry in std::fs::read_dir(&crates_dir)? {
        let src_dir = entry?.path().join("src");
        if src_dir.is_dir() {
            collect_rs_files(&src_dir, &mut files)?;
        }
    }
    files.sort();
    for file in files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace(std::path::MAIN_SEPARATOR, "/");
        let src = std::fs::read_to_string(&file)?;
        violations.extend(check_file(&rel, &src));
    }
    Ok(violations)
}

pub(crate) fn collect_rs_files(
    dir: &Path,
    out: &mut Vec<std::path::PathBuf>,
) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The crates whose library code must be panic-free on the serving path
/// (corpus rides along: its generators feed training pipelines that must
/// surface `TrainError` instead of dying mid-run).
fn is_panic_free_scope(rel_path: &str) -> bool {
    let in_crate = [
        "crates/serve/src/",
        "crates/core/src/",
        "crates/entropy/src/",
        "crates/ml/src/",
        "crates/corpus/src/",
    ]
    .iter()
    .any(|p| rel_path.starts_with(p));
    in_crate && !rel_path.contains("/bin/")
}

// -------------------------------------------------------- suppressions

pub(crate) struct Suppressions {
    /// `(lint id, line the suppression is written on)`.
    entries: Vec<(String, u32)>,
}

impl Suppressions {
    /// A suppression covers its own line and the next one, so it can sit
    /// either inline after the code or on the line above it.
    pub(crate) fn covers(&self, lint: &str, line: u32) -> bool {
        self.entries.iter().any(|(id, l)| id == lint && (*l == line || l + 1 == line))
    }
}

/// Extracts `// lint: allow(Lnnn) — reason` directives. Several lints
/// may share one directive and justification: `allow(L008, L009)`.
/// Directives with no justification, or naming an unknown lint, become
/// `E000`.
pub(crate) fn parse_suppressions(
    rel_path: &str,
    comments: &[Comment],
) -> (Suppressions, Vec<Violation>) {
    const MARKER: &str = "lint: allow(";
    let mut entries = Vec::new();
    let mut bad = Vec::new();
    for comment in comments {
        let Some(start) = comment.text.find(MARKER) else { continue };
        let after = &comment.text[start + MARKER.len()..];
        let Some(close) = after.find(')') else {
            bad.push(Violation {
                file: rel_path.to_string(),
                line: comment.line,
                lint: "E000",
                message: "unterminated lint suppression: missing `)`".to_string(),
            });
            continue;
        };
        let ids: Vec<String> = after[..close].split(',').map(|id| id.trim().to_string()).collect();
        let unknown: Vec<&String> =
            ids.iter().filter(|id| !LINTS.iter().any(|(known, _)| known == id)).collect();
        if let Some(id) = unknown.first() {
            bad.push(Violation {
                file: rel_path.to_string(),
                line: comment.line,
                lint: "E000",
                message: format!("suppression names unknown lint `{id}`"),
            });
            continue;
        }
        let reason = after[close + 1..]
            .trim_start_matches(|c: char| c.is_whitespace() || matches!(c, '—' | '–' | '-' | ':'));
        if reason.trim().is_empty() {
            let id = ids.join(", ");
            bad.push(Violation {
                file: rel_path.to_string(),
                line: comment.line,
                lint: "E000",
                message: format!(
                    "suppression of {id} has no justification; write `// lint: allow({id}) — <reason>`"
                ),
            });
            continue;
        }
        entries.extend(ids.into_iter().map(|id| (id, comment.line)));
    }
    (Suppressions { entries }, bad)
}

// -------------------------------------------------------- test regions

/// Line ranges covered by `#[cfg(test)]` or `#[test]` items (attribute
/// line through the closing brace of the annotated item).
pub(crate) fn test_line_ranges(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let cfg_test = matches(tokens, i, &["#", "[", "cfg", "(", "test", ")", "]"]);
        let plain_test = matches(tokens, i, &["#", "[", "test", "]"]);
        if !(cfg_test || plain_test) {
            i += 1;
            continue;
        }
        let start_line = tokens[i].line;
        // Find the item's opening brace, then its matching close.
        let mut j = i + if cfg_test { 7 } else { 4 };
        let mut depth = 0i32;
        while j < tokens.len() && !(depth == 0 && tokens[j].is_punct("{")) {
            depth += nesting_delta(&tokens[j]);
            j += 1;
        }
        let Some(close) = matching_brace(tokens, j) else { break };
        ranges.push((start_line, tokens[close].line));
        i = close + 1;
    }
    ranges
}

pub(crate) fn in_test(ranges: &[(u32, u32)], line: u32) -> bool {
    ranges.iter().any(|&(lo, hi)| (lo..=hi).contains(&line))
}

pub(crate) fn matches(tokens: &[Token], at: usize, texts: &[&str]) -> bool {
    texts.iter().enumerate().all(|(k, text)| tokens.get(at + k).is_some_and(|t| t.text == *text))
}

pub(crate) fn nesting_delta(token: &Token) -> i32 {
    if token.kind != TokKind::Punct {
        return 0;
    }
    match token.text.as_str() {
        "(" | "[" | "{" => 1,
        ")" | "]" | "}" => -1,
        _ => 0,
    }
}

/// Index of the `}` matching the `{` at `open` (which must be a `{`).
pub(crate) fn matching_brace(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (k, token) in tokens.iter().enumerate().skip(open) {
        depth += nesting_delta(token);
        if depth == 0 {
            return Some(k);
        }
    }
    None
}

// ---------------------------------------------------------------- L001

fn l001_no_unwrap(rel_path: &str, lexed: &Lexed, tests: &[(u32, u32)]) -> Vec<Violation> {
    let mut out = Vec::new();
    for w in lexed.tokens.windows(3) {
        let method = &w[1];
        if w[0].is_punct(".")
            && (method.is_ident("unwrap") || method.is_ident("expect"))
            && w[2].is_punct("(")
            && !in_test(tests, method.line)
        {
            out.push(Violation {
                file: rel_path.to_string(),
                line: method.line,
                lint: "L001",
                message: format!(
                    ".{}() can panic on the serving path; propagate a Result or recover",
                    method.text
                ),
            });
        }
    }
    out
}

// ---------------------------------------------------------------- L002

/// Cast targets that can silently truncate wire-relevant integers.
const NARROW_TARGETS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

fn l002_no_narrowing_casts(rel_path: &str, lexed: &Lexed, tests: &[(u32, u32)]) -> Vec<Violation> {
    let mut out = Vec::new();
    for w in lexed.tokens.windows(2) {
        if w[0].is_ident("as")
            && w[1].kind == TokKind::Ident
            && NARROW_TARGETS.contains(&w[1].text.as_str())
            && !in_test(tests, w[0].line)
        {
            out.push(Violation {
                file: rel_path.to_string(),
                line: w[0].line,
                lint: "L002",
                message: format!(
                    "`as {}` can truncate on the encode/decode path; use `{}::try_from`",
                    w[1].text, w[1].text
                ),
            });
        }
    }
    out
}

// ---------------------------------------------------------------- L003

fn l003_no_protocol_wildcards(
    rel_path: &str,
    lexed: &Lexed,
    tests: &[(u32, u32)],
) -> Vec<Violation> {
    let tokens = &lexed.tokens;
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if !tokens[i].is_ident("match") || in_test(tests, tokens[i].line) {
            continue;
        }
        // Opening brace of the match body: first `{` at nesting 0 after
        // the scrutinee (braces inside the scrutinee only occur nested
        // in parens/brackets, e.g. closures).
        let mut j = i + 1;
        let mut depth = 0i32;
        while j < tokens.len() && !(depth == 0 && tokens[j].is_punct("{")) {
            depth += nesting_delta(&tokens[j]);
            j += 1;
        }
        let Some(close) = matching_brace(tokens, j) else { continue };
        let mut protocol_match = false;
        let mut wildcard_lines = Vec::new();
        let mut k = j + 1;
        while k < close {
            // Pattern: tokens until `=>` at arm-relative nesting 0.
            let pat_start = k;
            let mut depth = 0i32;
            while k < close && !(depth == 0 && tokens[k].is_punct("=>")) {
                depth += nesting_delta(&tokens[k]);
                k += 1;
            }
            if k >= close {
                break;
            }
            let pattern = &tokens[pat_start..k];
            if pattern.windows(2).any(|w| {
                (w[0].is_ident("Request") || w[0].is_ident("Response")) && w[1].is_punct("::")
            }) {
                protocol_match = true;
            }
            let is_wildcard = pattern.first().is_some_and(|t| t.is_ident("_"))
                && (pattern.len() == 1 || pattern[1].is_ident("if"));
            if is_wildcard {
                wildcard_lines.push(pattern[0].line);
            }
            k += 1; // consume `=>`
                    // Arm body: a brace block, or an expression up to `,`.
            if k < close && tokens[k].is_punct("{") {
                let Some(body_close) = matching_brace(tokens, k) else { break };
                k = body_close + 1;
                if k < close && tokens[k].is_punct(",") {
                    k += 1;
                }
            } else {
                let mut depth = 0i32;
                while k < close && !(depth == 0 && tokens[k].is_punct(",")) {
                    depth += nesting_delta(&tokens[k]);
                    k += 1;
                }
                k += 1; // consume `,` (or step past `close`)
            }
        }
        if protocol_match {
            for line in wildcard_lines {
                out.push(Violation {
                    file: rel_path.to_string(),
                    line,
                    lint: "L003",
                    message: "wildcard `_ =>` arm in a match over Request/Response silently \
                              drops new protocol variants; list every variant"
                        .to_string(),
                });
            }
        }
    }
    out
}

// ---------------------------------------------------------------- L004

fn l004_no_println(rel_path: &str, lexed: &Lexed, tests: &[(u32, u32)]) -> Vec<Violation> {
    let mut out = Vec::new();
    for w in lexed.tokens.windows(2) {
        let mac = &w[0];
        if (mac.is_ident("println") || mac.is_ident("eprintln"))
            && w[1].is_punct("!")
            && !in_test(tests, mac.line)
        {
            out.push(Violation {
                file: rel_path.to_string(),
                line: mac.line,
                lint: "L004",
                message: format!(
                    "{}! in library code; report through metrics (bins are exempt)",
                    mac.text
                ),
            });
        }
    }
    out
}

// ---------------------------------------------------------------- L005

fn l005_metrics_drift(rel_path: &str, lexed: &Lexed) -> Vec<Violation> {
    let counters = struct_fields(&lexed.tokens, "ServeMetrics");
    let snapshot = struct_fields(&lexed.tokens, "StatsSnapshot");
    let mut out = Vec::new();
    if counters.is_empty() || snapshot.is_empty() {
        // Renaming either struct without updating the lint would
        // silently disable it; fail loudly instead.
        out.push(Violation {
            file: rel_path.to_string(),
            line: 1,
            lint: "L005",
            message: "could not locate ServeMetrics/StatsSnapshot struct fields".to_string(),
        });
        return out;
    }
    for field in &counters {
        if !field.type_text.contains("AtomicU64") && !field.type_text.contains("LatencyHistogram") {
            continue;
        }
        if !snapshot.iter().any(|s| s.name == field.name) {
            out.push(Violation {
                file: rel_path.to_string(),
                line: field.line,
                lint: "L005",
                message: format!(
                    "metric `{}` is declared in ServeMetrics but missing from StatsSnapshot; \
                     metric drift",
                    field.name
                ),
            });
        }
    }
    // The per-shard gauge pair drifts the same way the top-level pair
    // does: either both structs exist with mirrored fields, or neither.
    let gauges = struct_fields(&lexed.tokens, "ShardGauges");
    let shard_stats = struct_fields(&lexed.tokens, "ShardStats");
    match (gauges.is_empty(), shard_stats.is_empty()) {
        (true, true) => {}
        (false, false) => {
            for field in &gauges {
                if !field.type_text.contains("AtomicU64") {
                    continue;
                }
                if !shard_stats.iter().any(|s| s.name == field.name) {
                    out.push(Violation {
                        file: rel_path.to_string(),
                        line: field.line,
                        lint: "L005",
                        message: format!(
                            "gauge `{}` is declared in ShardGauges but missing from ShardStats; \
                             metric drift",
                            field.name
                        ),
                    });
                }
            }
        }
        _ => out.push(Violation {
            file: rel_path.to_string(),
            line: 1,
            lint: "L005",
            message: "ShardGauges and ShardStats must be declared together (one is missing)"
                .to_string(),
        }),
    }
    // The anytime probe's observability is part of the stats wire
    // contract: the mirrored-field checks above only catch drift
    // between fields that still exist, so the two early-exit metrics
    // are additionally pinned by name — deleting or renaming either
    // side fails here instead of silently dropping the telemetry.
    for (name, pairs) in [
        ("bytes_at_verdict", [("ServeMetrics", &counters), ("StatsSnapshot", &snapshot)]),
        ("early_exit_verdicts", [("ShardGauges", &gauges), ("ShardStats", &shard_stats)]),
    ] {
        for (struct_name, fields) in pairs {
            if !fields.is_empty() && !fields.iter().any(|f| f.name == name) {
                out.push(Violation {
                    file: rel_path.to_string(),
                    line: 1,
                    lint: "L005",
                    message: format!(
                        "anytime early-exit metric `{name}` must stay declared in \
                         {struct_name}; it is pinned by the stats wire contract"
                    ),
                });
            }
        }
    }
    out
}

// ---------------------------------------------------------------- L006

fn l006_no_payload_accumulation(
    rel_path: &str,
    lexed: &Lexed,
    tests: &[(u32, u32)],
) -> Vec<Violation> {
    let mut out = Vec::new();
    for w in lexed.tokens.windows(4) {
        let receiver = &w[0];
        if receiver.kind == TokKind::Ident
            && w[1].is_punct(".")
            && w[2].is_ident("extend_from_slice")
            && w[3].is_punct("(")
            && !receiver.is_ident("staging")
            && !in_test(tests, w[2].line)
        {
            out.push(Violation {
                file: rel_path.to_string(),
                line: w[2].line,
                lint: "L006",
                message: format!(
                    "`{}.extend_from_slice(` accumulates payload per flow; feed bytes to the \
                     streaming feature state instead (only the bounded `staging` buffer may \
                     hold raw payload)",
                    receiver.text
                ),
            });
        }
    }
    out
}

// ---------------------------------------------------------------- L007

/// The entropy kernel is hash-bound: every gram touch is a map probe,
/// so `std`'s DoS-hardened SipHash dominates the profile. Library code
/// must use the vendored `fastmap` types (`FxHashMap`, `CounterTable`);
/// the bare `HashMap` ident is the tell. Tests may model against `std`.
fn l007_no_siphash_hashmap(rel_path: &str, lexed: &Lexed, tests: &[(u32, u32)]) -> Vec<Violation> {
    let mut out = Vec::new();
    for token in &lexed.tokens {
        if token.is_ident("HashMap") && !in_test(tests, token.line) {
            out.push(Violation {
                file: rel_path.to_string(),
                line: token.line,
                lint: "L007",
                message: "std::collections::HashMap pays SipHash per probe on the gram hot \
                          path; use fastmap::FxHashMap or fastmap::CounterTable"
                    .to_string(),
            });
        }
    }
    out
}

struct Field {
    name: String,
    type_text: String,
    line: u32,
}

/// Parses `struct <name> { ... }` field names and (flattened) types.
fn struct_fields(tokens: &[Token], name: &str) -> Vec<Field> {
    let mut fields = Vec::new();
    let Some(start) =
        tokens.windows(2).position(|w| w[0].is_ident("struct") && w[1].is_ident(name))
    else {
        return fields;
    };
    let mut i = start + 2;
    while i < tokens.len() && !tokens[i].is_punct("{") {
        if tokens[i].is_punct(";") {
            return fields; // unit or tuple struct
        }
        i += 1;
    }
    let Some(close) = matching_brace(tokens, i) else { return fields };
    i += 1;
    while i < close {
        // Skip attributes.
        if tokens[i].is_punct("#") && tokens.get(i + 1).is_some_and(|t| t.is_punct("[")) {
            let mut depth = 0i32;
            i += 1;
            while i < close {
                depth += nesting_delta(&tokens[i]);
                i += 1;
                if depth == 0 {
                    break;
                }
            }
            continue;
        }
        // Skip visibility.
        if tokens[i].is_ident("pub") {
            i += 1;
            if i < close && tokens[i].is_punct("(") {
                let mut depth = 0i32;
                while i < close {
                    depth += nesting_delta(&tokens[i]);
                    i += 1;
                    if depth == 0 {
                        break;
                    }
                }
            }
            continue;
        }
        // Field name.
        if tokens[i].kind != TokKind::Ident {
            i += 1;
            continue;
        }
        let field_name = tokens[i].text.clone();
        let line = tokens[i].line;
        i += 1;
        if i >= close || !tokens[i].is_punct(":") {
            continue;
        }
        i += 1;
        let mut type_text = String::new();
        let mut depth = 0i32;
        while i < close && !(depth == 0 && tokens[i].is_punct(",")) {
            depth += nesting_delta(&tokens[i]);
            type_text.push_str(&tokens[i].text);
            i += 1;
        }
        i += 1; // consume `,`
        fields.push(Field { name: field_name, type_text, line });
    }
    fields
}

#[cfg(test)]
mod tests {
    use super::*;

    const SERVE_LIB: &str = "crates/serve/src/server.rs";
    const PROTO: &str = "crates/serve/src/proto.rs";
    const METRICS: &str = "crates/serve/src/metrics.rs";

    fn lints_of(violations: &[Violation]) -> Vec<&'static str> {
        violations.iter().map(|v| v.lint).collect()
    }

    #[test]
    fn l001_flags_unwrap_and_expect_in_lib_code() {
        let src = "fn f() { x.unwrap(); y.expect(\"msg\"); }";
        let v = check_file(SERVE_LIB, src);
        assert_eq!(lints_of(&v), vec!["L001", "L001"]);
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn l001_ignores_unwrap_or_else_and_test_code() {
        let src = r#"
fn f() { x.unwrap_or_else(g); y.unwrap_or(3); }
#[cfg(test)]
mod tests {
    #[test]
    fn t() { x.unwrap(); }
}
"#;
        assert!(check_file(SERVE_LIB, src).is_empty());
    }

    #[test]
    fn l001_out_of_scope_paths_are_exempt() {
        let src = "fn f() { x.unwrap(); }";
        assert!(check_file("crates/serve/src/bin/iustitia.rs", src).is_empty());
        assert!(check_file("crates/bench/src/lib.rs", src).is_empty());
    }

    #[test]
    fn l001_covers_ml_lib_code() {
        let src = "fn f() { x.unwrap(); }";
        assert_eq!(check_file("crates/ml/src/svm.rs", src).len(), 1);
        assert_eq!(check_file("crates/ml/src/compiled.rs", src).len(), 1);
    }

    #[test]
    fn l001_and_l004_cover_corpus_lib_code() {
        // The corpus generators feed training pipelines that propagate
        // TrainError; a panic or stray println in a generator would
        // bypass both.
        let src = "fn f() { x.unwrap(); println!(\"debug\"); }";
        let v = check_file("crates/corpus/src/compressed.rs", src);
        assert_eq!(lints_of(&v), vec!["L001", "L004"]);
        assert_eq!(check_file("crates/corpus/src/lib.rs", src).len(), 2);
    }

    #[test]
    fn l007_covers_randomness_battery() {
        let src = "fn f() { let m: HashMap<u8, u64> = HashMap::new(); }";
        let v = check_file("crates/entropy/src/randomness.rs", src);
        assert_eq!(lints_of(&v), vec!["L007", "L007"]);
    }

    #[test]
    fn l001_suppression_with_reason_is_honored() {
        let inline = "fn f() { x.unwrap(); } // lint: allow(L001) — invariant: x set above\n";
        assert!(check_file(SERVE_LIB, inline).is_empty());
        let preceding =
            "// lint: allow(L001) — capacity asserted in new()\nfn f() { x.unwrap(); }\n";
        assert!(check_file(SERVE_LIB, preceding).is_empty());
    }

    #[test]
    fn suppression_without_reason_is_an_error() {
        let src = "fn f() { x.unwrap(); } // lint: allow(L001)\n";
        let v = check_file(SERVE_LIB, src);
        assert_eq!(lints_of(&v), vec!["E000", "L001"], "bad suppression reported AND lint kept");
    }

    #[test]
    fn suppression_of_unknown_lint_is_an_error() {
        let src = "fn f() {} // lint: allow(L999) — because\n";
        assert_eq!(lints_of(&check_file(SERVE_LIB, src)), vec!["E000"]);
    }

    #[test]
    fn suppression_only_covers_adjacent_line() {
        let src = "// lint: allow(L001) — only for the next line\nfn f() { a.unwrap(); }\nfn g() { b.unwrap(); }\n";
        let v = check_file(SERVE_LIB, src);
        assert_eq!(lints_of(&v), vec!["L001"]);
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn l002_flags_narrowing_casts_in_proto_only() {
        let src = "fn f(n: usize) -> u32 { n as u32 }";
        let v = check_file(PROTO, src);
        assert_eq!(lints_of(&v), vec!["L002"]);
        assert!(v[0].message.contains("try_from"));
        assert!(check_file(SERVE_LIB, src).is_empty(), "L002 scoped to proto.rs");
    }

    #[test]
    fn l002_allows_widening_casts() {
        let src = "fn f(n: u8) -> usize { let a = n as usize; let b = n as u64; a + b as usize }";
        assert!(check_file(PROTO, src).is_empty());
    }

    #[test]
    fn l003_flags_wildcard_over_protocol_enums() {
        let src = r#"
fn f(r: Request) {
    match r {
        Request::Stats => serve_stats(),
        _ => {}
    }
}
"#;
        let v = check_file(PROTO, src);
        assert_eq!(lints_of(&v), vec!["L003"]);
        assert_eq!(v[0].line, 5);
    }

    #[test]
    fn l003_ignores_wildcards_over_other_types() {
        let src = r#"
fn f(v: Verdict) {
    match v {
        Verdict::Hit(label) => on_hit(label),
        _ => {}
    }
}
"#;
        assert!(check_file(SERVE_LIB, src).is_empty());
    }

    #[test]
    fn l003_exhaustive_protocol_match_passes() {
        let src = r#"
fn f(r: Request) -> u8 {
    match r {
        Request::Stats => 1,
        Request::Drain if now() > 0 => 2,
        Request::SubmitPacket(p) => route(p),
        Request::ClassifyBuffer(b) => classify(b),
        Request::Drain => 3,
    }
}
"#;
        assert!(check_file(SERVE_LIB, src).is_empty());
    }

    #[test]
    fn l003_guarded_wildcard_is_still_a_wildcard() {
        let src = "fn f(r: Response) -> u8 { match r { Response::Busy(t) => 1, _ if cheap() => 2, _ => 3 } }";
        let v = check_file(SERVE_LIB, src);
        assert_eq!(lints_of(&v), vec!["L003", "L003"]);
    }

    #[test]
    fn l003_binding_patterns_are_not_wildcards() {
        let src = "fn f(r: Request) { match r { Request::Stats => a(), other => keep(other), } }";
        assert!(check_file(SERVE_LIB, src).is_empty());
    }

    #[test]
    fn l004_flags_println_in_lib_not_bins() {
        let src = "fn f() { println!(\"x\"); eprintln!(\"y\"); }";
        let v = check_file("crates/core/src/pipeline.rs", src);
        assert_eq!(lints_of(&v), vec!["L004", "L004"]);
        assert!(check_file("crates/serve/src/bin/iustitia.rs", src).is_empty());
    }

    #[test]
    fn l005_catches_counter_missing_from_snapshot() {
        let src = r#"
pub struct ServeMetrics {
    pub packets: AtomicU64,
    pub orphan_counter: AtomicU64,
    pub stages: [LatencyHistogram; 4],
    pub bytes_at_verdict: LatencyHistogram,
}
pub struct StatsSnapshot {
    pub packets: u64,
    pub stages: [HistogramSnapshot; 4],
    pub bytes_at_verdict: HistogramSnapshot,
}
"#;
        let v = check_file(METRICS, src);
        assert_eq!(lints_of(&v), vec!["L005"]);
        assert!(v[0].message.contains("orphan_counter"));
        assert_eq!(v[0].line, 4);
    }

    #[test]
    fn l005_passes_when_all_counters_snapshotted() {
        let src = r#"
pub struct ServeMetrics {
    /// Doc.
    pub packets: AtomicU64,
    pub hits: AtomicU64,
    pub bytes_at_verdict: LatencyHistogram,
}
pub struct StatsSnapshot {
    pub packets: u64,
    pub hits: u64,
    pub bytes_at_verdict: HistogramSnapshot,
}
"#;
        assert!(check_file(METRICS, src).is_empty());
    }

    #[test]
    fn l005_fails_loudly_if_structs_vanish() {
        let v = check_file(METRICS, "pub struct SomethingElse;");
        assert_eq!(lints_of(&v), vec!["L005"]);
    }

    #[test]
    fn l005_shard_gauges_must_mirror_shard_stats() {
        let src = r#"
pub struct ServeMetrics { pub packets: AtomicU64, pub bytes_at_verdict: LatencyHistogram }
pub struct StatsSnapshot { pub packets: u64, pub bytes_at_verdict: HistogramSnapshot }
pub struct ShardGauges {
    pub pending_flows: AtomicU64,
    pub orphan_gauge: AtomicU64,
    pub early_exit_verdicts: AtomicU64,
}
pub struct ShardStats {
    pub pending_flows: u64,
    pub early_exit_verdicts: u64,
}
"#;
        let v = check_file(METRICS, src);
        assert_eq!(lints_of(&v), vec!["L005"]);
        assert!(v[0].message.contains("orphan_gauge"));
    }

    #[test]
    fn l005_lone_shard_struct_is_flagged() {
        let src = r#"
pub struct ServeMetrics { pub packets: AtomicU64, pub bytes_at_verdict: LatencyHistogram }
pub struct StatsSnapshot { pub packets: u64, pub bytes_at_verdict: HistogramSnapshot }
pub struct ShardGauges { pub pending_flows: AtomicU64, pub early_exit_verdicts: AtomicU64 }
"#;
        let v = check_file(METRICS, src);
        assert_eq!(lints_of(&v), vec!["L005"]);
        assert!(v[0].message.contains("declared together"));
    }

    #[test]
    fn l005_absent_shard_pair_is_fine() {
        let src = r#"
pub struct ServeMetrics { pub packets: AtomicU64, pub bytes_at_verdict: LatencyHistogram }
pub struct StatsSnapshot { pub packets: u64, pub bytes_at_verdict: HistogramSnapshot }
"#;
        assert!(check_file(METRICS, src).is_empty());
    }

    #[test]
    fn l006_flags_payload_accumulation_outside_staging() {
        let src = "fn f(buf: &mut Flow, p: &[u8]) { buf.data.extend_from_slice(p); }";
        let v = check_file("crates/core/src/pipeline.rs", src);
        assert_eq!(lints_of(&v), vec!["L006"]);
        assert!(v[0].message.contains("data.extend_from_slice"));
        assert!(check_file("crates/core/src/features.rs", src).is_empty(), "L006 scoped");
    }

    #[test]
    fn l006_allows_staging_buffer_and_test_code() {
        let src = r#"
fn f(staging: &mut Vec<u8>, p: &[u8]) { staging.extend_from_slice(p); }
#[cfg(test)]
mod tests {
    #[test]
    fn t() { payload.extend_from_slice(&extra); }
}
"#;
        assert!(check_file("crates/core/src/pipeline.rs", src).is_empty());
    }

    #[test]
    fn l005_covers_pool_gauges() {
        // The flow-state pool gauges drift like any other gauge pair.
        let src = r#"
pub struct ServeMetrics { pub packets: AtomicU64, pub bytes_at_verdict: LatencyHistogram }
pub struct StatsSnapshot { pub packets: u64, pub bytes_at_verdict: HistogramSnapshot }
pub struct ShardGauges {
    pub pending_flows: AtomicU64,
    pub state_pool_hits: AtomicU64,
    pub state_pool_size: AtomicU64,
    pub early_exit_verdicts: AtomicU64,
}
pub struct ShardStats {
    pub pending_flows: u64,
    pub state_pool_hits: u64,
    pub early_exit_verdicts: u64,
}
"#;
        let v = check_file(METRICS, src);
        assert_eq!(lints_of(&v), vec!["L005"]);
        assert!(v[0].message.contains("state_pool_size"));
    }

    #[test]
    fn l005_pins_anytime_early_exit_metrics() {
        // Removing both sides of an anytime metric would pass the
        // mirror checks; the pin-by-name catches it.
        let src = r#"
pub struct ServeMetrics { pub packets: AtomicU64 }
pub struct StatsSnapshot { pub packets: u64 }
pub struct ShardGauges { pub pending_flows: AtomicU64 }
pub struct ShardStats { pub pending_flows: u64 }
"#;
        let v = check_file(METRICS, src);
        assert_eq!(lints_of(&v), vec!["L005", "L005", "L005", "L005"]);
        assert!(v[0].message.contains("bytes_at_verdict"));
        assert!(v[2].message.contains("early_exit_verdicts"));
    }

    #[test]
    fn l005_mirrors_latency_histograms_like_counters() {
        let src = r#"
pub struct ServeMetrics {
    pub packets: AtomicU64,
    pub bytes_at_verdict: LatencyHistogram,
}
pub struct StatsSnapshot {
    pub packets: u64,
}
"#;
        let v = check_file(METRICS, src);
        assert_eq!(lints_of(&v), vec!["L005", "L005"]);
        assert!(v.iter().all(|v| v.message.contains("bytes_at_verdict")));
        assert!(v.iter().any(|v| v.message.contains("missing from StatsSnapshot")));
    }

    #[test]
    fn l007_flags_siphash_hashmap_in_entropy_lib() {
        let src = "use std::collections::HashMap;\nfn f() { let m: HashMap<u128, u64> = HashMap::new(); }\n";
        let v = check_file("crates/entropy/src/estimate.rs", src);
        assert_eq!(lints_of(&v), vec!["L007", "L007", "L007"]);
        assert!(v[0].message.contains("fastmap"));
        assert!(check_file("crates/core/src/pipeline.rs", src).is_empty(), "L007 entropy-only");
    }

    #[test]
    fn l007_allows_tests_fx_alias_and_suppressed_lines() {
        let src = r#"
// lint: allow(L007) — this alias IS the sanctioned fast-hashed HashMap
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;
fn f() { let m: FxHashMap<u128, u64> = FxHashMap::default(); }
#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    #[test]
    fn t() { let model: HashMap<u128, u64> = HashMap::new(); }
}
"#;
        assert!(check_file("crates/entropy/src/fastmap.rs", src).is_empty());
    }

    #[test]
    fn violations_display_as_file_line_diagnostics() {
        let v = check_file(SERVE_LIB, "fn f() { x.unwrap(); }");
        assert_eq!(
            v[0].to_string(),
            "crates/serve/src/server.rs:1: [L001] .unwrap() can panic on the serving path; \
             propagate a Result or recover"
        );
    }

    #[test]
    fn strings_and_comments_never_trigger() {
        let src = r##"
fn f() {
    let s = "please .unwrap() me";
    let r = r#"println!("hi") as u8"#;
    // .expect("just a comment") and _ => also here
}
"##;
        assert!(check_file(PROTO, src).is_empty());
    }

    #[test]
    fn whole_workspace_is_lint_clean() {
        // The acceptance criterion: the pass exits clean on this repo.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).parent().unwrap().parent().unwrap();
        let violations = run(root).expect("walk workspace");
        assert!(
            violations.is_empty(),
            "workspace has lint violations:\n{}",
            violations.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
        );
    }
}
