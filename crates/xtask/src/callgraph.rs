//! Workspace call graph: a function index plus name resolution tuned
//! to this project's idioms.
//!
//! Resolution is deliberately *name-based and over-approximate* — the
//! analyzer has no type information, so:
//!
//! * `.method(..)` resolves to **every** non-test workspace `fn` of
//!   that name that takes `self` (all candidate receivers are kept);
//! * `bare(..)` resolves to every free `fn` of that name;
//! * `Self::f(..)` uses the enclosing `impl` type;
//! * `Type::f(..)` (uppercase head) uses the `(owner, name)` index;
//! * `iustitia_*::path::f(..)` / `crate::path::f(..)` resolve by final
//!   segment; `std::`/`core::`/`alloc::` paths never resolve and fall
//!   through to the effect knowledge base in [`crate::analyses`].
//!
//! Anything that resolves to zero workspace functions is an **unknown
//! callee**: the analyses consult their std-surface knowledge base and
//! otherwise assume the worst (may panic, may allocate). Test functions
//! (`#[test]` / `#[cfg(test)]`) are excluded from the index so test
//! helpers never pollute hot-path resolution.

use std::collections::{HashMap, HashSet};

use crate::parser::{Callee, Event, FnItem};

/// Method names that belong to std trait protocols (`Iterator::next`,
/// `Display::fmt`, operator traits, …). Calls to these are
/// overwhelmingly std-type protocol dispatch, so they never resolve to
/// workspace functions by bare name — `.next()` on a `Lines` iterator
/// in the pipeline must not resolve to the netsim trace generator's
/// `Iterator` impl. Their effects come from the knowledge base instead.
/// Operator traits (`Add`, `Index`, …) are *not* listed: they dispatch
/// through syntax, and their names collide with real inherent methods
/// (`FileClass::index`).
const STD_TRAIT_METHODS: &[&str] = &[
    "next",
    "next_back",
    "fmt",
    "clone",
    "clone_from",
    "default",
    "eq",
    "ne",
    "cmp",
    "partial_cmp",
    "hash",
    "drop",
    "deref",
    "deref_mut",
    "from_str",
];

/// The indexed workspace call graph.
pub struct CallGraph {
    /// All parsed items (test items included, but never indexed).
    pub fns: Vec<FnItem>,
    by_name: HashMap<String, Vec<usize>>,
    by_owner_name: HashMap<(String, String), Vec<usize>>,
    /// Transitive workspace dependencies per crate (reflexive). Empty =
    /// no filtering (unit tests over single files).
    deps: HashMap<String, HashSet<String>>,
}

impl CallGraph {
    /// Builds the index over `items`.
    pub fn build(items: Vec<FnItem>) -> Self {
        let mut by_name: HashMap<String, Vec<usize>> = HashMap::new();
        let mut by_owner_name: HashMap<(String, String), Vec<usize>> = HashMap::new();
        for (i, item) in items.iter().enumerate() {
            if item.is_test {
                continue;
            }
            by_name.entry(item.name.clone()).or_default().push(i);
            if let Some(owner) = &item.owner {
                by_owner_name.entry((owner.clone(), item.name.clone())).or_default().push(i);
            }
        }
        CallGraph { fns: items, by_name, by_owner_name, deps: HashMap::new() }
    }

    /// Installs the crate-dependency map: a call in crate `k` may only
    /// resolve to crates in `deps[k]`. An edge against the dependency
    /// direction cannot link at build time, so resolving it would be
    /// pure noise (e.g. `core` code hitting an `xtask` method name).
    pub fn set_deps(&mut self, deps: HashMap<String, HashSet<String>>) {
        self.deps = deps;
    }

    /// Whether a call from `from_krate` may land in `target`'s crate.
    fn dep_allowed(&self, from_krate: &str, target: usize) -> bool {
        if self.deps.is_empty() {
            return true;
        }
        match self.deps.get(from_krate) {
            Some(reachable) => reachable.contains(&self.fns[target].krate),
            // Unknown caller crate (fixtures): same-crate only is too
            // strict for an over-approximation; allow everything.
            None => true,
        }
    }

    /// Finds functions matching a root spec: `Type::name` or `name`.
    pub fn find(&self, spec: &str) -> Vec<usize> {
        match spec.rsplit_once("::") {
            Some((owner, name)) => self
                .by_owner_name
                .get(&(owner.to_string(), name.to_string()))
                .cloned()
                .unwrap_or_default(),
            None => self.by_name.get(spec).cloned().unwrap_or_default(),
        }
    }

    /// Resolves one callee reference from inside `ctx` to workspace
    /// function indices. Empty = unknown callee (std, vendored, or a
    /// closure) — the caller decides how dirty to assume it is.
    pub fn resolve(&self, callee: &Callee, ctx: &FnItem) -> Vec<usize> {
        let hits = match callee {
            Callee::Method(name) if STD_TRAIT_METHODS.contains(&name.as_str()) => Vec::new(),
            Callee::Method(name) => self
                .by_name
                .get(name)
                .map(|c| c.iter().copied().filter(|&i| self.fns[i].has_self).collect())
                .unwrap_or_default(),
            Callee::Bare(name) => self
                .by_name
                .get(name)
                .map(|c| c.iter().copied().filter(|&i| !self.fns[i].has_self).collect())
                .unwrap_or_default(),
            Callee::Path(segs) => self.resolve_path(segs, ctx),
        };
        hits.into_iter().filter(|&i| self.dep_allowed(&ctx.krate, i)).collect()
    }

    fn resolve_path(&self, segs: &[String], ctx: &FnItem) -> Vec<usize> {
        let Some(name) = segs.last() else { return Vec::new() };
        let head = segs.first().map(String::as_str).unwrap_or("");
        // Std-family paths are never workspace functions.
        if matches!(head, "std" | "core" | "alloc") && segs.len() > 2 {
            return Vec::new();
        }
        if segs.len() >= 2 {
            let qualifier = &segs[segs.len() - 2];
            if qualifier == "Self" {
                if let Some(owner) = &ctx.owner {
                    let hits = self
                        .by_owner_name
                        .get(&(owner.clone(), name.clone()))
                        .cloned()
                        .unwrap_or_default();
                    if !hits.is_empty() {
                        return hits;
                    }
                }
                return self.by_name.get(name).cloned().unwrap_or_default();
            }
            if qualifier.chars().next().is_some_and(char::is_uppercase) {
                // `Type::name` — enum constructors (`FileClass::Text`)
                // never end in `(` unless tuple variants; treating them
                // as unresolved-with-KB is handled by the analyses.
                return self
                    .by_owner_name
                    .get(&(qualifier.clone(), name.clone()))
                    .cloned()
                    .unwrap_or_default();
            }
        }
        // Module path (`crate::x::f`, `iustitia_entropy::vector::f`):
        // resolve by final segment across the workspace.
        self.by_name.get(name).cloned().unwrap_or_default()
    }

    /// Breadth-first reachability from `roots`. Returns, for every
    /// reached function index, the index it was first reached from
    /// (roots map to themselves).
    pub fn reachable(&self, roots: &[usize]) -> HashMap<usize, usize> {
        let mut parent: HashMap<usize, usize> = HashMap::new();
        let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        for &r in roots {
            if let std::collections::hash_map::Entry::Vacant(e) = parent.entry(r) {
                e.insert(r);
                queue.push_back(r);
            }
        }
        while let Some(i) = queue.pop_front() {
            // Indexing with a fresh clone borrow: fns[i] is immutable.
            for event in &self.fns[i].events {
                let Event::Call { callee, .. } = event else { continue };
                for target in self.resolve(callee, &self.fns[i]) {
                    if let std::collections::hash_map::Entry::Vacant(e) = parent.entry(target) {
                        e.insert(i);
                        queue.push_back(target);
                    }
                }
            }
        }
        parent
    }

    /// The call chain `root → … → target` as qualified names.
    pub fn chain(&self, parents: &HashMap<usize, usize>, target: usize) -> String {
        let mut names = vec![self.fns[target].qualified()];
        let mut at = target;
        // Bounded walk: parent maps are acyclic by construction (BFS
        // tree), the bound only guards against future bugs.
        for _ in 0..parents.len() + 1 {
            let Some(&p) = parents.get(&at) else { break };
            if p == at {
                break;
            }
            names.push(self.fns[p].qualified());
            at = p;
        }
        names.reverse();
        names.join(" → ")
    }

    /// Renders every resolved edge as `caller -> callee`, sorted and
    /// deduplicated — the golden-output format for fixture tests.
    pub fn edges_rendered(&self) -> Vec<String> {
        let mut edges = Vec::new();
        for item in self.fns.iter().filter(|f| !f.is_test) {
            for event in &item.events {
                let Event::Call { callee, .. } = event else { continue };
                for target in self.resolve(callee, item) {
                    edges.push(format!("{} -> {}", item.qualified(), self.fns[target].qualified()));
                }
            }
        }
        edges.sort();
        edges.dedup();
        edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse_file;

    fn graph(src: &str) -> CallGraph {
        CallGraph::build(parse_file("crates/core/src/demo.rs", &lex(src)))
    }

    #[test]
    fn method_calls_resolve_to_all_self_takers() {
        let g = graph(
            r#"
struct A; struct B;
impl A { fn go(&self) {} }
impl B { fn go(&self) {} }
fn go() {}
fn caller(a: &A) { a.go(); }
"#,
        );
        let caller = g.find("caller")[0];
        let ctx = &g.fns[caller];
        let targets = g.resolve(&Callee::Method("go".into()), ctx);
        let mut owners: Vec<Option<&str>> =
            targets.iter().map(|&i| g.fns[i].owner.as_deref()).collect();
        owners.sort();
        assert_eq!(owners, vec![Some("A"), Some("B")], "both receivers kept, free fn excluded");
    }

    #[test]
    fn self_and_type_paths_use_the_owner_index() {
        let g = graph(
            r#"
struct A; struct B;
impl A {
    fn entry(&self) { Self::helper(); B::other(); }
    fn helper() {}
}
impl B { fn other() {} }
"#,
        );
        let entry = g.find("A::entry")[0];
        let ctx = &g.fns[entry].clone();
        let h = g.resolve(&Callee::Path(vec!["Self".into(), "helper".into()]), ctx);
        assert_eq!(h.len(), 1);
        assert_eq!(g.fns[h[0]].qualified(), "A::helper");
        let o = g.resolve(&Callee::Path(vec!["B".into(), "other".into()]), ctx);
        assert_eq!(o.len(), 1);
        assert_eq!(g.fns[o[0]].qualified(), "B::other");
    }

    #[test]
    fn std_paths_and_unknowns_resolve_to_nothing() {
        let g = graph("fn f() { std::mem::swap(a, b); totally_unknown(); }");
        let f = g.find("f")[0];
        let ctx = &g.fns[f].clone();
        assert!(g
            .resolve(&Callee::Path(vec!["std".into(), "mem".into(), "swap".into()]), ctx)
            .is_empty());
        assert!(g.resolve(&Callee::Bare("totally_unknown".into()), ctx).is_empty());
    }

    #[test]
    fn reachability_reports_chains() {
        let g = graph(
            r#"
fn root() { mid(); }
fn mid() { leaf(); }
fn leaf() {}
fn unrelated() {}
"#,
        );
        let roots = g.find("root");
        let parents = g.reachable(&roots);
        let leaf = g.find("leaf")[0];
        assert!(parents.contains_key(&leaf));
        assert!(!parents.contains_key(&g.find("unrelated")[0]));
        assert_eq!(g.chain(&parents, leaf), "root → mid → leaf");
    }

    #[test]
    fn test_fns_never_enter_the_index() {
        let g = graph(
            r#"
fn lib() {}
#[cfg(test)]
mod tests {
    fn lib() { boom(); }
    #[test]
    fn t() { lib(); }
}
"#,
        );
        assert_eq!(g.find("lib").len(), 1, "only the non-test `lib` is indexed");
        assert!(g.find("t").is_empty());
    }
}
