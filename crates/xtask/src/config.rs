//! Parser for `crates/xtask/roots.toml` — the committed declaration of
//! hot-path roots and lock order that drives the interprocedural lints.
//!
//! This is a tiny line-oriented reader for the TOML *subset* the file
//! uses (the build has no route to crates.io, so no `toml` crate):
//! `[section]` headers, `key = [ "string", ... ]` arrays (single- or
//! multi-line), and `#` comments. See the module docs of
//! [`crate::lints`] for the full file format.

/// Parsed contents of `roots.toml`.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct RootsConfig {
    /// L008 roots: functions that must not reach a panic site.
    pub panic_roots: Vec<String>,
    /// L009 roots: steady-state functions that must not reach an
    /// allocation site (must cover the `pool_alloc.rs` entry points).
    pub alloc_roots: Vec<String>,
    /// L010: declared lock order, outermost first. A lock may only be
    /// acquired while holding locks strictly *before* it in this list.
    pub lock_order: Vec<String>,
    /// L010: `fn_name:lock_name` pairs for functions that acquire a
    /// lock and return its guard to the caller.
    pub guard_fns: Vec<(String, String)>,
}

impl RootsConfig {
    /// Position of a lock in the declared order.
    pub fn lock_rank(&self, lock: &str) -> Option<usize> {
        self.lock_order.iter().position(|l| l == lock)
    }

    /// The lock a guard-returning function acquires, if declared.
    pub fn guard_lock(&self, fn_name: &str) -> Option<&str> {
        self.guard_fns.iter().find(|(f, _)| f == fn_name).map(|(_, l)| l.as_str())
    }
}

/// Parses the `roots.toml` text. Errors carry the offending line.
pub fn parse(text: &str) -> Result<RootsConfig, String> {
    let mut cfg = RootsConfig::default();
    let mut section = String::new();
    let mut pending: Option<(String, Vec<String>)> = None;
    for (lineno, raw) in text.lines().enumerate() {
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some((key, mut items)) = pending.take() {
            // Inside a multi-line array: accumulate until `]`.
            let (done, mut new_items) = array_elements(&line, lineno)?;
            items.append(&mut new_items);
            if done {
                assign(&mut cfg, &section, &key, items, lineno)?;
            } else {
                pending = Some((key, items));
            }
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            section = name.trim().to_string();
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("roots.toml:{}: expected `key = [...]`", lineno + 1));
        };
        let (key, value) = (key.trim().to_string(), value.trim());
        let Some(rest) = value.strip_prefix('[') else {
            return Err(format!("roots.toml:{}: `{key}` must be a string array", lineno + 1));
        };
        let (done, items) = array_elements(rest, lineno)?;
        if done {
            assign(&mut cfg, &section, &key, items, lineno)?;
        } else {
            pending = Some((key, items));
        }
    }
    if pending.is_some() {
        return Err("roots.toml: unterminated array".to_string());
    }
    Ok(cfg)
}

/// Drops a trailing `#` comment (the format keeps `#` out of strings).
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parses `"a", "b"` fragments; returns whether the closing `]` was
/// seen and the elements collected so far.
fn array_elements(fragment: &str, lineno: usize) -> Result<(bool, Vec<String>), String> {
    let (body, done) = match fragment.split_once(']') {
        Some((body, _)) => (body, true),
        None => (fragment, false),
    };
    let mut items = Vec::new();
    for piece in body.split(',') {
        let piece = piece.trim();
        if piece.is_empty() {
            continue;
        }
        let unquoted =
            piece.strip_prefix('"').and_then(|p| p.strip_suffix('"')).ok_or_else(|| {
                format!("roots.toml:{}: expected quoted string, got `{piece}`", lineno + 1)
            })?;
        items.push(unquoted.to_string());
    }
    Ok((done, items))
}

fn assign(
    cfg: &mut RootsConfig,
    section: &str,
    key: &str,
    items: Vec<String>,
    lineno: usize,
) -> Result<(), String> {
    match (section, key) {
        ("panic_roots", "fns") => cfg.panic_roots = items,
        ("alloc_roots", "fns") => cfg.alloc_roots = items,
        ("lock_order", "order") => cfg.lock_order = items,
        ("lock_order", "guard_fns") => {
            for item in items {
                let Some((f, l)) = item.split_once(':') else {
                    return Err(format!(
                        "roots.toml:{}: guard_fns entries are `fn_name:lock_name`, got `{item}`",
                        lineno + 1
                    ));
                };
                cfg.guard_fns.push((f.trim().to_string(), l.trim().to_string()));
            }
        }
        _ => {
            return Err(format!(
                "roots.toml:{}: unknown key `{key}` in section `[{section}]`",
                lineno + 1
            ))
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_format() {
        let text = r#"
# comment
[panic_roots]
fns = [
    "Iustitia::process_packet",   # the per-packet entry
    "CompiledTree::try_predict",
]

[alloc_roots]
fns = ["Iustitia::process_packet"]

[lock_order]
order = ["inner", "results"]
guard_fns = ["lock_state:inner"]
"#;
        let cfg = parse(text).expect("parses");
        assert_eq!(cfg.panic_roots, vec!["Iustitia::process_packet", "CompiledTree::try_predict"]);
        assert_eq!(cfg.alloc_roots, vec!["Iustitia::process_packet"]);
        assert_eq!(cfg.lock_order, vec!["inner", "results"]);
        assert_eq!(cfg.guard_fns, vec![("lock_state".to_string(), "inner".to_string())]);
        assert_eq!(cfg.lock_rank("inner"), Some(0));
        assert_eq!(cfg.lock_rank("unknown"), None);
        assert_eq!(cfg.guard_lock("lock_state"), Some("inner"));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse("[panic_roots]\nfns = 3\n").is_err());
        assert!(parse("[panic_roots]\nnot a key\n").is_err());
        assert!(parse("[panic_roots]\nfns = [\"a\"\n").is_err(), "unterminated array");
        assert!(parse("[lock_order]\nguard_fns = [\"no_colon\"]\n").is_err());
        assert!(parse("[nope]\nfns = [\"a\"]\n").is_err(), "unknown section/key");
    }
}
