//! `xtask` — workspace-native static analysis for the Iustitia repo.
//!
//! Run as `cargo run -p xtask -- lint`. Exits 0 when the workspace is
//! clean, 1 with `file:line: [Lnnn] message` diagnostics otherwise.
//! See [`lints`] for what each lint enforces and how to suppress one.

mod lexer;
mod lints;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("xtask: unknown command `{other}`\n");
            print!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "\
xtask — workspace-native static analysis

USAGE:
    cargo run -p xtask -- lint [--list] [--root <dir>]

COMMANDS:
    lint          run every project lint over the workspace
    lint --list   print the lint table and exit

Suppress a finding with an inline justification on the same or the
preceding line:  // lint: allow(L001) — <reason>
";

fn lint(args: &[String]) -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--list" => {
                for (id, description) in lints::LINTS {
                    println!("{id}  {description}");
                }
                return ExitCode::SUCCESS;
            }
            "--root" => match iter.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("xtask: --root requires a directory argument");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("xtask: unknown lint flag `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(workspace_root);

    match lints::run(&root) {
        Ok(violations) if violations.is_empty() => {
            println!("xtask lint: workspace clean ({} lints)", lints::LINTS.len());
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for violation in &violations {
                println!("{violation}");
            }
            eprintln!("xtask lint: {} violation(s)", violations.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("xtask lint: i/o error walking {}: {e}", root.display());
            ExitCode::from(2)
        }
    }
}

/// The workspace root: two levels above this crate's manifest.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}
