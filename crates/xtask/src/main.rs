//! `xtask` — workspace-native static analysis for the Iustitia repo.
//!
//! Run as `cargo run -p xtask -- lint`. Exits 0 when the workspace is
//! clean, 1 with `file:line: [Lnnn] message` diagnostics otherwise.
//! Two tiers run under the one command: the per-token lints L001–L007
//! (see [`lints`]) and the interprocedural analyses L008–L011 built on
//! the call graph (see [`analyses`]). `lint --json` emits a
//! machine-readable report for CI.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use xtask::{analyses, lints};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("xtask: unknown command `{other}`\n");
            print!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "\
xtask — workspace-native static analysis

USAGE:
    cargo run -p xtask -- lint [--list] [--json] [--root <dir>]

COMMANDS:
    lint          run every project lint over the workspace
    lint --list   print the lint table and exit
    lint --json   emit the report as JSON on stdout (for CI artifacts)

L001-L007 are per-token lints; L008-L011 are interprocedural analyses
driven by the roots declared in crates/xtask/roots.toml.

Suppress a finding with an inline justification on the same or the
preceding line:  // lint: allow(L001) — <reason>
";

fn lint(args: &[String]) -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--list" => {
                for (id, description) in lints::LINTS {
                    println!("{id}  {description}");
                }
                return ExitCode::SUCCESS;
            }
            "--json" => json = true,
            "--root" => match iter.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("xtask: --root requires a directory argument");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("xtask: unknown lint flag `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(workspace_root);

    let merged = lints::run(&root).and_then(|mut violations| {
        violations.extend(analyses::run(&root)?);
        violations.sort_by(|a, b| (&a.file, a.line, a.lint).cmp(&(&b.file, b.line, b.lint)));
        Ok(violations)
    });
    match merged {
        Ok(violations) if json => {
            println!("{}", json_report(&violations));
            if violations.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Ok(violations) if violations.is_empty() => {
            println!("xtask lint: workspace clean ({} lints)", lints::LINTS.len());
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for violation in &violations {
                println!("{violation}");
            }
            eprintln!("xtask lint: {} violation(s)", violations.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("xtask lint: error analyzing {}: {e}", root.display());
            ExitCode::from(2)
        }
    }
}

/// Renders the lint table and findings as a JSON document. Hand-rolled
/// (the workspace has no route to crates.io) but escape-correct for the
/// strings the lints produce.
fn json_report(violations: &[lints::Violation]) -> String {
    let mut out = String::from("{\n  \"lints\": [\n");
    for (i, (id, description)) in lints::LINTS.iter().enumerate() {
        let comma = if i + 1 < lints::LINTS.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"id\": {}, \"description\": {}}}{comma}\n",
            json_str(id),
            json_str(description)
        ));
    }
    out.push_str("  ],\n  \"violations\": [\n");
    for (i, v) in violations.iter().enumerate() {
        let comma = if i + 1 < violations.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"file\": {}, \"line\": {}, \"lint\": {}, \"message\": {}}}{comma}\n",
            json_str(&v.file),
            v.line,
            json_str(v.lint),
            json_str(&v.message)
        ));
    }
    out.push_str(&format!("  ],\n  \"clean\": {}\n}}", violations.is_empty()));
    out
}

/// JSON string literal with the required escapes.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The workspace root: two levels above this crate's manifest.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_report_escapes_and_lists_every_lint() {
        let violations = vec![lints::Violation {
            file: "crates/serve/src/proto.rs".to_string(),
            line: 7,
            lint: "L011",
            message: "bare `+` on a \"length\"\nvalue".to_string(),
        }];
        let report = json_report(&violations);
        for (id, _) in lints::LINTS {
            assert!(report.contains(&format!("\"id\": \"{id}\"")), "missing {id}");
        }
        assert!(report.contains("\\\"length\\\"\\nvalue"), "escapes quotes and newlines");
        assert!(report.contains("\"clean\": false"));
        assert!(json_report(&[]).contains("\"clean\": true"));
    }
}
