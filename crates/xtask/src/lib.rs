//! Workspace-native static analysis for the Iustitia repo.
//!
//! Two tiers run under `cargo run -p xtask -- lint`: the per-token
//! lints L001–L007 (see [`lints`]) and the interprocedural analyses
//! L008–L011 built on a hand-rolled parser and call graph (see
//! [`parser`], [`callgraph`], [`analyses`]). The library target exists
//! so the fixture integration tests can drive the parser and analyses
//! directly; the `xtask` binary is the CLI front end.

pub mod analyses;
pub mod callgraph;
pub mod config;
pub mod lexer;
pub mod lints;
pub mod parser;
