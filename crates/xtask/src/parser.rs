//! A hand-rolled item/function parser on top of [`crate::lexer`].
//!
//! This is *not* a Rust parser — it is the minimal syntax layer the
//! interprocedural analyses need, extracted from the token stream:
//!
//! * `fn` items (free functions, inherent/trait methods, trait default
//!   bodies), with their owning `impl`/`trait` type and whether they
//!   take `self`;
//! * per-body **events**: call expressions (method, bare, and path
//!   calls), macro invocations, index expressions (`x[i]` in expression
//!   position), binary `+`/`*` arithmetic, and block-scope closings —
//!   enough to drive panic-, allocation-, lock- and overflow-analyses
//!   without a full AST;
//! * just enough generics handling to not get lost: angle-bracket lists
//!   are skipped with `>>`/`<<` counting ±2, so the single `>>` token
//!   the lexer emits for `Vec<Vec<u8>>` closes both lists.
//!
//! Everything is a conservative over-approximation of runtime behavior:
//! calls inside closures are attributed to the enclosing function
//! (closures built on the hot path are assumed invoked), and every
//! same-name candidate is kept during resolution (see
//! [`crate::callgraph`]).

use crate::lexer::{Lexed, TokKind, Token};
use crate::lints::{in_test, matching_brace, nesting_delta, test_line_ranges};

/// How a call expression names its callee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Callee {
    /// `.name(...)` — a method call on some receiver expression.
    Method(String),
    /// `name(...)` — a bare call (free function, closure, or tuple
    /// constructor like `Some`).
    Bare(String),
    /// `a::b::name(...)` — a path call; all segments in source order.
    Path(Vec<String>),
}

impl Callee {
    /// The final path segment — the function name being invoked.
    pub fn name(&self) -> &str {
        match self {
            Callee::Method(n) | Callee::Bare(n) => n,
            Callee::Path(segs) => segs.last().map(String::as_str).unwrap_or(""),
        }
    }

    /// Renders the callee the way the source spells it.
    pub fn display(&self) -> String {
        match self {
            Callee::Method(n) => format!(".{n}()"),
            Callee::Bare(n) => format!("{n}()"),
            Callee::Path(segs) => format!("{}()", segs.join("::")),
        }
    }
}

/// One analysis-relevant occurrence inside a function body.
#[derive(Debug, Clone)]
pub enum Event {
    /// A call expression.
    Call {
        callee: Callee,
        /// For method calls: the identifier immediately owning the
        /// receiver (`self.inner.lock()` → `inner`). `None` when the
        /// receiver is a compound expression.
        receiver: Option<String>,
        /// The `let` binding the enclosing statement assigns into, if
        /// any (`let guard = q.lock()` → `guard`) — guard tracking.
        binding: Option<String>,
        /// For single-identifier argument lists (`drop(guard)`): that
        /// identifier.
        arg0: Option<String>,
        line: u32,
        /// Brace depth relative to the function body (body = 1).
        depth: u32,
    },
    /// A macro invocation (`name!(..)` / `name![..]` / `name!{..}`).
    Macro { name: String, line: u32 },
    /// A slice/array index expression `expr[...]`.
    Index { line: u32 },
    /// A binary `+`/`*` (or `+=`/`*=`) between two value operands.
    Arith { op: &'static str, lhs: String, rhs: String, line: u32 },
    /// A `}` closed, dropping back to `depth` — ends guard scopes.
    ScopeEnd { depth: u32 },
    /// A `;` at `depth` ended a statement — ends unbound temporaries.
    StmtEnd { depth: u32 },
}

/// One parsed `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Workspace-relative path of the defining file.
    pub file: String,
    /// Crate directory name (`core`, `entropy`, …).
    pub krate: String,
    /// The `impl`/`trait` type this is a method of, if any.
    pub owner: Option<String>,
    /// The function's name.
    pub name: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Whether the parameter list starts with a `self` receiver.
    pub has_self: bool,
    /// Whether the item sits inside `#[cfg(test)]` / `#[test]` code.
    pub is_test: bool,
    /// Body events in source order (empty for bodyless trait methods).
    pub events: Vec<Event>,
}

impl FnItem {
    /// `Type::name` or plain `name` — how diagnostics refer to this fn.
    pub fn qualified(&self) -> String {
        match &self.owner {
            Some(owner) => format!("{owner}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// Keywords that look like call names (`if (..)`, `match (..)`) or like
/// index receivers (`let [a, b] = ..`) but are not.
fn is_keyword(text: &str) -> bool {
    matches!(
        text,
        "if" | "else"
            | "match"
            | "while"
            | "for"
            | "loop"
            | "return"
            | "break"
            | "continue"
            | "let"
            | "mut"
            | "ref"
            | "move"
            | "in"
            | "as"
            | "fn"
            | "pub"
            | "use"
            | "mod"
            | "where"
            | "impl"
            | "dyn"
            | "unsafe"
            | "box"
            | "await"
            | "yield"
    )
}

/// Parses every `fn` item of an already-lexed file.
pub fn parse_file(rel_path: &str, lexed: &Lexed) -> Vec<FnItem> {
    let krate = rel_path
        .strip_prefix("crates/")
        .and_then(|p| p.split('/').next())
        .unwrap_or("")
        .to_string();
    let tests = test_line_ranges(&lexed.tokens);
    let mut parser = Parser {
        tokens: &lexed.tokens,
        tests: &tests,
        file: rel_path,
        krate: &krate,
        items: Vec::new(),
    };
    parser.items_in(0, lexed.tokens.len(), None);
    parser.items
}

struct Parser<'a> {
    tokens: &'a [Token],
    tests: &'a [(u32, u32)],
    file: &'a str,
    krate: &'a str,
    items: Vec<FnItem>,
}

impl Parser<'_> {
    fn tok(&self, i: usize) -> Option<&Token> {
        self.tokens.get(i)
    }

    fn is(&self, i: usize, text: &str) -> bool {
        self.tok(i).is_some_and(|t| t.text == text)
    }

    /// Skips a generic argument list whose `<` is at `i`; returns the
    /// index just past the matching close. `>>`/`<<` count ±2, which is
    /// exactly what makes `Vec<Vec<u8>>` close both lists on one token.
    fn skip_generics(&self, i: usize) -> usize {
        let mut depth = 0i32;
        let mut j = i;
        while let Some(t) = self.tok(j) {
            match t.text.as_str() {
                "<" => depth += 1,
                "<<" => depth += 2,
                ">" => depth -= 1,
                ">>" => depth -= 2,
                // A generic list never contains these at its own level;
                // bail out rather than swallow the rest of the file on
                // a lone `a < b` comparison.
                "{" | "}" | ";" => return i + 1,
                _ => {}
            }
            j += 1;
            if depth <= 0 {
                return j;
            }
        }
        j
    }

    /// Scans `[start, end)` for items (`fn`, `impl`, `trait`, `mod`),
    /// recursing into item bodies. `owner` is the enclosing type name.
    fn items_in(&mut self, start: usize, end: usize, owner: Option<&str>) {
        let mut i = start;
        while i < end {
            let Some(t) = self.tok(i) else { break };
            match t.text.as_str() {
                "fn" if t.kind == TokKind::Ident => {
                    i = self.parse_fn(i, end, owner);
                }
                "impl" | "trait" if t.kind == TokKind::Ident => {
                    i = self.parse_impl_or_trait(i, end);
                }
                "mod" if t.kind == TokKind::Ident => {
                    // `mod name { .. }`: recurse without an owner;
                    // `mod name;` declarations just advance.
                    let mut j = i + 1;
                    while j < end && !self.is(j, "{") && !self.is(j, ";") {
                        j += 1;
                    }
                    if self.is(j, "{") {
                        let close = matching_brace(self.tokens, j).unwrap_or(end);
                        self.items_in(j + 1, close.min(end), None);
                        i = close + 1;
                    } else {
                        i = j + 1;
                    }
                }
                _ => i += 1,
            }
        }
    }

    /// Parses the header of an `impl`/`trait` block, extracts the type
    /// name, and recurses into its body for methods.
    fn parse_impl_or_trait(&mut self, at: usize, end: usize) -> usize {
        let mut j = at + 1;
        if self.is(j, "<") {
            j = self.skip_generics(j);
        }
        // Collect path idents up to the body; the owner is the last
        // segment of the path after `for` (trait impls) or of the only
        // path (inherent impls / trait declarations).
        let mut before_for: Option<String> = None;
        let mut after_for: Option<String> = None;
        let mut seen_for = false;
        while j < end && !self.is(j, "{") && !self.is(j, ";") {
            let t = &self.tokens[j];
            if t.is_ident("for") {
                seen_for = true;
            } else if t.is_ident("where") {
                break;
            } else if t.kind == TokKind::Ident && !is_keyword(&t.text) {
                let slot = if seen_for { &mut after_for } else { &mut before_for };
                *slot = Some(t.text.clone());
                if self.is(j + 1, "<") {
                    j = self.skip_generics(j + 1);
                    continue;
                }
            }
            j += 1;
        }
        while j < end && !self.is(j, "{") && !self.is(j, ";") {
            j += 1;
        }
        if !self.is(j, "{") {
            return j + 1;
        }
        let owner = after_for.or(before_for);
        let close = matching_brace(self.tokens, j).unwrap_or(end);
        self.items_in(j + 1, close.min(end), owner.as_deref());
        close + 1
    }

    /// Parses one `fn` starting at the `fn` keyword; returns the index
    /// just past the item.
    fn parse_fn(&mut self, at: usize, end: usize, owner: Option<&str>) -> usize {
        let mut j = at + 1;
        let Some(name_tok) = self.tok(j) else { return at + 1 };
        if name_tok.kind != TokKind::Ident {
            // `fn(` — a function-pointer type, not an item.
            return at + 1;
        }
        let name = name_tok.text.clone();
        let line = self.tokens[at].line;
        j += 1;
        if self.is(j, "<") {
            j = self.skip_generics(j);
        }
        if !self.is(j, "(") {
            return at + 1;
        }
        // Parameter list: `self` anywhere before the first top-level
        // comma marks a method receiver.
        let params_open = j;
        let mut depth = 0i32;
        let mut has_self = false;
        let mut first_param = true;
        while j < end {
            let t = &self.tokens[j];
            depth += nesting_delta(t);
            if depth == 1 && t.is_punct(",") {
                first_param = false;
            }
            if first_param && t.is_ident("self") {
                has_self = true;
            }
            if depth == 0 && j > params_open {
                break;
            }
            j += 1;
        }
        j += 1; // past `)`
                // Return type / where clause: scan to the body or `;`.
        while j < end && !self.is(j, "{") && !self.is(j, ";") {
            if self.is(j, "<") {
                j = self.skip_generics(j);
            } else {
                j += 1;
            }
        }
        let is_test = in_test(self.tests, line);
        if self.is(j, ";") {
            self.items.push(FnItem {
                file: self.file.to_string(),
                krate: self.krate.to_string(),
                owner: owner.map(str::to_string),
                name,
                line,
                has_self,
                is_test,
                events: Vec::new(),
            });
            return j + 1;
        }
        if !self.is(j, "{") {
            return j;
        }
        let close = matching_brace(self.tokens, j).unwrap_or(end);
        let events = self.body_events(j, close.min(end));
        // Nested `fn` items inside the body become their own items
        // (their tokens were skipped by `body_events`).
        self.collect_nested_fns(j + 1, close.min(end), owner);
        self.items.push(FnItem {
            file: self.file.to_string(),
            krate: self.krate.to_string(),
            owner: owner.map(str::to_string),
            name,
            line,
            has_self,
            is_test,
            events,
        });
        close + 1
    }

    /// Finds `fn` items nested inside a body and parses each.
    fn collect_nested_fns(&mut self, start: usize, end: usize, owner: Option<&str>) {
        let mut i = start;
        while i < end {
            if self.is(i, "fn") && self.tok(i + 1).is_some_and(|t| t.kind == TokKind::Ident) {
                i = self.parse_fn(i, end, owner);
            } else {
                i += 1;
            }
        }
    }

    /// Extracts the event stream of a body whose `{` is at `open`.
    fn body_events(&self, open: usize, close: usize) -> Vec<Event> {
        let mut events = Vec::new();
        let mut depth: u32 = 1;
        // The `let` binding of the current statement, if any.
        let mut binding: Option<String> = None;
        let mut binding_depth: u32 = 0;
        let mut j = open + 1;
        while j < close {
            let t = &self.tokens[j];
            match t.text.as_str() {
                "{" if t.kind == TokKind::Punct => depth += 1,
                "}" if t.kind == TokKind::Punct => {
                    depth = depth.saturating_sub(1);
                    events.push(Event::ScopeEnd { depth });
                }
                ";" if t.kind == TokKind::Punct => {
                    if depth <= binding_depth {
                        binding = None;
                    }
                    events.push(Event::StmtEnd { depth });
                }
                "let" if t.kind == TokKind::Ident => {
                    // `let [mut] name =` — remember the binding.
                    let mut k = j + 1;
                    if self.is(k, "mut") {
                        k += 1;
                    }
                    if self.tok(k).is_some_and(|n| n.kind == TokKind::Ident && !is_keyword(&n.text))
                    {
                        binding = Some(self.tokens[k].text.clone());
                        binding_depth = depth;
                    }
                }
                "fn" if t.kind == TokKind::Ident
                    && self.tok(j + 1).is_some_and(|n| n.kind == TokKind::Ident) =>
                {
                    // A nested fn item: its events belong to itself
                    // (collected separately), not to this body.
                    let mut k = j + 2;
                    while k < close && !self.is(k, "{") && !self.is(k, ";") {
                        k += 1;
                    }
                    if self.is(k, "{") {
                        j = matching_brace(self.tokens, k).unwrap_or(close);
                    } else {
                        j = k;
                    }
                }
                "." if t.kind == TokKind::Punct => {
                    if let Some(event) = self.method_call(j, close, depth, &binding) {
                        events.push(event);
                    }
                }
                "[" if t.kind == TokKind::Punct && self.is_index_position(j) => {
                    events.push(Event::Index { line: t.line });
                }
                "+" | "*" if t.kind == TokKind::Punct => {
                    if let Some(event) = self.arith(j) {
                        events.push(event);
                    }
                }
                _ if t.kind == TokKind::Ident && !is_keyword(&t.text) => {
                    let prev = j.checked_sub(1).and_then(|p| self.tok(p));
                    let after_sep = prev.is_some_and(|p| p.is_punct(".") || p.is_punct("::"));
                    if !after_sep {
                        if let Some((event, next)) =
                            self.path_call_or_macro(j, close, depth, &binding)
                        {
                            events.push(event);
                            j = next;
                            continue;
                        }
                    }
                }
                _ => {}
            }
            j += 1;
        }
        events
    }

    /// `.name(` or `.name::<..>(` starting at the `.` token.
    fn method_call(
        &self,
        dot: usize,
        close: usize,
        depth: u32,
        binding: &Option<String>,
    ) -> Option<Event> {
        let name_tok = self.tok(dot + 1)?;
        if name_tok.kind != TokKind::Ident {
            return None;
        }
        let mut k = dot + 2;
        if self.is(k, "::") && self.is(k + 1, "<") {
            k = self.skip_generics(k + 1);
        }
        if !self.is(k, "(") || k >= close {
            return None;
        }
        let receiver = self.receiver_ident(dot);
        Some(Event::Call {
            callee: Callee::Method(name_tok.text.clone()),
            receiver,
            binding: binding.clone(),
            arg0: self.lone_arg_ident(k),
            line: name_tok.line,
            depth,
        })
    }

    /// The identifier that syntactically owns the receiver of a method
    /// call whose `.` is at `dot`: `self.inner.lock()` → `inner`,
    /// `queues[i].pop()` → `queues`.
    fn receiver_ident(&self, dot: usize) -> Option<String> {
        let mut p = dot.checked_sub(1)?;
        // Step back over one `[..]` index suffix.
        if self.is(p, "]") {
            let mut d = 0i32;
            loop {
                d += match self.tokens[p].text.as_str() {
                    "]" => -1,
                    "[" => 1,
                    _ => 0,
                };
                if d == 0 || p == 0 {
                    break;
                }
                p -= 1;
            }
            p = p.checked_sub(1)?;
        }
        let t = self.tok(p)?;
        (t.kind == TokKind::Ident && !is_keyword(&t.text)).then(|| t.text.clone())
    }

    /// If the argument list opening at `paren` is a single identifier,
    /// returns it (`drop(guard)` → `guard`).
    fn lone_arg_ident(&self, paren: usize) -> Option<String> {
        let arg = self.tok(paren + 1)?;
        if arg.kind == TokKind::Ident && self.is(paren + 2, ")") && !is_keyword(&arg.text) {
            Some(arg.text.clone())
        } else {
            None
        }
    }

    /// A bare/path call `a::b::name(..)` or macro `name!(..)` whose
    /// first segment is at `i`. Returns the event and the index to
    /// resume scanning from (start of the argument list).
    fn path_call_or_macro(
        &self,
        i: usize,
        close: usize,
        depth: u32,
        binding: &Option<String>,
    ) -> Option<(Event, usize)> {
        let mut segs = vec![self.tokens[i].text.clone()];
        let mut k = i + 1;
        loop {
            if self.is(k, "::") {
                if let Some(n) = self.tok(k + 1) {
                    if n.kind == TokKind::Ident && !is_keyword(&n.text) {
                        segs.push(n.text.clone());
                        k += 2;
                        continue;
                    }
                    if n.is_punct("<") {
                        k = self.skip_generics(k + 1);
                        continue;
                    }
                }
            }
            break;
        }
        if k >= close {
            return None;
        }
        if self.is(k, "!") {
            let opener = self.tok(k + 1)?;
            if opener.is_punct("(") || opener.is_punct("[") || opener.is_punct("{") {
                let name = segs.pop().unwrap_or_default();
                return Some((Event::Macro { name, line: self.tokens[i].line }, k + 1));
            }
            return None;
        }
        if !self.is(k, "(") {
            return None;
        }
        let callee =
            if segs.len() == 1 { Callee::Bare(segs.remove(0)) } else { Callee::Path(segs) };
        Some((
            Event::Call {
                callee,
                receiver: None,
                binding: binding.clone(),
                arg0: self.lone_arg_ident(k),
                line: self.tokens[i].line,
                depth,
            },
            k,
        ))
    }

    /// Whether the `[` at `i` opens an index expression (receiver is a
    /// value) rather than an attribute, type, pattern, or array literal.
    fn is_index_position(&self, i: usize) -> bool {
        let Some(p) = i.checked_sub(1).and_then(|p| self.tok(p)) else { return false };
        match p.kind {
            TokKind::Ident => !is_keyword(&p.text),
            TokKind::Punct => p.text == ")" || p.text == "]",
            TokKind::Literal => false,
        }
    }

    /// Binary `+`/`*` (or `+=`/`*=`) at `i`, with operand snippets.
    fn arith(&self, i: usize) -> Option<Event> {
        let prev = i.checked_sub(1).and_then(|p| self.tok(p))?;
        let value_left = match prev.kind {
            TokKind::Ident => !is_keyword(&prev.text),
            TokKind::Literal => true,
            TokKind::Punct => prev.text == ")" || prev.text == "]",
        };
        if !value_left {
            return None;
        }
        let next = self.tok(i + 1)?;
        // `impl Trait + 'a` / `dyn Read + Send` are type sums, not sums.
        if next.text.starts_with('\'') || next.is_ident("dyn") {
            return None;
        }
        let (op, rhs_at): (&'static str, usize) = match (self.tokens[i].text.as_str(), next) {
            ("+", n) if n.is_punct("=") => ("+=", i + 2),
            ("*", n) if n.is_punct("=") => ("*=", i + 2),
            ("+", _) => ("+", i + 1),
            ("*", _) => ("*", i + 1),
            _ => return None,
        };
        let rhs = self.tok(rhs_at).map(|t| t.text.clone()).unwrap_or_default();
        Some(Event::Arith { op, lhs: prev.text.clone(), rhs, line: self.tokens[i].line })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> Vec<FnItem> {
        parse_file("crates/core/src/demo.rs", &lex(src))
    }

    fn calls(item: &FnItem) -> Vec<String> {
        item.events
            .iter()
            .filter_map(|e| match e {
                Event::Call { callee, .. } => Some(callee.display()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn extracts_free_fns_and_methods() {
        let src = r#"
pub fn free(x: u8) -> u8 { helper(x) }
struct S;
impl S {
    pub fn method(&self) -> u8 { self.other() }
    fn other(&self) -> u8 { 1 }
}
impl Display for S {
    fn fmt(&self, f: &mut Formatter<'_>) -> Result { write!(f, "s") }
}
trait T {
    fn required(&self);
    fn provided(&self) { self.required() }
}
"#;
        let items = parse(src);
        let names: Vec<String> = items.iter().map(FnItem::qualified).collect();
        assert!(names.contains(&"free".to_string()));
        assert!(names.contains(&"S::method".to_string()));
        assert!(names.contains(&"S::fmt".to_string()), "trait impl owner is the `for` type");
        assert!(names.contains(&"T::required".to_string()), "bodyless trait fn is an item");
        assert!(names.contains(&"T::provided".to_string()));
        let free = items.iter().find(|i| i.name == "free").unwrap();
        assert!(!free.has_self);
        assert_eq!(calls(free), vec!["helper()"]);
        let method = items.iter().find(|i| i.name == "method").unwrap();
        assert!(method.has_self);
        assert_eq!(calls(method), vec![".other()"]);
    }

    #[test]
    fn nested_generics_split_shift_right() {
        // `Vec<Vec<u8>>` lexes its close as one `>>`; the parser must
        // still find the parameter list and the body.
        let src = "fn f(v: Vec<Vec<u8>>, m: Map<A, Set<B>>) -> Vec<Vec<u8>> { v.push(g()); }";
        let items = parse(src);
        assert_eq!(items.len(), 1);
        assert_eq!(calls(&items[0]), vec![".push()", "g()"]);
    }

    #[test]
    fn generic_fns_and_turbofish_calls() {
        let src = r#"
fn generic<T: Into<Vec<Vec<u8>>>>(x: T) {
    let v = x.collect::<Vec<Vec<u8>>>();
    let w = Vec::<u8>::with_capacity(4);
    take::<u8>(1);
}
"#;
        let items = parse(src);
        assert_eq!(calls(&items[0]), vec![".collect()", "Vec::with_capacity()", "take()"]);
    }

    #[test]
    fn raw_identifiers_do_not_confuse_items() {
        let src = "fn f() { let r#fn = 1; let r#match = r#fn + 1; g(r#match); }";
        let items = parse(src);
        assert_eq!(items.len(), 1, "r#fn must not open a phantom item");
        assert!(calls(&items[0]).contains(&"g()".to_string()));
    }

    #[test]
    fn index_positions_are_expressions_only() {
        let src = r#"
fn f(xs: &[u8], m: &mut [u64; 256]) -> u8 {
    #[allow(dead_code)]
    let a: [u8; 2] = [1, 2];
    let [lo, hi] = split(xs);
    m[3] = xs[0] as u64;
    table()[1]
}
"#;
        let items = parse(src);
        let indexes = items[0].events.iter().filter(|e| matches!(e, Event::Index { .. })).count();
        assert_eq!(indexes, 3, "m[3], xs[0], table()[1] — not types, patterns, or literals");
    }

    #[test]
    fn macros_are_not_calls() {
        let src = r#"fn f() { panic!("boom"); vec![1, 2]; assert_eq!(a, b); g(); }"#;
        let items = parse(src);
        let macros: Vec<&str> = items[0]
            .events
            .iter()
            .filter_map(|e| match e {
                Event::Macro { name, .. } => Some(name.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(macros, vec!["panic", "vec", "assert_eq"]);
        assert_eq!(calls(&items[0]), vec!["g()"]);
    }

    #[test]
    fn not_equal_is_not_a_macro() {
        let src = "fn f(a: u8, b: u8) -> bool { a != b }";
        let items = parse(src);
        assert!(items[0].events.iter().all(|e| !matches!(e, Event::Macro { .. })));
    }

    #[test]
    fn arith_events_capture_binary_ops_only() {
        let src = r#"
fn f(len: usize, n: usize, c: &mut u64) -> usize {
    *c += 1;
    let x = len + 1;
    let y = len * n;
    x + y
}
"#;
        let items = parse(src);
        let ops: Vec<(&str, &str)> = items[0]
            .events
            .iter()
            .filter_map(|e| match e {
                Event::Arith { op, lhs, .. } => Some((*op, lhs.as_str())),
                _ => None,
            })
            .collect();
        // `*c += 1` is a deref-assign: the `*` is unary, the `+=` has a
        // punct (`c`? no — prev of `+` is ident c) — it IS counted as c += 1.
        assert!(ops.contains(&("+=", "c")));
        assert!(ops.contains(&("+", "len")));
        assert!(ops.contains(&("*", "len")));
        assert!(ops.contains(&("+", "x")));
        assert!(!ops.iter().any(|(op, lhs)| *op == "*" && *lhs == ";"), "deref is not arith");
    }

    #[test]
    fn trait_bound_plus_is_not_arith() {
        let src = "fn f<'a>(x: Box<dyn Iterator<Item = u8> + 'a>) -> impl Read + Send { g(x) }";
        let items = parse(src);
        assert!(items[0].events.iter().all(|e| !matches!(e, Event::Arith { .. })));
    }

    #[test]
    fn bindings_and_receivers_feed_lock_tracking() {
        let src = r#"
fn f(&self) {
    let mut guard = self.inner.lock();
    guard.push(1);
    drop(guard);
    self.not_empty.notify_one();
}
"#;
        let items = parse(src);
        let locks: Vec<(Option<&str>, Option<&str>)> = items[0]
            .events
            .iter()
            .filter_map(|e| match e {
                Event::Call { callee, receiver, binding, .. } if callee.name() == "lock" => {
                    Some((receiver.as_deref(), binding.as_deref()))
                }
                _ => None,
            })
            .collect();
        assert_eq!(locks, vec![(Some("inner"), Some("guard"))]);
        let drops: Vec<Option<&str>> = items[0]
            .events
            .iter()
            .filter_map(|e| match e {
                Event::Call { callee, arg0, .. } if callee.name() == "drop" => {
                    Some(arg0.as_deref())
                }
                _ => None,
            })
            .collect();
        assert_eq!(drops, vec![Some("guard")]);
    }

    #[test]
    fn nested_fns_own_their_events() {
        let src = r#"
fn outer() {
    fn inner() { dirty(); }
    clean();
}
"#;
        let items = parse(src);
        let outer = items.iter().find(|i| i.name == "outer").unwrap();
        let inner = items.iter().find(|i| i.name == "inner").unwrap();
        assert_eq!(calls(outer), vec!["clean()"]);
        assert_eq!(calls(inner), vec!["dirty()"]);
    }

    #[test]
    fn test_items_are_marked() {
        let src = r#"
fn lib() {}
#[cfg(test)]
mod tests {
    #[test]
    fn t() { x.unwrap(); }
}
"#;
        let items = parse(src);
        assert!(!items.iter().find(|i| i.name == "lib").unwrap().is_test);
        assert!(items.iter().find(|i| i.name == "t").unwrap().is_test);
    }
}
