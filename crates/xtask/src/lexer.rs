//! A minimal hand-rolled Rust lexer.
//!
//! The build environment has no route to crates.io, so `syn` is off the
//! table; the lints in this crate only need a token stream that is
//! faithful about the things that confuse `grep`-style checks:
//!
//! * comments (line, nested block) — captured separately so suppression
//!   directives can be found without polluting the token stream;
//! * string/char/byte/raw-string literals — so an `unwrap()` inside a
//!   string never triggers a lint;
//! * lifetimes vs. char literals (`'a` vs `'a'`);
//! * raw identifiers (`r#match`) — the `r#` prefix is *preserved* so the
//!   parser never mistakes `r#type` for the `type` keyword;
//! * the multi-char operators the lints care about (`::`, `=>`, `->`)
//!   and the shifts (`<<`, `>>`). `>>` is lexed as one token even when
//!   it closes two generic lists (`Vec<Vec<u8>>`); [`crate::parser`]
//!   splits it back into two `>` while skipping generics.
//!
//! Everything else (numbers, idents, single-char punctuation) is lexed
//! just precisely enough to carry a line number.

/// What kind of token this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including `_`).
    Ident,
    /// Punctuation; `::`, `=>` and `->` are single tokens.
    Punct,
    /// String/char/byte/number literal (text is not preserved verbatim
    /// for strings; lints never need literal contents).
    Literal,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokKind,
    /// Source text (empty for string-ish literals).
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: u32,
}

impl Token {
    /// Whether this is an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokKind::Ident && self.text == text
    }

    /// Whether this is punctuation with exactly this text.
    pub fn is_punct(&self, text: &str) -> bool {
        self.kind == TokKind::Punct && self.text == text
    }
}

/// One comment (`//` to end of line, or a whole `/* */` block).
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Comment text, including the leading `//` or `/*`.
    pub text: String,
}

/// A lexed source file: code tokens plus comments, both line-stamped.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens in source order.
    pub tokens: Vec<Token>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

/// Lexes `src`. Unterminated literals/comments are tolerated (the rest
/// of the file is swallowed into the open token) — the lint pass runs
/// on code `rustc` already accepted, so this only matters for fixtures.
pub fn lex(src: &str) -> Lexed {
    Lexer { chars: src.chars().collect(), pos: 0, line: 1, out: Lexed::default() }.run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokKind, text: impl Into<String>, line: u32) {
        self.out.tokens.push(Token { kind, text: text.into(), line });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            if c.is_whitespace() {
                self.bump();
            } else if c == '/' && self.peek(1) == Some('/') {
                self.line_comment();
            } else if c == '/' && self.peek(1) == Some('*') {
                self.block_comment();
            } else if self.raw_string_ahead() {
                self.raw_string();
            } else if (c == 'b' && self.peek(1) == Some('"')) || c == '"' {
                self.string(c == 'b');
            } else if c == 'b' && self.peek(1) == Some('\'') {
                self.bump();
                self.char_literal();
            } else if c == '\'' {
                self.lifetime_or_char();
            } else if c == 'r' && self.peek(1) == Some('#') && self.peek(2).is_some_and(ident_start)
            {
                // Raw identifier: r#match. Keep the prefix so `r#type`
                // never collides with the `type` keyword downstream.
                let line = self.line;
                self.bump();
                self.bump();
                let text = format!("r#{}", self.ident_text());
                self.push(TokKind::Ident, text, line);
            } else if c.is_ascii_digit() {
                self.number();
            } else if ident_start(c) {
                let line = self.line;
                let text = self.ident_text();
                self.push(TokKind::Ident, text, line);
            } else {
                self.punct();
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment { line, text });
    }

    fn block_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.out.comments.push(Comment { line, text });
    }

    /// `r"`, `r#"`, `br"`, `br#"` (any number of hashes) ahead?
    fn raw_string_ahead(&self) -> bool {
        let mut i = 0;
        if self.peek(i) == Some('b') {
            i += 1;
        }
        if self.peek(i) != Some('r') {
            return false;
        }
        i += 1;
        while self.peek(i) == Some('#') {
            i += 1;
        }
        self.peek(i) == Some('"')
    }

    fn raw_string(&mut self) {
        let line = self.line;
        if self.peek(0) == Some('b') {
            self.bump();
        }
        self.bump(); // r
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        loop {
            match self.bump() {
                None => break,
                Some('"') => {
                    let mut matched = 0usize;
                    while matched < hashes && self.peek(0) == Some('#') {
                        matched += 1;
                        self.bump();
                    }
                    if matched == hashes {
                        break;
                    }
                }
                Some(_) => {}
            }
        }
        self.push(TokKind::Literal, "", line);
    }

    fn string(&mut self, byte_prefix: bool) {
        let line = self.line;
        if byte_prefix {
            self.bump();
        }
        self.bump(); // opening quote
        loop {
            match self.bump() {
                None | Some('"') => break,
                Some('\\') => {
                    self.bump();
                }
                Some(_) => {}
            }
        }
        self.push(TokKind::Literal, "", line);
    }

    fn char_literal(&mut self) {
        let line = self.line;
        self.bump(); // opening quote
        loop {
            match self.bump() {
                None | Some('\'') => break,
                Some('\\') => {
                    self.bump();
                }
                Some(_) => {}
            }
        }
        self.push(TokKind::Literal, "", line);
    }

    fn lifetime_or_char(&mut self) {
        // `'a` (lifetime, no closing quote) vs `'a'` / `'\n'` (char).
        let is_lifetime = self.peek(1).is_some_and(ident_start) && self.peek(2) != Some('\'');
        if is_lifetime {
            let line = self.line;
            self.bump(); // '
            let mut text = String::from("'");
            text.push_str(&self.ident_text());
            self.push(TokKind::Punct, text, line);
        } else {
            self.char_literal();
        }
    }

    fn number(&mut self) {
        let line = self.line;
        let mut text = String::new();
        let mut prev = '\0';
        while let Some(c) = self.peek(0) {
            let take = c.is_ascii_alphanumeric()
                || c == '_'
                || (c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()) && prev != '.')
                || ((c == '+' || c == '-') && (prev == 'e' || prev == 'E') && text.contains('.'));
            if !take {
                break;
            }
            text.push(c);
            prev = c;
            self.bump();
        }
        self.push(TokKind::Literal, text, line);
    }

    fn ident_text(&mut self) -> String {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        text
    }

    fn punct(&mut self) {
        let line = self.line;
        let c = self.peek(0).unwrap_or('\0');
        let pair: Option<&str> = match (c, self.peek(1)) {
            (':', Some(':')) => Some("::"),
            ('=', Some('>')) => Some("=>"),
            ('-', Some('>')) => Some("->"),
            ('<', Some('<')) => Some("<<"),
            ('>', Some('>')) => Some(">>"),
            _ => None,
        };
        if let Some(p) = pair {
            self.bump();
            self.bump();
            self.push(TokKind::Punct, p, line);
        } else {
            self.bump();
            self.push(TokKind::Punct, c.to_string(), line);
        }
    }
}

fn ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().filter(|t| t.kind == TokKind::Ident).map(|t| t.text).collect()
    }

    #[test]
    fn strings_and_comments_do_not_leak_tokens() {
        let src = r##"
            // unwrap() in a comment
            /* .expect( in /* a nested */ block */
            let s = "call .unwrap() here";
            let r = r#"also .expect("x") here"#;
            let b = b"bytes .unwrap()";
            real_ident();
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(!ids.contains(&"expect".to_string()));
        assert_eq!(lex(src).comments.len(), 2);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let lexed = lex(src);
        // The char literal 'x' must end the token stream cleanly: the
        // final token is the closing brace, not a swallowed remainder.
        assert!(lexed.tokens.last().unwrap().is_punct("}"));
        assert!(lexed.tokens.iter().any(|t| t.is_punct("'a")));
    }

    #[test]
    fn escaped_quote_char_literal() {
        let src = r"let q = '\''; after();";
        assert!(idents(src).contains(&"after".to_string()));
    }

    #[test]
    fn multi_char_puncts_are_single_tokens() {
        let lexed = lex("match x { A::B => 1, _ => 2 }");
        assert!(lexed.tokens.iter().any(|t| t.is_punct("::")));
        assert!(lexed.tokens.iter().any(|t| t.is_punct("=>")));
    }

    #[test]
    fn line_numbers_are_one_based_and_tracked() {
        let lexed = lex("a\nb\n\nc");
        let lines: Vec<u32> = lexed.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn raw_identifiers_keep_their_prefix() {
        // `r#match` must stay distinguishable from the `match` keyword:
        // the parser decides "is this a match expression?" on token
        // text, and a stripped prefix would misparse `let r#type = ...`.
        let ids = idents("let r#match = 1; let r#type = r#fn();");
        assert!(ids.contains(&"r#match".to_string()));
        assert!(ids.contains(&"r#type".to_string()));
        assert!(ids.contains(&"r#fn".to_string()));
        assert!(!ids.contains(&"match".to_string()));
        assert!(!ids.contains(&"type".to_string()));
    }

    #[test]
    fn shifts_lex_as_single_tokens() {
        let lexed = lex("let x = (key << 8) | (key >> 24);");
        assert!(lexed.tokens.iter().any(|t| t.is_punct("<<")));
        assert!(lexed.tokens.iter().any(|t| t.is_punct(">>")));
    }

    #[test]
    fn nested_generic_close_lexes_as_shift_token() {
        // The lexer is context-free: `Vec<Vec<u8>>` ends in one `>>`
        // token. The parser's generic skipper splits it (see
        // `parser::tests::nested_generics_split_shift_right`).
        let lexed = lex("fn f(v: Vec<Vec<u8>>) {}");
        assert_eq!(lexed.tokens.iter().filter(|t| t.is_punct(">>")).count(), 1);
        assert_eq!(lexed.tokens.iter().filter(|t| t.is_punct(">")).count(), 0);
    }

    #[test]
    fn numbers_with_ranges_and_methods() {
        // `0..10` must not swallow the range dots; `1.max(2)` must not
        // treat `.max` as a fraction.
        let lexed = lex("let x = 0..10; let y = 1.max(2); let z = 1.5e-3;");
        assert!(lexed.tokens.iter().any(|t| t.is_ident("max")));
        let nums: Vec<&str> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Literal)
            .map(|t| t.text.as_str())
            .collect();
        assert!(nums.contains(&"0"));
        assert!(nums.contains(&"10"));
        assert!(nums.contains(&"1.5e-3"));
    }
}
