//! The interprocedural analyses L008–L011, built on [`crate::parser`]
//! and [`crate::callgraph`].
//!
//! Soundness stance — **conservative over-approximation**:
//!
//! * every same-name candidate callee is kept (no type information),
//!   except candidates in crates the caller does not depend on (such an
//!   edge cannot link at build time) and std trait-protocol names like
//!   `next`/`fmt` (see [`crate::callgraph`]);
//! * calls inside closures count as calls of the enclosing function;
//! * a callee that resolves to *zero* workspace functions is looked up
//!   in the effect knowledge base ([`effect_of`]) — a curated table of
//!   the std/vendored surface the hot path uses — and anything not in
//!   the table is assumed to both panic and allocate;
//! * the documented trust decisions (each marked in the table):
//!   `from`/`into` are treated as non-allocating conversions, closure
//!   *adapters* (`map`, `unwrap_or_else`, …) are clean because their
//!   closure bodies are scanned as events of the enclosing function,
//!   and `debug_assert!` is excluded (compiled out of release builds).
//!
//! False positives are burned down with the same
//! `// lint: allow(Lxxx) — reason` suppressions as the token lints;
//! the suppression must sit at the reported *sink* line.

use std::collections::{BTreeSet, HashMap, HashSet};
use std::path::Path;

use crate::callgraph::CallGraph;
use crate::config::{self, RootsConfig};
use crate::lexer::lex;
use crate::lints::{collect_rs_files, parse_suppressions, Suppressions, Violation};
use crate::parser::{parse_file, Callee, Event, FnItem};

/// Macros whose expansion can panic (`debug_assert!` deliberately
/// excluded: it is compiled out of release builds).
const PANIC_MACROS: &[&str] =
    &["panic", "assert", "assert_eq", "assert_ne", "unreachable", "todo", "unimplemented"];

/// Macros whose expansion allocates.
const ALLOC_MACROS: &[&str] = &["format", "vec"];

/// Files L011 applies to: the wire codec and the counter table, where
/// every integer is a length, offset, or counter.
const L011_FILES: &[&str] = &["crates/serve/src/proto.rs", "crates/entropy/src/fastmap.rs"];

/// What an unresolved callee may do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Effect {
    pub panics: bool,
    pub allocs: bool,
    /// Whether the verdict came from the knowledge base (vs. assumed).
    pub known: bool,
}

const CLEAN: Effect = Effect { panics: false, allocs: false, known: true };
const PANICS: Effect = Effect { panics: true, allocs: false, known: true };
const ALLOCS: Effect = Effect { panics: false, allocs: true, known: true };
const UNKNOWN: Effect = Effect { panics: true, allocs: true, known: false };

/// `Qualifier::name` entries, consulted before the name-only table.
const KB_QUALIFIED: &[(&str, Effect)] = &[
    ("mem::swap", CLEAN),
    ("mem::take", CLEAN),
    ("mem::replace", CLEAN),
    ("mem::size_of", CLEAN),
    ("cmp::min", CLEAN),
    ("cmp::max", CLEAN),
    ("Vec::new", CLEAN), // capacity 0: the allocation happens at the first push
    ("Vec::with_capacity", ALLOCS),
    ("Vec::from", ALLOCS),
    ("String::new", CLEAN), // capacity 0, as with Vec::new
    ("String::with_capacity", ALLOCS),
    ("String::from", ALLOCS),
    ("Box::new", ALLOCS),
    ("BinaryHeap::new", ALLOCS),
    ("BinaryHeap::with_capacity", ALLOCS),
    ("VecDeque::new", ALLOCS),
    ("VecDeque::with_capacity", ALLOCS),
    ("Instant::now", CLEAN),
    ("Duration::from_secs", CLEAN),
    ("Duration::from_micros", CLEAN),
];

/// Name-keyed effects for the std/vendored surface the workspace uses.
/// Closure-taking adapters are clean by design: their closure bodies
/// are scanned as events of the enclosing function.
const KB: &[(&str, Effect)] = &[
    // Panicking calls.
    ("unwrap", PANICS),
    ("expect", PANICS),
    ("split_at", PANICS),
    ("split_at_mut", PANICS),
    ("copy_from_slice", PANICS),
    ("clone_from_slice", PANICS),
    ("swap", PANICS),   // slice swap is index-checked; mem::swap is qualified above
    ("remove", PANICS), // Vec::remove is index-checked (HashMap::remove is not, kept conservative)
    ("drain", PANICS),  // range-checked
    ("rem_euclid", PANICS), // zero divisor
    ("gen_range", PANICS), // vendored rand: panics on an empty range
    ("swap_remove", PANICS), // index-checked
    ("ilog2", PANICS),  // panics on zero
    // Allocating calls.
    ("push", ALLOCS),
    ("push_back", ALLOCS),
    ("with_capacity", ALLOCS),
    ("resize", ALLOCS),
    ("into_boxed_slice", ALLOCS), // may shrink-reallocate
    ("push_str", ALLOCS),
    ("insert", ALLOCS),
    ("or_insert", ALLOCS),
    ("or_insert_with", ALLOCS),
    ("or_default", ALLOCS),
    ("reserve", ALLOCS),
    ("reserve_exact", ALLOCS),
    ("extend", ALLOCS),
    ("extend_from_slice", ALLOCS),
    ("to_vec", ALLOCS),
    ("to_owned", ALLOCS),
    ("to_string", ALLOCS),
    ("collect", ALLOCS),
    ("clone", ALLOCS), // Clone of heap-owning types allocates; derived Copy-ish clones are free
    ("sort", ALLOCS),
    ("sort_by", ALLOCS),
    ("sort_by_key", ALLOCS),
    ("send", ALLOCS), // mpsc send may grow the channel buffer
    ("try_send", CLEAN),
    // Clean accessors, iterators, and arithmetic.
    ("len", CLEAN),
    ("is_empty", CLEAN),
    ("iter", CLEAN),
    ("iter_mut", CLEAN),
    ("into_iter", CLEAN),
    ("enumerate", CLEAN),
    ("zip", CLEAN),
    ("rev", CLEAN),
    ("map", CLEAN),
    ("filter", CLEAN),
    ("filter_map", CLEAN),
    ("flat_map", CLEAN),
    ("flatten", CLEAN),
    ("take", CLEAN),
    ("skip", CLEAN),
    ("chain", CLEAN),
    ("copied", CLEAN),
    ("cloned", CLEAN),
    ("sum", CLEAN),
    ("product", CLEAN),
    ("count", CLEAN),
    ("fold", CLEAN),
    ("all", CLEAN),
    ("any", CLEAN),
    ("position", CLEAN),
    ("find", CLEAN),
    ("find_map", CLEAN),
    ("contains", CLEAN),
    ("contains_key", CLEAN),
    ("starts_with", CLEAN),
    ("ends_with", CLEAN),
    ("get", CLEAN),
    ("get_mut", CLEAN),
    ("first", CLEAN),
    ("last", CLEAN),
    ("next", CLEAN),
    ("peekable", CLEAN),
    ("peek", CLEAN),
    ("by_ref", CLEAN),
    ("chunks", CLEAN),       // chunk size is a non-zero constant at every call site
    ("chunks_exact", CLEAN), // chunk size is a non-zero constant at every call site
    ("chunks_exact_mut", CLEAN),
    ("remainder", CLEAN),
    ("windows", CLEAN),   // window size is a non-zero constant at every call site
    ("pop", CLEAN),       // Vec::pop returns Option
    ("truncate", CLEAN),  // no-op when longer than len
    ("pop_front", CLEAN), // VecDeque::pop_front returns Option
    ("fetch_add", CLEAN), // atomic RMW wraps, never panics
    ("cast", CLEAN),      // pointer type cast, pure
    ("retain", CLEAN),
    ("entry", CLEAN), // the Entry itself; inserting through it is or_insert/or_default
    ("into_mut", CLEAN),
    ("split", CLEAN),
    ("rsplit", CLEAN),
    ("split_once", CLEAN),
    ("rsplit_once", CLEAN),
    ("split_whitespace", CLEAN),
    ("splitn", CLEAN),
    ("lines", CLEAN),
    ("bytes", CLEAN),
    ("chars", CLEAN),
    ("trim", CLEAN),
    ("trim_start", CLEAN),
    ("trim_end", CLEAN),
    ("next_power_of_two", CLEAN), // wraps to 0 on release-mode overflow, never panics there
    ("gen", CLEAN),               // vendored rand: pure state transition
    ("seed_from_u64", CLEAN),     // vendored rand: array-state seeding, no allocation
    ("split_first", CLEAN),
    ("split_last", CLEAN),
    ("sort_unstable", CLEAN),
    ("sort_unstable_by", CLEAN),
    ("sort_unstable_by_key", CLEAN),
    ("binary_search", CLEAN),
    ("binary_search_by", CLEAN),
    ("fill", CLEAN),
    ("min", CLEAN),
    ("max", CLEAN),
    ("min_by", CLEAN),
    ("max_by", CLEAN),
    ("min_by_key", CLEAN),
    ("max_by_key", CLEAN),
    ("abs", CLEAN),
    ("sqrt", CLEAN),
    ("ln", CLEAN),
    ("log2", CLEAN),
    ("log10", CLEAN),
    ("exp", CLEAN),
    ("powi", CLEAN),
    ("powf", CLEAN),
    ("floor", CLEAN),
    ("ceil", CLEAN),
    ("round", CLEAN),
    ("trunc", CLEAN),
    ("fract", CLEAN),
    ("signum", CLEAN),
    ("clamp", CLEAN), // bounds are constants at every call site
    ("total_cmp", CLEAN),
    ("partial_cmp", CLEAN),
    ("cmp", CLEAN),
    ("eq", CLEAN),
    ("ne", CLEAN),
    ("hash", CLEAN),
    ("then", CLEAN),
    ("then_some", CLEAN),
    ("then_with", CLEAN),
    // Option/Result plumbing.
    ("unwrap_or", CLEAN),
    ("unwrap_or_else", CLEAN),
    ("unwrap_or_default", CLEAN),
    ("map_or", CLEAN),
    ("map_or_else", CLEAN),
    ("map_err", CLEAN),
    ("ok", CLEAN),
    ("err", CLEAN),
    ("ok_or", CLEAN),
    ("ok_or_else", CLEAN),
    ("and_then", CLEAN),
    ("or_else", CLEAN),
    ("replace", CLEAN),
    // Conversions — trust decision: the hot path only converts between
    // integer/float primitives, which neither panic nor allocate.
    ("from", CLEAN),
    ("into", CLEAN),
    ("try_from", CLEAN),
    ("try_into", CLEAN),
    ("to_le_bytes", CLEAN),
    ("to_be_bytes", CLEAN),
    ("from_le_bytes", CLEAN),
    ("from_be_bytes", CLEAN),
    ("to_bits", CLEAN),
    ("from_bits", CLEAN),
    ("count_ones", CLEAN),
    ("count_zeros", CLEAN),
    ("leading_zeros", CLEAN),
    ("trailing_zeros", CLEAN),
    ("rotate_left", CLEAN), // integer bit-rotate (slice rotate is absent from the hot path)
    ("rotate_right", CLEAN),
    ("pow", CLEAN), // exponents are small constants at every call site
    ("div_euclid", CLEAN),
    ("default", CLEAN),
    ("drop", CLEAN),
    // Locks and channels (discipline is L010's job, not reachability's).
    ("lock", CLEAN),
    ("notify_one", CLEAN),
    ("notify_all", CLEAN),
    ("wait", CLEAN),
    ("elapsed", CLEAN),
    ("as_nanos", CLEAN),
    ("as_micros", CLEAN),
    ("as_secs_f64", CLEAN),
];

/// Prefixes that are clean wherever they appear (`checked_add`,
/// `saturating_mul`, `wrapping_shl`, `is_ascii`, `as_bytes`, …).
const CLEAN_PREFIXES: &[&str] =
    &["checked_", "saturating_", "wrapping_", "overflowing_", "is_", "as_"];

/// Rust integer/float primitive type names.
fn is_primitive(name: &str) -> bool {
    matches!(
        name,
        "u8" | "u16"
            | "u32"
            | "u64"
            | "u128"
            | "usize"
            | "i8"
            | "i16"
            | "i32"
            | "i64"
            | "i128"
            | "isize"
            | "f32"
            | "f64"
            | "char"
            | "bool"
    )
}

/// The assumed effect of a callee that resolved to no workspace fn.
pub fn effect_of(callee: &Callee) -> Effect {
    let name = callee.name();
    if let Callee::Path(segs) = callee {
        if segs.len() >= 2 {
            let qualifier = &segs[segs.len() - 2];
            // `u64::from`, `f64::max`, … — primitive ops are clean.
            if is_primitive(qualifier) {
                return CLEAN;
            }
            let key = format!("{qualifier}::{name}");
            if let Some((_, e)) = KB_QUALIFIED.iter().find(|(k, _)| *k == key) {
                return *e;
            }
        }
    }
    if let Some((_, e)) = KB.iter().find(|(k, _)| *k == name) {
        return *e;
    }
    if CLEAN_PREFIXES.iter().any(|p| name.starts_with(p)) {
        return CLEAN;
    }
    // `Some(..)`, `Ok(..)`, `FileClass::Text(..)` — plain enum/tuple
    // constructors neither panic nor allocate.
    if name.chars().next().is_some_and(char::is_uppercase) {
        return CLEAN;
    }
    UNKNOWN
}

// ------------------------------------------------------------ workspace

/// The parsed workspace: call graph plus per-file suppressions.
pub struct Workspace {
    pub graph: CallGraph,
    supp: HashMap<String, Suppressions>,
}

/// Lexes and parses every `crates/*/src/**.rs` library file under
/// `root`. `src/bin/` harnesses are excluded from the graph entirely:
/// they are not reachable from library roots, but their look-alike
/// types (e.g. the benchmark's baseline kernels) would otherwise be
/// pulled into method-call fan-out.
pub fn parse_workspace(root: &Path) -> std::io::Result<Workspace> {
    let mut files = Vec::new();
    for entry in std::fs::read_dir(root.join("crates"))? {
        let src_dir = entry?.path().join("src");
        if src_dir.is_dir() {
            collect_rs_files(&src_dir, &mut files)?;
        }
    }
    files.sort();
    let mut items = Vec::new();
    let mut supp = HashMap::new();
    for file in files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace(std::path::MAIN_SEPARATOR, "/");
        if rel.contains("/bin/") {
            continue;
        }
        let src = std::fs::read_to_string(&file)?;
        let lexed = lex(&src);
        // E000 diagnostics for malformed suppressions are lints::run's
        // job; here only the valid entries matter.
        let (suppressions, _bad) = parse_suppressions(&rel, &lexed.comments);
        supp.insert(rel.clone(), suppressions);
        items.extend(parse_file(&rel, &lexed));
    }
    let mut graph = CallGraph::build(items);
    graph.set_deps(workspace_deps(root)?);
    Ok(Workspace { graph, supp })
}

/// Reads every `crates/*/Cargo.toml` and returns, per crate directory,
/// the reflexive-transitive set of workspace crates its *library*
/// target depends on (dev-dependencies are ignored: test code is never
/// analyzed). This bounds call resolution to edges that can link.
fn workspace_deps(root: &Path) -> std::io::Result<HashMap<String, HashSet<String>>> {
    let mut pkg_to_dir: HashMap<String, String> = HashMap::new();
    let mut direct: HashMap<String, Vec<String>> = HashMap::new();
    for entry in std::fs::read_dir(root.join("crates"))? {
        let dir_path = entry?.path();
        let manifest = dir_path.join("Cargo.toml");
        if !manifest.is_file() {
            continue;
        }
        let dir = dir_path.file_name().unwrap_or_default().to_string_lossy().to_string();
        let mut section = String::new();
        let mut deps = Vec::new();
        for raw in std::fs::read_to_string(&manifest)?.lines() {
            let line = raw.trim();
            if line.starts_with('[') {
                section = line.to_string();
                continue;
            }
            if section == "[package]" {
                if let Some(("name", v)) = line.split_once('=').map(|(k, v)| (k.trim(), v.trim())) {
                    pkg_to_dir.insert(v.trim_matches('"').to_string(), dir.clone());
                }
            } else if section == "[dependencies]" {
                if let Some((k, _)) = line.split_once('=') {
                    deps.push(k.trim().to_string());
                }
            }
        }
        direct.insert(dir, deps);
    }
    let mut out = HashMap::new();
    for dir in direct.keys() {
        let mut seen: HashSet<String> = HashSet::new();
        let mut stack = vec![dir.clone()];
        while let Some(d) = stack.pop() {
            if !seen.insert(d.clone()) {
                continue;
            }
            for dep in direct.get(&d).into_iter().flatten() {
                if let Some(dep_dir) = pkg_to_dir.get(dep) {
                    stack.push(dep_dir.clone());
                }
            }
        }
        out.insert(dir.clone(), seen);
    }
    Ok(out)
}

/// Runs L008–L011 over the workspace at `root`, reading the roots and
/// lock order from `crates/xtask/roots.toml`.
pub fn run(root: &Path) -> std::io::Result<Vec<Violation>> {
    let cfg_path = root.join("crates").join("xtask").join("roots.toml");
    let text = std::fs::read_to_string(&cfg_path)?;
    let cfg = config::parse(&text)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    let ws = parse_workspace(root)?;
    Ok(analyze(&ws, &cfg))
}

/// Runs all four analyses and applies suppressions.
pub fn analyze(ws: &Workspace, cfg: &RootsConfig) -> Vec<Violation> {
    let mut raw = Vec::new();
    raw.extend(l008_panic_reachability(ws, cfg));
    raw.extend(l009_alloc_reachability(ws, cfg));
    raw.extend(l010_lock_discipline(ws, cfg));
    raw.extend(l011_unchecked_arithmetic(ws));
    let mut out: Vec<Violation> = raw
        .into_iter()
        .filter(|v| !ws.supp.get(&v.file).is_some_and(|s| s.covers(v.lint, v.line)))
        .collect();
    out.sort_by(|a, b| (&a.file, a.line, a.lint).cmp(&(&b.file, b.line, b.lint)));
    out
}

/// Looks up root specs; unmatched specs are themselves violations so a
/// rename can never silently disable an analysis.
fn resolve_roots(
    graph: &CallGraph,
    specs: &[String],
    lint: &'static str,
) -> (Vec<usize>, Vec<Violation>) {
    let mut roots = Vec::new();
    let mut missing = Vec::new();
    for spec in specs {
        let found = graph.find(spec);
        if found.is_empty() {
            missing.push(Violation {
                file: "crates/xtask/roots.toml".to_string(),
                line: 1,
                lint,
                message: format!("root `{spec}` matches no workspace function (rename drift?)"),
            });
        }
        roots.extend(found);
    }
    (roots, missing)
}

// ----------------------------------------------------------------- L008

fn l008_panic_reachability(ws: &Workspace, cfg: &RootsConfig) -> Vec<Violation> {
    let (roots, mut out) = resolve_roots(&ws.graph, &cfg.panic_roots, "L008");
    let parents = ws.graph.reachable(&roots);
    let mut reached: Vec<usize> = parents.keys().copied().collect();
    reached.sort_unstable();
    for i in reached {
        let f = &ws.graph.fns[i];
        let chain = ws.graph.chain(&parents, i);
        for event in &f.events {
            let (line, what) = match event {
                Event::Macro { name, line } if PANIC_MACROS.contains(&name.as_str()) => {
                    (*line, format!("`{name}!`"))
                }
                Event::Index { line } => (*line, "slice/array index `[]`".to_string()),
                Event::Call { callee, line, .. } => {
                    if !ws.graph.resolve(callee, f).is_empty() {
                        continue; // workspace callee: its body is walked
                    }
                    let e = effect_of(callee);
                    if !e.panics {
                        continue;
                    }
                    let tag = if e.known { "" } else { " (unresolved, assumed panicking)" };
                    (*line, format!("call to `{}`{tag}", callee.display()))
                }
                _ => continue,
            };
            out.push(Violation {
                file: f.file.clone(),
                line,
                lint: "L008",
                message: format!("{what} may panic on the hot path ({chain})"),
            });
        }
    }
    out
}

// ----------------------------------------------------------------- L009

fn l009_alloc_reachability(ws: &Workspace, cfg: &RootsConfig) -> Vec<Violation> {
    let (roots, mut out) = resolve_roots(&ws.graph, &cfg.alloc_roots, "L009");
    let parents = ws.graph.reachable(&roots);
    let mut reached: Vec<usize> = parents.keys().copied().collect();
    reached.sort_unstable();
    for i in reached {
        let f = &ws.graph.fns[i];
        let chain = ws.graph.chain(&parents, i);
        for event in &f.events {
            let (line, what) = match event {
                Event::Macro { name, line } if ALLOC_MACROS.contains(&name.as_str()) => {
                    (*line, format!("`{name}!`"))
                }
                Event::Call { callee, line, .. } => {
                    if !ws.graph.resolve(callee, f).is_empty() {
                        continue;
                    }
                    let e = effect_of(callee);
                    if !e.allocs {
                        continue;
                    }
                    let tag = if e.known { "" } else { " (unresolved, assumed allocating)" };
                    (*line, format!("call to `{}`{tag}", callee.display()))
                }
                _ => continue,
            };
            out.push(Violation {
                file: f.file.clone(),
                line,
                lint: "L009",
                message: format!("{what} allocates on the steady-state path ({chain})"),
            });
        }
    }
    out
}

// ----------------------------------------------------------------- L010

/// Whether L010 analyzes functions from this file.
fn l010_scope(file: &str) -> bool {
    (file.starts_with("crates/serve/src/") && !file.contains("/bin/"))
        || file == "crates/core/src/concurrent.rs"
}

/// Per-function transitive lock summaries: which locks a call may
/// acquire, and whether it may send on a channel.
struct LockSummaries {
    acquires: Vec<BTreeSet<String>>,
    sends: Vec<bool>,
}

/// L010 follows a call edge only when resolution is *unambiguous*.
/// Common method names (`len`, `extend`, `clear`, …) fan out to every
/// same-named workspace fn; propagating lock summaries through that
/// fan-out would report a queue's internal locking at every unrelated
/// `.len()` call site. L008/L009 keep the full fan-out — a missed panic
/// is worse than a noisy one — but lock discipline needs the edge to be
/// real.
fn resolve_unique(graph: &CallGraph, callee: &Callee, ctx: &FnItem) -> Option<usize> {
    match graph.resolve(callee, ctx).as_slice() {
        [t] => Some(*t),
        _ => None,
    }
}

fn lock_summaries(graph: &CallGraph, cfg: &RootsConfig) -> LockSummaries {
    let n = graph.fns.len();
    let mut acquires: Vec<BTreeSet<String>> = vec![BTreeSet::new(); n];
    let mut sends = vec![false; n];
    for (i, f) in graph.fns.iter().enumerate() {
        for event in &f.events {
            let Event::Call { callee, receiver, .. } = event else { continue };
            match callee.name() {
                "lock" => {
                    let name = receiver.clone().unwrap_or_else(|| "?".to_string());
                    acquires[i].insert(name);
                }
                "send" => sends[i] = true,
                _ => {}
            }
            if let Some(lock) = cfg.guard_lock(callee.name()) {
                acquires[i].insert(lock.to_string());
            }
        }
    }
    // Propagate through calls to a fixpoint (the graph is small).
    loop {
        let mut changed = false;
        for i in 0..n {
            let f = &graph.fns[i];
            for event in &f.events {
                let Event::Call { callee, .. } = event else { continue };
                let Some(t) = resolve_unique(graph, callee, f) else { continue };
                if t == i {
                    continue;
                }
                if sends[t] && !sends[i] {
                    sends[i] = true;
                    changed = true;
                }
                let extra: Vec<String> = acquires[t].difference(&acquires[i]).cloned().collect();
                if !extra.is_empty() {
                    acquires[i].extend(extra);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    LockSummaries { acquires, sends }
}

/// A held lock guard during the intra-function walk.
struct Guard {
    lock: String,
    binding: Option<String>,
    depth: u32,
    line: u32,
}

fn l010_lock_discipline(ws: &Workspace, cfg: &RootsConfig) -> Vec<Violation> {
    let graph = &ws.graph;
    let sums = lock_summaries(graph, cfg);
    let mut out = Vec::new();
    for f in &graph.fns {
        if f.is_test || !l010_scope(&f.file) {
            continue;
        }
        let mut held: Vec<Guard> = Vec::new();
        let push_violation = |line: u32, message: String, out: &mut Vec<Violation>| {
            out.push(Violation { file: f.file.clone(), line, lint: "L010", message });
        };
        for event in &f.events {
            match event {
                Event::ScopeEnd { depth } => held.retain(|g| g.depth <= *depth),
                Event::StmtEnd { depth } => {
                    // Unbound guards are temporaries: they die with the
                    // statement that created them.
                    held.retain(|g| g.binding.is_some() || g.depth > *depth)
                }
                Event::Call { callee, receiver, binding, arg0, line, depth } => {
                    let name = callee.name();
                    if name == "drop" {
                        if let Some(arg) = arg0 {
                            held.retain(|g| g.binding.as_deref() != Some(arg.as_str()));
                        }
                        continue;
                    }
                    let acquired: Option<String> = if name == "lock" {
                        Some(receiver.clone().unwrap_or_else(|| "?".to_string()))
                    } else {
                        cfg.guard_lock(name).map(str::to_string)
                    };
                    if let Some(lock) = acquired {
                        let rank = cfg.lock_rank(&lock);
                        if rank.is_none() {
                            push_violation(
                                *line,
                                format!(
                                    "lock `{lock}` acquired in {} is not in the declared \
                                     lock order of roots.toml",
                                    f.qualified()
                                ),
                                &mut out,
                            );
                        }
                        for g in &held {
                            let outer = cfg.lock_rank(&g.lock);
                            if g.lock == lock {
                                push_violation(
                                    *line,
                                    format!(
                                        "lock `{lock}` re-acquired in {} while already held \
                                         (acquired line {}) — self-deadlock",
                                        f.qualified(),
                                        g.line
                                    ),
                                    &mut out,
                                );
                            } else if !matches!((outer, rank), (Some(o), Some(r)) if o < r) {
                                push_violation(
                                    *line,
                                    format!(
                                        "lock `{lock}` acquired in {} while holding `{}` \
                                         (line {}) violates the declared order {:?}",
                                        f.qualified(),
                                        g.lock,
                                        g.line,
                                        cfg.lock_order
                                    ),
                                    &mut out,
                                );
                            }
                        }
                        held.push(Guard {
                            lock,
                            binding: binding.clone(),
                            depth: *depth,
                            line: *line,
                        });
                        continue;
                    }
                    if name == "send" && !held.is_empty() {
                        push_violation(
                            *line,
                            format!(
                                "channel send in {} while holding lock `{}` (line {}); \
                                 release the guard before sending",
                                f.qualified(),
                                held[held.len() - 1].lock,
                                held[held.len() - 1].line
                            ),
                            &mut out,
                        );
                        continue;
                    }
                    // A call while holding: the callee's transitive
                    // acquisitions and sends happen under our guard.
                    if held.is_empty() {
                        continue;
                    }
                    if let Some(t) = resolve_unique(graph, callee, f) {
                        if sums.sends[t] {
                            push_violation(
                                *line,
                                format!(
                                    "{} calls {} (which sends on a channel) while holding \
                                     lock `{}` (line {})",
                                    f.qualified(),
                                    graph.fns[t].qualified(),
                                    held[held.len() - 1].lock,
                                    held[held.len() - 1].line
                                ),
                                &mut out,
                            );
                        }
                        for inner in &sums.acquires[t] {
                            for g in &held {
                                let (outer_rank, inner_rank) =
                                    (cfg.lock_rank(&g.lock), cfg.lock_rank(inner));
                                let ordered = matches!(
                                    (outer_rank, inner_rank),
                                    (Some(o), Some(r)) if o < r
                                );
                                if !ordered {
                                    push_violation(
                                        *line,
                                        format!(
                                            "{} calls {} (which acquires `{inner}`) while \
                                             holding `{}` (line {}); nested acquisition \
                                             violates the declared order {:?}",
                                            f.qualified(),
                                            graph.fns[t].qualified(),
                                            g.lock,
                                            g.line,
                                            cfg.lock_order
                                        ),
                                        &mut out,
                                    );
                                }
                            }
                        }
                    }
                }
                _ => {}
            }
        }
    }
    out
}

// ----------------------------------------------------------------- L011

fn l011_unchecked_arithmetic(ws: &Workspace) -> Vec<Violation> {
    let mut out = Vec::new();
    for f in &ws.graph.fns {
        if f.is_test || !L011_FILES.contains(&f.file.as_str()) {
            continue;
        }
        for event in &f.events {
            let Event::Arith { op, lhs, rhs, line } = event else { continue };
            out.push(Violation {
                file: f.file.clone(),
                line: *line,
                lint: "L011",
                message: format!(
                    "bare `{op}` on `{lhs} {op} {rhs}` in {}: lengths and counters here \
                     must use checked_/wrapping_/saturating_ arithmetic",
                    f.qualified()
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_file;

    /// Builds a workspace from `(rel_path, src)` pairs.
    fn workspace(files: &[(&str, &str)]) -> Workspace {
        let mut items = Vec::new();
        let mut supp = HashMap::new();
        for (rel, src) in files {
            let lexed = lex(src);
            let (s, _) = parse_suppressions(rel, &lexed.comments);
            supp.insert(rel.to_string(), s);
            items.extend(parse_file(rel, &lexed));
        }
        Workspace { graph: CallGraph::build(items), supp }
    }

    fn cfg_with_roots(roots: &[&str]) -> RootsConfig {
        RootsConfig {
            panic_roots: roots.iter().map(|s| s.to_string()).collect(),
            alloc_roots: roots.iter().map(|s| s.to_string()).collect(),
            lock_order: vec!["outer".into(), "inner".into()],
            guard_fns: vec![],
        }
    }

    #[test]
    fn l008_reports_transitive_panics_with_chains() {
        let ws = workspace(&[(
            "crates/core/src/demo.rs",
            r#"
pub fn hot() { warm(); }
fn warm() { deep(); }
fn deep(xs: &[u8]) -> u8 { xs[0] }
fn cold() { panic!("not reachable"); }
"#,
        )]);
        let v = analyze(&ws, &cfg_with_roots(&["hot"]));
        let l008: Vec<&Violation> = v.iter().filter(|v| v.lint == "L008").collect();
        assert_eq!(l008.len(), 1, "only the reachable index, not cold's panic: {v:?}");
        assert!(l008[0].message.contains("hot → warm → deep"), "{}", l008[0].message);
        assert_eq!(l008[0].line, 4);
    }

    #[test]
    fn l008_flags_unknown_callees_and_honors_suppressions() {
        let ws = workspace(&[(
            "crates/core/src/demo.rs",
            r#"
pub fn hot() {
    mystery_extern();
    other_mystery(); // lint: allow(L008) — vendored, audited panic-free
}
"#,
        )]);
        let cfg = cfg_with_roots(&["hot"]);
        let v = analyze(&ws, &cfg);
        let l008: Vec<&Violation> = v.iter().filter(|v| v.lint == "L008").collect();
        assert_eq!(l008.len(), 1);
        assert!(l008[0].message.contains("mystery_extern"));
    }

    #[test]
    fn l009_static_pool_alloc_twin() {
        let ws = workspace(&[(
            "crates/core/src/demo.rs",
            r#"
pub fn hot(out: &mut Vec<u8>) { grow(out); math(); }
fn grow(out: &mut Vec<u8>) { out.push(1); }
fn math() -> u64 { 2u64.saturating_add(3) }
"#,
        )]);
        let v = analyze(&ws, &cfg_with_roots(&["hot"]));
        let l009: Vec<&Violation> = v.iter().filter(|v| v.lint == "L009").collect();
        assert_eq!(l009.len(), 1, "{v:?}");
        assert!(l009[0].message.contains(".push()"));
        assert!(l009[0].message.contains("hot → grow"));
    }

    #[test]
    fn missing_roots_fail_loudly() {
        let ws = workspace(&[("crates/core/src/demo.rs", "pub fn present() {}")]);
        let v = analyze(&ws, &cfg_with_roots(&["Vanished::gone"]));
        assert!(v.iter().any(|v| v.lint == "L008" && v.message.contains("Vanished::gone")));
        assert!(v.iter().any(|v| v.lint == "L009" && v.message.contains("Vanished::gone")));
    }

    #[test]
    fn l010_flags_order_violation_and_send_under_lock() {
        let ws = workspace(&[(
            "crates/serve/src/demo.rs",
            r#"
struct S;
impl S {
    fn bad_order(&self) {
        let a = self.inner.lock();
        let b = self.outer.lock();
        drop(b);
        drop(a);
    }
    fn bad_send(&self, tx: &Sender<u8>) {
        let g = self.outer.lock();
        tx.send(1);
        drop(g);
    }
    fn good(&self, tx: &Sender<u8>) {
        let g = self.outer.lock();
        drop(g);
        tx.send(1);
        let a = self.outer.lock();
        let b = self.inner.lock();
        drop(b);
        drop(a);
    }
}
"#,
        )]);
        let v = analyze(&ws, &cfg_with_roots(&[]));
        let l010: Vec<&Violation> = v.iter().filter(|v| v.lint == "L010").collect();
        assert_eq!(l010.len(), 2, "{l010:?}");
        assert!(l010[0].message.contains("violates the declared order"));
        assert!(l010[1].message.contains("send in S::bad_send while holding lock `outer`"));
    }

    #[test]
    fn l010_sees_through_guard_fns_and_callee_summaries() {
        let ws = workspace(&[(
            "crates/serve/src/demo.rs",
            r#"
struct Q;
impl Q {
    fn lock_state(&self) -> Guard { self.inner.lock().unwrap_or_else(recover) }
    fn notifies(&self, tx: &Sender<u8>) { tx.send(9); }
    fn nested(&self) {
        let g = self.lock_state();
        self.notifies(tx);
        drop(g);
    }
}
"#,
        )]);
        let mut cfg = cfg_with_roots(&[]);
        cfg.guard_fns = vec![("lock_state".to_string(), "inner".to_string())];
        let v = analyze(&ws, &cfg);
        let l010: Vec<&Violation> = v.iter().filter(|v| v.lint == "L010").collect();
        assert_eq!(l010.len(), 1, "{l010:?}");
        assert!(l010[0].message.contains("Q::notifies"));
        assert!(l010[0].message.contains("while holding"));
    }

    #[test]
    fn l010_unbound_guard_dies_with_its_statement() {
        let ws = workspace(&[(
            "crates/serve/src/demo.rs",
            r#"
struct S;
impl S {
    fn fine(&self, tx: &Sender<u8>) {
        self.outer.lock().count += 1;
        tx.send(1);
    }
}
"#,
        )]);
        let v = analyze(&ws, &cfg_with_roots(&[]));
        assert!(v.iter().all(|v| v.lint != "L010"), "{v:?}");
    }

    #[test]
    fn l011_flags_bare_arith_in_scoped_files_only() {
        let src = r#"
fn frame_len(body: &[u8]) -> usize { body.len() + 1 }
fn ok_len(body: &[u8]) -> usize { body.len().saturating_add(1) }
"#;
        let ws =
            workspace(&[("crates/serve/src/proto.rs", src), ("crates/core/src/pipeline.rs", src)]);
        let v = analyze(&ws, &cfg_with_roots(&[]));
        let l011: Vec<&Violation> = v.iter().filter(|v| v.lint == "L011").collect();
        assert_eq!(l011.len(), 1, "{l011:?}");
        assert_eq!(l011[0].file, "crates/serve/src/proto.rs");
        assert!(l011[0].message.contains("bare `+`"));
    }
}
