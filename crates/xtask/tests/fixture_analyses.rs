//! Integration tests over the fixture mini-workspace in
//! `tests/fixtures/mini`: every interprocedural analysis has a seeded
//! positive with a pinned call chain and a clean negative, the call
//! graph is snapshot against a golden edge list, and the real
//! workspace is gated clean.

use std::path::{Path, PathBuf};

use xtask::analyses;
use xtask::lints::Violation;

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests").join("fixtures").join("mini")
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).parent().unwrap().parent().unwrap().to_path_buf()
}

fn fixture_violations() -> Vec<Violation> {
    analyses::run(&fixture_root()).expect("analyses over the fixture workspace")
}

#[track_caller]
fn assert_finding(violations: &[Violation], file: &str, lint: &str, needles: &[&str]) {
    let hit = violations
        .iter()
        .any(|v| v.file == file && v.lint == lint && needles.iter().all(|n| v.message.contains(n)));
    assert!(
        hit,
        "expected a {lint} finding in {file} containing {needles:?}; got:\n{}",
        render(violations)
    );
}

fn render(violations: &[Violation]) -> String {
    violations.iter().map(|v| format!("{v}\n")).collect()
}

#[test]
fn l008_seed_reports_the_call_chain() {
    assert_finding(
        &fixture_violations(),
        "crates/hot/src/lib.rs",
        "L008",
        &["slice/array index", "Engine::process → Engine::bump"],
    );
}

#[test]
fn l008_suppression_at_the_sink_is_honored() {
    let violations = fixture_violations();
    assert!(
        !violations.iter().any(|v| v.message.contains("Engine::reset")),
        "the suppressed index in Engine::reset must not be reported:\n{}",
        render(&violations)
    );
}

#[test]
fn l009_seed_reports_the_call_chain() {
    assert_finding(
        &fixture_violations(),
        "crates/hot/src/lib.rs",
        "L009",
        &["push", "Engine::process → Engine::flush"],
    );
}

#[test]
fn l009_ignores_allocations_off_the_root_set() {
    let violations = fixture_violations();
    assert!(
        !violations.iter().any(|v| v.message.contains("cold_setup")),
        "cold_setup is reachable from no root and must stay unreported:\n{}",
        render(&violations)
    );
}

#[test]
fn l010_seeds_report_order_reacquire_and_send() {
    let violations = fixture_violations();
    let file = "crates/serve/src/lib.rs";
    assert_finding(&violations, file, "L010", &["violates the declared order", "bad_order"]);
    assert_finding(&violations, file, "L010", &["re-acquired", "self-deadlock"]);
    assert_finding(&violations, file, "L010", &["channel send", "holding lock `inner`"]);
    assert!(
        !violations.iter().any(|v| v.message.contains("good_order")),
        "the ordered acquisition in good_order is clean:\n{}",
        render(&violations)
    );
}

#[test]
fn l011_seed_reports_bare_arithmetic() {
    let violations = fixture_violations();
    assert_finding(&violations, "crates/serve/src/proto.rs", "L011", &["bare `+`"]);
    assert!(
        !violations.iter().any(|v| v.message.contains("frame_len_checked")),
        "saturating arithmetic is clean:\n{}",
        render(&violations)
    );
}

#[test]
fn call_graph_matches_the_golden_edge_list() {
    let ws = analyses::parse_workspace(&fixture_root()).expect("parse fixture workspace");
    let rendered = ws.graph.edges_rendered().join("\n");
    let golden_path = fixture_root().join("golden_callgraph.txt");
    let golden = std::fs::read_to_string(&golden_path).expect("read golden_callgraph.txt");
    assert_eq!(
        rendered.trim(),
        golden.trim(),
        "resolved call graph drifted from {}",
        golden_path.display()
    );
}

/// The static twin of the tier-1 suite: the real workspace must be
/// clean under L008–L011 (with its committed roots and suppressions).
#[test]
fn real_workspace_is_clean_under_interprocedural_lints() {
    let violations = analyses::run(&repo_root()).expect("analyses over the real workspace");
    assert!(violations.is_empty(), "workspace regressions:\n{}", render(&violations));
}
