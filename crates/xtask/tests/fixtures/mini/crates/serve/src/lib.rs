//! Fixture lock discipline: seeded L010 findings next to a clean twin.

use std::sync::mpsc::Sender;
use std::sync::Mutex;

pub struct Hub {
    inner: Mutex<u64>,
    results: Mutex<u64>,
}

impl Hub {
    /// Negative: acquisitions follow the declared `inner` → `results`
    /// order and the guards die in reverse.
    pub fn good_order(&self) {
        let i = self.inner.lock().unwrap();
        let r = self.results.lock().unwrap();
        drop(r);
        drop(i);
    }

    /// L010 seed: `inner` after `results` inverts the declared order.
    pub fn bad_order(&self) {
        let r = self.results.lock().unwrap();
        let i = self.inner.lock().unwrap();
        drop(i);
        drop(r);
    }

    /// L010 seed: re-acquiring a lock this function already holds.
    pub fn reentrant(&self) {
        let a = self.inner.lock().unwrap();
        let b = self.inner.lock().unwrap();
        drop(b);
        drop(a);
    }

    /// L010 seed: a channel send while a guard is live.
    pub fn send_under_lock(&self, tx: &Sender<u64>) {
        let g = self.inner.lock().unwrap();
        let _ = tx.send(*g);
        drop(g);
    }
}
