//! Fixture framing arithmetic: a seeded L011 finding and its clean twin.

/// L011 seed: bare `+` on a length.
pub fn frame_len(body: &[u8]) -> usize {
    body.len() + 1
}

/// Negative: saturating arithmetic passes.
pub fn frame_len_checked(body: &[u8]) -> usize {
    body.len().saturating_add(1)
}
