//! Fixture hot path with seeded L008/L009 findings.
//!
//! The integration test pins the expected (file, lint, chain) of every
//! seed below, so the function names here are load-bearing: renaming
//! one means updating `tests/fixture_analyses.rs` and `roots.toml`.

pub struct Engine {
    counts: Vec<u64>,
    log: Vec<u8>,
}

impl Engine {
    /// The declared hot-path root of the mini workspace.
    pub fn process(&mut self, byte: u8) {
        self.bump(byte);
        self.flush();
    }

    /// L008 seed: a slice index two hops from the root.
    fn bump(&mut self, byte: u8) {
        self.counts[byte as usize] += 1;
    }

    /// L009 seed: an allocation two hops from the root.
    fn flush(&mut self) {
        self.log.push(0);
    }

    /// Negative: a justified suppression at the sink is honored.
    pub fn reset(&mut self) {
        // lint: allow(L008) — fixture: counts always has 256 slots
        self.counts[0] = 0;
    }
}

/// Negative: allocates, but is reachable from no declared root.
pub fn cold_setup() -> Vec<u64> {
    vec![0u64; 256]
}
