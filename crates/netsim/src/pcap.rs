//! Classic `pcap` capture files: write synthetic traces out, read
//! capture files back in as [`Packet`]s.
//!
//! The serve loadgen's replay mode (`serve_loadgen --pcap FILE`) feeds
//! capture-file workloads through the exact ingest path the synthetic
//! generator exercises, and `--write-pcap` exports a generated trace so
//! external tools (tcpdump/wireshark/tcpreplay) can inspect or replay
//! it. Only the classic fixed-header format is implemented — no
//! pcapng — because that is what the paper-era gateway traces use and
//! it keeps the codec dependency-free.
//!
//! Files are written little-endian with microsecond timestamps and
//! LINKTYPE_RAW (101) link frames: each record is an IPv4 header plus
//! TCP/UDP header plus payload, nothing else. The reader additionally
//! accepts big-endian files, nanosecond-timestamp magics, and
//! LINKTYPE_ETHERNET (1) records; records that are not IPv4 TCP/UDP
//! are skipped and counted rather than failing the whole file.

use std::io::{self, Read, Write};

use crate::packet::{FiveTuple, Packet, Protocol, TcpFlags};

/// Microsecond-resolution magic, as written (little-endian).
const MAGIC_USEC: u32 = 0xa1b2_c3d4;
/// Nanosecond-resolution magic.
const MAGIC_NSEC: u32 = 0xa1b2_3c4d;
/// Raw IPv4/IPv6 link type: records start at the IP header.
const LINKTYPE_RAW: u32 = 101;
/// Ethernet link type: records carry a 14-byte MAC header first.
const LINKTYPE_ETHERNET: u32 = 1;
/// Snapshot length advertised in the global header.
const SNAPLEN: u32 = 65_535;

/// Real TCP wire flag bits for the subset [`TcpFlags`] models.
const TCP_FIN: u8 = 0x01;
const TCP_SYN: u8 = 0x02;
const TCP_RST: u8 = 0x04;
const TCP_ACK: u8 = 0x10;

/// Why a capture file could not be decoded.
#[derive(Debug)]
pub enum PcapError {
    /// Transport error from the underlying reader.
    Io(io::Error),
    /// Structurally invalid capture (bad magic, truncated record,
    /// impossible length field).
    Malformed(String),
}

impl std::fmt::Display for PcapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PcapError::Io(e) => write!(f, "pcap i/o error: {e}"),
            PcapError::Malformed(why) => write!(f, "malformed pcap: {why}"),
        }
    }
}

impl std::error::Error for PcapError {}

impl From<io::Error> for PcapError {
    fn from(e: io::Error) -> Self {
        PcapError::Io(e)
    }
}

/// A decoded capture: the usable packets plus how many records were
/// skipped (non-IPv4, non-TCP/UDP, or truncated payload captures).
#[derive(Debug, Default)]
pub struct PcapTrace {
    /// Parsed TCP/UDP-over-IPv4 packets, in record order.
    pub packets: Vec<Packet>,
    /// Records present in the file but not representable as [`Packet`].
    pub skipped: usize,
}

/// RFC 1071 ones'-complement checksum over a header.
fn internet_checksum(bytes: &[u8]) -> u16 {
    let mut sum = 0u32;
    let mut chunks = bytes.chunks_exact(2);
    for pair in &mut chunks {
        sum = sum.wrapping_add(u32::from(u16::from_be_bytes([pair[0], pair[1]])));
    }
    if let Some(&last) = chunks.remainder().first() {
        sum = sum.wrapping_add(u32::from(u16::from_be_bytes([last, 0])));
    }
    while sum > 0xffff {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

fn flags_to_wire(flags: TcpFlags) -> u8 {
    let mut wire = 0u8;
    if flags.contains(TcpFlags::FIN) {
        wire |= TCP_FIN;
    }
    if flags.contains(TcpFlags::SYN) {
        wire |= TCP_SYN;
    }
    if flags.contains(TcpFlags::RST) {
        wire |= TCP_RST;
    }
    if flags.contains(TcpFlags::ACK) {
        wire |= TCP_ACK;
    }
    wire
}

fn flags_from_wire(wire: u8) -> TcpFlags {
    let mut flags = TcpFlags::empty();
    if wire & TCP_FIN != 0 {
        flags = flags | TcpFlags::FIN;
    }
    if wire & TCP_SYN != 0 {
        flags = flags | TcpFlags::SYN;
    }
    if wire & TCP_RST != 0 {
        flags = flags | TcpFlags::RST;
    }
    if wire & TCP_ACK != 0 {
        flags = flags | TcpFlags::ACK;
    }
    flags
}

/// Serializes one packet as raw IPv4 + transport header + payload.
fn encode_record(packet: &Packet, out: &mut Vec<u8>) -> io::Result<()> {
    let transport_len = match packet.tuple.protocol {
        Protocol::Tcp => 20usize,
        Protocol::Udp => 8usize,
    };
    let total = 20 + transport_len + packet.payload.len();
    if total > SNAPLEN as usize {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("payload of {} bytes does not fit an IPv4 datagram", packet.payload.len()),
        ));
    }

    let ip_start = out.len();
    out.push(0x45); // version 4, IHL 5
    out.push(0); // DSCP/ECN
    out.extend_from_slice(&(total as u16).to_be_bytes());
    out.extend_from_slice(&[0, 0, 0, 0]); // id, flags, fragment offset
    out.push(64); // TTL
    out.push(match packet.tuple.protocol {
        Protocol::Tcp => 6,
        Protocol::Udp => 17,
    });
    out.extend_from_slice(&[0, 0]); // checksum placeholder
    out.extend_from_slice(&packet.tuple.src_ip.octets());
    out.extend_from_slice(&packet.tuple.dst_ip.octets());
    let checksum = internet_checksum(&out[ip_start..ip_start + 20]);
    out[ip_start + 10..ip_start + 12].copy_from_slice(&checksum.to_be_bytes());

    match packet.tuple.protocol {
        Protocol::Tcp => {
            out.extend_from_slice(&packet.tuple.src_port.to_be_bytes());
            out.extend_from_slice(&packet.tuple.dst_port.to_be_bytes());
            out.extend_from_slice(&[0; 8]); // seq, ack
            out.push(5 << 4); // data offset 5 words
            out.push(flags_to_wire(packet.flags));
            out.extend_from_slice(&u16::MAX.to_be_bytes()); // window
            out.extend_from_slice(&[0, 0, 0, 0]); // checksum, urgent
        }
        Protocol::Udp => {
            out.extend_from_slice(&packet.tuple.src_port.to_be_bytes());
            out.extend_from_slice(&packet.tuple.dst_port.to_be_bytes());
            out.extend_from_slice(&((8 + packet.payload.len()) as u16).to_be_bytes());
            out.extend_from_slice(&[0, 0]); // checksum optional for IPv4
        }
    }
    out.extend_from_slice(&packet.payload);
    Ok(())
}

/// Writes `packets` as a classic little-endian microsecond pcap with
/// LINKTYPE_RAW records.
///
/// # Errors
///
/// Transport errors from `w`, or `InvalidInput` for a payload too
/// large to fit one IPv4 datagram.
pub fn write_pcap<W: Write>(w: &mut W, packets: &[Packet]) -> io::Result<()> {
    w.write_all(&MAGIC_USEC.to_le_bytes())?;
    w.write_all(&2u16.to_le_bytes())?; // version major
    w.write_all(&4u16.to_le_bytes())?; // version minor
    w.write_all(&0i32.to_le_bytes())?; // thiszone
    w.write_all(&0u32.to_le_bytes())?; // sigfigs
    w.write_all(&SNAPLEN.to_le_bytes())?;
    w.write_all(&LINKTYPE_RAW.to_le_bytes())?;

    let mut record = Vec::with_capacity(1600);
    for packet in packets {
        record.clear();
        encode_record(packet, &mut record)?;
        let ts = packet.timestamp.max(0.0);
        let secs = ts.floor();
        let micros = (((ts - secs) * 1e6).round() as u32).min(999_999);
        w.write_all(&(secs as u32).to_le_bytes())?;
        w.write_all(&micros.to_le_bytes())?;
        w.write_all(&(record.len() as u32).to_le_bytes())?;
        w.write_all(&(record.len() as u32).to_le_bytes())?;
        w.write_all(&record)?;
    }
    Ok(())
}

/// Byte-order + timestamp-unit state discovered from the magic.
struct FileShape {
    swapped: bool,
    nanos: bool,
    linktype: u32,
}

fn field_u32(shape: &FileShape, bytes: [u8; 4]) -> u32 {
    if shape.swapped {
        u32::from_be_bytes(bytes)
    } else {
        u32::from_le_bytes(bytes)
    }
}

fn read_exact_opt<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<bool, PcapError> {
    let mut filled = 0;
    while filled < buf.len() {
        let n = r.read(&mut buf[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(false); // clean EOF between records
            }
            return Err(PcapError::Malformed(format!(
                "truncated record header/body: wanted {} bytes, got {filled}",
                buf.len()
            )));
        }
        filled += n;
    }
    Ok(true)
}

/// Parses one link-layer record into a [`Packet`], or `None` when the
/// record is not IPv4 TCP/UDP (the caller counts it as skipped).
fn decode_record(shape: &FileShape, timestamp: f64, data: &[u8]) -> Option<Packet> {
    let ip = match shape.linktype {
        LINKTYPE_RAW => data,
        LINKTYPE_ETHERNET => {
            let ethertype = u16::from_be_bytes([*data.get(12)?, *data.get(13)?]);
            if ethertype != 0x0800 {
                return None;
            }
            data.get(14..)?
        }
        _ => return None,
    };
    let first = *ip.first()?;
    if first >> 4 != 4 {
        return None;
    }
    let ihl = usize::from(first & 0x0f) * 4;
    if ihl < 20 {
        return None;
    }
    let header = ip.get(..ihl)?;
    let total_len = usize::from(u16::from_be_bytes([*header.get(2)?, *header.get(3)?]));
    if total_len < ihl || total_len > ip.len() {
        return None; // snapped or corrupt capture
    }
    let protocol = match *header.get(9)? {
        6 => Protocol::Tcp,
        17 => Protocol::Udp,
        _ => return None,
    };
    let src_ip = std::net::Ipv4Addr::new(
        *header.get(12)?,
        *header.get(13)?,
        *header.get(14)?,
        *header.get(15)?,
    );
    let dst_ip = std::net::Ipv4Addr::new(
        *header.get(16)?,
        *header.get(17)?,
        *header.get(18)?,
        *header.get(19)?,
    );
    let transport = ip.get(ihl..total_len)?;
    let src_port = u16::from_be_bytes([*transport.first()?, *transport.get(1)?]);
    let dst_port = u16::from_be_bytes([*transport.get(2)?, *transport.get(3)?]);
    let (flags, payload) = match protocol {
        Protocol::Tcp => {
            let data_offset = usize::from(*transport.get(12)? >> 4) * 4;
            if data_offset < 20 {
                return None;
            }
            let flags = flags_from_wire(*transport.get(13)?);
            (flags, transport.get(data_offset..)?.to_vec())
        }
        Protocol::Udp => (TcpFlags::empty(), transport.get(8..)?.to_vec()),
    };
    let tuple = FiveTuple { src_ip, dst_ip, src_port, dst_port, protocol };
    Some(Packet { timestamp, tuple, flags, payload })
}

/// Reads a classic pcap file into packets.
///
/// Accepts little- and big-endian files, microsecond and nanosecond
/// timestamp magics, and LINKTYPE_RAW or LINKTYPE_ETHERNET frames.
/// Non-IPv4/TCP/UDP records are counted in
/// [`PcapTrace::skipped`], not errors.
///
/// # Errors
///
/// [`PcapError::Malformed`] for an unknown magic, an implausible
/// record length, or a record truncated mid-body; [`PcapError::Io`]
/// for transport failures.
pub fn read_pcap<R: Read>(r: &mut R) -> Result<PcapTrace, PcapError> {
    let mut header = [0u8; 24];
    if !read_exact_opt(r, &mut header)? {
        return Err(PcapError::Malformed("empty file".into()));
    }
    let magic = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
    let shape_of = |swapped, nanos| FileShape { swapped, nanos, linktype: 0 };
    let mut shape = match magic {
        MAGIC_USEC => shape_of(false, false),
        MAGIC_NSEC => shape_of(false, true),
        m if m.swap_bytes() == MAGIC_USEC => shape_of(true, false),
        m if m.swap_bytes() == MAGIC_NSEC => shape_of(true, true),
        m => return Err(PcapError::Malformed(format!("unknown magic {m:#010x}"))),
    };
    shape.linktype = field_u32(&shape, [header[20], header[21], header[22], header[23]]);

    let mut trace = PcapTrace::default();
    let mut record_header = [0u8; 16];
    let mut body = Vec::new();
    loop {
        if !read_exact_opt(r, &mut record_header)? {
            return Ok(trace);
        }
        let take = |i: usize| {
            [record_header[i], record_header[i + 1], record_header[i + 2], record_header[i + 3]]
        };
        let ts_sec = field_u32(&shape, take(0));
        let ts_frac = field_u32(&shape, take(4));
        let incl_len = field_u32(&shape, take(8)) as usize;
        if incl_len > SNAPLEN as usize {
            return Err(PcapError::Malformed(format!("record length {incl_len} exceeds snaplen")));
        }
        body.resize(incl_len, 0);
        if !read_exact_opt(r, &mut body)? && incl_len > 0 {
            return Err(PcapError::Malformed("record body truncated at EOF".into()));
        }
        let denom = if shape.nanos { 1e9 } else { 1e6 };
        let timestamp = f64::from(ts_sec) + f64::from(ts_frac) / denom;
        match decode_record(&shape, timestamp, &body) {
            Some(packet) => trace.packets.push(packet),
            None => trace.skipped += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{TraceConfig, TraceGenerator};

    #[test]
    fn generated_trace_round_trips() {
        let config = TraceConfig::small_test(7);
        let packets: Vec<Packet> = TraceGenerator::new(config).collect();
        assert!(packets.len() > 100);

        let mut file = Vec::new();
        write_pcap(&mut file, &packets).unwrap();
        let trace = read_pcap(&mut file.as_slice()).unwrap();
        assert_eq!(trace.skipped, 0);
        assert_eq!(trace.packets.len(), packets.len());
        for (orig, back) in packets.iter().zip(&trace.packets) {
            assert_eq!(orig.tuple, back.tuple);
            assert_eq!(orig.flags, back.flags);
            assert_eq!(orig.payload, back.payload);
            assert!(
                (orig.timestamp - back.timestamp).abs() < 1e-5,
                "timestamps survive to microsecond resolution"
            );
        }
    }

    #[test]
    fn ip_checksum_is_valid_in_written_records() {
        let packets = vec![Packet {
            timestamp: 1.25,
            tuple: FiveTuple::tcp(
                std::net::Ipv4Addr::new(10, 0, 0, 1),
                4000,
                std::net::Ipv4Addr::new(10, 0, 0, 2),
                443,
            ),
            flags: TcpFlags::SYN | TcpFlags::ACK,
            payload: b"hello".to_vec(),
        }];
        let mut file = Vec::new();
        write_pcap(&mut file, &packets).unwrap();
        // A valid IPv4 header checksums to zero (record starts after
        // the 24B global + 16B record header).
        let ip_header = &file[40..60];
        assert_eq!(internet_checksum(ip_header), 0);
    }

    #[test]
    fn rejects_garbage_magic() {
        let garbage = [0u8; 24];
        assert!(matches!(read_pcap(&mut garbage.as_slice()), Err(PcapError::Malformed(_))));
    }

    #[test]
    fn truncated_record_body_is_malformed() {
        let packets = vec![Packet {
            timestamp: 0.0,
            tuple: FiveTuple::udp(
                std::net::Ipv4Addr::new(1, 2, 3, 4),
                53,
                std::net::Ipv4Addr::new(5, 6, 7, 8),
                53,
            ),
            flags: TcpFlags::empty(),
            payload: vec![9; 64],
        }];
        let mut file = Vec::new();
        write_pcap(&mut file, &packets).unwrap();
        file.truncate(file.len() - 10);
        assert!(matches!(read_pcap(&mut file.as_slice()), Err(PcapError::Malformed(_))));
    }

    #[test]
    fn non_ip_records_are_skipped_not_fatal() {
        let mut file = Vec::new();
        write_pcap(&mut file, &[]).unwrap();
        // Hand-append a record whose first nibble is not IPv4.
        let bogus = [0x60, 0, 0, 0];
        file.extend_from_slice(&0u32.to_le_bytes()); // ts_sec
        file.extend_from_slice(&0u32.to_le_bytes()); // ts_usec
        file.extend_from_slice(&(bogus.len() as u32).to_le_bytes());
        file.extend_from_slice(&(bogus.len() as u32).to_le_bytes());
        file.extend_from_slice(&bogus);
        let trace = read_pcap(&mut file.as_slice()).unwrap();
        assert!(trace.packets.is_empty());
        assert_eq!(trace.skipped, 1);
    }
}
