//! Packets, 5-tuples, and TCP flags.

use std::fmt;
use std::net::Ipv4Addr;

/// Transport protocol of a flow.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum Protocol {
    /// TCP — flows terminate with FIN or RST when closed properly.
    Tcp,
    /// UDP — no close signal; only inactivity timeouts apply.
    Udp,
}

/// TCP header flags (subset relevant to Iustitia's CDB purging).
///
/// A thin bit-set newtype: build with [`TcpFlags::empty`] and the
/// constants, query with [`contains`](TcpFlags::contains).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, serde::Serialize, serde::Deserialize,
)]
pub struct TcpFlags(u8);

impl TcpFlags {
    /// SYN: connection establishment.
    pub const SYN: TcpFlags = TcpFlags(0b0001);
    /// ACK: acknowledgment.
    pub const ACK: TcpFlags = TcpFlags(0b0010);
    /// FIN: orderly close — triggers CDB record removal.
    pub const FIN: TcpFlags = TcpFlags(0b0100);
    /// RST: abortive close — triggers CDB record removal.
    pub const RST: TcpFlags = TcpFlags(0b1000);

    /// No flags set (also what UDP packets carry).
    pub const fn empty() -> TcpFlags {
        TcpFlags(0)
    }

    /// The raw bit representation, for wire encodings.
    pub const fn bits(self) -> u8 {
        self.0
    }

    /// Rebuilds flags from raw bits, ignoring unknown bits.
    pub const fn from_bits_truncate(bits: u8) -> TcpFlags {
        TcpFlags(bits & 0b1111)
    }

    /// Whether every flag in `other` is set in `self`.
    pub const fn contains(self, other: TcpFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Whether this packet signals flow termination (FIN or RST).
    pub const fn closes_flow(self) -> bool {
        self.0 & (Self::FIN.0 | Self::RST.0) != 0
    }
}

impl std::ops::BitOr for TcpFlags {
    type Output = TcpFlags;

    fn bitor(self, rhs: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 | rhs.0)
    }
}

impl fmt::Display for TcpFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts = Vec::new();
        if self.contains(Self::SYN) {
            parts.push("SYN");
        }
        if self.contains(Self::ACK) {
            parts.push("ACK");
        }
        if self.contains(Self::FIN) {
            parts.push("FIN");
        }
        if self.contains(Self::RST) {
            parts.push("RST");
        }
        if parts.is_empty() {
            f.write_str("-")
        } else {
            f.write_str(&parts.join("|"))
        }
    }
}

/// The flow 5-tuple: addresses, ports, and protocol.
///
/// Iustitia identifies a flow by a hash of these header fields
/// ([`as_bytes`](FiveTuple::as_bytes) provides the canonical byte
/// encoding fed to SHA-1).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct FiveTuple {
    /// Source IPv4 address.
    pub src_ip: Ipv4Addr,
    /// Destination IPv4 address.
    pub dst_ip: Ipv4Addr,
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Transport protocol.
    pub protocol: Protocol,
}

impl FiveTuple {
    /// Creates a TCP 5-tuple.
    pub fn tcp(src_ip: Ipv4Addr, src_port: u16, dst_ip: Ipv4Addr, dst_port: u16) -> Self {
        FiveTuple { src_ip, dst_ip, src_port, dst_port, protocol: Protocol::Tcp }
    }

    /// Creates a UDP 5-tuple.
    pub fn udp(src_ip: Ipv4Addr, src_port: u16, dst_ip: Ipv4Addr, dst_port: u16) -> Self {
        FiveTuple { src_ip, dst_ip, src_port, dst_port, protocol: Protocol::Udp }
    }

    /// Canonical 13-byte encoding (src ip, dst ip, src port, dst port,
    /// protocol) used as the flow-hash input.
    pub fn as_bytes(&self) -> [u8; 13] {
        let mut b = [0u8; 13];
        b[0..4].copy_from_slice(&self.src_ip.octets());
        b[4..8].copy_from_slice(&self.dst_ip.octets());
        b[8..10].copy_from_slice(&self.src_port.to_be_bytes());
        b[10..12].copy_from_slice(&self.dst_port.to_be_bytes());
        b[12] = match self.protocol {
            Protocol::Tcp => 6,
            Protocol::Udp => 17,
        };
        b
    }

    /// The direction-insensitive form: endpoints ordered so both
    /// directions of a conversation map to the same tuple.
    pub fn canonical(&self) -> FiveTuple {
        if (self.src_ip, self.src_port) <= (self.dst_ip, self.dst_port) {
            *self
        } else {
            FiveTuple {
                src_ip: self.dst_ip,
                dst_ip: self.src_ip,
                src_port: self.dst_port,
                dst_port: self.src_port,
                protocol: self.protocol,
            }
        }
    }
}

impl fmt::Display for FiveTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?} {}:{} -> {}:{}",
            self.protocol, self.src_ip, self.src_port, self.dst_ip, self.dst_port
        )
    }
}

/// One captured packet: timestamp, header fields, and payload.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Packet {
    /// Capture time in seconds from trace start.
    pub timestamp: f64,
    /// Flow 5-tuple.
    pub tuple: FiveTuple,
    /// TCP flags (empty for UDP).
    pub flags: TcpFlags,
    /// Application payload (possibly empty for pure control packets).
    pub payload: Vec<u8>,
}

impl Packet {
    /// Whether this is a *data* packet (non-empty payload) — the 41.16%
    /// of the UMASS trace Iustitia actually buffers.
    pub fn is_data(&self) -> bool {
        !self.payload.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(a: u8, b: u8, c: u8, d: u8) -> Ipv4Addr {
        Ipv4Addr::new(a, b, c, d)
    }

    #[test]
    fn flags_bit_ops() {
        let f = TcpFlags::SYN | TcpFlags::ACK;
        assert!(f.contains(TcpFlags::SYN));
        assert!(f.contains(TcpFlags::ACK));
        assert!(!f.contains(TcpFlags::FIN));
        assert!(!f.closes_flow());
        assert!((TcpFlags::FIN | TcpFlags::ACK).closes_flow());
        assert!(TcpFlags::RST.closes_flow());
        assert!(!TcpFlags::empty().closes_flow());
    }

    #[test]
    fn flags_display() {
        assert_eq!((TcpFlags::SYN | TcpFlags::ACK).to_string(), "SYN|ACK");
        assert_eq!(TcpFlags::empty().to_string(), "-");
    }

    #[test]
    fn tuple_byte_encoding_is_injective_on_fields() {
        let a = FiveTuple::tcp(ip(10, 0, 0, 1), 1234, ip(10, 0, 0, 2), 80);
        let b = FiveTuple::tcp(ip(10, 0, 0, 1), 1235, ip(10, 0, 0, 2), 80);
        let c = FiveTuple::udp(ip(10, 0, 0, 1), 1234, ip(10, 0, 0, 2), 80);
        assert_ne!(a.as_bytes(), b.as_bytes());
        assert_ne!(a.as_bytes(), c.as_bytes());
        assert_eq!(a.as_bytes()[12], 6);
        assert_eq!(c.as_bytes()[12], 17);
    }

    #[test]
    fn canonical_is_direction_insensitive() {
        let fwd = FiveTuple::tcp(ip(10, 0, 0, 2), 80, ip(10, 0, 0, 1), 1234);
        let rev = FiveTuple::tcp(ip(10, 0, 0, 1), 1234, ip(10, 0, 0, 2), 80);
        assert_eq!(fwd.canonical(), rev.canonical());
        assert_eq!(fwd.canonical(), fwd.canonical().canonical());
    }

    #[test]
    fn data_packet_detection() {
        let tuple = FiveTuple::tcp(ip(1, 1, 1, 1), 1, ip(2, 2, 2, 2), 2);
        let data = Packet { timestamp: 0.0, tuple, flags: TcpFlags::ACK, payload: vec![1] };
        let ack = Packet { timestamp: 0.0, tuple, flags: TcpFlags::ACK, payload: vec![] };
        assert!(data.is_data());
        assert!(!ack.is_data());
    }

    #[test]
    fn canonical_orders_by_ip_then_port() {
        let a = FiveTuple::tcp(ip(10, 0, 0, 1), 9000, ip(10, 0, 0, 1), 80);
        // Same IPs: the lower port becomes the source.
        assert_eq!(a.canonical().src_port, 80);
        let b = FiveTuple::udp(ip(10, 0, 0, 2), 1, ip(10, 0, 0, 1), 65000);
        assert_eq!(b.canonical().src_ip, ip(10, 0, 0, 1));
    }

    #[test]
    fn flags_default_is_empty() {
        assert_eq!(TcpFlags::default(), TcpFlags::empty());
    }

    #[test]
    fn tuple_display_mentions_endpoints() {
        let t = FiveTuple::tcp(ip(10, 0, 0, 1), 1234, ip(10, 0, 0, 2), 80);
        let s = t.to_string();
        assert!(s.contains("10.0.0.1:1234"));
        assert!(s.contains("10.0.0.2:80"));
    }
}
