//! Synthetic gateway-trace generation calibrated to the UMASS trace.
//!
//! [`TraceGenerator`] is a streaming iterator of time-ordered
//! [`Packet`]s. It is event-driven: flows arrive over the trace
//! duration, each flow emits data packets with per-flow inter-arrival
//! times, TCP data is echoed by pure-ACK control packets (so the global
//! *data-packet fraction* matches the trace's 41.16%), and a
//! configurable fraction of flows terminates with FIN/RST (the ≈ 46%
//! the paper observes being purged from the CDB by close signals).
//!
//! Calibration targets, from §4.5 of the paper:
//!
//! | statistic | UMASS value | knob |
//! |---|---|---|
//! | packets | 11,976,410 | `n_flows × mean_data_packets ÷ data_packet_fraction` |
//! | data packets | 41.16% | [`TraceConfig::data_packet_fraction`] |
//! | data flows | 299,564 | [`TraceConfig::n_flows`] |
//! | packet rate | 146,714.38 pkt/s | `duration` ≈ 81.6 s |
//! | payload sizes | ≈20% at 1480 B, >50% < 140 B | bimodal sampler |
//! | FIN/RST closes | ≈46% of flows | [`TraceConfig::proper_close_fraction`] |

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};
use std::net::Ipv4Addr;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use iustitia_corpus::{generate_file, FileClass};

use crate::packet::{FiveTuple, Packet, Protocol, TcpFlags};

/// How packet payloads are filled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ContentMode {
    /// Payload bytes come from the corpus generator for the flow's
    /// class — required for classification experiments.
    Realistic,
    /// Payloads are zero-filled but correctly sized — much faster, for
    /// delay/CDB experiments that only consume sizes and timestamps.
    SizesOnly,
}

/// Configuration of the synthetic trace.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TraceConfig {
    /// RNG seed.
    pub seed: u64,
    /// Number of data flows in the trace.
    pub n_flows: usize,
    /// Trace duration in seconds (flows arrive uniformly over the
    /// first 90%).
    pub duration: f64,
    /// Mean number of data packets per flow (geometric-ish).
    pub mean_data_packets: f64,
    /// Target fraction of packets that carry payload (UMASS: 0.4116).
    pub data_packet_fraction: f64,
    /// Fraction of flows closed by FIN/RST (UMASS: ≈ 0.46).
    pub proper_close_fraction: f64,
    /// Fraction of flows carried by TCP (the rest are UDP).
    pub tcp_fraction: f64,
    /// Payload content mode.
    pub content: ContentMode,
    /// Class mix of flow contents `[text, binary, encrypted,
    /// compressed]`; must sum to ≈ 1. The paper's Internet statistics
    /// put encrypted around 10%; compressed transfers (gzip'd HTTP
    /// bodies, archives) take a comparable slice of the binary share.
    pub class_mix: [f64; 4],
    /// Bytes of realistic content synthesized per flow before the
    /// payload stream cycles (only the first `b ≤ 2000` bytes matter to
    /// the classifier).
    pub content_budget: usize,
}

impl TraceConfig {
    /// Full-scale configuration matching every reported UMASS statistic
    /// (≈ 12 M packets — use in release-mode benches only).
    pub fn umass_like(seed: u64) -> Self {
        TraceConfig {
            seed,
            n_flows: 299_564,
            duration: 81.6,
            mean_data_packets: 16.4,
            data_packet_fraction: 0.4116,
            proper_close_fraction: 0.46,
            tcp_fraction: 0.8,
            content: ContentMode::SizesOnly,
            class_mix: [0.35, 0.45, 0.10, 0.10],
            content_budget: 4096,
        }
    }

    /// A proportionally scaled-down trace: same rates and shapes,
    /// `scale` times fewer flows over `scale`-shorter duration.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not in `(0, 1]`.
    pub fn umass_scaled(seed: u64, scale: f64) -> Self {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0,1]");
        let mut c = Self::umass_like(seed);
        c.n_flows = ((c.n_flows as f64 * scale).round() as usize).max(1);
        c.duration *= scale;
        c
    }

    /// A tiny, fast configuration for unit tests.
    pub fn small_test(seed: u64) -> Self {
        TraceConfig {
            seed,
            n_flows: 120,
            duration: 10.0,
            mean_data_packets: 8.0,
            data_packet_fraction: 0.4116,
            proper_close_fraction: 0.46,
            tcp_fraction: 0.8,
            content: ContentMode::Realistic,
            class_mix: [0.25, 0.25, 0.25, 0.25],
            content_budget: 2048,
        }
    }
}

/// Samples a data-packet payload size from the bimodal UMASS
/// distribution: ≈ 20% full-MTU (1480 B), ≈ 52% short (< 140 B), the
/// rest uniform in between (Figure 9(a)).
pub fn sample_payload_size(rng: &mut StdRng) -> usize {
    let r: f64 = rng.gen();
    if r < 0.20 {
        1480
    } else if r < 0.72 {
        rng.gen_range(1..140)
    } else {
        rng.gen_range(140..1480)
    }
}

/// Totally-ordered f64 key for the event heap.
#[derive(Debug, Clone, Copy, PartialEq)]
struct TimeKey(f64);

impl Eq for TimeKey {}

impl PartialOrd for TimeKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TimeKey {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Min-heap event (BinaryHeap is a max-heap, so order is reversed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Event {
    time: TimeKey,
    flow: u64,
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        other.time.cmp(&self.time).then_with(|| other.flow.cmp(&self.flow))
    }
}

/// Min-heap entry for packets awaiting emission, ordered by timestamp
/// with an insertion sequence for stability.
#[derive(Debug)]
struct ReadyPacket {
    time: TimeKey,
    seq: u64,
    packet: Packet,
}

impl PartialEq for ReadyPacket {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl Eq for ReadyPacket {}

impl PartialOrd for ReadyPacket {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ReadyPacket {
    fn cmp(&self, other: &Self) -> Ordering {
        other.time.cmp(&self.time).then_with(|| other.seq.cmp(&self.seq))
    }
}

#[derive(Debug)]
struct FlowState {
    tuple: FiveTuple,
    remaining_data: usize,
    mean_iat: f64,
    proper_close: bool,
    sent_syn: bool,
    content: Vec<u8>,
    cursor: usize,
}

/// Streaming generator of a time-ordered synthetic packet trace.
///
/// See the [module docs](self) for the calibration targets and the
/// [crate docs](crate) for an example.
#[derive(Debug)]
pub struct TraceGenerator {
    config: TraceConfig,
    rng: StdRng,
    /// Flow arrival times, ascending; `next_arrival` indexes into it.
    arrivals: Vec<f64>,
    next_arrival: usize,
    events: BinaryHeap<Event>,
    flows: HashMap<u64, FlowState>,
    next_flow_id: u64,
    ready: BinaryHeap<ReadyPacket>,
    ready_seq: u64,
    truth: HashMap<FiveTuple, FileClass>,
    /// Expected control packets per data packet, derived from
    /// `data_packet_fraction`.
    acks_per_data: f64,
}

impl TraceGenerator {
    /// Creates a generator for the given configuration.
    pub fn new(config: TraceConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut arrivals: Vec<f64> =
            (0..config.n_flows).map(|_| rng.gen::<f64>() * config.duration * 0.9).collect();
        arrivals.sort_by(|a, b| a.total_cmp(b));
        let f = config.data_packet_fraction.clamp(0.05, 1.0);
        let acks_per_data = (1.0 - f) / f;
        TraceGenerator {
            config,
            rng,
            arrivals,
            next_arrival: 0,
            events: BinaryHeap::new(),
            flows: HashMap::new(),
            next_flow_id: 0,
            ready: BinaryHeap::new(),
            ready_seq: 0,
            truth: HashMap::new(),
            acks_per_data,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TraceConfig {
        &self.config
    }

    /// Ground-truth content class per flow tuple, for every flow that
    /// has arrived so far. Complete once the iterator is exhausted —
    /// use it to score a classifier against the trace.
    pub fn ground_truth(&self) -> &HashMap<FiveTuple, FileClass> {
        &self.truth
    }

    fn sample_class(&mut self) -> FileClass {
        let r: f64 = self.rng.gen();
        let [t, b, e, _] = self.config.class_mix;
        if r < t {
            FileClass::Text
        } else if r < t + b {
            FileClass::Binary
        } else if r < t + b + e {
            FileClass::Encrypted
        } else {
            FileClass::Compressed
        }
    }

    fn random_tuple(&mut self) -> FiveTuple {
        let src = Ipv4Addr::new(10, self.rng.gen(), self.rng.gen(), self.rng.gen());
        let dst = Ipv4Addr::new(192, 168, self.rng.gen(), self.rng.gen());
        let sport = self.rng.gen_range(1024..65535);
        let dport = *[80u16, 443, 25, 110, 143, 8080, 6881, 5060]
            .get(self.rng.gen_range(0..8))
            .expect("index in range");
        if self.rng.gen_bool(self.config.tcp_fraction) {
            FiveTuple::tcp(src, sport, dst, dport)
        } else {
            FiveTuple::udp(src, sport, dst, dport)
        }
    }

    fn spawn_flow(&mut self, at: f64) {
        let tuple = self.random_tuple();
        let class = self.sample_class();
        // Geometric-ish packet count with the configured mean.
        let u: f64 = self.rng.gen_range(1e-9..1.0);
        let n_data =
            1 + (-(u.ln()) * (self.config.mean_data_packets - 1.0).max(0.0)).floor() as usize;
        // Per-flow mean inter-arrival: lognormal around ~80 ms, capped
        // so the CDF resembles Figure 9(b).
        let z: f64 = {
            let u1: f64 = self.rng.gen_range(1e-12..1.0);
            let u2: f64 = self.rng.gen();
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        };
        let mean_iat = (0.08 * (z * 1.0).exp()).clamp(0.001, 2.0);
        let content = match self.config.content {
            ContentMode::Realistic => {
                generate_file(class, self.config.content_budget, &mut self.rng)
            }
            ContentMode::SizesOnly => Vec::new(),
        };
        let id = self.next_flow_id;
        self.next_flow_id += 1;
        let is_tcp = tuple.protocol == Protocol::Tcp;
        let proper_close = is_tcp && self.rng.gen_bool(self.config.proper_close_fraction);
        self.truth.insert(tuple, class);
        self.flows.insert(
            id,
            FlowState {
                tuple,
                remaining_data: n_data,
                mean_iat,
                proper_close,
                sent_syn: !is_tcp,
                content,
                cursor: 0,
            },
        );
        self.events.push(Event { time: TimeKey(at), flow: id });
    }

    fn emit(&mut self, packet: Packet) {
        let time = TimeKey(packet.timestamp);
        let seq = self.ready_seq;
        self.ready_seq += 1;
        self.ready.push(ReadyPacket { time, seq, packet });
    }

    fn exponential_iat(&mut self, mean: f64) -> f64 {
        let u: f64 = self.rng.gen_range(1e-12..1.0);
        -mean * u.ln()
    }

    fn payload_for(&mut self, id: u64, n: usize) -> Vec<u8> {
        match self.config.content {
            ContentMode::SizesOnly => vec![0u8; n],
            ContentMode::Realistic => {
                let flow = self.flows.get_mut(&id).expect("flow exists");
                let mut out = Vec::with_capacity(n);
                while out.len() < n {
                    if flow.cursor >= flow.content.len() {
                        flow.cursor = 0; // cycle beyond the budget
                    }
                    let take = (n - out.len()).min(flow.content.len() - flow.cursor);
                    out.extend_from_slice(&flow.content[flow.cursor..flow.cursor + take]);
                    flow.cursor += take;
                }
                out
            }
        }
    }

    /// Fires the next event for flow `id` at time `t`, enqueueing the
    /// packets it produces and scheduling the following event.
    fn fire(&mut self, id: u64, t: f64) {
        // The capture window ends at `duration`: flows still active then
        // are simply cut off, exactly like a real gateway trace.
        if t > self.config.duration {
            self.flows.remove(&id);
            return;
        }
        let (tuple, is_tcp, sent_syn, remaining, mean_iat, proper_close) = {
            let f = self.flows.get(&id).expect("flow exists");
            (
                f.tuple,
                f.tuple.protocol == Protocol::Tcp,
                f.sent_syn,
                f.remaining_data,
                f.mean_iat,
                f.proper_close,
            )
        };

        if is_tcp && !sent_syn {
            // Handshake first; first data follows shortly.
            self.emit(Packet { timestamp: t, tuple, flags: TcpFlags::SYN, payload: Vec::new() });
            self.emit(Packet {
                timestamp: t + 0.0002,
                tuple,
                flags: TcpFlags::SYN | TcpFlags::ACK,
                payload: Vec::new(),
            });
            self.flows.get_mut(&id).expect("flow exists").sent_syn = true;
            let dt = self.exponential_iat(mean_iat * 0.2).min(0.05);
            self.events.push(Event { time: TimeKey(t + 0.0004 + dt), flow: id });
            return;
        }

        if remaining == 0 {
            // Termination: FIN (80%) or RST (20%) when closing properly.
            if proper_close {
                let flags = if self.rng.gen_bool(0.8) {
                    TcpFlags::FIN | TcpFlags::ACK
                } else {
                    TcpFlags::RST
                };
                self.emit(Packet { timestamp: t, tuple, flags, payload: Vec::new() });
            }
            self.flows.remove(&id);
            return;
        }

        // One data packet.
        let size = sample_payload_size(&mut self.rng);
        let payload = self.payload_for(id, size);
        let flags = if is_tcp { TcpFlags::ACK } else { TcpFlags::empty() };
        self.emit(Packet { timestamp: t, tuple, flags, payload });

        // Control echo to hit the global data-packet fraction.
        if is_tcp {
            let mut n_acks = self.acks_per_data.floor() as usize;
            if self.rng.gen_bool(self.acks_per_data.fract()) {
                n_acks += 1;
            }
            for a in 0..n_acks {
                self.emit(Packet {
                    timestamp: t + 0.0001 * (a as f64 + 1.0),
                    tuple,
                    flags: TcpFlags::ACK,
                    payload: Vec::new(),
                });
            }
        }

        let f = self.flows.get_mut(&id).expect("flow exists");
        f.remaining_data -= 1;
        let next = t + self.exponential_iat(mean_iat);
        self.events.push(Event { time: TimeKey(next), flow: id });
    }
}

impl Iterator for TraceGenerator {
    type Item = Packet;

    fn next(&mut self) -> Option<Packet> {
        loop {
            // Pull in every flow arrival that precedes the next event.
            let next_event_time = self.events.peek().map(|e| e.time.0);
            while self.next_arrival < self.arrivals.len()
                && next_event_time.is_none_or(|t| self.arrivals[self.next_arrival] <= t)
            {
                let at = self.arrivals[self.next_arrival];
                self.next_arrival += 1;
                self.spawn_flow(at);
            }
            // Emit the earliest pending packet unless an un-fired event
            // precedes it (firing events never produces packets earlier
            // than the event time, so this keeps output sorted).
            let ready_time = self.ready.peek().map(|r| r.time.0);
            let event_time = self.events.peek().map(|e| e.time.0);
            match (ready_time, event_time) {
                (Some(rt), Some(et)) if rt <= et => {
                    return Some(self.ready.pop().expect("peeked").packet)
                }
                (Some(_), None) => return Some(self.ready.pop().expect("peeked").packet),
                (_, Some(_)) => {
                    let event = self.events.pop().expect("peeked");
                    self.fire(event.flow, event.time.0);
                }
                (None, None) => return None,
            }
        }
    }
}

/// Aggregate statistics of a packet stream — the quantities Figures 8–10
/// are computed from.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Total packet count.
    pub total_packets: u64,
    /// Packets with payload.
    pub data_packets: u64,
    /// Distinct 5-tuples that carried data.
    pub data_flows: usize,
    /// Last packet timestamp.
    pub duration: f64,
    /// Sorted sample of data-packet payload sizes (capped reservoir).
    pub payload_sizes: Vec<usize>,
    /// Sorted sample of aggregate packet inter-arrival times (seconds).
    pub interarrivals: Vec<f64>,
}

impl TraceStats {
    /// Computes statistics from a packet stream. Samples of payload
    /// sizes and inter-arrivals are capped at `max_samples` via
    /// reservoir sampling so full-scale traces stay in memory bounds.
    pub fn from_packets<I: IntoIterator<Item = Packet>>(packets: I, max_samples: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(0xCDF);
        let mut total = 0u64;
        let mut data = 0u64;
        let mut flows = std::collections::HashSet::new();
        let mut last_t: Option<f64> = None;
        let mut duration = 0.0f64;
        let mut sizes: Vec<usize> = Vec::new();
        let mut iats: Vec<f64> = Vec::new();
        let mut size_seen = 0usize;
        let mut iat_seen = 0usize;
        for p in packets {
            total += 1;
            duration = duration.max(p.timestamp);
            if let Some(prev) = last_t {
                let iat = (p.timestamp - prev).max(0.0);
                reservoir_push(&mut iats, iat, &mut iat_seen, max_samples, &mut rng);
            }
            last_t = Some(p.timestamp);
            if p.is_data() {
                data += 1;
                flows.insert(p.tuple);
                reservoir_push(&mut sizes, p.payload.len(), &mut size_seen, max_samples, &mut rng);
            }
        }
        sizes.sort_unstable();
        iats.sort_by(|a, b| a.total_cmp(b));
        TraceStats {
            total_packets: total,
            data_packets: data,
            data_flows: flows.len(),
            duration,
            payload_sizes: sizes,
            interarrivals: iats,
        }
    }

    /// Fraction of packets carrying payload.
    pub fn data_fraction(&self) -> f64 {
        if self.total_packets == 0 {
            return 0.0;
        }
        self.data_packets as f64 / self.total_packets as f64
    }

    /// Mean aggregate packet rate (packets per second).
    pub fn packet_rate(&self) -> f64 {
        if self.duration <= 0.0 {
            return 0.0;
        }
        self.total_packets as f64 / self.duration
    }

    /// Empirical CDF of payload sizes at a byte threshold.
    pub fn payload_cdf_at(&self, bytes: usize) -> f64 {
        cdf_at(&self.payload_sizes, &bytes)
    }

    /// Empirical CDF of aggregate inter-arrival time at a threshold.
    pub fn interarrival_cdf_at(&self, secs: f64) -> f64 {
        if self.interarrivals.is_empty() {
            return 0.0;
        }
        let n = self.interarrivals.iter().filter(|&&x| x <= secs).count();
        n as f64 / self.interarrivals.len() as f64
    }
}

fn reservoir_push<T>(buf: &mut Vec<T>, item: T, seen: &mut usize, cap: usize, rng: &mut StdRng) {
    *seen += 1;
    if buf.len() < cap {
        buf.push(item);
    } else {
        let j = rng.gen_range(0..*seen);
        if j < cap {
            buf[j] = item;
        }
    }
}

fn cdf_at<T: Ord>(sorted: &[T], x: &T) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let n = sorted.partition_point(|v| v <= x);
    n as f64 / sorted.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(config: TraceConfig) -> Vec<Packet> {
        TraceGenerator::new(config).collect()
    }

    #[test]
    fn trace_is_strictly_time_ordered() {
        let packets = collect(TraceConfig::small_test(1));
        for w in packets.windows(2) {
            assert!(w[1].timestamp >= w[0].timestamp, "{} then {}", w[0].timestamp, w[1].timestamp);
        }
    }

    #[test]
    fn flow_count_matches_config() {
        let config = TraceConfig::small_test(2);
        let n = config.n_flows;
        let stats = TraceStats::from_packets(TraceGenerator::new(config), 100_000);
        assert_eq!(stats.data_flows, n);
    }

    #[test]
    fn data_fraction_near_target() {
        let mut config = TraceConfig::small_test(3);
        config.n_flows = 600;
        config.content = ContentMode::SizesOnly;
        let stats = TraceStats::from_packets(TraceGenerator::new(config), 100_000);
        let f = stats.data_fraction();
        assert!((0.30..0.55).contains(&f), "data fraction {f}");
    }

    #[test]
    fn payload_sizes_are_bimodal() {
        let mut config = TraceConfig::small_test(4);
        config.n_flows = 400;
        config.content = ContentMode::SizesOnly;
        let stats = TraceStats::from_packets(TraceGenerator::new(config), 200_000);
        // > 50% below 140 bytes (paper: "more than 50%")
        assert!(stats.payload_cdf_at(139) > 0.45, "cdf(140)={}", stats.payload_cdf_at(139));
        // ≈ 20% at exactly 1480
        let at_mtu = stats.payload_sizes.iter().filter(|&&s| s == 1480).count() as f64
            / stats.payload_sizes.len() as f64;
        assert!((0.12..0.28).contains(&at_mtu), "MTU fraction {at_mtu}");
    }

    #[test]
    fn proper_close_fraction_respected() {
        let mut config = TraceConfig::small_test(5);
        config.n_flows = 500;
        config.content = ContentMode::SizesOnly;
        config.tcp_fraction = 1.0;
        let packets = collect(config);
        let closes = packets.iter().filter(|p| p.flags.closes_flow()).count();
        let frac = closes as f64 / 500.0;
        assert!((0.35..0.60).contains(&frac), "close fraction {frac}");
    }

    #[test]
    fn realistic_content_has_class_signal() {
        use iustitia_entropy::entropy;
        let mut config = TraceConfig::small_test(6);
        config.n_flows = 60;
        config.class_mix = [0.0, 0.0, 1.0, 0.0]; // all encrypted
        let packets = collect(config);
        // Reassemble the first KB of each flow; most encrypted files
        // are raw ciphertext with h1 ≈ 1 (a minority are ASCII-armored
        // at h1 ≈ 0.75), so the best flow must show the class signal.
        let mut flows: std::collections::HashMap<FiveTuple, Vec<u8>> = HashMap::new();
        for p in packets.iter().filter(|p| p.is_data()) {
            let buf = flows.entry(p.tuple).or_default();
            if buf.len() < 1024 {
                buf.extend_from_slice(&p.payload);
            }
        }
        let best = flows
            .values()
            .filter(|buf| buf.len() >= 256)
            .map(|buf| entropy(buf, 1))
            .fold(0.0f64, f64::max);
        assert!(best > 0.9, "best h1 across flows = {best}");
    }

    #[test]
    fn udp_flows_have_no_flags() {
        let mut config = TraceConfig::small_test(7);
        config.tcp_fraction = 0.0;
        config.content = ContentMode::SizesOnly;
        let packets = collect(config);
        assert!(!packets.is_empty());
        assert!(packets.iter().all(|p| p.flags == TcpFlags::empty()));
        assert!(packets.iter().all(|p| p.is_data()));
    }

    #[test]
    fn generator_is_deterministic() {
        let a = collect(TraceConfig::small_test(8));
        let b = collect(TraceConfig::small_test(8));
        assert_eq!(a, b);
    }

    #[test]
    fn umass_scaled_panics_on_bad_scale() {
        let r = std::panic::catch_unwind(|| TraceConfig::umass_scaled(0, 0.0));
        assert!(r.is_err());
    }

    #[test]
    fn scaled_config_keeps_rates() {
        let full = TraceConfig::umass_like(1);
        let tenth = TraceConfig::umass_scaled(1, 0.1);
        let full_rate = full.n_flows as f64 / full.duration;
        let tenth_rate = tenth.n_flows as f64 / tenth.duration;
        assert!((full_rate - tenth_rate).abs() / full_rate < 0.01);
    }

    #[test]
    fn stats_reservoir_caps_memory() {
        let mut config = TraceConfig::small_test(9);
        config.n_flows = 300;
        config.content = ContentMode::SizesOnly;
        let stats = TraceStats::from_packets(TraceGenerator::new(config), 64);
        assert!(stats.payload_sizes.len() <= 64);
        assert!(stats.interarrivals.len() <= 64);
        assert!(stats.total_packets > 64);
    }

    #[test]
    fn no_packet_outlives_the_capture_window() {
        let config = TraceConfig::small_test(30);
        let duration = config.duration;
        let packets = collect(config);
        assert!(packets.iter().all(|p| p.timestamp <= duration + 1e-3));
    }

    #[test]
    fn ground_truth_covers_all_flows() {
        let config = TraceConfig::small_test(21);
        let n = config.n_flows;
        let mut gen = TraceGenerator::new(config);
        assert!(gen.ground_truth().is_empty());
        for _ in gen.by_ref() {}
        assert_eq!(gen.ground_truth().len(), n);
    }

    #[test]
    fn sample_payload_size_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let s = sample_payload_size(&mut rng);
            assert!((1..=1480).contains(&s));
        }
    }
}
