//! Packet/flow model and synthetic gateway-trace generation for the
//! Iustitia flow-nature classifier.
//!
//! The paper's buffering-delay and CDB-sizing experiments (§4.5) run on
//! a gigabit gateway trace from the UMASS Trace Repository:
//! 11,976,410 packets (41.16% TCP/UDP *data* packets), 299,564 data
//! flows, 146,714.38 packets/second (≈ 81.6 seconds), a bimodal payload
//! size distribution (≈ 20% of data packets at 1480 bytes, > 50% below
//! 140 bytes), and ≈ 46% of flows closed by FIN/RST. That trace cannot
//! be redistributed, so [`trace::TraceGenerator`] synthesizes a stream
//! of [`packet::Packet`]s matched to every one of those statistics —
//! the same regime the paper's Figures 8–10 measure.
//!
//! # Example
//!
//! ```
//! use iustitia_netsim::trace::{TraceConfig, TraceGenerator};
//!
//! let config = TraceConfig::small_test(42);
//! let packets: Vec<_> = TraceGenerator::new(config).collect();
//! assert!(!packets.is_empty());
//! // Timestamps are sorted.
//! assert!(packets.windows(2).all(|w| w[0].timestamp <= w[1].timestamp));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod packet;
pub mod pcap;
pub mod trace;

pub use packet::{FiveTuple, Packet, Protocol, TcpFlags};
pub use pcap::{read_pcap, write_pcap, PcapError, PcapTrace};
pub use trace::{ContentMode, TraceConfig, TraceGenerator, TraceStats};
