//! Property-based tests for the trace generator.

use iustitia_netsim::{ContentMode, TraceConfig, TraceGenerator};
use proptest::prelude::*;

fn small_config(seed: u64, n_flows: usize, tcp_fraction: f64) -> TraceConfig {
    let mut c = TraceConfig::small_test(seed);
    c.n_flows = n_flows;
    c.tcp_fraction = tcp_fraction;
    c.content = ContentMode::SizesOnly;
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn packets_are_time_ordered_and_in_window(
        seed in any::<u64>(),
        n_flows in 1usize..80,
        tcp in 0.0f64..=1.0,
    ) {
        let config = small_config(seed, n_flows, tcp);
        let duration = config.duration;
        let packets: Vec<_> = TraceGenerator::new(config).collect();
        prop_assert!(!packets.is_empty());
        for w in packets.windows(2) {
            prop_assert!(w[1].timestamp >= w[0].timestamp);
        }
        // Control-echo packets trail their data packet by < 1 ms, so the
        // last ones can land just past the capture cutoff.
        prop_assert!(packets.iter().all(|p| p.timestamp >= 0.0 && p.timestamp <= duration + 1e-3));
    }

    #[test]
    fn payload_sizes_within_mtu(seed in any::<u64>(), n_flows in 1usize..50) {
        let config = small_config(seed, n_flows, 0.7);
        for p in TraceGenerator::new(config) {
            prop_assert!(p.payload.len() <= 1480);
        }
    }

    #[test]
    fn every_flow_appears_in_ground_truth(seed in any::<u64>(), n_flows in 1usize..60) {
        let config = small_config(seed, n_flows, 0.5);
        let mut generator = TraceGenerator::new(config);
        for _ in generator.by_ref() {}
        prop_assert_eq!(generator.ground_truth().len(), n_flows);
    }

    #[test]
    fn data_flows_are_a_subset_of_ground_truth(seed in any::<u64>(), n_flows in 1usize..60) {
        let config = small_config(seed, n_flows, 0.5);
        let mut generator = TraceGenerator::new(config);
        let mut tuples = std::collections::HashSet::new();
        for p in generator.by_ref() {
            if p.is_data() {
                tuples.insert(p.tuple);
            }
        }
        for t in &tuples {
            prop_assert!(generator.ground_truth().contains_key(t));
        }
    }

    #[test]
    fn udp_only_traces_have_no_tcp_flags(seed in any::<u64>(), n_flows in 1usize..40) {
        let config = small_config(seed, n_flows, 0.0);
        for p in TraceGenerator::new(config) {
            prop_assert_eq!(p.flags, iustitia_netsim::TcpFlags::empty());
        }
    }

    #[test]
    fn close_packets_only_on_tcp(seed in any::<u64>(), n_flows in 1usize..40, tcp in 0.0f64..=1.0) {
        let config = small_config(seed, n_flows, tcp);
        for p in TraceGenerator::new(config) {
            if p.flags.closes_flow() {
                prop_assert_eq!(p.tuple.protocol, iustitia_netsim::Protocol::Tcp);
            }
        }
    }
}
