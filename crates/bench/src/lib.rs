//! Shared machinery for the Iustitia reproduction harness.
//!
//! Every table and figure of the paper has a repro binary under
//! `src/bin/` (see `DESIGN.md` for the experiment index); this library
//! holds the pieces they share — standard corpora, classifier-training
//! shorthand, evaluation helpers, and plain-text table/series printers
//! so each binary emits the same rows/series the paper reports.
//!
//! Scale note: the paper's pool has ~90k files and its trace ~12M
//! packets. The defaults here are scaled down (hundreds of files,
//! `umass_scaled` traces) so every binary finishes in seconds to a few
//! minutes in release mode; the *shapes* — who wins, by what factor,
//! where crossovers fall — are what we compare, and each binary accepts
//! a `IUSTITIA_SCALE` environment variable to push toward paper scale.

#![forbid(unsafe_code)]

use iustitia::features::{dataset_from_corpus, FeatureMode, TrainingMethod};
use iustitia::model::{ModelKind, NatureModel};
use iustitia_corpus::{CorpusBuilder, FileClass, LabeledFile};
use iustitia_entropy::FeatureWidths;
use iustitia_ml::svm::{Kernel, SvmParams};
use iustitia_ml::{ConfusionMatrix, Dataset};

/// Scale multiplier from the `IUSTITIA_SCALE` env var (default 1.0).
/// Multiplies corpus sizes and trace scales in the repro binaries.
pub fn env_scale() -> f64 {
    std::env::var("IUSTITIA_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(1.0)
}

/// Scales a count by [`env_scale`], with a floor of 1.
pub fn scaled(base: usize) -> usize {
    ((base as f64 * env_scale()).round() as usize).max(1)
}

/// The standard evaluation corpus: `per_class` files per class,
/// 1–64 KiB, mirroring the mixed sizes of the paper's pool.
pub fn standard_corpus(seed: u64, per_class: usize) -> Vec<LabeledFile> {
    CorpusBuilder::new(seed).files_per_class(per_class).size_range(1024, 65536).build()
}

/// A faster corpus for experiments that only consume prefixes.
pub fn prefix_corpus(seed: u64, per_class: usize, max_size: usize) -> Vec<LabeledFile> {
    CorpusBuilder::new(seed).files_per_class(per_class).size_range(1024, max_size).build()
}

/// The paper's SVM: RBF `γ=50, C=1000`, DAGSVM multi-class.
pub fn paper_svm() -> ModelKind {
    ModelKind::Svm(SvmParams::paper_rbf())
}

/// The §4.4.2 re-selected SVM for estimated vectors: RBF `γ=10, C=1000`.
pub fn estimated_svm() -> ModelKind {
    ModelKind::Svm(SvmParams {
        c: 1000.0,
        kernel: Kernel::Rbf { gamma: 10.0 },
        ..SvmParams::default()
    })
}

/// The paper's CART configuration.
pub fn paper_cart() -> ModelKind {
    ModelKind::paper_cart()
}

/// Trains on `train` and evaluates on `test`, returning the confusion
/// matrix.
pub fn train_eval(train: &Dataset, test: &Dataset, kind: &ModelKind) -> ConfusionMatrix {
    let model = NatureModel::train(train, kind).expect("training dataset covers every class");
    model.confusion_on(test)
}

/// Builds train/test datasets from two disjoint corpora under one
/// training method, then evaluates a model kind.
#[allow(clippy::too_many_arguments)]
pub fn corpus_train_eval(
    train_files: &[LabeledFile],
    test_files: &[LabeledFile],
    widths: &FeatureWidths,
    train_method: TrainingMethod,
    test_method: TrainingMethod,
    mode: FeatureMode,
    kind: &ModelKind,
    seed: u64,
) -> ConfusionMatrix {
    let train = dataset_from_corpus(train_files, widths, train_method, mode.clone(), seed);
    let test = dataset_from_corpus(test_files, widths, test_method, mode, seed ^ 0xBEEF);
    train_eval(&train, &test, kind)
}

/// Prints a Markdown-ish table: header row then aligned data rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}\n");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        let padded: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect();
        println!("| {} |", padded.join(" | "));
    };
    fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    println!("|{}|", widths.iter().map(|w| "-".repeat(w + 2)).collect::<Vec<_>>().join("|"));
    for row in rows {
        fmt_row(row);
    }
}

/// Prints an `(x, y...)` series with one line per x value.
pub fn print_series(
    title: &str,
    x_label: &str,
    series_labels: &[&str],
    points: &[(String, Vec<f64>)],
) {
    println!("\n## {title}\n");
    print!("{x_label:>12}");
    for l in series_labels {
        print!(" {l:>14}");
    }
    println!();
    for (x, ys) in points {
        print!("{x:>12}");
        for y in ys {
            print!(" {y:>14.4}");
        }
        println!();
    }
}

/// Formats a fraction as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", 100.0 * x)
}

/// Per-class accuracy row (total, then one column per [`FileClass`])
/// from a confusion matrix — the layout of Tables 1 and 2.
pub fn accuracy_row(cm: &ConfusionMatrix) -> Vec<String> {
    let mut row = vec![pct(cm.accuracy())];
    for class in FileClass::ALL {
        row.push(pct(cm.class_accuracy(class.index())));
    }
    row
}

/// Prints a Table-1-style block: per-class accuracy plus the full
/// misclassification matrix.
pub fn print_confusion_block(name: &str, cm: &ConfusionMatrix) {
    println!("\n### {name}");
    println!("total accuracy: {}", pct(cm.accuracy()));
    let mut rows = Vec::new();
    for actual in FileClass::ALL {
        let mut row =
            vec![format!("{} file", actual.name()), pct(cm.class_accuracy(actual.index()))];
        for predicted in FileClass::ALL {
            if predicted == actual {
                row.push("-".into());
            } else {
                row.push(pct(cm.misclassification_rate(actual.index(), predicted.index())));
            }
        }
        rows.push(row);
    }
    let mut header = vec!["class".to_string(), "accuracy".to_string()];
    for predicted in FileClass::ALL {
        header.push(format!("-> {}", predicted.name()));
    }
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    print_table(&format!("{name}: accuracy and misclassification"), &header_refs, &rows);
}

/// Measures the mean wall-clock time of `f` over `reps` runs (after one
/// warmup), in microseconds.
pub fn time_us<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    f(); // warmup
    let start = std::time::Instant::now();
    for _ in 0..reps {
        f();
    }
    start.elapsed().as_secs_f64() * 1e6 / reps as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_floors_at_one() {
        // env_scale defaults to 1.0 in tests (unless caller sets it)
        assert!(scaled(0) >= 1);
        assert_eq!(scaled(100), (100.0 * env_scale()).round() as usize);
    }

    #[test]
    fn accuracy_row_shape() {
        let mut cm = ConfusionMatrix::new(4);
        cm.record(0, 0);
        cm.record(1, 1);
        cm.record(2, 0);
        let row = accuracy_row(&cm);
        assert_eq!(row.len(), 5);
        assert_eq!(row[0], "66.67%");
    }

    #[test]
    fn time_us_positive() {
        let t = time_us(3, || {
            std::hint::black_box((0..1000).sum::<u64>());
        });
        assert!(t >= 0.0);
    }

    #[test]
    fn corpus_train_eval_runs() {
        let train = prefix_corpus(1, 10, 4096);
        let test = prefix_corpus(2, 5, 4096);
        let cm = corpus_train_eval(
            &train,
            &test,
            &FeatureWidths::cart_selected(),
            TrainingMethod::Prefix { b: 64 },
            TrainingMethod::Prefix { b: 64 },
            FeatureMode::Exact,
            &paper_cart(),
            3,
        );
        assert_eq!(cm.total(), 20);
        assert!(cm.accuracy() > 0.5);
    }
}
