//! Entropy-kernel microbenchmark: old vs new counting kernel.
//!
//! Compares the pre-overhaul kernel — SipHash `std` HashMap histograms
//! plus per-width carry rescans — against the current tiered kernel
//! (dense `k≤2` tables, Fx open addressing, single-pass multi-width
//! rolling window). The old kernel is replicated in this binary so one
//! build measures both sides; a startup sanity pass asserts the two
//! produce bit-identical entropy vectors before anything is timed.
//!
//! Matrix: buffer size b ∈ {256, 2048, 16384} × width set
//! {full, svm, cart} × {oneshot, incremental (512-byte packets)}.
//! Output is criterion-style `ns/iter` lines followed by a JSON
//! document (captured into `results/BENCH_kernel.json`).
//!
//! `--smoke` runs the whole matrix with minimal iteration counts so CI
//! can verify the harness end-to-end in ~2 seconds.

use std::hint::black_box;
use std::time::Instant;

use iustitia_corpus::{generate_file, FileClass};
use iustitia_entropy::{EntropyVector, FeatureWidths, IncrementalVector};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Replica of the pre-overhaul kernel, kept verbatim-in-spirit: one
/// SipHash-hashed `HashMap<u128, u64>` per width, fed by a per-width
/// rescan of every chunk (plus a shared carry for straddling grams).
mod old_kernel {
    use std::collections::HashMap;

    pub struct OldHistogram {
        k: usize,
        counts: HashMap<u128, u64>,
        windows: u64,
    }

    impl OldHistogram {
        pub fn new(k: usize) -> Self {
            OldHistogram { k, counts: HashMap::new(), windows: 0 }
        }

        pub fn extend_from_bytes(&mut self, data: &[u8]) {
            if data.len() < self.k {
                return;
            }
            let mask: u128 = if self.k >= 16 { u128::MAX } else { (1u128 << (8 * self.k)) - 1 };
            let mut key: u128 = 0;
            for &b in &data[..self.k - 1] {
                key = (key << 8) | u128::from(b);
            }
            for &b in &data[self.k - 1..] {
                key = ((key << 8) | u128::from(b)) & mask;
                *self.counts.entry(key).or_insert(0) += 1;
            }
            self.windows += (data.len() - self.k + 1) as u64;
        }

        /// Sorted-order Σ m·log2(m) — same summation contract as the
        /// new kernel, so entropies compare bit-for-bit.
        pub fn entropy(&self) -> f64 {
            let m = self.windows;
            if m <= 1 || self.counts.len() <= 1 {
                return 0.0;
            }
            let mut counts: Vec<u64> = self.counts.values().copied().collect();
            counts.sort_unstable();
            let s: f64 = counts
                .into_iter()
                .map(|c| {
                    let c = c as f64;
                    c * c.log2()
                })
                .sum();
            let m = m as f64;
            ((m.log2() - s / m) / (8.0 * self.k as f64)).clamp(0.0, 1.0)
        }
    }

    /// The old incremental builder: every chunk is rescanned once per
    /// width, with a `max(k)−1`-byte carry re-fed ahead of each scan.
    pub struct OldIncremental {
        hists: Vec<OldHistogram>,
        carry: Vec<u8>,
        carry_cap: usize,
        scratch: Vec<u8>,
    }

    impl OldIncremental {
        pub fn new(widths: &[usize]) -> Self {
            let max_k = widths.iter().copied().max().unwrap_or(1);
            OldIncremental {
                hists: widths.iter().map(|&k| OldHistogram::new(k)).collect(),
                carry: Vec::new(),
                carry_cap: max_k.saturating_sub(1),
                scratch: Vec::new(),
            }
        }

        pub fn update(&mut self, chunk: &[u8]) {
            if chunk.is_empty() {
                return;
            }
            for hist in &mut self.hists {
                let tail = self.carry.len().min(hist.k - 1);
                let carry = &self.carry[self.carry.len() - tail..];
                if carry.is_empty() {
                    hist.extend_from_bytes(chunk);
                } else {
                    // Scan carry ++ chunk: the carry is shorter than k,
                    // so every window of the concatenation ends inside
                    // `chunk` and is counted exactly once.
                    self.scratch.clear();
                    self.scratch.extend_from_slice(carry);
                    self.scratch.extend_from_slice(chunk);
                    hist.extend_from_bytes(&self.scratch);
                }
            }
            if chunk.len() >= self.carry_cap {
                self.carry.clear();
                self.carry.extend_from_slice(&chunk[chunk.len() - self.carry_cap..]);
            } else {
                let keep = self.carry_cap - chunk.len();
                if self.carry.len() > keep {
                    let drop = self.carry.len() - keep;
                    self.carry.drain(..drop);
                }
                self.carry.extend_from_slice(chunk);
            }
        }

        pub fn finish(&self) -> Vec<f64> {
            self.hists.iter().map(OldHistogram::entropy).collect()
        }
    }
}

/// 512 bytes: the packet size used by the serve load generator.
const PACKET: usize = 512;

fn old_oneshot(data: &[u8], widths: &[usize]) -> Vec<f64> {
    widths
        .iter()
        .map(|&k| {
            let mut h = old_kernel::OldHistogram::new(k);
            h.extend_from_bytes(data);
            h.entropy()
        })
        .collect()
}

fn old_incremental(data: &[u8], widths: &[usize]) -> Vec<f64> {
    let mut inc = old_kernel::OldIncremental::new(widths);
    for chunk in data.chunks(PACKET) {
        inc.update(chunk);
    }
    inc.finish()
}

fn new_oneshot(data: &[u8], widths: &FeatureWidths) -> Vec<f64> {
    EntropyVector::compute(data, widths).values().to_vec()
}

fn new_incremental(data: &[u8], widths: &FeatureWidths) -> Vec<f64> {
    // The pipeline knows the classification window b up front
    // (`begin_flow(b_hint)`), so the hinted constructor is the path
    // that actually runs in production.
    let mut inc = IncrementalVector::with_byte_hint(widths, data.len());
    for chunk in data.chunks(PACKET) {
        inc.update(chunk);
    }
    inc.finish().values().to_vec()
}

fn new_incremental_chunked(data: &[u8], widths: &FeatureWidths, chunk: usize) -> Vec<f64> {
    let mut inc = IncrementalVector::with_byte_hint(widths, data.len());
    for c in data.chunks(chunk) {
        inc.update(c);
    }
    inc.finish().values().to_vec()
}

/// Times `f` criterion-style: calibrate an iteration count to the
/// target sample length, warm up, then take `samples` samples and
/// report the median ns/iter.
fn bench(mut f: impl FnMut() -> Vec<f64>, smoke: bool) -> f64 {
    if smoke {
        let start = Instant::now();
        black_box(f());
        return start.elapsed().as_nanos() as f64;
    }
    // Calibrate: grow iters until one sample takes ≥ 20 ms.
    let mut iters: u64 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        if start.elapsed().as_millis() >= 20 {
            break;
        }
        iters *= 2;
    }
    let samples = 9;
    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    per_iter.sort_by(f64::total_cmp);
    per_iter[samples / 2]
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");

    let width_sets: [(&str, FeatureWidths); 3] = [
        ("full", FeatureWidths::full()),
        ("svm", FeatureWidths::svm_selected()),
        ("cart", FeatureWidths::cart_selected()),
    ];
    let sizes = [256usize, 2048, 16384];

    // Sanity: the old replica and the new kernel must agree bit-for-bit
    // on every cell before any timing is trusted.
    let mut rng = StdRng::seed_from_u64(7);
    for &b in &sizes {
        for class in FileClass::ALL {
            let data = generate_file(class, b, &mut rng);
            for (_, widths) in &width_sets {
                let ws: Vec<usize> = widths.iter().collect();
                assert_eq!(old_oneshot(&data, &ws), new_oneshot(&data, widths));
                assert_eq!(old_incremental(&data, &ws), new_incremental(&data, widths));
                assert_eq!(new_oneshot(&data, widths), new_incremental(&data, widths));
            }
        }
    }
    eprintln!("sanity: old and new kernels are bit-identical on all {} cells", 3 * 4 * 3);

    let mut json_cells = Vec::new();
    for &b in &sizes {
        let data = generate_file(FileClass::Binary, b, &mut rng);
        for (name, widths) in &width_sets {
            let ws: Vec<usize> = widths.iter().collect();
            let mut cell = Vec::new();
            for (kernel, mode, ns) in [
                ("old", "oneshot", bench(|| old_oneshot(&data, &ws), smoke)),
                ("old", "incremental", bench(|| old_incremental(&data, &ws), smoke)),
                ("new", "oneshot", bench(|| new_oneshot(&data, widths), smoke)),
                ("new", "incremental", bench(|| new_incremental(&data, widths), smoke)),
            ] {
                println!("kernel/b={b}/{name}/{kernel}/{mode}  time: {ns:>12.0} ns/iter");
                cell.push((kernel, mode, ns));
            }
            let ns_of = |kernel: &str, mode: &str| {
                cell.iter().find(|(k, m, _)| *k == kernel && *m == mode).map(|c| c.2).unwrap_or(0.0)
            };
            let one_speedup = ns_of("old", "oneshot") / ns_of("new", "oneshot");
            let inc_speedup = ns_of("old", "incremental") / ns_of("new", "incremental");
            println!(
                "kernel/b={b}/{name}  speedup: oneshot {one_speedup:.2}x, \
                 incremental {inc_speedup:.2}x"
            );
            json_cells.push(format!(
                "    {{\"b\": {b}, \"widths\": \"{name}\", \
                 \"old_oneshot_ns\": {:.0}, \"new_oneshot_ns\": {:.0}, \
                 \"old_incremental_ns\": {:.0}, \"new_incremental_ns\": {:.0}, \
                 \"oneshot_speedup\": {one_speedup:.2}, \
                 \"incremental_speedup\": {inc_speedup:.2}}}",
                ns_of("old", "oneshot"),
                ns_of("new", "oneshot"),
                ns_of("old", "incremental"),
                ns_of("new", "incremental"),
            ));
        }
    }

    // Chunk-size sweep: how the fixed-width-lane slab kernel amortizes
    // per-call overhead as feed granularity grows. Each cell is
    // asserted bit-identical to the one-shot vector before timing.
    let sweep_b = 16384usize;
    let sweep_widths = FeatureWidths::svm_selected();
    let sweep_data = generate_file(FileClass::Binary, sweep_b, &mut rng);
    let sweep_baseline = new_oneshot(&sweep_data, &sweep_widths);
    let mut sweep_cells = Vec::new();
    for chunk in [1usize, 8, 32, 128, 512] {
        assert_eq!(
            new_incremental_chunked(&sweep_data, &sweep_widths, chunk),
            sweep_baseline,
            "chunked feed (chunk={chunk}) must stay bit-identical to one-shot"
        );
        let ns = bench(|| new_incremental_chunked(&sweep_data, &sweep_widths, chunk), smoke);
        let bytes_per_us = sweep_b as f64 / (ns / 1000.0);
        println!(
            "kernel/chunk_sweep/b={sweep_b}/svm/chunk={chunk}  time: {ns:>12.0} ns/iter \
             ({bytes_per_us:.0} B/us)"
        );
        sweep_cells.push(format!("    {{\"chunk\": {chunk}, \"ns\": {ns:.0}}}"));
    }

    println!("--- JSON ---");
    println!("{{");
    println!(
        "  \"benchmark\": \"entropy kernel: SipHash HashMap + per-width rescan (old) vs \
         tiered histograms + single-pass rolling window (new)\","
    );
    println!("  \"packet_bytes\": {PACKET},");
    println!("  \"mode\": \"{}\",", if smoke { "smoke" } else { "full" });
    println!("  \"cells\": [");
    println!("{}", json_cells.join(",\n"));
    println!("  ],");
    println!("  \"chunk_sweep_b\": {sweep_b},");
    println!("  \"chunk_sweep_widths\": \"svm\",");
    println!("  \"chunk_sweep\": [");
    println!("{}", sweep_cells.join(",\n"));
    println!("  ]");
    println!("}}");
}
