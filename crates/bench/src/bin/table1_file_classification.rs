//! Table 1 + Figure 2(b,c): file classification with CART and SVM-RBF
//! over 10-fold cross validation on `H_F = ⟨h1 … h10⟩`.
//!
//! Paper results: CART ≈ 79.2% total; SVM-RBF (γ=50, C=1000, DAGSVM)
//! ≈ 86.5% total with encrypted accuracy jumping from 78% to 97%.
//!
//! Run: `cargo run --release -p iustitia-bench --bin table1_file_classification`

use iustitia::features::{dataset_from_corpus, FeatureMode, TrainingMethod};
use iustitia::model::NatureModel;
use iustitia_bench::{
    paper_cart, paper_svm, print_confusion_block, print_series, scaled, standard_corpus,
};
use iustitia_corpus::FileClass;
use iustitia_entropy::FeatureWidths;
use iustitia_ml::cross_validate;
use iustitia_ml::multiclass::OneVsOneVote;
use iustitia_ml::svm::SvmParams;
use iustitia_ml::Classifier;

fn main() {
    let per_class = scaled(300);
    let folds = 10;
    println!(
        "Table 1 / Figure 2(b,c) — {folds}-fold CV on H_F vectors, {per_class} files/class \
         (paper: 2000/class; below ~250/class the RBF SVM is data-starved on the armored subclass)"
    );
    let corpus = standard_corpus(81, per_class);
    let ds = dataset_from_corpus(
        &corpus,
        &FeatureWidths::full(),
        TrainingMethod::WholeFile,
        FeatureMode::Exact,
        81,
    );

    // ── CART ──
    let cart_kind = paper_cart();
    let cart = cross_validate(&ds, folds, 1, |train| {
        NatureModel::train(train, &cart_kind).expect("train")
    });
    let cart_points: Vec<(String, Vec<f64>)> = cart
        .fold_accuracies()
        .iter()
        .enumerate()
        .map(|(i, &a)| {
            (format!("{}", i + 1), {
                let mut ys = vec![a];
                ys.extend(FileClass::ALL.iter().map(|c| cart.fold_class_accuracies(c.index())[i]));
                ys
            })
        })
        .collect();
    print_series(
        "Figure 2(b): CART accuracy per cross-validation fold",
        "fold",
        &["total", "text", "binary", "encrypted", "compressed"],
        &cart_points,
    );
    print_confusion_block("Table 1 — Decision Tree (CART)", &cart.total());

    // ── SVM-RBF via DAGSVM ──
    let svm_kind = paper_svm();
    let svm =
        cross_validate(&ds, folds, 1, |train| NatureModel::train(train, &svm_kind).expect("train"));
    let svm_points: Vec<(String, Vec<f64>)> = svm
        .fold_accuracies()
        .iter()
        .enumerate()
        .map(|(i, &a)| {
            (format!("{}", i + 1), {
                let mut ys = vec![a];
                ys.extend(FileClass::ALL.iter().map(|c| svm.fold_class_accuracies(c.index())[i]));
                ys
            })
        })
        .collect();
    print_series(
        "Figure 2(c): SVM-RBF (γ=50, C=1000) accuracy per fold",
        "fold",
        &["total", "text", "binary", "encrypted", "compressed"],
        &svm_points,
    );
    print_confusion_block("Table 1 — SVM with RBF kernel (DAGSVM)", &svm.total());

    println!(
        "\nsummary: CART total {:.2}% vs SVM total {:.2}% (paper: 79.19% vs 86.51%)",
        100.0 * cart.total().accuracy(),
        100.0 * svm.total().accuracy()
    );
    println!(
        "encrypted-class accuracy: CART {:.2}% vs SVM {:.2}% (paper: 78.25% vs 96.79%)",
        100.0 * cart.total().class_accuracy(FileClass::Encrypted.index()),
        100.0 * svm.total().class_accuracy(FileClass::Encrypted.index())
    );

    // ── Ablation: DAGSVM vs one-vs-one voting ──
    let (train, test) = ds.train_test_split(0.3, 5);
    let dag = NatureModel::train(&train, &svm_kind).expect("train");
    let vote = match &dag {
        NatureModel::Svm(d) => OneVsOneVote::from_dag(d),
        _ => unreachable!("svm_kind trains an SVM"),
    };
    let dag_acc = dag.accuracy_on(&test);
    let vote_ok = test.iter().filter(|(x, y)| vote.predict(x) == *y).count();
    let vote_acc = vote_ok as f64 / test.len() as f64;
    println!(
        "\nablation — multi-class combiner on a 70/30 split: DAGSVM {:.2}% vs 1v1-vote {:.2}% \
         (same pairwise models; DAGSVM needs 3 evaluations/flow, voting needs 6)",
        100.0 * dag_acc,
        100.0 * vote_acc
    );

    // ── Ablation: RBF vs linear kernel ──
    let linear = NatureModel::train(
        &train,
        &iustitia::model::ModelKind::Svm(SvmParams {
            c: 1000.0,
            kernel: iustitia_ml::svm::Kernel::Linear,
            ..SvmParams::default()
        }),
    )
    .expect("train");
    println!(
        "ablation — kernel: RBF {:.2}% vs linear {:.2}%",
        100.0 * dag_acc,
        100.0 * linear.accuracy_on(&test)
    );
}
