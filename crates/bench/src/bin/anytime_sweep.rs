//! Anytime early-exit calibration sweep: accuracy vs mean
//! bytes-to-verdict across the emission-threshold grid, against the
//! fixed-`b` baseline, plus an end-to-end pipeline replay comparing
//! throughput with the calibrated threshold on and off.
//!
//! Run: `cargo run --release -p iustitia-bench --bin anytime_sweep`
//! (captured into `results/BENCH_anytime.json`).
//!
//! Flags:
//! - `--smoke` — tiny corpus and trace, for CI: exercises the full
//!   code path in a few seconds and asserts the JSON invariants, but
//!   the numbers are not meaningful at that scale.

use std::time::Instant;

use iustitia::features::FeatureMode;
use iustitia::model::{train_anytime_from_corpus, AnytimeTrainReport, ANYTIME_THRESHOLD_DISABLED};
use iustitia::pipeline::{AnytimeConfig, Iustitia, PipelineConfig};
use iustitia_bench::{paper_cart, scaled};
use iustitia_corpus::CorpusBuilder;
use iustitia_entropy::FeatureWidths;
use iustitia_netsim::{ContentMode, Packet, TraceConfig, TraceGenerator};

/// One timed pass of the trace through a fresh pipeline. Returns
/// (wall seconds, verdicts, early exits, mean bytes at verdict).
fn replay(report: &AnytimeTrainReport, b: usize, packets: &[Packet], anytime: bool) -> Replay {
    let mut config =
        PipelineConfig { buffer_size: b, battery: true, ..PipelineConfig::headline(33) };
    if anytime {
        config.anytime = Some(AnytimeConfig::calibrated(&report.anytime.confidence));
    }
    let mut pipeline = Iustitia::new(report.model.clone(), config);
    if anytime {
        pipeline = pipeline.with_anytime(report.anytime.clone());
    }
    let start = Instant::now();
    for packet in packets {
        pipeline.process_packet(packet);
    }
    pipeline.sweep_idle(f64::INFINITY);
    let wall_s = start.elapsed().as_secs_f64();
    let log = pipeline.take_log();
    let verdicts = log.len();
    let bytes: u64 = log.iter().map(|f| f.buffered_bytes as u64).sum();
    Replay {
        wall_s,
        verdicts,
        early_exits: pipeline.early_exit_verdicts(),
        mean_bytes_at_verdict: bytes as f64 / verdicts.max(1) as f64,
    }
}

struct Replay {
    wall_s: f64,
    verdicts: usize,
    early_exits: u64,
    mean_bytes_at_verdict: f64,
}

fn replay_json(name: &str, r: &Replay, packets: usize, trailing_comma: bool) {
    println!("    \"{name}\": {{");
    println!("      \"wall_s\": {:.4},", r.wall_s);
    println!("      \"pkts_per_s\": {:.0},", packets as f64 / r.wall_s);
    println!("      \"verdicts\": {},", r.verdicts);
    println!("      \"early_exit_verdicts\": {},", r.early_exits);
    println!("      \"mean_bytes_at_verdict\": {:.1}", r.mean_bytes_at_verdict);
    println!("    }}{}", if trailing_comma { "," } else { "" });
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // The size range brackets the buffer: most files can fill it (the
    // fixed-`b` rule pays the full `b` for them) but a short tail
    // cannot, mirroring the mixed transfer sizes of the paper's pool.
    let (per_class, min_size, max_size, b, n_flows) =
        if smoke { (12, 512, 2048, 512, 150) } else { (160, 1024, 16384, 4096, scaled(1500)) };

    eprintln!("training anytime model (CART, b={b}, {per_class} files/class)...");
    let corpus =
        CorpusBuilder::new(33).files_per_class(per_class).size_range(min_size, max_size).build();
    let report = train_anytime_from_corpus(
        &corpus,
        &FeatureWidths::svm_selected(),
        b,
        FeatureMode::Exact,
        &paper_cart(),
        33,
        true,
        0.01,
    )
    .expect("balanced corpus");

    let threshold = report.anytime.confidence.threshold();
    let calibrated = report.curve.iter().find(|p| p.threshold == threshold).copied();

    eprintln!("generating {n_flows}-flow trace for the pipeline replay...");
    let mut trace = TraceConfig::small_test(42);
    trace.n_flows = n_flows;
    trace.duration = 20.0;
    trace.mean_data_packets = 24.0;
    trace.content = ContentMode::Realistic;
    trace.content_budget = 2 * b;
    let packets: Vec<Packet> = TraceGenerator::new(trace).collect();

    eprintln!("replaying {} packets (fixed-b, then anytime)...", packets.len());
    let fixed = replay(&report, b, &packets, false);
    let any = replay(&report, b, &packets, true);

    println!("{{");
    println!("  \"benchmark\": \"anytime early-exit sweep (accuracy vs mean bytes-to-verdict)\",");
    println!("  \"smoke\": {smoke},");
    println!("  \"corpus\": {{\"seed\": 33, \"files_per_class\": {per_class}, \"size_range\": [{min_size}, {max_size}]}},");
    println!("  \"buffer_size\": {b},");
    println!("  \"accuracy_floor\": 0.01,");
    println!("  \"fixed_b_baseline\": {{");
    println!("    \"accuracy\": {:.4},", report.full_accuracy);
    println!("    \"mean_bytes_to_verdict\": {:.1}", report.full_mean_bytes);
    println!("  }},");
    if let Some(p) = calibrated {
        let floors: Vec<String> =
            report.anytime.confidence.class_floor().iter().map(|f| f.to_string()).collect();
        let trusted = report.anytime.confidence.trusted_bytes();
        println!("  \"calibrated_threshold\": {threshold},");
        println!("  \"exit_policy\": {{");
        println!("    \"class_floor_bytes\": [{}],", floors.join(", "));
        if trusted == u64::MAX {
            println!("    \"trusted_bytes\": null");
        } else {
            println!("    \"trusted_bytes\": {trusted}");
        }
        println!("  }},");
        println!("  \"calibrated\": {{");
        println!("    \"accuracy\": {:.4},", p.accuracy);
        println!("    \"mean_bytes_to_verdict\": {:.1},", p.mean_bytes_to_verdict);
        println!("    \"early_fraction\": {:.4},", p.early_fraction);
        println!(
            "    \"bytes_reduction_factor\": {:.2}",
            report.full_mean_bytes / p.mean_bytes_to_verdict
        );
        println!("  }},");
    } else {
        assert_eq!(
            threshold, ANYTIME_THRESHOLD_DISABLED,
            "threshold off the grid must be the disabled sentinel"
        );
        println!("  \"calibrated_threshold\": null,");
        println!("  \"calibrated\": null,");
    }
    println!("  \"curve\": [");
    let rows: Vec<String> = report
        .curve
        .iter()
        .map(|p| {
            format!(
                "    {{\"threshold\": {}, \"accuracy\": {:.4}, \
                 \"mean_bytes_to_verdict\": {:.1}, \"early_fraction\": {:.4}}}",
                p.threshold, p.accuracy, p.mean_bytes_to_verdict, p.early_fraction
            )
        })
        .collect();
    println!("{}", rows.join(",\n"));
    println!("  ],");
    println!("  \"pipeline_replay\": {{");
    println!("    \"packets\": {},", packets.len());
    replay_json("fixed_b", &fixed, packets.len(), true);
    replay_json("anytime", &any, packets.len(), false);
    println!("  }}");
    println!("}}");

    // Invariants every run (including --smoke) must satisfy: anytime
    // never loses verdicts, and when the calibration found a usable
    // threshold the replay must actually exit early.
    assert_eq!(fixed.verdicts, any.verdicts, "anytime must not lose verdicts");
    assert_eq!(fixed.early_exits, 0, "fixed-b path must never exit early");
    if calibrated.is_some() {
        assert!(any.early_exits > 0, "calibrated threshold should fire on the replay trace");
        assert!(
            any.mean_bytes_at_verdict < fixed.mean_bytes_at_verdict,
            "early exits must reduce mean bytes at verdict"
        );
    }
}
