//! Table 1b (beyond the paper): 4-class classification with the
//! compressed traffic class, entropy-only vs entropy + randomness
//! battery.
//!
//! The paper's three natures (text / binary / encrypted) leave
//! compressed transfers — gzip'd HTTP bodies, archives — stranded:
//! DEFLATE output is nearly as high-entropy as ciphertext, so an
//! entropy-only model folds most compressed flows into the encrypted
//! class. The HEDGE/EnCoD line of work separates them with randomness
//! *tests* (chi-square absolute distance, bit-runs, autocorrelation)
//! that compressed streams fail and ciphertext passes. This binary
//! quantifies that on our synthetic corpus: same 4-class corpora, same
//! buffer, same model kind — the only variable is whether the six
//! battery statistics ride alongside the entropy vector.
//!
//! The cells to watch are `compressed -> encrypted` and
//! `encrypted -> compressed`.
//!
//! Run: `cargo run --release -p iustitia-bench --bin table1b_four_class`
//! (output is committed as `results/table1b_four_class.txt`).

use iustitia::features::{dataset_from_corpus_battery, FeatureMode, TrainingMethod};
use iustitia_bench::{paper_svm, pct, prefix_corpus, print_confusion_block, scaled, train_eval};
use iustitia_corpus::FileClass;
use iustitia_entropy::FeatureWidths;
use iustitia_ml::ConfusionMatrix;

fn four_class_confusion(
    train_files: &[iustitia_corpus::LabeledFile],
    test_files: &[iustitia_corpus::LabeledFile],
    b: usize,
    battery: bool,
) -> ConfusionMatrix {
    let widths = FeatureWidths::svm_selected();
    let method = TrainingMethod::Prefix { b };
    let train =
        dataset_from_corpus_battery(train_files, &widths, method, FeatureMode::Exact, 7, battery);
    let test = dataset_from_corpus_battery(
        test_files,
        &widths,
        method,
        FeatureMode::Exact,
        7 ^ 0xBEEF,
        battery,
    );
    train_eval(&train, &test, &paper_svm())
}

fn main() {
    let per_class = scaled(150);
    println!(
        "Table 1b — 4-class flow nature (text/binary/encrypted/compressed), \
         {per_class} files/class, SVM-RBF (γ=50, C=1000, DAGSVM)"
    );

    let train_files = prefix_corpus(211, per_class, 16384);
    let test_files = prefix_corpus(212, per_class / 2, 16384);
    let enc = FileClass::Encrypted.index();
    let comp = FileClass::Compressed.index();

    for b in [64usize, 128, 256, 512, 1024, 2048] {
        let baseline = four_class_confusion(&train_files, &test_files, b, false);
        let battery = four_class_confusion(&train_files, &test_files, b, true);
        if b == 2048 {
            print_confusion_block(
                &format!("b={b}, entropy only (paper feature set, 4 classes)"),
                &baseline,
            );
            print_confusion_block(&format!("b={b}, entropy + randomness battery"), &battery);
            println!();
        }
        println!("b={b}: compressed/encrypted separation (the cells the battery exists for):");
        for (name, cm) in [("entropy only", &baseline), ("entropy + battery", &battery)] {
            println!(
                "  {name:<18} compressed->encrypted: {:>3}  encrypted->compressed: {:>3}  \
                 compressed acc: {}  encrypted acc: {}  total: {}",
                cm.count(comp, enc),
                cm.count(enc, comp),
                pct(cm.class_accuracy(comp)),
                pct(cm.class_accuracy(enc)),
                pct(cm.accuracy()),
            );
        }
    }
}
