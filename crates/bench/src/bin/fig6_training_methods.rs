//! Figure 6: accuracy by training regime (`H_F` vs `H_b` vs `H_b′`)
//! across buffer sizes, for SVM and CART.
//!
//! `H_b′` trains on `b` consecutive bytes starting at a random offset
//! in `[0, T]` (T = 1970), modeling flows whose unknown application
//! header was only partially skipped. Paper: the three regimes do not
//! significantly differ, larger buffers help both models, and SVM-RBF
//! beats CART by up to ~10%; with unknown headers removed the
//! classifier reaches ~80% at b = 1024.
//!
//! Run: `cargo run --release -p iustitia-bench --bin fig6_training_methods`

use iustitia::features::{FeatureMode, TrainingMethod};
use iustitia_bench::{
    corpus_train_eval, paper_cart, paper_svm, prefix_corpus, print_series, scaled,
};
use iustitia_entropy::FeatureWidths;

fn main() {
    let per_class = scaled(120);
    let t_max = 1970usize;
    println!("Figure 6 — training methods H_F / H_b / H_b' (T = {t_max}), {per_class} files/class");
    let train_files = prefix_corpus(61, per_class, 32768);
    let test_files = prefix_corpus(62, per_class / 2, 32768);
    let widths = FeatureWidths::full();
    let buffer_sizes: [usize; 8] = [8, 32, 128, 512, 1024, 2048, 3072, 4096];

    for (name, kind) in [("SVM with RBF kernel (6a)", paper_svm()), ("CART (6b)", paper_cart())] {
        let mut points = Vec::new();
        for &b in &buffer_sizes {
            let mut accs = Vec::new();
            for train_method in [
                TrainingMethod::WholeFile,
                TrainingMethod::Prefix { b },
                TrainingMethod::RandomOffsetPrefix { b, t_max },
            ] {
                // Test flows carry an unknown header of random length
                // Y ≤ T; the classifier starts reading at a random point
                // within it, per the paper's evaluation protocol.
                let cm = corpus_train_eval(
                    &train_files,
                    &test_files,
                    &widths,
                    train_method,
                    TrainingMethod::RandomOffsetPrefix { b, t_max },
                    FeatureMode::Exact,
                    &kind,
                    13,
                );
                accs.push(cm.accuracy());
            }
            points.push((format!("{b}"), accs));
        }
        print_series(
            &format!("Figure 6 — {name}"),
            "buffer b",
            &["HF-based", "Hb-based", "Hb'-based"],
            &points,
        );
        let at_1024 = &points[4].1;
        println!(
            "at b=1024 (paper: ~80% with unknown headers removed): HF {:.1}%, Hb {:.1}%, Hb' {:.1}%",
            100.0 * at_1024[0],
            100.0 * at_1024[1],
            100.0 * at_1024[2]
        );
    }
}
