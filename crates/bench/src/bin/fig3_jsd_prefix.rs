//! Figure 3: Jensen–Shannon divergence between the distribution of the
//! first `b` bytes of a file and the whole file (hypothesis 2).
//!
//! Paper: for f1 (single bytes), the first 20% of a file represents the
//! whole with > 86% similarity (JSD < 0.14); for f2 the similarity is
//! ≈ 70%, for f3 ≈ 67% (from the tech-report version).
//!
//! The k ≥ 2 divergences are strongly file-size dependent (sparse
//! supports diverge trivially), so this experiment uses the larger
//! files of the pool — the paper's corpus included multi-megabyte
//! executables and videos.
//!
//! Run: `cargo run --release -p iustitia-bench --bin fig3_jsd_prefix`

use iustitia_bench::{print_series, scaled};
use iustitia_corpus::{CorpusBuilder, FileClass};
use iustitia_entropy::{jensen_shannon_divergence, ByteDistribution};

fn main() {
    let per_class = scaled(50);
    println!("Figure 3 — JSD(first b bytes ‖ whole file), {per_class} files/class (paper: 1000)");
    let corpus =
        CorpusBuilder::new(33).files_per_class(per_class).size_range(65536, 262144).build();
    let portions: Vec<f64> = (1..=20).map(|i| i as f64 * 0.05).collect();

    for (k, fig) in
        [(1usize, "3(a) single-byte f1"), (2, "3(b) two-byte f2"), (3, "f3 (from tech report)")]
    {
        // mean_jsd[class][portion index]
        let mut sums = vec![vec![0.0f64; portions.len()]; FileClass::ALL.len()];
        let mut counts = [0usize; FileClass::ALL.len()];
        for file in &corpus {
            let whole = ByteDistribution::from_bytes(&file.data, k);
            counts[file.class.index()] += 1;
            for (pi, &portion) in portions.iter().enumerate() {
                let b = ((file.data.len() as f64) * portion).round() as usize;
                let prefix = ByteDistribution::from_bytes(&file.data[..b.min(file.data.len())], k);
                let jsd = if prefix.is_empty() && !whole.is_empty() {
                    1.0
                } else {
                    jensen_shannon_divergence(&prefix, &whole)
                };
                sums[file.class.index()][pi] += jsd;
            }
        }
        let points: Vec<(String, Vec<f64>)> = portions
            .iter()
            .enumerate()
            .map(|(pi, &portion)| {
                let means = FileClass::ALL
                    .iter()
                    .map(|c| sums[c.index()][pi] / counts[c.index()].max(1) as f64)
                    .collect();
                (format!("{portion:.2}"), means)
            })
            .collect();
        print_series(
            &format!("Figure {fig}: mean JSD vs portion of file"),
            "portion",
            &["text", "binary", "encrypted"],
            &points,
        );

        // The paper's headline similarity at the 20% prefix.
        let at_20 = &points[3].1; // portion = 0.20
        let max_jsd = at_20.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "similarity at 20% prefix (1 - JSD): worst class {:.1}% (paper: f1 ≥ 86%, f2 ≈ 70%, f3 ≈ 67%)",
            100.0 * (1.0 - max_jsd)
        );
    }
}
