//! Figure 5: entropy-vector calculation time and space vs buffer size.
//!
//! The paper implements its classifier in C++ on a 2009-era Athlon64
//! and reports both curves growing linearly in `b`, with the `b = 32`
//! point ≈ 10× cheaper in time and ≈ 30× smaller in space than
//! `b = 1024`. Absolute numbers differ on modern hardware; the *shape*
//! (linearity, the ratios between buffer sizes) is what we reproduce.
//!
//! Run: `cargo run --release -p iustitia-bench --bin fig5_calc_cost`

use iustitia::features::{FeatureExtractor, FeatureMode, BYTES_PER_COUNTER};
use iustitia_bench::{print_series, time_us};
use iustitia_corpus::{generate_file, FileClass};
use iustitia_entropy::{FeatureWidths, GramHistogram};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Packet-sized chunks for the streaming-session comparison.
const CHUNK: usize = 512;

fn main() {
    println!("Figure 5 — entropy vector calculation cost (φ'_SVM features)");
    let widths = FeatureWidths::svm_selected();
    let mut rng = StdRng::seed_from_u64(5);
    let buffer_sizes: [usize; 9] = [32, 64, 128, 256, 512, 1024, 2048, 4096, 8192];

    let mut time_points = Vec::new();
    let mut space_points = Vec::new();
    let mut stream_points = Vec::new();
    for &b in &buffer_sizes {
        // Binary content is the middle case for distinct-gram counts.
        let data = generate_file(FileClass::Binary, b, &mut rng);
        let mut fx = FeatureExtractor::new(widths.clone(), FeatureMode::Exact, 0);
        let reps = (200_000 / b).max(10);
        let us = time_us(reps, || {
            std::hint::black_box(fx.extract(std::hint::black_box(&data)));
        });
        let counters: usize =
            widths.iter().map(|k| GramHistogram::from_bytes(&data, k).counters_used()).sum();
        time_points.push((format!("{b}"), vec![us]));
        space_points
            .push((format!("{b}"), vec![counters as f64, (counters * BYTES_PER_COUNTER) as f64]));

        // The same vector computed incrementally, as the streaming
        // pipeline does: a per-flow session fed packet-sized chunks.
        // Resident bytes while the flow is pending: the old
        // buffer-then-compute path holds `b` payload bytes; the
        // streaming path holds only the gram counters.
        let stream_us = time_us(reps, || {
            let mut session = fx.begin_flow(b);
            for chunk in data.chunks(CHUNK) {
                session.update(std::hint::black_box(chunk));
            }
            std::hint::black_box(session.finish());
        });
        let mut session = fx.begin_flow(b);
        session.update(&data);
        stream_points
            .push((format!("{b}"), vec![stream_us, session.resident_bytes() as f64, b as f64]));
    }
    print_series(
        "Figure 5(a): calculation time (µs; paper shape: linear in b, ~10x from 32→1024)",
        "buffer b",
        &["time_us"],
        &time_points,
    );
    print_series(
        "Figure 5(b): calculation space (counters / approx bytes; paper shape: linear)",
        "buffer b",
        &["counters", "bytes"],
        &space_points,
    );
    print_series(
        "Figure 5(c): streaming session (512B chunks) vs buffered resident bytes per flow",
        "buffer b",
        &["stream_us", "stream_resident_B", "buffered_resident_B"],
        &stream_points,
    );

    let t32 = time_points[0].1[0];
    let t1k = time_points[5].1[0];
    let s32 = space_points[0].1[1];
    let s1k = space_points[5].1[1];
    println!(
        "\nratios b=1024 vs b=32: time ×{:.1} (paper ≈ 10–17), space ×{:.1} (paper ≈ 26–30)",
        t1k / t32,
        s1k / s32
    );
}
