//! ML-layer benchmark: serial vs parallel training, boxed vs compiled
//! inference.
//!
//! The "old" side of every comparison is the library's own reference
//! path, which still exists unchanged: single-threaded fits
//! (`Parallelism::serial()`, the exact pre-parallelism code path) and
//! the boxed pointer-chasing models (`DecisionTree`, `DagSvm`). The
//! "new" side is the scoped-thread fit and the compiled flat models
//! (`CompiledTree`, `CompiledDag`).
//!
//! A startup sanity pass asserts, on a full synthetic corpus, that
//! (1) models fitted with N worker threads are bit-identical
//! (`PartialEq`) to serial fits, and (2) compiled models return the
//! same label as their boxed originals on every corpus vector, before
//! anything is timed.
//!
//! Timed matrix: DAGSVM fit and 10-fold CART cross-validation, serial
//! vs auto-parallel; single-vector predict, boxed vs compiled, for
//! CART and DAGSVM. Output is criterion-style `ns/iter` lines followed
//! by a JSON document (captured into `results/BENCH_ml.json`).
//!
//! `--smoke` runs the whole matrix with minimal iteration counts so CI
//! can verify the harness (including both sanity passes) end-to-end.

use std::hint::black_box;
use std::time::Instant;

use iustitia::features::{FeatureMode, TrainingMethod};
use iustitia::model::{ModelKind, NatureModel};
use iustitia_corpus::CorpusBuilder;
use iustitia_entropy::FeatureWidths;
use iustitia_ml::cart::{CartParams, DecisionTree};
use iustitia_ml::compiled::{CompiledDag, CompiledTree};
use iustitia_ml::crossval::cross_validate_with;
use iustitia_ml::multiclass::DagSvm;
use iustitia_ml::svm::SvmParams;
use iustitia_ml::{Classifier, Dataset, Parallelism};

/// Times `f` criterion-style: calibrate an iteration count to the
/// target sample length, warm up, then take `samples` samples and
/// report the median ns/iter.
fn bench<R>(mut f: impl FnMut() -> R, smoke: bool) -> f64 {
    if smoke {
        let start = Instant::now();
        black_box(f());
        return start.elapsed().as_nanos() as f64;
    }
    // Calibrate: grow iters until one sample takes >= 20 ms.
    let mut iters: u64 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        if start.elapsed().as_millis() >= 20 {
            break;
        }
        iters *= 2;
    }
    let samples = 9;
    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    per_iter.sort_by(f64::total_cmp);
    per_iter[samples / 2]
}

/// Entropy-vector dataset over a full synthetic corpus — the same
/// extraction the offline trainer runs (Figure 1, right half).
fn corpus_dataset() -> Dataset {
    // b = 256: the paper's high-speed small-buffer regime, where the
    // binary/encrypted bands overlap and the SVMs retain many shared
    // support vectors.
    let corpus = CorpusBuilder::new(33).files_per_class(60).size_range(1024, 4096).build();
    iustitia::features::dataset_from_corpus(
        &corpus,
        &FeatureWidths::svm_selected(),
        TrainingMethod::Prefix { b: 256 },
        FeatureMode::Exact,
        33,
    )
}

fn svm_params(parallelism: Parallelism) -> SvmParams {
    // The paper's best model: RBF γ=50, C=1000 (Section 4.3).
    SvmParams { parallelism, ..SvmParams::paper_rbf() }
}

fn cart_params(parallelism: Parallelism) -> CartParams {
    CartParams { parallelism, ..CartParams::default() }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let threads = Parallelism::auto().resolve();
    let ds = corpus_dataset();

    // Sanity 1: parallel fits are bit-identical to serial fits.
    let dag_serial = DagSvm::fit(&ds, &svm_params(Parallelism::serial()));
    let dag_parallel = DagSvm::fit(&ds, &svm_params(Parallelism::fixed(4)));
    assert_eq!(dag_serial, dag_parallel, "DAGSVM fit must not depend on thread count");
    let tree_serial = DecisionTree::fit(&ds, &cart_params(Parallelism::serial()));
    let tree_parallel = DecisionTree::fit(&ds, &cart_params(Parallelism::fixed(4)));
    assert_eq!(tree_serial, tree_parallel, "CART fit must not depend on thread count");
    let cv_serial = cross_validate_with(&ds, 10, 33, Parallelism::serial(), |t| {
        DecisionTree::fit(t, &cart_params(Parallelism::serial()))
    });
    let cv_parallel = cross_validate_with(&ds, 10, 33, Parallelism::fixed(4), |t| {
        DecisionTree::fit(t, &cart_params(Parallelism::serial()))
    });
    assert_eq!(cv_serial, cv_parallel, "cross-validation must not depend on thread count");

    // Sanity 2: compiled models agree with their boxed originals on
    // every corpus vector (and through the NatureModel wrapper).
    let tree_fast = CompiledTree::compile(&tree_serial);
    let mut dag_fast = CompiledDag::compile(&dag_serial);
    let boxed_model = NatureModel::train(&ds, &ModelKind::Cart(cart_params(Parallelism::serial())))
        .expect("train");
    let mut compiled_model = boxed_model.compile();
    for (x, _) in ds.iter() {
        assert_eq!(tree_fast.predict(x), Classifier::predict(&tree_serial, x));
        assert_eq!(dag_fast.predict(x), Classifier::predict(&dag_serial, x));
        assert_eq!(compiled_model.predict(x), boxed_model.predict(x));
    }
    eprintln!(
        "sanity: parallel==serial fits and compiled==boxed predictions \
         on all {} corpus vectors",
        ds.len()
    );

    let n = ds.len();
    let n_features = ds.n_features();
    let vectors: Vec<&[f64]> = ds.iter().map(|(x, _)| x).collect();

    // --- training ---
    let fit_rows = [
        (
            "fit/dagsvm",
            bench(|| DagSvm::fit(&ds, &svm_params(Parallelism::serial())), smoke),
            bench(|| DagSvm::fit(&ds, &svm_params(Parallelism::auto())), smoke),
        ),
        (
            "cv10/cart",
            bench(
                || {
                    cross_validate_with(&ds, 10, 33, Parallelism::serial(), |t| {
                        DecisionTree::fit(t, &cart_params(Parallelism::serial()))
                    })
                },
                smoke,
            ),
            bench(
                || {
                    cross_validate_with(&ds, 10, 33, Parallelism::auto(), |t| {
                        DecisionTree::fit(t, &cart_params(Parallelism::serial()))
                    })
                },
                smoke,
            ),
        ),
    ];
    for (name, serial_ns, parallel_ns) in &fit_rows {
        println!("ml/{name}/serial    time: {serial_ns:>12.0} ns/iter");
        println!("ml/{name}/parallel  time: {parallel_ns:>12.0} ns/iter");
        println!("ml/{name}  speedup: {:.2}x ({threads} threads)", serial_ns / parallel_ns);
    }

    // --- inference (ns per single-vector predict, averaged over the
    // whole corpus so every tree path and DAG route is exercised) ---
    let per = |total_ns: f64| total_ns / n as f64;
    let predict_rows = [
        (
            "predict/cart",
            per(bench(
                || vectors.iter().map(|x| Classifier::predict(&tree_serial, x)).sum::<usize>(),
                smoke,
            )),
            per(bench(|| vectors.iter().map(|x| tree_fast.predict(x)).sum::<usize>(), smoke)),
        ),
        (
            "predict/dagsvm",
            per(bench(
                || vectors.iter().map(|x| Classifier::predict(&dag_serial, x)).sum::<usize>(),
                smoke,
            )),
            per(bench(|| vectors.iter().map(|x| dag_fast.predict(x)).sum::<usize>(), smoke)),
        ),
    ];
    for (name, boxed_ns, compiled_ns) in &predict_rows {
        println!("ml/{name}/boxed     time: {boxed_ns:>12.1} ns/predict");
        println!("ml/{name}/compiled  time: {compiled_ns:>12.1} ns/predict");
        println!("ml/{name}  speedup: {:.2}x", boxed_ns / compiled_ns);
    }

    println!("--- JSON ---");
    println!("{{");
    println!(
        "  \"benchmark\": \"ML layer: serial vs scoped-thread training, \
         boxed vs compiled (flat-array, packed-SV) inference\","
    );
    println!("  \"mode\": \"{}\",", if smoke { "smoke" } else { "full" });
    println!("  \"threads\": {threads},");
    println!("  \"matrix\": {{");
    println!("    \"n_samples\": {n},");
    println!("    \"n_features\": {n_features},");
    println!("    \"cart_nodes\": {},", tree_fast.n_nodes());
    println!("    \"dagsvm_distinct_svs\": {},", dag_fast.n_distinct_support_vectors());
    println!("    \"dagsvm_terms\": {}", dag_fast.n_terms());
    println!("  }},");
    println!("  \"training\": [");
    let fit_cells: Vec<String> = fit_rows
        .iter()
        .map(|(name, s, p)| {
            format!(
                "    {{\"bench\": \"{name}\", \"serial_ns\": {s:.0}, \
                 \"parallel_ns\": {p:.0}, \"speedup\": {:.2}}}",
                s / p
            )
        })
        .collect();
    println!("{}", fit_cells.join(",\n"));
    println!("  ],");
    println!("  \"inference\": [");
    let predict_cells: Vec<String> = predict_rows
        .iter()
        .map(|(name, b, c)| {
            format!(
                "    {{\"bench\": \"{name}\", \"boxed_ns_per_predict\": {b:.1}, \
                 \"compiled_ns_per_predict\": {c:.1}, \"speedup\": {:.2}}}",
                b / c
            )
        })
        .collect();
    println!("{}", predict_cells.join(",\n"));
    println!("  ]");
    println!("}}");
}
