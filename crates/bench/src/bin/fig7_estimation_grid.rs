//! Figure 7: classification accuracy with `(δ,ε)`-estimated entropy
//! vectors, over a grid of ε and δ values, for SVM (re-selected
//! γ=10, C=1000) and CART.
//!
//! Paper findings at `b′ = 1024`: SVM reaches 81.3% at (ε=0.25, δ=0.75)
//! and 83% after re-selecting γ=10; CART reaches 76.0% at
//! (ε=0.5, δ=0.1); estimation is not effective for 32-byte buffers.
//!
//! Run: `cargo run --release -p iustitia-bench --bin fig7_estimation_grid`
//! (the estimation sweep is the slowest repro — a few minutes at scale 1)

use iustitia::features::{FeatureMode, TrainingMethod};
use iustitia_bench::{
    corpus_train_eval, estimated_svm, paper_cart, prefix_corpus, print_table, scaled,
};
use iustitia_corpus::FileClass;
use iustitia_entropy::{EstimatorConfig, FeatureWidths};

fn main() {
    let per_class = scaled(60);
    let b = 1024usize;
    println!("Figure 7 — (δ,ε) estimation grid at b' = {b}, {per_class} files/class");
    let train_files = prefix_corpus(71, per_class, 16384);
    let test_files = prefix_corpus(72, per_class / 2, 16384);

    let epsilons = [0.25, 0.5, 0.75, 1.0];
    let deltas = [0.1, 0.25, 0.5, 0.75];

    for (name, kind, widths) in [
        ("(i) SVM-RBF γ=10 C=1000", estimated_svm(), FeatureWidths::svm_selected()),
        ("(ii) CART", paper_cart(), FeatureWidths::cart_selected()),
    ] {
        let mut rows = Vec::new();
        let mut best = (0.0f64, 0.0f64, 0.0f64);
        for &eps in &epsilons {
            for &delta in &deltas {
                let cfg = EstimatorConfig::new(eps, delta).expect("valid grid point");
                let cm = corpus_train_eval(
                    &train_files,
                    &test_files,
                    &widths,
                    TrainingMethod::Prefix { b },
                    TrainingMethod::Prefix { b },
                    FeatureMode::Estimated(cfg),
                    &kind,
                    17,
                );
                if cm.accuracy() > best.2 {
                    best = (eps, delta, cm.accuracy());
                }
                rows.push(vec![
                    format!("{eps}"),
                    format!("{delta}"),
                    format!("{:.2}%", 100.0 * cm.accuracy()),
                    format!("{:.2}%", 100.0 * cm.class_accuracy(FileClass::Text.index())),
                    format!("{:.2}%", 100.0 * cm.class_accuracy(FileClass::Binary.index())),
                    format!("{:.2}%", 100.0 * cm.class_accuracy(FileClass::Encrypted.index())),
                    format!("{:.2}%", 100.0 * cm.class_accuracy(FileClass::Compressed.index())),
                ]);
            }
        }
        print_table(
            &format!("Figure 7{name}: accuracy over the (ε,δ) grid"),
            &["eps", "delta", "total", "text", "binary", "encrypted", "compressed"],
            &rows,
        );
        println!(
            "best grid point: ε={} δ={} at {:.2}% (paper: SVM 83% at ε=0.25; CART 76% at ε=0.5, δ=0.1)",
            best.0,
            best.1,
            100.0 * best.2
        );
    }

    // The paper's negative result: estimation at b = 32 is ineffective.
    let cfg = EstimatorConfig::svm_optimal();
    let exact32 = corpus_train_eval(
        &train_files,
        &test_files,
        &FeatureWidths::svm_selected(),
        TrainingMethod::Prefix { b: 32 },
        TrainingMethod::Prefix { b: 32 },
        FeatureMode::Exact,
        &estimated_svm(),
        19,
    );
    let est32 = corpus_train_eval(
        &train_files,
        &test_files,
        &FeatureWidths::svm_selected(),
        TrainingMethod::Prefix { b: 32 },
        TrainingMethod::Prefix { b: 32 },
        FeatureMode::Estimated(cfg),
        &estimated_svm(),
        19,
    );
    println!(
        "\nb = 32 sanity check (paper: estimation not effective for small buffers): \
         exact {:.2}% vs estimated {:.2}%",
        100.0 * exact32.accuracy(),
        100.0 * est32.accuracy()
    );
}
