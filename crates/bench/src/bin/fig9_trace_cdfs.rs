//! Figure 9: cumulative distributions of packet payload size and packet
//! inter-arrival time in the (synthetic) gateway trace.
//!
//! Paper (UMASS): payload sizes are bimodal — ≈ 20% of data packets at
//! 1480 bytes, > 50% below 140 bytes; inter-arrival times concentrate
//! well below 0.5 s (the default λ used for unknown flows).
//!
//! Run: `cargo run --release -p iustitia-bench --bin fig9_trace_cdfs`

use iustitia_bench::{env_scale, print_series};
use iustitia_netsim::{TraceConfig, TraceGenerator, TraceStats};

fn main() {
    let scale = (0.05 * env_scale()).clamp(0.001, 1.0);
    let config = TraceConfig::umass_scaled(9, scale);
    println!(
        "Figure 9 — trace CDFs at scale {scale} ({} flows; paper: 299,564 flows, 11.98M packets)",
        config.n_flows
    );
    let stats = TraceStats::from_packets(TraceGenerator::new(config), 500_000);

    println!(
        "trace: {} packets, {} data ({:.2}%; paper 41.16%), {} flows, {:.1} s, {:.0} pkt/s",
        stats.total_packets,
        stats.data_packets,
        100.0 * stats.data_fraction(),
        stats.data_flows,
        stats.duration,
        stats.packet_rate()
    );

    // ── 9(a) payload size CDF ──
    let thresholds = [20usize, 60, 100, 140, 300, 600, 900, 1200, 1479, 1480];
    let points: Vec<(String, Vec<f64>)> =
        thresholds.iter().map(|&b| (format!("{b}"), vec![stats.payload_cdf_at(b)])).collect();
    print_series(
        "Figure 9(a): payload size CDF (paper: >50% below 140B, jump to 1.0 at 1480B)",
        "bytes",
        &["CDF"],
        &points,
    );
    println!(
        "bimodal check: CDF(139) = {:.2} (paper > 0.5), mass at exactly 1480 = {:.2} (paper ≈ 0.2)",
        stats.payload_cdf_at(139),
        1.0 - stats.payload_cdf_at(1479)
    );

    // ── 9(b) inter-arrival CDF ──
    let taus = [1e-6, 1e-5, 1e-4, 1e-3, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0];
    let points: Vec<(String, Vec<f64>)> =
        taus.iter().map(|&t| (format!("{t}"), vec![stats.interarrival_cdf_at(t)])).collect();
    print_series(
        "Figure 9(b): aggregate packet inter-arrival CDF (paper: mass well below 0.5s)",
        "seconds",
        &["CDF"],
        &points,
    );
    println!("CDF(0.5s) = {:.3} (paper: ≈ 1.0)", stats.interarrival_cdf_at(0.5));
}
