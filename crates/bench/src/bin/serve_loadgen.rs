//! Loopback load generator for the `iustitia-serve` subsystem.
//!
//! Starts an in-process [`Server`] on `127.0.0.1:0`, trains a CART
//! model on a synthetic corpus, streams a netsim trace through the
//! client library, and reports throughput plus the server's per-stage
//! latency histograms. Unlike the criterion benches, this is a plain
//! binary: one run, human-readable numbers, no statistical harness.
//!
//! Run: `cargo run --release -p iustitia-bench --bin serve_loadgen`
//!
//! Environment knobs:
//! - `IUSTITIA_BENCH_SCALE` — scales flow count (default 1.0).
//! - `SERVE_SHARDS` — shard worker count (default 4).

use std::time::Instant;

use iustitia::features::{FeatureMode, TrainingMethod};
use iustitia::model::train_from_corpus;
use iustitia_bench::{paper_cart, prefix_corpus, scaled};
use iustitia_entropy::FeatureWidths;
use iustitia_netsim::{ContentMode, Packet, TraceConfig, TraceGenerator};
use iustitia_serve::{Client, ClientEvent, Server, ServerConfig, Stage};

fn main() {
    let shards: usize =
        std::env::var("SERVE_SHARDS").ok().and_then(|v| v.parse().ok()).unwrap_or(4);
    let n_flows = scaled(2000);

    eprintln!("training model (CART, 32-byte prefixes)...");
    let corpus = prefix_corpus(33, 80, 4096);
    let widths = FeatureWidths::svm_selected();
    let model = train_from_corpus(
        &corpus,
        &widths,
        TrainingMethod::Prefix { b: 32 },
        FeatureMode::Exact,
        &paper_cart(),
        33,
    )
    .expect("balanced corpus");

    let mut config = ServerConfig::new(iustitia::pipeline::PipelineConfig::headline(33));
    config.shards = shards;
    config.queue_capacity = 1 << 14;
    let server = Server::start("127.0.0.1:0", model, config).expect("bind loopback");
    let addr = server.local_addr();

    eprintln!("generating {n_flows}-flow trace...");
    let mut trace = TraceConfig::small_test(42);
    trace.n_flows = n_flows;
    trace.duration = 30.0;
    trace.content = ContentMode::Realistic;
    let packets: Vec<Packet> = TraceGenerator::new(trace).collect();

    let mut client = Client::connect(addr).expect("connect");
    let mut verdicts = 0u64;
    let mut busy = 0u64;

    // Sample the per-shard gauges mid-stream to observe the streaming
    // pipeline's peak memory (flows pending × feature state), the
    // number the buffered design paid `b` payload bytes for.
    let mut peak_pending = 0u64;
    let mut peak_resident = 0u64;
    let sample_every = (packets.len() / 16).max(1);

    let start = Instant::now();
    for (i, packet) in packets.iter().enumerate() {
        client.submit_packet(packet).expect("submit");
        for event in client.poll_events() {
            match event {
                ClientEvent::Verdict(_) => verdicts += 1,
                ClientEvent::Busy(_) => busy += 1,
            }
        }
        if i % sample_every == sample_every - 1 {
            let s = client.stats().expect("stats");
            peak_pending = peak_pending.max(s.pending_flows());
            peak_resident = peak_resident.max(s.resident_feature_bytes());
        }
    }
    client.flush().expect("flush");
    client.drain().expect("drain");
    for event in client.poll_events() {
        match event {
            ClientEvent::Verdict(_) => verdicts += 1,
            ClientEvent::Busy(_) => busy += 1,
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    let stats = client.stats().expect("stats");

    println!("shards:           {shards}");
    println!("packets sent:     {}", packets.len());
    println!("wall time:        {elapsed:.3} s");
    println!("throughput:       {:.0} packets/s", packets.len() as f64 / elapsed);
    println!("verdicts:         {verdicts}");
    println!("busy rejects:     {busy}");
    println!("server packets:   {} (cdb hits {})", stats.packets, stats.hits);
    println!("flows classified: {}", stats.flows_classified);
    let b = 32u64; // headline config buffer size
    println!(
        "peak pending:     {peak_pending} flows, {peak_resident} B resident feature state \
         (buffered design would hold ~{} B payload)",
        peak_pending * b
    );
    println!(
        "final gauges:     {} pending / {} B across {} shards",
        stats.pending_flows(),
        stats.resident_feature_bytes(),
        stats.shards.len()
    );
    println!(
        "state pool:       {} recycled flow states ({} parked)",
        stats.state_pool_hits(),
        stats.state_pool_size()
    );
    println!("stage latency (server-side ns):");
    println!("  {:<12} {:>9}  {:>8}  {:>8}", "stage", "n", "p50", "p99");
    for stage in Stage::ALL {
        let h = stats.stage(stage);
        println!(
            "  {:<12} {:>9}  {:>8}  {:>8}",
            stage.name(),
            h.count(),
            h.p50().map_or_else(|| "-".into(), |v| v.to_string()),
            h.p99().map_or_else(|| "-".into(), |v| v.to_string()),
        );
    }

    client.close().expect("close");
    server.shutdown();
}
