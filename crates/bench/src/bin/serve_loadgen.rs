//! Loopback load generator for the `iustitia-serve` subsystem.
//!
//! Starts an in-process [`Server`] on `127.0.0.1:0`, trains a CART
//! model on a synthetic corpus, streams a netsim trace through the
//! client library, and reports throughput plus the server's per-stage
//! latency histograms. Unlike the criterion benches, this is a plain
//! binary: one run, human-readable numbers, no statistical harness.
//!
//! Run: `cargo run --release -p iustitia-bench --bin serve_loadgen`
//!
//! Modes (mutually exclusive):
//! - `--sweep-batch` — batch-limit sweep (1, 8, 32, 128, 512): asserts
//!   the pipeline's batch path is bit-identical to per-packet dispatch,
//!   then measures throughput at each reader batch limit and prints a
//!   JSON document (captured into `results/BENCH_batch.json`).
//! - `--connections N` — many-socket scenario: N concurrent sockets,
//!   one small flow each, measuring per-connection submit-to-verdict
//!   latency client-side plus the server's accept-to-verdict histogram.
//!   Prints a JSON document (captured into `results/BENCH_epoll.json`).
//! - `--flow-churn` — anytime early-exit scenario: larger flows against
//!   a `b = 2048` buffer, streamed twice through the server with the
//!   calibrated anytime threshold off then on, comparing throughput,
//!   early-exit counts, and bytes-at-verdict (captured into the
//!   `flow_churn` section of `results/BENCH_anytime.json`).
//! - `--pcap FILE` — replay a capture file through the single-client
//!   path instead of a generated trace.
//! - `--write-pcap FILE` — export the generated trace as a classic
//!   pcap (LINKTYPE_RAW) and exit.
//!
//! Environment knobs:
//! - `IUSTITIA_BENCH_SCALE` — scales flow count (default 1.0).
//! - `SERVE_SHARDS` — shard worker count (default 4).

use std::io::Write as _;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use iustitia::features::{FeatureMode, TrainingMethod};
use iustitia::model::{
    train_anytime_from_corpus, train_from_corpus, AnytimeTrainReport, NatureModel,
};
use iustitia::pipeline::{AnytimeConfig, BatchPacket, Iustitia, PipelineConfig, Verdict};
use iustitia_bench::{paper_cart, prefix_corpus, scaled};
use iustitia_corpus::CorpusBuilder;
use iustitia_entropy::FeatureWidths;
use iustitia_netsim::{ContentMode, FiveTuple, Packet, TcpFlags, TraceConfig, TraceGenerator};
use iustitia_serve::{
    Client, ClientEvent, FrameAssembler, Request, Response, Server, ServerConfig, Stage,
};

/// Feeds the trace through two freshly built pipelines — one per
/// packet, one through `process_batch` over flow-grouped segments (the
/// shard worker's dispatch shape) — and asserts verdicts and every
/// observable gauge are bit-identical. Runs before any timing so a
/// broken batch path can never produce a "fast" number.
fn assert_batch_bit_identity(model: &NatureModel, packets: &[Packet], segment: usize) {
    let config = PipelineConfig::headline(33);
    let mut per_packet = Iustitia::new(model.clone(), config.clone());
    let mut batched = Iustitia::new(model.clone(), config);
    let mut verdicts = Vec::new();
    for chunk in packets.chunks(segment) {
        let mut items: Vec<BatchPacket<'_>> = chunk.iter().map(BatchPacket::new).collect();
        items.sort_by_key(|a| a.flow); // stable: arrival order per flow
        let expected: Vec<Verdict> =
            items.iter().map(|bp| per_packet.process_packet(bp.packet)).collect();
        batched.process_batch(&items, &mut verdicts);
        assert_eq!(verdicts, expected, "batch verdicts must be bit-identical to per-packet");
    }
    assert_eq!(batched.queues(), per_packet.queues());
    assert_eq!(batched.pending_flows(), per_packet.pending_flows());
    assert_eq!(batched.resident_feature_bytes(), per_packet.resident_feature_bytes());
    assert_eq!(batched.cdb().stats(), per_packet.cdb().stats());
    assert_eq!(batched.take_log(), per_packet.take_log());
    eprintln!(
        "bit-identity: batch == per-packet over {} packets ({}-packet segments)",
        packets.len(),
        segment
    );
}

/// One timed pass of the trace through a fresh server at the given
/// reader batch limit. Returns (throughput pkt/s, final stats).
fn timed_run(
    model: &NatureModel,
    packets: &[Packet],
    shards: usize,
    batch_limit: usize,
) -> (f64, iustitia_serve::StatsSnapshot) {
    let mut config = ServerConfig::new(PipelineConfig::headline(33));
    config.shards = shards;
    config.queue_capacity = 1 << 14;
    config.batch_limit = batch_limit;
    let server = Server::start("127.0.0.1:0", model.clone(), config).expect("bind loopback");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    let start = Instant::now();
    for packet in packets {
        client.submit_packet(packet).expect("submit");
        if client.poll_events().iter().any(|e| matches!(e, ClientEvent::Busy(_))) {
            panic!("queues sized to never reject");
        }
    }
    client.flush().expect("flush");
    client.drain().expect("drain");
    let elapsed = start.elapsed().as_secs_f64();
    let stats = client.stats().expect("stats");
    client.close().expect("close");
    server.shutdown();
    (packets.len() as f64 / elapsed, stats)
}

fn sweep_batch(model: &NatureModel, packets: &[Packet], shards: usize) {
    assert_batch_bit_identity(model, packets, 512);

    let reps = 3;
    let mut runs = Vec::new();
    for batch_limit in [1usize, 8, 32, 128, 512] {
        let mut throughputs = Vec::new();
        let mut last_stats = None;
        for _ in 0..reps {
            let (tput, stats) = timed_run(model, packets, shards, batch_limit);
            throughputs.push(tput);
            last_stats = Some(stats);
        }
        throughputs.sort_by(f64::total_cmp);
        let median = throughputs[reps / 2];
        let stats = last_stats.expect("at least one rep");
        eprintln!(
            "batch_limit={batch_limit:<4} median {median:>9.0} pkt/s \
             (batch p50 {}, flows/batch p50 {}, queue locks {})",
            stats.batch_size.p50().unwrap_or(0),
            stats.flows_per_batch.p50().unwrap_or(0),
            stats.queue_lock_acquisitions,
        );
        runs.push(format!(
            "    {{\"batch_limit\": {batch_limit}, \"median_pkts_per_s\": {median:.0}, \
             \"batch_size_p50\": {}, \"flows_per_batch_p50\": {}, \
             \"queue_lock_acquisitions\": {}, \"cdb_hits\": {}}}",
            stats.batch_size.p50().unwrap_or(0),
            stats.flows_per_batch.p50().unwrap_or(0),
            stats.queue_lock_acquisitions,
            stats.hits,
        ));
    }

    println!("{{");
    println!("  \"benchmark\": \"serve loadgen batch-limit sweep (flow-grouped batch dispatch)\",");
    println!(
        "  \"bit_identity\": \"batch == per-packet asserted on the full trace before timing\","
    );
    println!("  \"shards\": {shards},");
    println!("  \"packets\": {},", packets.len());
    println!("  \"reps_per_cell\": {reps},");
    println!("  \"runs\": [");
    println!("{}", runs.join(",\n"));
    println!("  ]");
    println!("}}");
}

/// One timed pass of the flow-churn trace with the anytime threshold
/// on or off. Returns (throughput pkt/s, final stats).
fn churn_run(
    report: &AnytimeTrainReport,
    b: usize,
    packets: &[Packet],
    shards: usize,
    anytime: bool,
) -> (f64, iustitia_serve::StatsSnapshot) {
    let mut pc = PipelineConfig { buffer_size: b, battery: true, ..PipelineConfig::headline(33) };
    if anytime {
        pc.anytime = Some(AnytimeConfig::calibrated(&report.anytime.confidence));
    }
    let mut config = ServerConfig::new(pc);
    config.shards = shards;
    config.queue_capacity = 1 << 14;
    if anytime {
        config.anytime = Some(report.anytime.clone());
    }
    let server = Server::start("127.0.0.1:0", report.model.clone(), config).expect("bind loopback");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    let start = Instant::now();
    for packet in packets {
        client.submit_packet(packet).expect("submit");
        if client.poll_events().iter().any(|e| matches!(e, ClientEvent::Busy(_))) {
            panic!("queues sized to never reject");
        }
    }
    client.flush().expect("flush");
    client.drain().expect("drain");
    let elapsed = start.elapsed().as_secs_f64();
    let stats = client.stats().expect("stats");
    client.close().expect("close");
    server.shutdown();
    (packets.len() as f64 / elapsed, stats)
}

/// The anytime early-exit scenario: a trace of larger flows against a
/// `b = 2048` buffer, streamed through the server with the calibrated
/// anytime threshold off then on. The fixed-`b` baseline pays the full
/// buffer fill per flow; the anytime run converts the tail of each
/// flow's buffer fill into CDB hits. Prints a JSON document on stdout.
fn flow_churn(shards: usize) {
    let b = 2048usize;
    eprintln!("training anytime model (CART, b={b}, 96 files/class)...");
    let corpus = CorpusBuilder::new(33).files_per_class(96).size_range(1024, 16384).build();
    let report = train_anytime_from_corpus(
        &corpus,
        &FeatureWidths::svm_selected(),
        b,
        FeatureMode::Exact,
        &paper_cart(),
        33,
        true,
        0.01,
    )
    .expect("balanced corpus");
    let threshold = report.anytime.confidence.threshold();
    eprintln!("calibrated threshold: {threshold}");

    let n_flows = scaled(1500);
    eprintln!("generating {n_flows}-flow churn trace...");
    let mut trace = TraceConfig::small_test(42);
    trace.n_flows = n_flows;
    trace.duration = 20.0;
    trace.mean_data_packets = 24.0;
    trace.content = ContentMode::Realistic;
    trace.content_budget = 4096;
    let packets: Vec<Packet> = TraceGenerator::new(trace).collect();
    eprintln!("streaming {} packets, threshold off then on ({} reps each)...", packets.len(), 3);

    let reps = 3;
    let mut cells = Vec::new();
    for anytime in [false, true] {
        let mut throughputs = Vec::new();
        let mut last_stats = None;
        for _ in 0..reps {
            let (tput, stats) = churn_run(&report, b, &packets, shards, anytime);
            throughputs.push(tput);
            last_stats = Some(stats);
        }
        throughputs.sort_by(f64::total_cmp);
        let median = throughputs[reps / 2];
        let stats = last_stats.expect("at least one rep");
        let name = if anytime { "anytime" } else { "fixed_b" };
        eprintln!(
            "{name:<8} median {median:>9.0} pkt/s (early exits {}, bytes@verdict p50 {}B)",
            stats.early_exit_verdicts(),
            stats.bytes_at_verdict.p50().unwrap_or(0),
        );
        cells.push((name, median, stats));
    }

    let baseline = cells[0].1;
    println!("{{");
    println!("  \"benchmark\": \"serve loadgen flow churn (anytime early exit vs fixed-b)\",");
    println!("  \"shards\": {shards},");
    println!("  \"buffer_size\": {b},");
    println!("  \"calibrated_threshold\": {threshold},");
    println!("  \"packets\": {},", packets.len());
    println!("  \"flows\": {n_flows},");
    println!("  \"reps_per_cell\": {reps},");
    println!("  \"runs\": [");
    let rows: Vec<String> = cells
        .iter()
        .map(|(name, median, stats)| {
            format!(
                "    {{\"mode\": \"{name}\", \"median_pkts_per_s\": {median:.0}, \
                 \"speedup_vs_fixed_b\": {:.3}, \"flows_classified\": {}, \
                 \"early_exit_verdicts\": {}, \"bytes_at_verdict_p50\": {}, \
                 \"bytes_at_verdict_p99\": {}, \"cdb_hits\": {}}}",
                median / baseline,
                stats.flows_classified,
                stats.early_exit_verdicts(),
                stats.bytes_at_verdict.p50().unwrap_or(0),
                stats.bytes_at_verdict.p99().unwrap_or(0),
                stats.hits,
            )
        })
        .collect();
    println!("{}", rows.join(",\n"));
    println!("  ]");
    println!("}}");
}

/// Client-side state for one socket in the many-connections scenario.
struct ConnProbe {
    stream: TcpStream,
    asm: FrameAssembler,
    submitted: Instant,
    verdict_us: Option<u64>,
    dead: bool,
}

/// Exact quantile of a sorted latency sample.
fn quantile_us(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// The two 16-byte-payload packets that complete one probe flow
/// (headline buffer target b = 32).
fn probe_frames(index: usize) -> Vec<u8> {
    let tuple = FiveTuple::udp(
        std::net::Ipv4Addr::new(10, (index >> 16) as u8, (index >> 8) as u8, index as u8),
        1024 + (index % 50_000) as u16,
        std::net::Ipv4Addr::new(10, 99, 99, 99),
        9999,
    );
    let mut bytes = Vec::with_capacity(160);
    for seq in 0..2u8 {
        let packet = Packet {
            timestamp: f64::from(seq) * 1e-3,
            tuple,
            flags: TcpFlags::empty(),
            payload: vec![0x40 + seq; 16],
        };
        let (t, body) = Request::SubmitPacket(packet).encode().expect("encode");
        iustitia_serve::proto::write_frame(&mut bytes, t, body.as_slice()).expect("frame");
    }
    bytes
}

/// The many-socket scenario: `n_conns` concurrent sockets, one small
/// flow each, submit-to-verdict latency per connection. Prints a JSON
/// document on stdout (captured into `results/BENCH_epoll.json`).
fn many_connections(model: &NatureModel, shards: usize, n_conns: usize) {
    let mut config = ServerConfig::new(PipelineConfig::headline(33));
    config.shards = shards;
    config.queue_capacity = 1 << 15; // never reject: lost verdicts must mean lost, not busy
    let server = Server::start("127.0.0.1:0", model.clone(), config).expect("bind loopback");
    let addr = server.local_addr();

    eprintln!("connecting {n_conns} sockets...");
    let wall_start = Instant::now();
    let mut probes: Vec<ConnProbe> = Vec::with_capacity(n_conns);
    for _ in 0..n_conns {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).ok();
        probes.push(ConnProbe {
            stream,
            asm: FrameAssembler::new(),
            submitted: wall_start,
            verdict_us: None,
            dead: false,
        });
    }
    let connect_wall = wall_start.elapsed().as_secs_f64();
    eprintln!("connected in {connect_wall:.3} s; submitting one flow per socket...");

    let submit_start = Instant::now();
    for (i, probe) in probes.iter_mut().enumerate() {
        let frames = probe_frames(i);
        probe.submitted = Instant::now();
        probe.stream.write_all(&frames).expect("submit");
        probe.stream.set_nonblocking(true).expect("nonblocking");
    }
    let submit_wall = submit_start.elapsed().as_secs_f64();

    // Sweep all sockets until every verdict arrived (or a generous
    // deadline passes and the shortfall is reported as lost).
    let mut remaining = probes.len();
    let mut busy_seen = 0u64;
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut scratch = vec![0u8; 4096];
    while remaining > 0 && Instant::now() < deadline {
        let mut progressed = false;
        for probe in probes.iter_mut() {
            if probe.verdict_us.is_some() || probe.dead {
                continue;
            }
            loop {
                match probe.asm.fill_from(&mut probe.stream, &mut scratch) {
                    Ok(0) => {
                        probe.dead = true;
                        remaining -= 1;
                        break;
                    }
                    Ok(_) => {
                        progressed = true;
                        while let Ok(Some((t, body))) = probe.asm.next_frame() {
                            match Response::decode(t, &body) {
                                Ok(Response::FlowVerdict(_)) => {
                                    probe.verdict_us =
                                        Some(probe.submitted.elapsed().as_micros() as u64);
                                    remaining -= 1;
                                }
                                Ok(Response::Busy(_)) => busy_seen += 1,
                                _ => {}
                            }
                        }
                        if probe.verdict_us.is_some() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(_) => {
                        probe.dead = true;
                        remaining -= 1;
                        break;
                    }
                }
            }
        }
        if !progressed && remaining > 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    let total_wall = wall_start.elapsed().as_secs_f64();

    // Server-side view while the probe sockets are still open.
    let mut control = Client::connect(addr).expect("control connect");
    let stats = control.stats().expect("stats");
    control.close().expect("close");

    let mut latencies: Vec<u64> = probes.iter().filter_map(|p| p.verdict_us).collect();
    latencies.sort_unstable();
    let verdicts = latencies.len();
    let lost = n_conns - verdicts;

    drop(probes);
    server.shutdown();

    eprintln!(
        "{verdicts}/{n_conns} verdicts ({lost} lost, {busy_seen} busy), total {total_wall:.3} s"
    );
    println!("{{");
    println!("  \"benchmark\": \"serve loadgen many-connections (one small flow per socket)\",");
    println!("  \"connections\": {n_conns},");
    println!("  \"shards\": {shards},");
    println!("  \"packets_per_conn\": 2,");
    println!("  \"connect_wall_s\": {connect_wall:.4},");
    println!("  \"submit_wall_s\": {submit_wall:.4},");
    println!("  \"total_wall_s\": {total_wall:.4},");
    println!("  \"verdicts\": {verdicts},");
    println!("  \"lost_verdicts\": {lost},");
    println!("  \"busy_rejects\": {busy_seen},");
    println!("  \"client_submit_to_verdict_us\": {{");
    println!("    \"p50\": {},", quantile_us(&latencies, 0.50));
    println!("    \"p90\": {},", quantile_us(&latencies, 0.90));
    println!("    \"p99\": {},", quantile_us(&latencies, 0.99));
    println!("    \"max\": {}", latencies.last().copied().unwrap_or(0));
    println!("  }},");
    println!("  \"server\": {{");
    println!("    \"connections_accepted\": {},", stats.connections);
    println!("    \"open_connections\": {},", stats.open_connections);
    println!("    \"reassembly_buffer_bytes\": {},", stats.reassembly_buffer_bytes);
    println!("    \"accept_to_verdict_ns_p50\": {},", stats.accept_to_verdict.p50().unwrap_or(0));
    println!("    \"accept_to_verdict_ns_p99\": {},", stats.accept_to_verdict.p99().unwrap_or(0));
    println!("    \"accept_to_verdict_samples\": {}", stats.accept_to_verdict.count());
    println!("  }}");
    println!("}}");
}

/// Streams `packets` through a single blocking client and prints the
/// human-readable report (the default mode, also used for `--pcap`).
fn stream_single_client(model: &NatureModel, packets: &[Packet], shards: usize) {
    let mut config = ServerConfig::new(PipelineConfig::headline(33));
    config.shards = shards;
    config.queue_capacity = 1 << 14;
    let server = Server::start("127.0.0.1:0", model.clone(), config).expect("bind loopback");
    let addr = server.local_addr();

    let mut client = Client::connect(addr).expect("connect");
    let mut verdicts = 0u64;
    let mut busy = 0u64;

    // Sample the per-shard gauges mid-stream to observe the streaming
    // pipeline's peak memory (flows pending × feature state), the
    // number the buffered design paid `b` payload bytes for.
    let mut peak_pending = 0u64;
    let mut peak_resident = 0u64;
    let sample_every = (packets.len() / 16).max(1);

    let start = Instant::now();
    for (i, packet) in packets.iter().enumerate() {
        client.submit_packet(packet).expect("submit");
        for event in client.poll_events() {
            match event {
                ClientEvent::Verdict(_) => verdicts += 1,
                ClientEvent::Busy(_) => busy += 1,
            }
        }
        if i % sample_every == sample_every - 1 {
            let s = client.stats().expect("stats");
            peak_pending = peak_pending.max(s.pending_flows());
            peak_resident = peak_resident.max(s.resident_feature_bytes());
        }
    }
    client.flush().expect("flush");
    client.drain().expect("drain");
    for event in client.poll_events() {
        match event {
            ClientEvent::Verdict(_) => verdicts += 1,
            ClientEvent::Busy(_) => busy += 1,
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    let stats = client.stats().expect("stats");

    println!("shards:           {shards}");
    println!("packets sent:     {}", packets.len());
    println!("wall time:        {elapsed:.3} s");
    println!("throughput:       {:.0} packets/s", packets.len() as f64 / elapsed);
    println!("verdicts:         {verdicts}");
    println!("busy rejects:     {busy}");
    println!("server packets:   {} (cdb hits {})", stats.packets, stats.hits);
    println!("flows classified: {}", stats.flows_classified);
    let b = 32u64; // headline config buffer size
    println!(
        "peak pending:     {peak_pending} flows, {peak_resident} B resident feature state \
         (buffered design would hold ~{} B payload)",
        peak_pending * b
    );
    println!(
        "final gauges:     {} pending / {} B across {} shards",
        stats.pending_flows(),
        stats.resident_feature_bytes(),
        stats.shards.len()
    );
    println!(
        "state pool:       {} recycled flow states ({} parked)",
        stats.state_pool_hits(),
        stats.state_pool_size()
    );
    println!(
        "accept→verdict:   p50 {} ns, p99 {} ns over {} verdicts",
        stats.accept_to_verdict.p50().unwrap_or(0),
        stats.accept_to_verdict.p99().unwrap_or(0),
        stats.accept_to_verdict.count()
    );
    println!("stage latency (server-side ns):");
    println!("  {:<12} {:>9}  {:>8}  {:>8}", "stage", "n", "p50", "p99");
    for stage in Stage::ALL {
        let h = stats.stage(stage);
        println!(
            "  {:<12} {:>9}  {:>8}  {:>8}",
            stage.name(),
            h.count(),
            h.p50().map_or_else(|| "-".into(), |v| v.to_string()),
            h.p99().map_or_else(|| "-".into(), |v| v.to_string()),
        );
    }

    client.close().expect("close");
    server.shutdown();
}

fn generated_trace(n_flows: usize) -> Vec<Packet> {
    eprintln!("generating {n_flows}-flow trace...");
    let mut trace = TraceConfig::small_test(42);
    trace.n_flows = n_flows;
    trace.duration = 30.0;
    trace.content = ContentMode::Realistic;
    TraceGenerator::new(trace).collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut sweep = false;
    let mut churn = false;
    let mut connections: Option<usize> = None;
    let mut pcap_in: Option<String> = None;
    let mut pcap_out: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--sweep-batch" => sweep = true,
            "--flow-churn" => churn = true,
            "--connections" => {
                let v = it.next().expect("--connections needs a count");
                connections = Some(v.parse().expect("--connections takes an integer"));
            }
            "--pcap" => pcap_in = Some(it.next().expect("--pcap needs a path").clone()),
            "--write-pcap" => {
                pcap_out = Some(it.next().expect("--write-pcap needs a path").clone());
            }
            other => panic!("unknown flag {other} (try --sweep-batch, --flow-churn, --connections N, --pcap FILE, --write-pcap FILE)"),
        }
    }

    let shards: usize =
        std::env::var("SERVE_SHARDS").ok().and_then(|v| v.parse().ok()).unwrap_or(4);
    let n_flows = scaled(2000);

    if let Some(path) = pcap_out {
        let packets = generated_trace(n_flows);
        let mut file = std::io::BufWriter::new(std::fs::File::create(&path).expect("create pcap"));
        iustitia_netsim::write_pcap(&mut file, &packets).expect("write pcap");
        file.flush().expect("flush pcap");
        eprintln!("wrote {} packets to {path}", packets.len());
        return;
    }

    if churn {
        flow_churn(shards);
        return;
    }

    eprintln!("training model (CART, 32-byte prefixes)...");
    let corpus = prefix_corpus(33, 80, 4096);
    let widths = FeatureWidths::svm_selected();
    let model = train_from_corpus(
        &corpus,
        &widths,
        TrainingMethod::Prefix { b: 32 },
        FeatureMode::Exact,
        &paper_cart(),
        33,
    )
    .expect("balanced corpus");

    if let Some(n_conns) = connections {
        many_connections(&model, shards, n_conns);
        return;
    }

    let packets = if let Some(path) = pcap_in {
        let mut file = std::io::BufReader::new(std::fs::File::open(&path).expect("open pcap"));
        let trace = iustitia_netsim::read_pcap(&mut file).expect("parse pcap");
        eprintln!(
            "replaying {} packets from {path} ({} records skipped)",
            trace.packets.len(),
            trace.skipped
        );
        trace.packets
    } else {
        generated_trace(n_flows)
    };

    if sweep {
        sweep_batch(&model, &packets, shards);
        return;
    }

    stream_single_client(&model, &packets, shards);
}
