//! Loopback load generator for the `iustitia-serve` subsystem.
//!
//! Starts an in-process [`Server`] on `127.0.0.1:0`, trains a CART
//! model on a synthetic corpus, streams a netsim trace through the
//! client library, and reports throughput plus the server's per-stage
//! latency histograms. Unlike the criterion benches, this is a plain
//! binary: one run, human-readable numbers, no statistical harness.
//!
//! Run: `cargo run --release -p iustitia-bench --bin serve_loadgen`
//!
//! `--sweep-batch` runs the batch-limit sweep (1, 8, 32, 128, 512)
//! instead: before any timing it asserts that the pipeline's batch
//! path is bit-identical to per-packet dispatch on the generated
//! trace, then measures loadgen throughput at each reader batch limit
//! and prints a JSON document (captured into
//! `results/BENCH_batch.json`) on stdout.
//!
//! Environment knobs:
//! - `IUSTITIA_BENCH_SCALE` — scales flow count (default 1.0).
//! - `SERVE_SHARDS` — shard worker count (default 4).

use std::time::Instant;

use iustitia::features::{FeatureMode, TrainingMethod};
use iustitia::model::{train_from_corpus, NatureModel};
use iustitia::pipeline::{BatchPacket, Iustitia, PipelineConfig, Verdict};
use iustitia_bench::{paper_cart, prefix_corpus, scaled};
use iustitia_entropy::FeatureWidths;
use iustitia_netsim::{ContentMode, Packet, TraceConfig, TraceGenerator};
use iustitia_serve::{Client, ClientEvent, Server, ServerConfig, Stage};

/// Feeds the trace through two freshly built pipelines — one per
/// packet, one through `process_batch` over flow-grouped segments (the
/// shard worker's dispatch shape) — and asserts verdicts and every
/// observable gauge are bit-identical. Runs before any timing so a
/// broken batch path can never produce a "fast" number.
fn assert_batch_bit_identity(model: &NatureModel, packets: &[Packet], segment: usize) {
    let config = PipelineConfig::headline(33);
    let mut per_packet = Iustitia::new(model.clone(), config.clone());
    let mut batched = Iustitia::new(model.clone(), config);
    let mut verdicts = Vec::new();
    for chunk in packets.chunks(segment) {
        let mut items: Vec<BatchPacket<'_>> = chunk.iter().map(BatchPacket::new).collect();
        items.sort_by_key(|a| a.flow); // stable: arrival order per flow
        let expected: Vec<Verdict> =
            items.iter().map(|bp| per_packet.process_packet(bp.packet)).collect();
        batched.process_batch(&items, &mut verdicts);
        assert_eq!(verdicts, expected, "batch verdicts must be bit-identical to per-packet");
    }
    assert_eq!(batched.queues(), per_packet.queues());
    assert_eq!(batched.pending_flows(), per_packet.pending_flows());
    assert_eq!(batched.resident_feature_bytes(), per_packet.resident_feature_bytes());
    assert_eq!(batched.cdb().stats(), per_packet.cdb().stats());
    assert_eq!(batched.take_log(), per_packet.take_log());
    eprintln!(
        "bit-identity: batch == per-packet over {} packets ({}-packet segments)",
        packets.len(),
        segment
    );
}

/// One timed pass of the trace through a fresh server at the given
/// reader batch limit. Returns (throughput pkt/s, final stats).
fn timed_run(
    model: &NatureModel,
    packets: &[Packet],
    shards: usize,
    batch_limit: usize,
) -> (f64, iustitia_serve::StatsSnapshot) {
    let mut config = ServerConfig::new(PipelineConfig::headline(33));
    config.shards = shards;
    config.queue_capacity = 1 << 14;
    config.batch_limit = batch_limit;
    let server = Server::start("127.0.0.1:0", model.clone(), config).expect("bind loopback");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    let start = Instant::now();
    for packet in packets {
        client.submit_packet(packet).expect("submit");
        if client.poll_events().iter().any(|e| matches!(e, ClientEvent::Busy(_))) {
            panic!("queues sized to never reject");
        }
    }
    client.flush().expect("flush");
    client.drain().expect("drain");
    let elapsed = start.elapsed().as_secs_f64();
    let stats = client.stats().expect("stats");
    client.close().expect("close");
    server.shutdown();
    (packets.len() as f64 / elapsed, stats)
}

fn sweep_batch(model: &NatureModel, packets: &[Packet], shards: usize) {
    assert_batch_bit_identity(model, packets, 512);

    let reps = 3;
    let mut runs = Vec::new();
    for batch_limit in [1usize, 8, 32, 128, 512] {
        let mut throughputs = Vec::new();
        let mut last_stats = None;
        for _ in 0..reps {
            let (tput, stats) = timed_run(model, packets, shards, batch_limit);
            throughputs.push(tput);
            last_stats = Some(stats);
        }
        throughputs.sort_by(f64::total_cmp);
        let median = throughputs[reps / 2];
        let stats = last_stats.expect("at least one rep");
        eprintln!(
            "batch_limit={batch_limit:<4} median {median:>9.0} pkt/s \
             (batch p50 {}, flows/batch p50 {}, queue locks {})",
            stats.batch_size.p50().unwrap_or(0),
            stats.flows_per_batch.p50().unwrap_or(0),
            stats.queue_lock_acquisitions,
        );
        runs.push(format!(
            "    {{\"batch_limit\": {batch_limit}, \"median_pkts_per_s\": {median:.0}, \
             \"batch_size_p50\": {}, \"flows_per_batch_p50\": {}, \
             \"queue_lock_acquisitions\": {}, \"cdb_hits\": {}}}",
            stats.batch_size.p50().unwrap_or(0),
            stats.flows_per_batch.p50().unwrap_or(0),
            stats.queue_lock_acquisitions,
            stats.hits,
        ));
    }

    println!("{{");
    println!("  \"benchmark\": \"serve loadgen batch-limit sweep (flow-grouped batch dispatch)\",");
    println!(
        "  \"bit_identity\": \"batch == per-packet asserted on the full trace before timing\","
    );
    println!("  \"shards\": {shards},");
    println!("  \"packets\": {},", packets.len());
    println!("  \"reps_per_cell\": {reps},");
    println!("  \"runs\": [");
    println!("{}", runs.join(",\n"));
    println!("  ]");
    println!("}}");
}

fn main() {
    let sweep = std::env::args().any(|a| a == "--sweep-batch");
    let shards: usize =
        std::env::var("SERVE_SHARDS").ok().and_then(|v| v.parse().ok()).unwrap_or(4);
    let n_flows = scaled(2000);

    eprintln!("training model (CART, 32-byte prefixes)...");
    let corpus = prefix_corpus(33, 80, 4096);
    let widths = FeatureWidths::svm_selected();
    let model = train_from_corpus(
        &corpus,
        &widths,
        TrainingMethod::Prefix { b: 32 },
        FeatureMode::Exact,
        &paper_cart(),
        33,
    )
    .expect("balanced corpus");

    eprintln!("generating {n_flows}-flow trace...");
    let mut trace = TraceConfig::small_test(42);
    trace.n_flows = n_flows;
    trace.duration = 30.0;
    trace.content = ContentMode::Realistic;
    let packets: Vec<Packet> = TraceGenerator::new(trace).collect();

    if sweep {
        sweep_batch(&model, &packets, shards);
        return;
    }

    let mut config = ServerConfig::new(PipelineConfig::headline(33));
    config.shards = shards;
    config.queue_capacity = 1 << 14;
    let server = Server::start("127.0.0.1:0", model, config).expect("bind loopback");
    let addr = server.local_addr();

    let mut client = Client::connect(addr).expect("connect");
    let mut verdicts = 0u64;
    let mut busy = 0u64;

    // Sample the per-shard gauges mid-stream to observe the streaming
    // pipeline's peak memory (flows pending × feature state), the
    // number the buffered design paid `b` payload bytes for.
    let mut peak_pending = 0u64;
    let mut peak_resident = 0u64;
    let sample_every = (packets.len() / 16).max(1);

    let start = Instant::now();
    for (i, packet) in packets.iter().enumerate() {
        client.submit_packet(packet).expect("submit");
        for event in client.poll_events() {
            match event {
                ClientEvent::Verdict(_) => verdicts += 1,
                ClientEvent::Busy(_) => busy += 1,
            }
        }
        if i % sample_every == sample_every - 1 {
            let s = client.stats().expect("stats");
            peak_pending = peak_pending.max(s.pending_flows());
            peak_resident = peak_resident.max(s.resident_feature_bytes());
        }
    }
    client.flush().expect("flush");
    client.drain().expect("drain");
    for event in client.poll_events() {
        match event {
            ClientEvent::Verdict(_) => verdicts += 1,
            ClientEvent::Busy(_) => busy += 1,
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    let stats = client.stats().expect("stats");

    println!("shards:           {shards}");
    println!("packets sent:     {}", packets.len());
    println!("wall time:        {elapsed:.3} s");
    println!("throughput:       {:.0} packets/s", packets.len() as f64 / elapsed);
    println!("verdicts:         {verdicts}");
    println!("busy rejects:     {busy}");
    println!("server packets:   {} (cdb hits {})", stats.packets, stats.hits);
    println!("flows classified: {}", stats.flows_classified);
    let b = 32u64; // headline config buffer size
    println!(
        "peak pending:     {peak_pending} flows, {peak_resident} B resident feature state \
         (buffered design would hold ~{} B payload)",
        peak_pending * b
    );
    println!(
        "final gauges:     {} pending / {} B across {} shards",
        stats.pending_flows(),
        stats.resident_feature_bytes(),
        stats.shards.len()
    );
    println!(
        "state pool:       {} recycled flow states ({} parked)",
        stats.state_pool_hits(),
        stats.state_pool_size()
    );
    println!("stage latency (server-side ns):");
    println!("  {:<12} {:>9}  {:>8}  {:>8}", "stage", "n", "p50", "p99");
    for stage in Stage::ALL {
        let h = stats.stage(stage);
        println!(
            "  {:<12} {:>9}  {:>8}  {:>8}",
            stage.name(),
            h.count(),
            h.p50().map_or_else(|| "-".into(), |v| v.to_string()),
            h.p99().map_or_else(|| "-".into(), |v| v.to_string()),
        );
    }

    client.close().expect("close");
    server.shutdown();
}
