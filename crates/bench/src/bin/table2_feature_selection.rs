//! Table 2: classification accuracy after feature selection.
//!
//! The paper selects `φ_CART = {h1,h3,h4,h10}` by pruning-vote over 10
//! CV trees and `φ_SVM = {h1,h2,h3,h9}` by Sequential Forward Search,
//! then substitutes `h5` for the wide feature (memory preference),
//! finding accuracy essentially unchanged (within ~1%).
//!
//! Run: `cargo run --release -p iustitia-bench --bin table2_feature_selection`

use iustitia::features::{dataset_from_corpus, FeatureMode, TrainingMethod};
use iustitia::model::NatureModel;
use iustitia_bench::{paper_cart, paper_svm, print_table, scaled, standard_corpus};
use iustitia_entropy::FeatureWidths;
use iustitia_ml::cart::CartParams;
use iustitia_ml::feature_select::{cart_vote_selection, sequential_forward_search};
use iustitia_ml::{cross_validate, DecisionTree};

/// Widths are h1..h10; dataset columns are width-1.
fn widths_of(columns: &[usize]) -> Vec<usize> {
    columns.iter().map(|c| c + 1).collect()
}

fn cv_accuracy(ds: &iustitia_ml::Dataset, kind: &iustitia::model::ModelKind, folds: usize) -> f64 {
    cross_validate(ds, folds, 3, |train| NatureModel::train(train, kind).expect("train"))
        .total()
        .accuracy()
}

fn main() {
    let per_class = scaled(150);
    let folds = 5;
    println!("Table 2 — feature selection on h1..h10, {per_class} files/class, {folds}-fold CV");
    let corpus = standard_corpus(55, per_class);
    let full = dataset_from_corpus(
        &corpus,
        &FeatureWidths::full(),
        TrainingMethod::WholeFile,
        FeatureMode::Exact,
        55,
    );

    // ── Selection procedures ──
    let cart_sel = cart_vote_selection(&full, folds, 7, &CartParams::default(), 0.02, 4);
    println!(
        "\nCART pruning-vote selected features: {:?} (paper: {{h1,h3,h4,h10}})",
        widths_of(&cart_sel.selected).iter().map(|k| format!("h{k}")).collect::<Vec<_>>()
    );

    let sfs_sel = sequential_forward_search(&full, 4, 3, 7, |train| {
        DecisionTree::fit(train, &CartParams::default())
    });
    println!(
        "SFS (tree-wrapped) selected features: {:?} (paper, SVM-wrapped: {{h1,h2,h3,h9}})",
        widths_of(&sfs_sel.selected).iter().map(|k| format!("h{k}")).collect::<Vec<_>>()
    );

    // ── Accuracy comparison across feature sets (Table 2 layout) ──
    let sets: Vec<(&str, Vec<usize>)> = vec![
        ("h1..h10 (full)", (0..10).collect()),
        ("φ_CART selected", cart_sel.selected.clone()),
        ("φ'_CART = {h1,h3,h4,h5}", vec![0, 2, 3, 4]),
        ("φ_SFS selected", sfs_sel.selected.clone()),
        ("φ'_SVM = {h1,h2,h3,h5}", vec![0, 1, 2, 4]),
    ];

    let mut rows = Vec::new();
    for (name, cols) in &sets {
        let projected = full.select_features(cols);
        let cart_acc = cv_accuracy(&projected, &paper_cart(), folds);
        let svm_acc = cv_accuracy(&projected, &paper_svm(), folds);
        rows.push(vec![
            name.to_string(),
            format!("{}", cols.len()),
            format!("{:.2}%", 100.0 * cart_acc),
            format!("{:.2}%", 100.0 * svm_acc),
        ]);
    }
    print_table(
        "Table 2 — accuracy by feature set (paper: full 79.19%/86.51%, selected within ~1%)",
        &["feature set", "n", "CART", "SVM-RBF"],
        &rows,
    );

    println!(
        "\nshape check: selected sets should be within ~2% of the full set for both models, \
         and h1 should always be selected (it is the strongest single feature)."
    );
    println!(
        "h1 selected by pruning-vote: {} — by SFS: {}",
        cart_sel.selected.contains(&0),
        sfs_sel.selected.contains(&0)
    );
}
