//! Randomness-battery kernel benchmark: one-shot vs incremental cost
//! of the HEDGE-style test battery (chi-square distance, bit-runs
//! test, byte autocorrelation, longest byte run) that rides alongside
//! the entropy vector when `PipelineConfig::battery` is on.
//!
//! A startup sanity pass asserts, for every [`FileClass`] and buffer
//! size, that feeding a payload packet-by-packet through
//! [`RandomnessBattery`] produces bit-identical features to the
//! one-shot [`battery_features`] call, and that a recycled (reset)
//! battery matches a fresh one — the invariants the streaming pipeline
//! relies on — before anything is timed.
//!
//! Timed matrix: one-shot battery over 256 B / 2 KiB / 16 KiB
//! payloads, incremental update in 64 B packets plus finish, and the
//! marginal cost next to the entropy kernel it accompanies. Output is
//! criterion-style `ns/iter` lines followed by a JSON document
//! (captured into `results/BENCH_randomness.json`).
//!
//! `--smoke` runs the whole matrix with minimal iteration counts so CI
//! can verify the harness (including the sanity pass) end-to-end.
//!
//! Run: `cargo run --release -p iustitia-bench --bin randomness_bench`

use std::hint::black_box;
use std::time::Instant;

use iustitia_corpus::{generate_file, FileClass};
use iustitia_entropy::{battery_features, entropy_vector, FeatureWidths, RandomnessBattery};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Times `f` criterion-style: calibrate an iteration count to the
/// target sample length, warm up, then take `samples` samples and
/// report the median ns/iter.
fn bench<R>(mut f: impl FnMut() -> R, smoke: bool) -> f64 {
    if smoke {
        let start = Instant::now();
        black_box(f());
        return start.elapsed().as_nanos() as f64;
    }
    let mut iters: u64 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        if start.elapsed().as_millis() >= 20 {
            break;
        }
        iters *= 2;
    }
    let samples = 9;
    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    per_iter.sort_by(f64::total_cmp);
    per_iter[samples / 2]
}

/// The streaming path: feed `data` in `packet`-byte chunks through a
/// pooled battery, then finish.
fn incremental(battery: &mut RandomnessBattery, data: &[u8], packet: usize) -> [f64; 6] {
    battery.reset();
    for chunk in data.chunks(packet) {
        battery.update(chunk);
    }
    battery.finish()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let sizes = [256usize, 2048, 16384];
    let packet = 64usize;

    // Sanity: incremental ≡ one-shot and recycled ≡ fresh, for every
    // class and size, before any timing is trusted.
    let mut rng = StdRng::seed_from_u64(7);
    let mut pooled = RandomnessBattery::new();
    for &b in &sizes {
        for class in FileClass::ALL {
            let data = generate_file(class, b, &mut rng);
            let oneshot = battery_features(&data);
            assert_eq!(oneshot, incremental(&mut pooled, &data, packet));
            assert_eq!(oneshot, incremental(&mut pooled, &data, 1));
            let mut fresh = RandomnessBattery::new();
            fresh.update(&data);
            assert_eq!(oneshot, fresh.finish());
        }
    }
    eprintln!(
        "sanity: incremental, recycled, and one-shot batteries agree on all {} cells",
        sizes.len() * FileClass::ALL.len()
    );

    let widths: Vec<usize> = FeatureWidths::svm_selected().iter().collect();
    let mut json_cells = Vec::new();
    for &b in &sizes {
        let data = generate_file(FileClass::Compressed, b, &mut rng);
        let cells = [
            ("oneshot", bench(|| battery_features(&data), smoke)),
            ("incremental", bench(|| incremental(&mut pooled, &data, packet), smoke)),
            ("entropy_vector", bench(|| entropy_vector(&data, &widths), smoke)),
        ];
        for (mode, ns) in cells {
            println!("battery/{mode}/b={b:<5} {ns:>12.0} ns/iter");
            json_cells.push(format!(
                "    {{\"bench\": \"battery\", \"mode\": \"{mode}\", \"b\": {b}, \"ns\": {ns:.0}}}"
            ));
        }
    }

    println!("\n{{\n  \"cells\": [\n{}\n  ]\n}}", json_cells.join(",\n"));
}
