//! Figure 8: CDB size over time, with and without purging, against the
//! totals of packets and flows.
//!
//! Paper (UMASS trace): FIN/RST purging alone removes up to 46% of
//! flows; with inactivity purging (`n = 4`, sweep every 5000 flows) the
//! CDB stays nearly constant at ≈ 29,713 records while total flows grow
//! to ≈ 300k.
//!
//! Run: `cargo run --release -p iustitia-bench --bin fig8_cdb_size`
//! (IUSTITIA_SCALE=1 runs the 12M-packet full-scale trace)

use iustitia::analysis::{run_over_trace, DelayComponents};
use iustitia::cdb::CdbConfig;
use iustitia::features::{FeatureMode, TrainingMethod};
use iustitia::model::{train_from_corpus, ModelKind};
use iustitia::pipeline::{Iustitia, PipelineConfig};
use iustitia_bench::{env_scale, print_series, standard_corpus};
use iustitia_entropy::FeatureWidths;
use iustitia_netsim::{TraceConfig, TraceGenerator};

fn main() {
    // Default to 1/20 of the UMASS trace (≈ 15k flows, ≈ 600k packets).
    let scale = (0.05 * env_scale()).clamp(0.001, 1.0);
    let trace_config = TraceConfig::umass_scaled(1, scale);
    println!(
        "Figure 8 — CDB size over time; trace scale {scale} ({} flows over {:.1}s; paper: 299,564 over 81.6s)",
        trace_config.n_flows, trace_config.duration
    );

    let model = train_from_corpus(
        &standard_corpus(8, 60),
        &FeatureWidths::svm_selected(),
        TrainingMethod::Prefix { b: 32 },
        FeatureMode::Exact,
        &ModelKind::paper_cart(),
        8,
    )
    .expect("balanced corpus");

    let mut variants = Vec::new();
    for (name, cdb) in [
        ("with purging (n=4)", CdbConfig::default()),
        ("w/o purging", CdbConfig { n: None, ..CdbConfig::default() }),
    ] {
        let config = PipelineConfig { cdb, idle_timeout: 2.0, ..PipelineConfig::headline(2) };
        let mut pipeline = Iustitia::new(model.clone(), config);
        let packets = TraceGenerator::new(trace_config.clone());
        let report = run_over_trace(
            &mut pipeline,
            packets,
            trace_config.duration / 20.0,
            DelayComponents::default(),
        );
        let closed = pipeline.cdb().stats().removed_by_close;
        let timed_out = pipeline.cdb().stats().removed_by_timeout;
        let inserted = pipeline.cdb().stats().inserted;
        println!(
            "  [{name}] inserted {inserted}, FIN/RST-removed {closed} ({:.1}%), timeout-removed {timed_out}, final size {}",
            100.0 * closed as f64 / inserted.max(1) as f64,
            pipeline.cdb().len()
        );
        variants.push((name, report));
    }

    let (_, with_purge) = &variants[0];
    let (_, without) = &variants[1];
    let points: Vec<(String, Vec<f64>)> = with_purge
        .series
        .iter()
        .zip(&without.series)
        .map(|(a, b)| {
            (
                format!("{:.1}", a.t),
                vec![
                    a.total_packets as f64,
                    a.total_flows as f64,
                    b.cdb_size as f64,
                    a.cdb_size as f64,
                ],
            )
        })
        .collect();
    print_series(
        "Figure 8 series (paper shape: purged CDB plateaus; unpurged tracks total flows)",
        "time (s)",
        &["total_pkts", "total_flows", "cdb_no_purge", "cdb_purged"],
        &points,
    );

    let final_purged = with_purge.series.last().map(|p| p.cdb_size).unwrap_or(0);
    let final_unpurged = without.series.last().map(|p| p.cdb_size).unwrap_or(0);
    println!(
        "\nfinal CDB: purged {final_purged} vs unpurged {final_unpurged} (×{:.1} smaller; \
         paper: ≈29.7k vs ≈160k+)",
        final_unpurged as f64 / final_purged.max(1) as f64
    );
}
