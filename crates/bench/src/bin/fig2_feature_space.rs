//! Figure 2(a): the (h1, h2, h3) entropy-vector feature space.
//!
//! The paper plots 6000 files in (h1, h2, h3) space and observes that
//! text clusters low, encrypted clusters high, binary in between with
//! overlap. This binary prints per-class summary statistics of each
//! feature plus a CSV sample of points for external plotting.
//!
//! Run: `cargo run --release -p iustitia-bench --bin fig2_feature_space`

use iustitia_bench::{print_table, scaled, standard_corpus};
use iustitia_corpus::FileClass;
use iustitia_entropy::entropy_vector;

fn main() {
    let per_class = scaled(300);
    println!("Figure 2(a) — (h1,h2,h3) feature space, {per_class} files/class");
    let corpus = standard_corpus(2009, per_class);

    let widths = [1usize, 2, 3];
    let mut per_class_points: Vec<Vec<[f64; 3]>> = vec![Vec::new(); FileClass::ALL.len()];
    for file in &corpus {
        let v = entropy_vector(&file.data, &widths);
        per_class_points[file.class.index()].push([v[0], v[1], v[2]]);
    }

    let mut rows = Vec::new();
    for class in FileClass::ALL {
        let points = &per_class_points[class.index()];
        for (fi, name) in ["h1", "h2", "h3"].iter().enumerate() {
            let vals: Vec<f64> = points.iter().map(|p| p[fi]).collect();
            let n = vals.len() as f64;
            let mean = vals.iter().sum::<f64>() / n;
            let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
            let min = vals.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = vals.iter().cloned().fold(0.0f64, f64::max);
            rows.push(vec![
                class.name().to_string(),
                (*name).to_string(),
                format!("{mean:.4}"),
                format!("{:.4}", var.sqrt()),
                format!("{min:.4}"),
                format!("{max:.4}"),
            ]);
        }
    }
    print_table(
        "per-class feature statistics (element/symbol)",
        &["class", "feature", "mean", "stddev", "min", "max"],
        &rows,
    );

    // Separation check mirroring the paper's visual claim.
    let mean_h1 = |c: FileClass| {
        let v = &per_class_points[c.index()];
        v.iter().map(|p| p[0]).sum::<f64>() / v.len() as f64
    };
    println!(
        "\nordering check (paper: text < binary < encrypted on h1): {:.3} < {:.3} < {:.3} -> {}",
        mean_h1(FileClass::Text),
        mean_h1(FileClass::Binary),
        mean_h1(FileClass::Encrypted),
        mean_h1(FileClass::Text) < mean_h1(FileClass::Binary)
            && mean_h1(FileClass::Binary) < mean_h1(FileClass::Encrypted)
    );

    println!("\nCSV sample (class,h1,h2,h3) — first 20 points per class:");
    println!("class,h1,h2,h3");
    for class in FileClass::ALL {
        for p in per_class_points[class.index()].iter().take(20) {
            println!("{},{:.4},{:.4},{:.4}", class.name(), p[0], p[1], p[2]);
        }
    }
}
