//! Figure 10: packets to fill the buffer (`c`) and total classifier
//! delay (`τ`) for buffer sizes 32 / 1024 / 1500 / 2000.
//!
//! Paper: `c ≈ 1` for b=32 and 3–5 for larger buffers (up to 2000);
//! total delay `τ` is dominated by the buffer fill time `τ_b` — ≈ 50 ms
//! for small buffers, fluctuating around 1 s for the large ones. The
//! 1500/2000 configurations model `T + b′` deployments that also skip a
//! possible application header.
//!
//! Run: `cargo run --release -p iustitia-bench --bin fig10_delay`

use iustitia::analysis::{run_over_trace, DelayComponents};
use iustitia::features::{FeatureMode, TrainingMethod};
use iustitia::model::{train_anytime_from_corpus, train_from_corpus, ModelKind};
use iustitia::pipeline::{AnytimeConfig, HeaderPolicy, Iustitia, PipelineConfig};
use iustitia_bench::{env_scale, print_series, print_table, standard_corpus};
use iustitia_entropy::FeatureWidths;
use iustitia_netsim::{TraceConfig, TraceGenerator};

fn main() {
    let scale = (0.02 * env_scale()).clamp(0.001, 1.0);
    let trace_config = TraceConfig::umass_scaled(10, scale);
    println!(
        "Figure 10 — buffering delay at scale {scale} ({} flows over {:.1}s)",
        trace_config.n_flows, trace_config.duration
    );

    let model = train_from_corpus(
        &standard_corpus(10, 60),
        &FeatureWidths::svm_selected(),
        TrainingMethod::Prefix { b: 32 },
        FeatureMode::Exact,
        &ModelKind::paper_cart(),
        10,
    )
    .expect("balanced corpus");

    // b=32 and b=1024 for header-free systems; T+b' = 1500 and 2000 for
    // systems that cut a possible application header first.
    let configs: [(&str, usize, HeaderPolicy); 4] = [
        ("b=32", 32, HeaderPolicy::None),
        ("b=1024", 1024, HeaderPolicy::None),
        ("T+b'=1500", 1024, HeaderPolicy::SkipThreshold { t: 476 }),
        ("T+b'=2000", 1024, HeaderPolicy::SkipThreshold { t: 976 }),
    ];

    let mut summary_rows = Vec::new();
    let mut series_per_config = Vec::new();
    for (name, b, policy) in configs {
        let pc = PipelineConfig {
            buffer_size: b,
            header_policy: policy,
            idle_timeout: 3.0,
            ..PipelineConfig::headline(3)
        };
        let mut pipeline = Iustitia::new(model.clone(), pc);
        let packets = TraceGenerator::new(trace_config.clone());
        let report = run_over_trace(
            &mut pipeline,
            packets,
            trace_config.duration / 16.0,
            DelayComponents::default(),
        );
        summary_rows.push(vec![
            name.to_string(),
            format!("{}", report.total_flows),
            format!("{:.2}", report.mean_c()),
            format!("{:.4}s", report.mean_tau()),
            format!("{:.1}%", 100.0 * report.tau_cdf_at(0.05)),
            format!("{:.1}%", 100.0 * report.tau_cdf_at(1.0)),
        ]);
        series_per_config.push((name, report));
    }

    // Anytime early exit at b=1024: the same trace, but a flow may
    // classify from a partial buffer once a confidence probe clears the
    // calibrated threshold — the measured τ_b reduction against the
    // fixed b=1024 row above.
    let anytime = train_anytime_from_corpus(
        &standard_corpus(10, 60),
        &FeatureWidths::svm_selected(),
        1024,
        FeatureMode::Exact,
        &ModelKind::paper_cart(),
        10,
        false,
        0.01,
    )
    .expect("balanced corpus");
    {
        let name = "b=1024+anytime";
        let pc = PipelineConfig {
            buffer_size: 1024,
            idle_timeout: 3.0,
            anytime: Some(AnytimeConfig::calibrated(&anytime.anytime.confidence)),
            ..PipelineConfig::headline(3)
        };
        let mut pipeline =
            Iustitia::new(anytime.model.clone(), pc).with_anytime(anytime.anytime.clone());
        let packets = TraceGenerator::new(trace_config.clone());
        let report = run_over_trace(
            &mut pipeline,
            packets,
            trace_config.duration / 16.0,
            DelayComponents::default(),
        );
        summary_rows.push(vec![
            name.to_string(),
            format!("{}", report.total_flows),
            format!("{:.2}", report.mean_c()),
            format!("{:.4}s", report.mean_tau()),
            format!("{:.1}%", 100.0 * report.tau_cdf_at(0.05)),
            format!("{:.1}%", 100.0 * report.tau_cdf_at(1.0)),
        ]);
        series_per_config.push((name, report));
    }

    print_table(
        "Figure 10 summary (paper: c≈1 at b=32, 3–5 at ≥1024; τ ≈ 50ms small vs ≈1s large)",
        &["config", "flows", "mean c", "mean tau", "tau<=50ms", "tau<=1s"],
        &summary_rows,
    );
    let fixed_tau = series_per_config[1].1.mean_tau();
    let anytime_tau = series_per_config[4].1.mean_tau();
    if anytime_tau > 0.0 {
        println!(
            "\nanytime at b=1024 (threshold {}): mean tau {anytime_tau:.4}s vs {fixed_tau:.4}s \
             fixed — {:.2}x reduction",
            anytime.anytime.confidence.threshold(),
            fixed_tau / anytime_tau
        );
    }

    // Per-time-unit series like the figure.
    let n_ticks = series_per_config[0].1.series.len();
    let mut c_points = Vec::new();
    let mut tau_points = Vec::new();
    for i in 0..n_ticks {
        let t = series_per_config[0].1.series[i].t;
        let cs: Vec<f64> = series_per_config
            .iter()
            .map(|(_, r)| r.series.get(i).and_then(|p| p.mean_c).unwrap_or(f64::NAN))
            .collect();
        let taus: Vec<f64> = series_per_config
            .iter()
            .map(|(_, r)| r.series.get(i).and_then(|p| p.mean_tau).unwrap_or(f64::NAN))
            .collect();
        c_points.push((format!("{t:.1}"), cs));
        tau_points.push((format!("{t:.1}"), taus));
    }
    let labels: Vec<&str> = series_per_config.iter().map(|(n, _)| *n).collect();
    print_series(
        "Figure 10(a): mean packets to fill buffer, per time unit",
        "time (s)",
        &labels,
        &c_points,
    );
    print_series(
        "Figure 10(b): mean total delay τ (s), per time unit",
        "time (s)",
        &labels,
        &tau_points,
    );
}
