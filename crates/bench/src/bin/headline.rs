//! §1.3 headline claims, end to end.
//!
//! "Iustitia can classify flows by their first 32 bytes of the data
//! stream in about 300µs using 200 bytes of space per new flow with an
//! average accuracy rate of 86%. [...] With larger buffers, Iustitia
//! can achieve an average accuracy rate of 90%. [...] on average, the
//! delay caused by Iustitia is 10% of the average packet inter-arrival
//! time; in more than 70% of the experimented flows, the delay caused
//! by Iustitia is 5% of the average packet inter-arrival time."
//!
//! Run: `cargo run --release -p iustitia-bench --bin headline`

use iustitia::analysis::{run_over_trace, DelayComponents};
use iustitia::features::{dataset_from_corpus, FeatureExtractor, FeatureMode, TrainingMethod};
use iustitia::model::NatureModel;
use iustitia::pipeline::{Iustitia, PipelineConfig};
use iustitia_bench::{paper_svm, prefix_corpus, scaled, time_us};
use iustitia_corpus::{generate_file, FileClass};
use iustitia_entropy::{FeatureWidths, GramHistogram};
use iustitia_netsim::{TraceConfig, TraceGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    println!("§1.3 headline reproduction\n");
    let per_class = scaled(150);
    let widths = FeatureWidths::svm_selected();
    let b = 32usize;

    // ── accuracy at b = 32 (paper: 86%) ──
    let train_files = prefix_corpus(131, per_class, 16384);
    let test_files = prefix_corpus(132, per_class / 2, 16384);
    let train = dataset_from_corpus(
        &train_files,
        &widths,
        TrainingMethod::Prefix { b },
        FeatureMode::Exact,
        1,
    );
    let test = dataset_from_corpus(
        &test_files,
        &widths,
        TrainingMethod::Prefix { b },
        FeatureMode::Exact,
        2,
    );
    let model = NatureModel::train(&train, &paper_svm()).expect("train");
    let cm = model.confusion_on(&test);
    println!("accuracy at b=32:          {:.1}%  (paper: 86%)", 100.0 * cm.accuracy());
    for class in FileClass::ALL {
        let mis = 1.0 - cm.class_accuracy(class.index());
        let paper = match class {
            FileClass::Text => "4%",
            FileClass::Binary => "12%",
            FileClass::Encrypted => "20%",
            FileClass::Compressed => "n/a (class added beyond the paper)",
        };
        println!("  misclassification {:>9}: {:.1}%  (paper: {paper})", class.name(), 100.0 * mis);
    }

    // larger buffer → ≈ 90%
    let b_large = 256usize;
    let train_l = dataset_from_corpus(
        &train_files,
        &widths,
        TrainingMethod::Prefix { b: b_large },
        FeatureMode::Exact,
        1,
    );
    let test_l = dataset_from_corpus(
        &test_files,
        &widths,
        TrainingMethod::Prefix { b: b_large },
        FeatureMode::Exact,
        2,
    );
    let model_l = NatureModel::train(&train_l, &paper_svm()).expect("train");
    println!(
        "accuracy at b={b_large}:         {:.1}%  (paper: ~90% with larger buffers)",
        100.0 * model_l.accuracy_on(&test_l)
    );

    // ── per-flow classification time (paper: ~300 µs on 2009 hw) ──
    let mut rng = StdRng::seed_from_u64(7);
    let sample = generate_file(FileClass::Binary, b, &mut rng);
    let mut fx = FeatureExtractor::new(widths.clone(), FeatureMode::Exact, 0);
    let t_feature = time_us(5000, || {
        std::hint::black_box(fx.extract(std::hint::black_box(&sample)));
    });
    let features = fx.extract(&sample);
    let t_predict = time_us(5000, || {
        std::hint::black_box(model.predict(std::hint::black_box(&features)));
    });
    println!(
        "\nclassification time at b=32: {:.1} µs features + {:.1} µs SVM = {:.1} µs \
         (paper: ≈300 µs on 2009 hardware — compare shape, not absolute)",
        t_feature,
        t_predict,
        t_feature + t_predict
    );

    // ── per-flow space (paper: ~200 B) ──
    let counters: usize =
        widths.iter().map(|k| GramHistogram::from_bytes(&sample, k).counters_used()).sum();
    println!(
        "space per new flow at b=32: {b} B buffer + {counters} counters (paper: ≈195–200 B total)"
    );

    // ── delay vs inter-arrival (paper: 10% mean, 70% of flows ≤ 5%) ──
    let trace_config = TraceConfig::umass_scaled(13, 0.02);
    let mut pipeline = Iustitia::new(model, PipelineConfig::headline(13));
    let mut generator = TraceGenerator::new(trace_config.clone());
    let report = run_over_trace(
        &mut pipeline,
        generator.by_ref(),
        trace_config.duration / 10.0,
        DelayComponents::default(),
    );
    // Mean per-flow packet inter-arrival in this trace is ~80 ms by
    // construction; per-flow delay for b=32 is τ_hash + τ_CDB + τ_b.
    let mean_iat = 0.08;
    let ratios: Vec<f64> = report.all_tau.iter().map(|t| t / mean_iat).collect();
    let mean_ratio = ratios.iter().sum::<f64>() / ratios.len().max(1) as f64;
    let under_5pct =
        ratios.iter().filter(|&&r| r <= 0.05).count() as f64 / ratios.len().max(1) as f64;
    println!(
        "\ndelay vs mean flow inter-arrival: mean {:.1}% (paper: 10%), {:.0}% of flows ≤ 5% \
         (paper: >70%)",
        100.0 * mean_ratio,
        100.0 * under_5pct
    );
    println!("flows classified over trace: {}", report.total_flows);
}
