//! Table 3: time and space of exact entropy-vector calculation vs
//! `(δ,ε)` estimation, at b = 1024 and b = 32.
//!
//! Paper (C++ on Athlon64): at b=1024 estimation needs ≈ 3× less memory
//! but ≈ 3× more time (5.4 ms → 16.4 ms for the SVM feature set,
//! 5.1 KB → 1.6 KB); at b=32 exact calculation takes ≈ 300 µs and
//! ≈ 195 B, and estimation is not applicable. Absolute times differ on
//! modern hardware; the *ratios* are the reproduction target.
//!
//! Run: `cargo run --release -p iustitia-bench --bin table3_calc_vs_estimate`

use iustitia::features::{FeatureExtractor, FeatureMode};
use iustitia_bench::{print_table, time_us};
use iustitia_corpus::{generate_file, FileClass};
use iustitia_entropy::{EstimatorConfig, FeatureWidths};
use rand::rngs::StdRng;
use rand::SeedableRng;

use iustitia::features::BYTES_PER_COUNTER;

fn measure(widths: &FeatureWidths, mode: FeatureMode, data: &[u8], reps: usize) -> (f64, usize) {
    let mut fx = FeatureExtractor::new(widths.clone(), mode, 1);
    let us = time_us(reps, || {
        std::hint::black_box(fx.extract(std::hint::black_box(data)));
    });
    let counters = fx.counters_for_buffer(data);
    (us, counters * BYTES_PER_COUNTER)
}

/// Same vector via an incremental per-flow session fed 512-byte
/// chunks, as the streaming pipeline computes it. Returns time and the
/// session's resident footprint while pending.
fn measure_stream(
    widths: &FeatureWidths,
    mode: FeatureMode,
    data: &[u8],
    reps: usize,
) -> (f64, usize) {
    let fx = FeatureExtractor::new(widths.clone(), mode, 1);
    let us = time_us(reps, || {
        let mut session = fx.begin_flow(data.len());
        for chunk in data.chunks(512) {
            session.update(std::hint::black_box(chunk));
        }
        std::hint::black_box(session.finish());
    });
    let mut session = fx.begin_flow(data.len());
    session.update(data);
    (us, session.resident_bytes())
}

fn main() {
    println!("Table 3 — exact calculation vs (δ,ε) estimation");
    let mut rng = StdRng::seed_from_u64(3);
    let data_1k = generate_file(FileClass::Binary, 1024, &mut rng);
    let data_32 = generate_file(FileClass::Binary, 32, &mut rng);

    let svm_cfg = EstimatorConfig::svm_optimal(); // ε=0.25, δ=0.75
    let cart_cfg = EstimatorConfig::cart_optimal(); // ε=0.5, δ=0.1

    let mut rows = Vec::new();
    let mut stream_rows = Vec::new();
    let mut remembered: Vec<(String, f64, usize)> = Vec::new();
    for (label, widths, cfg, data, reps) in [
        ("b=1024 SVM", FeatureWidths::svm_selected(), svm_cfg, &data_1k, 200),
        ("b=1024 CART", FeatureWidths::cart_selected(), cart_cfg, &data_1k, 200),
        ("b=32 SVM", FeatureWidths::svm_selected(), svm_cfg, &data_32, 2000),
        ("b=32 CART", FeatureWidths::cart_selected(), cart_cfg, &data_32, 2000),
    ] {
        let (t_exact, s_exact) = measure(&widths, FeatureMode::Exact, data, reps);
        let is_small = data.len() <= 32;
        let (t_est, s_est) = if is_small {
            // Paper: the sketch requires |f_k| >> b and is not applied
            // to 32-byte buffers.
            (f64::NAN, 0)
        } else {
            measure(&widths, FeatureMode::Estimated(cfg), data, reps / 4)
        };
        remembered.push((label.to_string(), t_exact, s_exact));
        rows.push(vec![
            label.to_string(),
            format!("{t_exact:.1}µs"),
            format!("{s_exact}B"),
            if is_small { "-".into() } else { format!("{t_est:.1}µs") },
            if is_small { "-".into() } else { format!("{s_est}B") },
            if is_small { "-".into() } else { format!("×{:.2}", t_est / t_exact) },
            if is_small { "-".into() } else { format!("×{:.2}", s_exact as f64 / s_est as f64) },
        ]);

        // Buffered vs incremental: a pending flow used to hold
        // `data.len()` payload bytes; the streaming session holds only
        // its counters/trackers and computes the identical vector.
        let (t_stream, s_stream) = measure_stream(&widths, FeatureMode::Exact, data, reps);
        let (t_stream_est, s_stream_est) = if is_small {
            (f64::NAN, 0)
        } else {
            measure_stream(&widths, FeatureMode::Estimated(cfg), data, reps / 4)
        };
        stream_rows.push(vec![
            label.to_string(),
            format!("{}B", data.len()),
            format!("{t_stream:.1}µs"),
            format!("{s_stream}B"),
            if is_small { "-".into() } else { format!("{t_stream_est:.1}µs") },
            if is_small { "-".into() } else { format!("{s_stream_est}B") },
        ]);
    }
    print_table(
        "Table 3 (paper ratios at b=1024: time ×3 slower, space ×3 smaller)",
        &[
            "config",
            "calc time",
            "calc space",
            "est time",
            "est space",
            "time ratio",
            "space saving",
        ],
        &rows,
    );

    print_table(
        "Streaming sessions (identical vectors, no payload buffering): \
         per-flow resident state vs buffered payload",
        &[
            "config",
            "buffered payload",
            "stream time",
            "stream resident",
            "est time",
            "est resident",
        ],
        &stream_rows,
    );

    println!(
        "\nnotes: the paper's absolute numbers (5428 µs calc at b=1024, 326 µs at b=32) come \
         from 2009 hardware; compare ratios. Estimation trades ≈3× time for ≈3× space, and \
         b=32 is exact-only, matching the paper's deployment guidance."
    );
}
