//! Figure 4: classification accuracy as a function of buffer size `b`.
//!
//! Two training regimes:
//! * (a) train on **entire files**, classify first `b` bytes — needs
//!   `b ≈ 1K` to reach 86% with SVM;
//! * (b) train on **first `b` bytes**, classify first `b` bytes — 86%
//!   already at `b = 32` for both models.
//!
//! Run: `cargo run --release -p iustitia-bench --bin fig4_buffer_size`

use iustitia::features::FeatureMode;
use iustitia::features::TrainingMethod;
use iustitia_bench::{
    corpus_train_eval, paper_cart, paper_svm, prefix_corpus, print_series, scaled,
};
use iustitia_entropy::FeatureWidths;

fn main() {
    let per_class = scaled(150);
    println!(
        "Figure 4 — accuracy vs buffer size, {per_class} train + {} test files/class",
        per_class / 2
    );
    let train_files = prefix_corpus(91, per_class, 32768);
    let test_files = prefix_corpus(92, per_class / 2, 32768);
    let widths = FeatureWidths::full();
    let buffer_sizes: [usize; 11] = [8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192];

    for (fig, train_method_of) in
        [("4(a): train on entire file", None), ("4(b): train on first b bytes", Some(()))]
    {
        let mut points = Vec::new();
        for &b in &buffer_sizes {
            let train_method = match train_method_of {
                None => TrainingMethod::WholeFile,
                Some(()) => TrainingMethod::Prefix { b },
            };
            let cart = corpus_train_eval(
                &train_files,
                &test_files,
                &widths,
                train_method,
                TrainingMethod::Prefix { b },
                FeatureMode::Exact,
                &paper_cart(),
                7,
            );
            let svm = corpus_train_eval(
                &train_files,
                &test_files,
                &widths,
                train_method,
                TrainingMethod::Prefix { b },
                FeatureMode::Exact,
                &paper_svm(),
                7,
            );
            points.push((format!("{b}"), vec![cart.accuracy(), svm.accuracy()]));
        }
        print_series(
            &format!("Figure {fig} (paper: (a) SVM reaches 86% at 1K; (b) both reach 86% at 32)"),
            "buffer b",
            &["CART", "SVM-RBF"],
            &points,
        );

        // Crossover commentary.
        let at32 = &points[2].1;
        let at1k = &points[7].1;
        println!(
            "accuracy at b=32: CART {:.1}%, SVM {:.1}%; at b=1024: CART {:.1}%, SVM {:.1}%",
            100.0 * at32[0],
            100.0 * at32[1],
            100.0 * at1k[0],
            100.0 * at1k[1]
        );
    }
}
