//! Criterion bench: exact entropy-vector calculation (Figure 5 /
//! Table 3 timing side), plus the dense-vs-hashmap h1 ablation called
//! out in DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iustitia::features::{FeatureExtractor, FeatureMode};
use iustitia_corpus::{generate_file, FileClass};
use iustitia_entropy::{entropy, FeatureWidths, GramHistogram};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_entropy_vector(c: &mut Criterion) {
    let mut group = c.benchmark_group("entropy_vector_exact");
    let mut rng = StdRng::seed_from_u64(1);
    for b in [32usize, 256, 1024, 8192] {
        let data = generate_file(FileClass::Binary, b, &mut rng);
        let mut fx = FeatureExtractor::new(FeatureWidths::svm_selected(), FeatureMode::Exact, 0);
        group.bench_with_input(BenchmarkId::new("svm_widths", b), &data, |bench, data| {
            bench.iter(|| fx.extract(std::hint::black_box(data)));
        });
    }
    group.finish();
}

fn bench_single_widths(c: &mut Criterion) {
    let mut group = c.benchmark_group("entropy_hk");
    let mut rng = StdRng::seed_from_u64(2);
    let data = generate_file(FileClass::Binary, 1024, &mut rng);
    for k in [1usize, 2, 3, 5, 10] {
        group.bench_with_input(BenchmarkId::new("hk", k), &k, |bench, &k| {
            bench.iter(|| entropy(std::hint::black_box(&data), k));
        });
    }
    group.finish();
}

/// Dense 256-entry table for h1, the ablation baseline against the
/// generic hashmap histogram.
fn dense_h1(data: &[u8]) -> f64 {
    let mut counts = [0u64; 256];
    for &b in data {
        counts[b as usize] += 1;
    }
    let m = data.len() as f64;
    if data.len() <= 1 {
        return 0.0;
    }
    let s: f64 = counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let c = c as f64;
            c * c.log2()
        })
        .sum();
    ((m.log2() - s / m) / 8.0).clamp(0.0, 1.0)
}

fn bench_dense_vs_hashmap(c: &mut Criterion) {
    let mut group = c.benchmark_group("h1_dense_vs_hashmap");
    let mut rng = StdRng::seed_from_u64(3);
    let data = generate_file(FileClass::Encrypted, 1024, &mut rng);
    group.bench_function("dense_array", |bench| {
        bench.iter(|| dense_h1(std::hint::black_box(&data)));
    });
    group.bench_function("hashmap_histogram", |bench| {
        bench.iter(|| {
            let h = GramHistogram::from_bytes(std::hint::black_box(&data), 1);
            iustitia_entropy::vector::entropy_of_histogram(&h)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_entropy_vector, bench_single_widths, bench_dense_vs_hashmap);
criterion_main!(benches);
