//! Criterion bench: online pipeline hot paths — SHA-1 flow hashing
//! (paper: ≈ 18 µs on 2009 hardware), CDB lookup, and full
//! packet-processing for both the hit path and the classify path.

use criterion::{criterion_group, criterion_main, Criterion};
use iustitia::cdb::{CdbConfig, ClassificationDatabase, FlowId};
use iustitia::features::{FeatureMode, TrainingMethod};
use iustitia::model::{train_from_corpus, ModelKind};
use iustitia::pipeline::{Iustitia, PipelineConfig};
use iustitia::sha1::sha1;
use iustitia_corpus::{CorpusBuilder, FileClass};
use iustitia_entropy::FeatureWidths;
use iustitia_netsim::{FiveTuple, Packet, TcpFlags};
use std::net::Ipv4Addr;

fn bench_sha1(c: &mut Criterion) {
    let tuple = FiveTuple::tcp(Ipv4Addr::new(10, 0, 0, 1), 4242, Ipv4Addr::new(10, 0, 0, 2), 443);
    let bytes = tuple.as_bytes();
    c.bench_function("sha1_flow_header", |b| {
        b.iter(|| sha1(std::hint::black_box(&bytes)));
    });
}

fn bench_cdb(c: &mut Criterion) {
    let mut cdb = ClassificationDatabase::new(CdbConfig::default());
    // Populate to the paper's steady-state size (~30k flows).
    for i in 0..30_000u32 {
        let mut id = [0u8; 20];
        id[..4].copy_from_slice(&i.to_be_bytes());
        cdb.insert(FlowId(id), FileClass::Binary, 0.0);
    }
    let probe = {
        let mut id = [0u8; 20];
        id[..4].copy_from_slice(&15_000u32.to_be_bytes());
        FlowId(id)
    };
    c.bench_function("cdb_lookup_30k", |b| {
        b.iter(|| cdb.lookup(std::hint::black_box(&probe), 1.0));
    });
}

fn trained_pipeline(seed: u64) -> Iustitia {
    let corpus = CorpusBuilder::new(seed).files_per_class(40).size_range(1024, 4096).build();
    let model = train_from_corpus(
        &corpus,
        &FeatureWidths::svm_selected(),
        TrainingMethod::Prefix { b: 32 },
        FeatureMode::Exact,
        &ModelKind::paper_cart(),
        seed,
    )
    .expect("bench corpus covers every class");
    Iustitia::new(model, PipelineConfig::headline(seed))
}

fn bench_packet_paths(c: &mut Criterion) {
    let tuple = FiveTuple::tcp(Ipv4Addr::new(10, 0, 0, 9), 999, Ipv4Addr::new(10, 0, 0, 2), 80);
    let payload: Vec<u8> = b"some flowing text that fills the buffer right away ok".to_vec();

    // Hit path: flow already classified.
    let mut hit_pipeline = trained_pipeline(1);
    let first = Packet { timestamp: 0.0, tuple, flags: TcpFlags::ACK, payload: payload.clone() };
    hit_pipeline.process_packet(&first);
    let follow = Packet { timestamp: 0.1, tuple, flags: TcpFlags::ACK, payload: payload.clone() };
    c.bench_function("process_packet_cdb_hit", |b| {
        b.iter(|| hit_pipeline.process_packet(std::hint::black_box(&follow)));
    });

    // Classify path: a fresh flow per iteration (buffer fills at once).
    let mut classify_pipeline = trained_pipeline(2);
    let mut port = 1000u16;
    c.bench_function("process_packet_classify_b32", |b| {
        b.iter(|| {
            port = port.wrapping_add(1).max(1000);
            let t =
                FiveTuple::tcp(Ipv4Addr::new(10, 1, 0, 1), port, Ipv4Addr::new(10, 0, 0, 2), 80);
            let p =
                Packet { timestamp: 0.0, tuple: t, flags: TcpFlags::ACK, payload: payload.clone() };
            classify_pipeline.process_packet(std::hint::black_box(&p))
        });
    });
}

criterion_group!(benches, bench_sha1, bench_cdb, bench_packet_paths);
criterion_main!(benches);
