//! Criterion bench: `(δ,ε)` streaming entropy estimation vs exact
//! calculation (Table 3's time column).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iustitia_corpus::{generate_file, FileClass};
use iustitia_entropy::{entropy, EstimatorConfig, FeatureWidths, StreamingEntropyEstimator};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_estimate_vs_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("estimate_vs_exact_b1024");
    let mut rng = StdRng::seed_from_u64(1);
    let data = generate_file(FileClass::Binary, 1024, &mut rng);

    group.bench_function("exact_h3", |bench| {
        bench.iter(|| entropy(std::hint::black_box(&data), 3));
    });
    let mut est = StreamingEntropyEstimator::with_seed(EstimatorConfig::svm_optimal(), 7);
    group.bench_function("estimated_h3_svm_params", |bench| {
        bench.iter(|| est.estimate_hk(std::hint::black_box(&data), 3).expect("k>=2"));
    });
    let mut est_cart = StreamingEntropyEstimator::with_seed(EstimatorConfig::cart_optimal(), 7);
    group.bench_function("estimated_h3_cart_params", |bench| {
        bench.iter(|| est_cart.estimate_hk(std::hint::black_box(&data), 3).expect("k>=2"));
    });
    group.finish();
}

fn bench_estimate_vector(c: &mut Criterion) {
    let mut group = c.benchmark_group("estimate_vector");
    let mut rng = StdRng::seed_from_u64(2);
    let data = generate_file(FileClass::Binary, 1024, &mut rng);
    for (name, eps, delta) in
        [("loose", 1.0, 0.75), ("paper_svm", 0.25, 0.75), ("tight", 0.25, 0.1)]
    {
        let cfg = EstimatorConfig::new(eps, delta).expect("valid");
        let mut est = StreamingEntropyEstimator::with_seed(cfg, 3);
        let widths = FeatureWidths::svm_selected();
        group.bench_with_input(BenchmarkId::new("config", name), &data, |bench, data| {
            bench.iter(|| est.estimate_vector(std::hint::black_box(data), &widths));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_estimate_vs_exact, bench_estimate_vector);
criterion_main!(benches);
