//! Property-based tests for nonblocking frame reassembly.
//!
//! The reactor's [`FrameAssembler`] sees bytes in whatever fragments
//! the kernel hands a nonblocking socket — mid-length-prefix splits,
//! one-byte reads, several frames coalesced into one read. Whatever
//! the fragmentation, it must decode *exactly* the frames the blocking
//! [`read_frame`] decoder produces from the same byte stream, fail
//! with the same typed errors, and reject hostile length prefixes
//! before buffering the claimed payload.

use std::io::Cursor;

use iustitia_serve::proto::{read_frame, write_frame, ProtoError, MAX_FRAME};
use iustitia_serve::FrameAssembler;
use proptest::prelude::*;

/// A stream of valid frames as raw wire bytes plus the expected
/// decoded sequence.
fn encode_frames(frames: &[(u8, Vec<u8>)]) -> Vec<u8> {
    let mut wire = Vec::new();
    for (type_byte, body) in frames {
        write_frame(&mut wire, *type_byte, body).expect("write to Vec");
    }
    wire
}

/// Feeds `wire` into an assembler in the given chunk sizes, draining
/// complete frames as they appear (as the reactor does after every
/// read burst).
fn reassemble(wire: &[u8], chunks: &[usize]) -> Result<Vec<(u8, Vec<u8>)>, ProtoError> {
    let mut asm = FrameAssembler::new();
    let mut decoded = Vec::new();
    let mut offset = 0usize;
    let mut chunk_iter = chunks.iter().copied().cycle();
    while offset < wire.len() {
        let take = chunk_iter.next().unwrap_or(1).max(1).min(wire.len() - offset);
        asm.extend(&wire[offset..offset + take]);
        offset += take;
        while let Some(frame) = asm.next_frame()? {
            decoded.push(frame);
        }
    }
    while let Some(frame) = asm.next_frame()? {
        decoded.push(frame);
    }
    Ok(decoded)
}

/// The blocking decoder's view of the same bytes.
fn blocking_decode(wire: &[u8]) -> (Vec<(u8, Vec<u8>)>, Option<ProtoError>) {
    let mut cursor = Cursor::new(wire);
    let mut decoded = Vec::new();
    loop {
        match read_frame(&mut cursor) {
            Ok(Some(frame)) => decoded.push(frame),
            Ok(None) => return (decoded, None),
            Err(e) => return (decoded, Some(e)),
        }
    }
}

fn arb_frames() -> impl Strategy<Value = Vec<(u8, Vec<u8>)>> {
    proptest::collection::vec((any::<u8>(), proptest::collection::vec(any::<u8>(), 0..200)), 0..8)
}

fn arb_chunks() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(1usize..64, 1..16)
}

proptest! {
    /// Any fragmentation of a valid frame stream decodes to exactly
    /// the frames the blocking reader sees.
    #[test]
    fn arbitrary_splits_match_blocking_reader(frames in arb_frames(), chunks in arb_chunks()) {
        let wire = encode_frames(&frames);
        let (expected, err) = blocking_decode(&wire);
        prop_assert!(err.is_none(), "valid frames must decode cleanly");
        let decoded = reassemble(&wire, &chunks).expect("valid frames reassemble cleanly");
        prop_assert_eq!(decoded, expected);
    }

    /// The degenerate fragmentation — one byte per read — still
    /// matches, including splits inside the length prefix itself.
    #[test]
    fn one_byte_reads_match_blocking_reader(frames in arb_frames()) {
        let wire = encode_frames(&frames);
        let (expected, _) = blocking_decode(&wire);
        let decoded = reassemble(&wire, &[1]).expect("valid frames reassemble cleanly");
        prop_assert_eq!(decoded, expected);
    }

    /// Garbage bytes produce the same terminal error (and the same
    /// prefix of valid frames) as the blocking reader, regardless of
    /// fragmentation.
    #[test]
    fn garbage_streams_fail_like_blocking_reader(
        frames in arb_frames(),
        garbage in proptest::collection::vec(any::<u8>(), 4..64),
        chunks in arb_chunks(),
    ) {
        let mut wire = encode_frames(&frames);
        wire.extend_from_slice(&garbage);
        let (expected, blocking_err) = blocking_decode(&wire);

        let mut asm = FrameAssembler::new();
        let mut decoded = Vec::new();
        let mut streaming_err = None;
        let mut offset = 0usize;
        let mut chunk_iter = chunks.iter().copied().cycle();
        'feed: while offset < wire.len() {
            let take = chunk_iter.next().unwrap_or(1).min(wire.len() - offset);
            asm.extend(&wire[offset..offset + take]);
            offset += take;
            loop {
                match asm.next_frame() {
                    Ok(Some(frame)) => decoded.push(frame),
                    Ok(None) => break,
                    Err(e) => {
                        streaming_err = Some(e);
                        break 'feed;
                    }
                }
            }
        }
        // Trailing partial frame: EOF semantics come from eof_error.
        if streaming_err.is_none() && !asm.at_frame_boundary() {
            streaming_err = asm.eof_error();
        }

        prop_assert_eq!(decoded, expected);
        match (streaming_err, blocking_err) {
            (None, None) => {}
            (Some(s), Some(b)) => prop_assert_eq!(s.to_string(), b.to_string()),
            (s, b) => prop_assert!(false, "error mismatch: streaming={s:?} blocking={b:?}"),
        }
    }

    /// A hostile length prefix larger than [`MAX_FRAME`] is rejected
    /// as soon as the 4-byte prefix is complete — before any of the
    /// claimed payload is buffered.
    #[test]
    fn oversized_length_rejected_before_buffering(
        len in (MAX_FRAME as u32 + 1)..=u32::MAX,
        chunk in 1usize..4,
    ) {
        let mut asm = FrameAssembler::new();
        let header = len.to_be_bytes();
        // Feed the prefix fragment by fragment; no error until it is
        // complete, and never a request for payload bytes.
        for piece in header.chunks(chunk) {
            asm.extend(piece);
        }
        let err = asm.next_frame().expect_err("oversized length must be rejected");
        prop_assert!(matches!(err, ProtoError::FrameTooLarge { .. }));
        // Only the 4 header bytes ever entered the buffer.
        prop_assert!(asm.buffered_bytes() <= 4);
    }

    /// A truncated stream (EOF mid-frame) reports the same
    /// `Truncated { expected, got }` the blocking reader reports.
    #[test]
    fn eof_mid_frame_matches_blocking_truncation(
        type_byte in any::<u8>(),
        body in proptest::collection::vec(any::<u8>(), 1..100),
        cut_fraction in 0.0f64..1.0,
    ) {
        let mut wire = Vec::new();
        write_frame(&mut wire, type_byte, &body).expect("write to Vec");
        let cut = 1 + ((wire.len() - 2) as f64 * cut_fraction) as usize; // 1..wire.len()-1
        let truncated = &wire[..cut];

        let (_, blocking_err) = blocking_decode(truncated);

        let mut asm = FrameAssembler::new();
        asm.extend(truncated);
        let streaming = asm.next_frame();
        let streaming_err = match streaming {
            Ok(Some(_)) => None,
            Ok(None) => asm.eof_error(),
            Err(e) => Some(e),
        };
        match (streaming_err, blocking_err) {
            (Some(s), Some(b)) => prop_assert_eq!(s.to_string(), b.to_string()),
            (s, b) => prop_assert!(false, "truncation mismatch: streaming={s:?} blocking={b:?}"),
        }
    }
}
