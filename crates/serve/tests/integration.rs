//! End-to-end tests: a real server on loopback, driven through the
//! client library with synthetic iustitia-netsim traffic.

use std::collections::{HashMap, HashSet};
use std::net::Ipv4Addr;
use std::time::Duration;

use iustitia::features::{FeatureExtractor, FeatureMode, TrainingMethod};
use iustitia::model::{train_from_corpus, ModelKind, NatureModel};
use iustitia::pipeline::PipelineConfig;
use iustitia_entropy::FeatureWidths;
use iustitia_netsim::trace::{ContentMode, TraceConfig, TraceGenerator};
use iustitia_netsim::{FiveTuple, Packet, Protocol, TcpFlags};
use iustitia_serve::{AdmissionPolicy, Client, ClientEvent, Server, ServerConfig, Stage};

fn trained_model() -> NatureModel {
    let corpus =
        iustitia_corpus::CorpusBuilder::new(33).files_per_class(80).size_range(1024, 4096).build();
    train_from_corpus(
        &corpus,
        &FeatureWidths::svm_selected(),
        TrainingMethod::Prefix { b: 32 },
        FeatureMode::Exact,
        &ModelKind::paper_cart(),
        33,
    )
    .expect("balanced corpus")
}

fn server_config() -> ServerConfig {
    let mut config = ServerConfig::new(PipelineConfig::headline(33));
    config.shards = 4;
    config.queue_capacity = 1 << 14; // ample: this test asserts zero rejects
    config
}

/// The acceptance scenario: ≥ 4 shards, ≥ 10k synthetic packets pushed
/// through the client library, one verdict per data flow, and stats
/// consistent with what the client sent.
#[test]
fn serves_synthetic_trace_end_to_end() {
    let server = Server::start("127.0.0.1:0", trained_model(), server_config()).unwrap();

    let mut trace_config = TraceConfig::small_test(42);
    trace_config.n_flows = 640;
    trace_config.duration = 12.0;
    trace_config.content = ContentMode::Realistic;
    let mut generator = TraceGenerator::new(trace_config);
    let packets: Vec<Packet> = generator.by_ref().collect();
    assert!(packets.len() >= 10_000, "trace too small: {} packets", packets.len());

    // Tuples that carried at least one data packet, ignoring those only
    // seen on a closing packet (the pipeline drops a closing packet's
    // payload, so such a flow never opens a buffer).
    let mut data_tuples: HashSet<FiveTuple> = HashSet::new();
    for p in &packets {
        if p.is_data() && !p.flags.closes_flow() {
            data_tuples.insert(p.tuple);
        }
    }

    let mut client = Client::connect(server.local_addr()).unwrap();
    let mut events = Vec::new();
    for packet in &packets {
        client.submit_packet(packet).unwrap();
        events.extend(client.poll_events());
    }
    client.flush().unwrap();

    // The drain barrier: all submitted packets processed, all in-flight
    // flows classified, every verdict on the wire before the reply.
    client.drain().unwrap();
    events.extend(client.poll_events());

    let mut verdicts: HashMap<FiveTuple, iustitia_corpus::FileClass> = HashMap::new();
    let mut busy = 0u64;
    for event in &events {
        match event {
            ClientEvent::Verdict(v) => {
                let prev = verdicts.insert(v.tuple, v.label);
                assert!(prev.is_none(), "duplicate verdict for {:?}", v.tuple);
                assert!(v.packets > 0);
                assert!(v.buffered_bytes > 0);
                assert!(v.fill_time >= 0.0);
            }
            ClientEvent::Busy(_) => busy += 1,
        }
    }
    assert_eq!(busy, 0, "queues were sized to never reject");

    // Every completed flow got exactly one verdict.
    let verdict_tuples: HashSet<FiveTuple> = verdicts.keys().copied().collect();
    assert_eq!(verdict_tuples, data_tuples, "one verdict per data flow");

    // The model should beat chance comfortably on realistic content.
    let truth = generator.ground_truth();
    let correct =
        verdicts.iter().filter(|(tuple, &label)| truth.get(*tuple) == Some(&label)).count();
    let accuracy = correct as f64 / verdicts.len() as f64;
    assert!(accuracy > 0.5, "accuracy {accuracy:.2} suspiciously low");

    // Stats agree with what this (only) client sent and received.
    let stats = client.stats().unwrap();
    assert_eq!(stats.packets, packets.len() as u64);
    assert_eq!(stats.busy_rejects, 0);
    assert_eq!(stats.dropped_oldest, 0);
    assert_eq!(stats.flows_classified, verdicts.len() as u64);
    assert_eq!(stats.connections, 1);
    assert_eq!(stats.drains, 1);
    assert_eq!(stats.stage(Stage::Hash).count(), packets.len() as u64);
    assert_eq!(stats.stage(Stage::CdbLookup).count(), stats.hits);
    assert_eq!(
        stats.stage(Stage::Classify).count() + stats.stage(Stage::BufferFill).count(),
        stats.packets - stats.hits - ignored_count(&packets) as u64
    );
    assert!(stats.hits > 0, "repeat packets on classified flows must hit the CDB");
    assert!(stats.stage(Stage::Hash).p99().is_some());

    // Per-shard gauges: one entry per shard, and after the drain
    // barrier every shard's pipeline is empty.
    assert_eq!(stats.shards.len(), 4);
    assert_eq!(stats.pending_flows(), 0, "drain leaves no pending flows");
    assert_eq!(stats.resident_feature_bytes(), 0);

    // Flow-state pooling: with hundreds of flows per shard, almost all
    // of them must have recycled a pooled state instead of allocating,
    // and the drained pipelines hold their states parked for reuse.
    assert!(
        stats.state_pool_hits() > 0,
        "steady-state flows must reuse pooled feature state (hits={})",
        stats.state_pool_hits()
    );
    assert!(stats.state_pool_size() > 0, "drained pipelines must park their flow states for reuse");
    assert!(
        stats.state_pool_hits() + stats.state_pool_size() >= stats.flows_classified,
        "every classified flow's state was pooled or reused: hits={} parked={} flows={}",
        stats.state_pool_hits(),
        stats.state_pool_size(),
        stats.flows_classified
    );

    client.close().unwrap();
    server.shutdown();
}

/// Packets the pipeline ignores outright: closing packets and empty
/// (pure-ACK/handshake) packets.
fn ignored_count(packets: &[Packet]) -> usize {
    packets.iter().filter(|p| p.flags.closes_flow() || !p.is_data()).count()
}

/// Graceful shutdown classifies in-flight flows from the bytes they
/// have buffered and pushes final verdicts to connected clients.
#[test]
fn shutdown_drains_in_flight_flows() {
    let server = Server::start("127.0.0.1:0", trained_model(), server_config()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    // 8 bytes buffered of a 32-byte target: flow stays in flight.
    let tuple = FiveTuple::tcp(Ipv4Addr::new(10, 0, 0, 1), 40000, Ipv4Addr::new(10, 0, 0, 2), 443);
    let packet =
        Packet { timestamp: 0.5, tuple, flags: TcpFlags::ACK, payload: b"partial!".to_vec() };
    client.submit_packet(&packet).unwrap();
    client.flush().unwrap();

    // No verdict while the buffer is short of b bytes...
    let stats = client.stats().unwrap();
    assert_eq!(stats.packets, 1);
    assert!(client.poll_events().is_empty());

    // ...until shutdown flushes it.
    server.shutdown();
    let event = client.recv_event_timeout(Duration::from_secs(10));
    match event {
        Some(ClientEvent::Verdict(v)) => {
            assert_eq!(v.tuple, tuple);
            assert_eq!(v.packets, 1);
            assert_eq!(v.buffered_bytes, 8);
        }
        other => panic!("expected a shutdown verdict, got {other:?}"),
    }
}

/// A drain barrier reports how many of the flushed flows belonged to
/// the requesting connection.
#[test]
fn drain_flushes_and_counts_own_flows() {
    let server = Server::start("127.0.0.1:0", trained_model(), server_config()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    for port in 0..5u16 {
        let packet = Packet {
            timestamp: 0.1,
            tuple: FiveTuple::udp(
                Ipv4Addr::new(172, 16, 0, 1),
                9000 + port,
                Ipv4Addr::new(172, 16, 0, 2),
                53,
            ),
            flags: TcpFlags::empty(),
            payload: vec![0x55; 4],
        };
        client.submit_packet(&packet).unwrap();
    }
    let flushed = client.drain().unwrap();
    assert_eq!(flushed, 5, "all five short flows flushed for this connection");

    let verdicts = client.poll_events();
    assert_eq!(verdicts.len(), 5);

    // A second drain has nothing left to flush.
    assert_eq!(client.drain().unwrap(), 0);

    client.close().unwrap();
    server.shutdown();
}

/// RejectBusy admission: overload produces Busy events, and the
/// accounting always balances.
#[test]
fn reject_busy_accounting_balances() {
    let mut config = server_config();
    config.shards = 1;
    config.queue_capacity = 1;
    config.admission = AdmissionPolicy::RejectBusy;
    let server = Server::start("127.0.0.1:0", trained_model(), config).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let tuple = FiveTuple::tcp(Ipv4Addr::new(10, 9, 8, 7), 1234, Ipv4Addr::new(10, 9, 8, 6), 80);
    let n = 256u64;
    for i in 0..n {
        let packet = Packet {
            timestamp: i as f64 * 1e-4,
            tuple,
            flags: TcpFlags::ACK,
            payload: vec![0xAB], // 1-byte payloads: the buffer fills slowly
        };
        client.submit_packet(&packet).unwrap();
    }
    client.flush().unwrap();

    let stats = client.stats().unwrap();
    assert_eq!(stats.packets + stats.busy_rejects, n, "every packet admitted or rejected");
    let busy = client
        .poll_events()
        .iter()
        .filter(|e| matches!(e, ClientEvent::Busy(t) if *t == tuple))
        .count() as u64;
    assert_eq!(busy, stats.busy_rejects, "one Busy frame per reject");

    client.close().unwrap();
    server.shutdown();
}

/// Batch amortization regression test: a burst of N packets must cost
/// far fewer than N shard-queue lock acquisitions. Readers push whole
/// batches under one lock and the worker drains everything per wakeup,
/// so the counter stays an order of magnitude below the packet count;
/// a lock-per-packet regression on either side would blow past N.
#[test]
fn burst_takes_far_fewer_lock_acquisitions_than_packets() {
    let mut config = server_config();
    config.shards = 1;
    let server = Server::start("127.0.0.1:0", trained_model(), config).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let n = 2048u64;
    for i in 0..n {
        let packet = Packet {
            timestamp: i as f64 * 1e-4,
            tuple: FiveTuple::udp(
                Ipv4Addr::new(172, 20, 0, 1),
                7000 + (i % 64) as u16,
                Ipv4Addr::new(172, 20, 0, 2),
                4433,
            ),
            flags: TcpFlags::empty(),
            payload: vec![0x33; 4],
        };
        client.submit_packet(&packet).unwrap();
    }
    client.flush().unwrap();
    client.drain().unwrap();

    let stats = client.stats().unwrap();
    assert_eq!(stats.packets, n, "ample queue admits the whole burst");
    assert!(stats.queue_lock_acquisitions > 0, "the counter must be wired up");
    assert!(
        stats.queue_lock_acquisitions < n / 4,
        "burst of {} packets cost {} lock acquisitions; batching should amortize \
         to roughly n / batch_limit",
        n,
        stats.queue_lock_acquisitions
    );

    // The batch-dispatch stage records its shape per segment.
    assert!(stats.batch_size.count() > 0, "batched dispatch must record batch sizes");
    assert_eq!(
        stats.batch_size.count(),
        stats.flows_per_batch.count(),
        "each dispatched segment records both histograms"
    );

    client.close().unwrap();
    server.shutdown();
}

/// One-shot ClassifyBuffer bypasses flow state and matches a local
/// model run bit-for-bit (exact entropy features are deterministic).
#[test]
fn classify_buffer_matches_local_model() {
    let model = trained_model();
    let server = Server::start("127.0.0.1:0", model.clone(), server_config()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let mut extractor = FeatureExtractor::new(FeatureWidths::svm_selected(), FeatureMode::Exact, 0);
    let samples: [&[u8]; 3] = [
        b"The quick brown fox jumps over the lazy dog, twice over.",
        &[
            0u8, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22, 23,
            24, 25, 26, 27, 28, 29, 30, 31, 32, 33,
        ],
        &[
            0xE7, 0x12, 0x9C, 0x44, 0xD0, 0x5B, 0xF3, 0x2E, 0x81, 0x6A, 0xC5, 0x0F, 0xB8, 0x93,
            0x27, 0xDC, 0x4E, 0xA1, 0x78, 0x35, 0xEB, 0x52, 0x0D, 0xC6, 0x99, 0x3F, 0x84, 0x61,
            0xF2, 0x1B, 0xAE, 0x47, 0x70, 0x8D,
        ],
    ];
    for data in samples {
        let remote = client.classify_buffer(data).unwrap();
        let local = model.predict(&extractor.extract(&data[..data.len().min(32)]));
        assert_eq!(remote, local);
    }

    let stats = client.stats().unwrap();
    assert_eq!(stats.classify_requests, samples.len() as u64);
    assert_eq!(stats.packets, 0, "no flow state was touched");

    client.close().unwrap();
    server.shutdown();
}

/// Junk on the wire gets a descriptive Error frame back.
#[test]
fn malformed_frame_yields_error_response() {
    use iustitia_serve::proto::{read_frame, write_frame};

    let server = Server::start("127.0.0.1:0", trained_model(), server_config()).unwrap();
    let mut stream = std::net::TcpStream::connect(server.local_addr()).unwrap();
    write_frame(&mut stream, 0x7F, b"???").unwrap();
    let (type_byte, _body) = read_frame(&mut stream).unwrap().expect("an error frame");
    assert_eq!(type_byte, 0x86, "0x86 is the Error frame type");
    server.shutdown();
}

/// Shutdown regression: the reactor is unblocked by its wakeup
/// eventfd, not by the old hack of dialing a throwaway TCP connection
/// to its own listener. An idle server must shut down promptly, with
/// zero connections ever accepted, and leave the port closed.
#[test]
fn shutdown_completes_without_self_connection() {
    let server = Server::start("127.0.0.1:0", trained_model(), server_config()).unwrap();
    let addr = server.local_addr();

    // Nothing ever connected — and nothing may connect during
    // shutdown either (the stop phase closes the listener before the
    // reactor exits, so a self-connect would deadlock, not help).
    assert_eq!(server.stats().connections, 0);

    let (done_tx, done_rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        server.shutdown();
        let _ = done_tx.send(());
    });
    done_rx
        .recv_timeout(Duration::from_secs(5))
        .expect("shutdown must complete without a self-connection to unblock accept");

    let refused = std::net::TcpStream::connect_timeout(&addr, Duration::from_secs(2));
    assert!(refused.is_err(), "listener must be gone after shutdown");
}

/// Many-connections smoke: one reactor serves hundreds of sockets
/// concurrently — every probe's flow classifies, nothing is lost, and
/// the accept-to-verdict histogram sees every verdict.
#[test]
fn many_connections_smoke() {
    use iustitia_serve::proto::{read_frame, write_frame, Request, Response};

    const CONNS: usize = 256;
    let server = Server::start("127.0.0.1:0", trained_model(), server_config()).unwrap();

    // Phase 1: every probe connects and submits one 2-packet flow
    // (2 × 16 bytes fills the b = 32 buffer) before anyone reads, so
    // all sockets are genuinely concurrent.
    let mut probes = Vec::with_capacity(CONNS);
    for i in 0..CONNS {
        let stream = std::net::TcpStream::connect(server.local_addr()).unwrap();
        stream.set_nodelay(true).unwrap();
        let tuple = FiveTuple::udp(
            Ipv4Addr::new(10, 1, (i / 256) as u8, (i % 256) as u8),
            40_000 + i as u16,
            Ipv4Addr::new(10, 99, 99, 99),
            9999,
        );
        probes.push((stream, tuple));
    }
    for (stream, tuple) in &mut probes {
        for k in 0..2u8 {
            let packet = Packet {
                timestamp: 0.01 * f64::from(k),
                tuple: *tuple,
                flags: TcpFlags::empty(),
                payload: vec![0xC3 ^ k; 16],
            };
            let (t, body) = Request::SubmitPacket(packet).encode().unwrap();
            write_frame(stream, t, &body).unwrap();
        }
    }

    // Phase 2: every probe gets exactly its own verdict back.
    for (stream, tuple) in &mut probes {
        stream.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
        let (type_byte, body) = read_frame(stream).unwrap().expect("a verdict frame");
        match Response::decode(type_byte, &body).unwrap() {
            Response::FlowVerdict(v) => assert_eq!(v.tuple, *tuple, "verdict routed to its owner"),
            other => panic!("expected a verdict, got {other:?}"),
        }
    }

    let mut control = Client::connect(server.local_addr()).unwrap();
    let stats = control.stats().unwrap();
    assert_eq!(stats.connections, CONNS as u64 + 1, "every probe (and this client) accepted");
    assert_eq!(stats.packets, 2 * CONNS as u64, "no packet lost across {CONNS} sockets");
    assert_eq!(stats.busy_rejects, 0);
    assert!(
        stats.accept_to_verdict.count() >= CONNS as u64,
        "accept-to-verdict latency recorded per verdict: {}",
        stats.accept_to_verdict.count()
    );
    assert!(
        stats.open_connections >= 1 && stats.open_connections <= CONNS as u64 + 1,
        "open-connection gauge in range: {}",
        stats.open_connections
    );

    drop(probes);
    control.close().unwrap();
    server.shutdown();
}

/// The UDP adapter end to end: one-frame datagrams carry the same
/// requests as the stream transport, and verdicts come back as
/// datagrams to the submitting peer.
#[test]
fn udp_datagram_ingest_yields_verdict() {
    use iustitia_serve::proto::{Request, Response};
    use std::io::Cursor;

    let server = Server::start("127.0.0.1:0", trained_model(), server_config()).unwrap();
    let server_udp = server.udp_addr().expect("UDP adapter enabled by default");

    let socket = std::net::UdpSocket::bind("127.0.0.1:0").unwrap();
    socket.set_read_timeout(Some(Duration::from_secs(10))).unwrap();

    let tuple = FiveTuple::udp(Ipv4Addr::new(10, 7, 7, 7), 7777, Ipv4Addr::new(10, 8, 8, 8), 8888);
    for k in 0..2u8 {
        let packet = Packet {
            timestamp: 0.05 * f64::from(k),
            tuple,
            flags: TcpFlags::empty(),
            payload: vec![0x5A ^ k; 16], // 2 × 16 = 32 ≥ b
        };
        let (t, body) = Request::SubmitPacket(packet).encode().unwrap();
        let mut datagram = Vec::new();
        iustitia_serve::proto::write_frame(&mut datagram, t, &body).unwrap();
        socket.send_to(&datagram, server_udp).unwrap();
    }

    let mut buf = vec![0u8; 64 * 1024];
    let (n, from) = socket.recv_from(&mut buf).expect("a verdict datagram");
    assert_eq!(from, server_udp);
    let mut cursor = Cursor::new(&buf[..n]);
    let (type_byte, body) =
        iustitia_serve::proto::read_frame(&mut cursor).unwrap().expect("one frame per datagram");
    match Response::decode(type_byte, &body).unwrap() {
        Response::FlowVerdict(v) => {
            assert_eq!(v.tuple, tuple);
            assert_eq!(v.packets, 2, "32 bytes arrive with the second datagram");
        }
        other => panic!("expected a verdict, got {other:?}"),
    }

    // The datagram path shows up in stats, queried over TCP.
    let mut client = Client::connect(server.local_addr()).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.udp_datagrams, 2);
    assert_eq!(stats.packets, 2);
    client.close().unwrap();
    server.shutdown();
}

/// A stream of distinct UDP source addresses beyond the peer-table cap
/// must recycle table slots (LRU eviction), not permanently reject new
/// peers: every peer still gets its verdict.
#[test]
fn udp_peer_table_evicts_instead_of_wedging() {
    use iustitia_serve::proto::{Request, Response};
    use std::io::Cursor;

    let mut config = server_config();
    config.max_udp_peers = 2;
    let server = Server::start("127.0.0.1:0", trained_model(), config).unwrap();
    let server_udp = server.udp_addr().expect("UDP adapter enabled by default");

    let peers = 5u8;
    for p in 0..peers {
        let socket = std::net::UdpSocket::bind("127.0.0.1:0").unwrap();
        socket.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let tuple = FiveTuple::udp(
            Ipv4Addr::new(10, 9, 9, p),
            6000 + u16::from(p),
            Ipv4Addr::new(10, 8, 8, 8),
            8888,
        );
        for k in 0..2u8 {
            let packet = Packet {
                timestamp: 0.05 * f64::from(k),
                tuple,
                flags: TcpFlags::empty(),
                payload: vec![(0x30 + p) ^ k; 16], // 2 × 16 = 32 ≥ b
            };
            let (t, body) = Request::SubmitPacket(packet).encode().unwrap();
            let mut datagram = Vec::new();
            iustitia_serve::proto::write_frame(&mut datagram, t, &body).unwrap();
            socket.send_to(&datagram, server_udp).unwrap();
        }
        let mut buf = vec![0u8; 64 * 1024];
        let (n, _) = socket
            .recv_from(&mut buf)
            .unwrap_or_else(|e| panic!("peer {p} of {peers} got no reply (cap 2): {e}"));
        let mut cursor = Cursor::new(&buf[..n]);
        let (type_byte, body) =
            iustitia_serve::proto::read_frame(&mut cursor).unwrap().expect("one frame per reply");
        match Response::decode(type_byte, &body).unwrap() {
            Response::FlowVerdict(v) => assert_eq!(v.tuple, tuple),
            other => panic!("peer {p} expected a verdict, got {other:?}"),
        }
    }

    let mut client = Client::connect(server.local_addr()).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.udp_datagrams, u64::from(peers) * 2);
    assert_eq!(stats.packets, u64::from(peers) * 2, "no datagram was rejected");
    assert!(
        stats.open_connections <= 3,
        "gauge counts at most the TCP probe plus 2 live peers, got {}",
        stats.open_connections
    );
    client.close().unwrap();
    server.shutdown();
}

/// UDP flows work exactly like TCP flows (no flags, no close).
#[test]
fn udp_flow_classifies_on_full_buffer() {
    let server = Server::start("127.0.0.1:0", trained_model(), server_config()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let tuple =
        FiveTuple::udp(Ipv4Addr::new(192, 168, 1, 5), 5353, Ipv4Addr::new(192, 168, 1, 9), 5353);
    for i in 0..4 {
        let packet = Packet {
            timestamp: 0.1 * f64::from(i),
            tuple,
            flags: TcpFlags::empty(),
            payload: vec![b'a' + i as u8; 16], // 4 × 16 = 64 ≥ b = 32
        };
        client.submit_packet(&packet).unwrap();
    }
    client.flush().unwrap();

    let event = client.recv_event_timeout(Duration::from_secs(10));
    match event {
        Some(ClientEvent::Verdict(v)) => {
            assert_eq!(v.tuple, tuple);
            assert_eq!(v.tuple.protocol, Protocol::Udp);
            assert_eq!(v.packets, 2, "32 bytes arrive with the second packet");
        }
        other => panic!("expected a verdict, got {other:?}"),
    }

    client.close().unwrap();
    server.shutdown();
}
