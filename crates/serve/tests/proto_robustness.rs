//! Property-based robustness tests for the wire protocol.
//!
//! The decode path faces bytes straight off a TCP socket, so it must
//! never panic on adversarial input — only return typed
//! [`ProtoError`]s. These properties throw random frames at every
//! decoder entry point and also pin down the encode/decode round trip.

use std::io::Cursor;

use iustitia_serve::proto::{read_frame, write_frame, Request, Response, MAX_FRAME};
use proptest::prelude::*;

proptest! {
    #[test]
    fn request_decode_never_panics(type_byte in any::<u8>(), body in proptest::collection::vec(any::<u8>(), 0..512)) {
        // Any Err is fine; a panic fails the test by unwinding.
        let _ = Request::decode(type_byte, &body);
    }

    #[test]
    fn response_decode_never_panics(type_byte in any::<u8>(), body in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = Response::decode(type_byte, &body);
    }

    #[test]
    fn read_frame_never_panics_on_random_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..1024)) {
        let mut cursor = Cursor::new(bytes);
        // Drain until EOF or error; decoding garbage lengths must not
        // panic or allocate unboundedly.
        while let Ok(Some(_)) = read_frame(&mut cursor) {}
    }

    #[test]
    fn read_frame_rejects_oversized_lengths_without_allocating(len in (MAX_FRAME as u32 + 1)..=u32::MAX) {
        // A hostile peer claims a huge frame; the reader must fail with
        // a typed error before trusting the length.
        let mut bytes = len.to_be_bytes().to_vec();
        bytes.extend_from_slice(&[0u8; 16]);
        let mut cursor = Cursor::new(bytes);
        prop_assert!(matches!(
            read_frame(&mut cursor),
            Err(iustitia_serve::ProtoError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn classify_request_round_trips(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let req = Request::ClassifyBuffer(data);
        let (t, body) = req.encode().expect("encode small request");
        prop_assert_eq!(Request::decode(t, &body).expect("decode own encoding"), req);
    }

    #[test]
    fn framed_round_trip_survives_the_wire(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let req = Request::ClassifyBuffer(data);
        let (t, body) = req.encode().expect("encode small request");
        let mut wire = Vec::new();
        write_frame(&mut wire, t, &body).expect("write to Vec");
        let mut cursor = Cursor::new(wire);
        let (rt, rbody) = read_frame(&mut cursor).expect("read back").expect("one frame present");
        prop_assert_eq!(Request::decode(rt, &rbody).expect("decode framed"), req);
        prop_assert!(read_frame(&mut cursor).expect("clean EOF").is_none());
    }
}
