//! The event-driven frontend: one reactor thread multiplexing every
//! client socket over level-triggered epoll.
//!
//! # Why a reactor
//!
//! The original frontend spent two threads per connection (blocking
//! reader + blocking writer). That shape cannot reach tens of
//! thousands of concurrent clients: per-connection stacks dwarf the
//! pooled per-flow feature state, and standing up a thousand sockets
//! costs seconds of thread spawning (see `results/BENCH_epoll.json`'s
//! thread-per-connection baseline). The reactor replaces all of those
//! threads with one: sockets are nonblocking, reads land in
//! per-connection [`FrameAssembler`]s, writes buffer in
//! [`WriteBuffer`]s with `EPOLLOUT` re-armed only while bytes are
//! pending, and the shard fan-in is byte-for-byte the old one — the
//! same [`Job`]s, the same bounded-queue admission, the same drain
//! barriers.
//!
//! # Event sources
//!
//! Four token classes multiplex on one epoll instance:
//!
//! | token | source | readiness handling |
//! |---|---|---|
//! | 0 | TCP listener | accept until `EWOULDBLOCK`, register conns |
//! | 1 | wakeup eventfd | drain; outbox + shutdown flags are checked every loop |
//! | 2 | UDP socket | one frame per datagram, pseudo-connections per peer |
//! | 3+ | connections | slab index + 3; read/flush/close state machine |
//!
//! The eventfd is how everything outside the reactor talks to it:
//! shard workers push verdicts into the [`Outbox`] and wake it;
//! `Server::shutdown` sets the stop/finish flags and wakes it. This
//! replaces the old shutdown hack of connecting a throwaway TCP socket
//! to the listener just to unblock `accept`.
//!
//! # Connection state machine
//!
//! ```text
//!   accept ──► OPEN ──(EOF/RDHUP at frame boundary)──► DRAINING
//!                │                                        │ all shards ack
//!                │ (protocol error: Error frame queued)    ▼  Disconnect
//!                └──────────────────────────────────► FLUSHING ──► closed
//!                      (EPOLLERR/EPOLLHUP: peer gone ──► closed immediately)
//! ```
//!
//! A connection that stops sending is not torn down until every shard
//! worker has processed its `Disconnect` job — packets it submitted
//! before EOF still classify, and their verdicts still flush to the
//! socket — the same guarantee the blocking frontend provided by
//! joining the writer thread after the reader saw EOF.

use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, UdpSocket};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use iustitia::cdb::FlowId;
use iustitia::concurrent::shard_index;
use iustitia::features::FeatureExtractor;

use crate::conn::{FrameAssembler, WriteBuffer};
use crate::metrics::{ServeMetrics, Stage};
use crate::proto::{ProtoError, Request, Response, MAX_FRAME};
use crate::server::{Job, Shared};
use crate::sys::{Epoll, EpollEvent, WakeFd, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKE: u64 = 1;
const TOKEN_UDP: u64 = 2;
const TOKEN_BASE: u64 = 3;

/// Cap on bytes read from one connection per readiness event, so a
/// firehose client cannot starve the other sockets (level-triggered
/// epoll re-signals whatever is left).
const READ_BUDGET: usize = 1 << 20;

/// How long shutdown keeps flushing buffered responses to slow
/// readers before force-closing.
const FLUSH_GRACE: Duration = Duration::from_secs(5);

/// How long the listener stays parked after a persistent accept
/// failure (fd exhaustion and kin) before the reactor retries.
const ACCEPT_BACKOFF: Duration = Duration::from_millis(50);

/// A UDP peer silent for this long is eligible for eviction when the
/// peer table is under cap pressure.
const UDP_PEER_IDLE: Duration = Duration::from_secs(60);

/// Consecutive `epoll_wait` failures tolerated before the reactor
/// declares itself wedged and exits.
const MAX_WAIT_ERRORS: u32 = 8;

/// A message from the shard workers (or a fan-in gate) to the reactor.
pub(crate) enum OutMsg {
    /// Deliver `response` to the connection (TCP or UDP pseudo-conn).
    Reply {
        /// Target connection id.
        conn_id: u64,
        /// The response to encode onto that connection.
        response: Response,
    },
    /// Every shard has processed this connection's `Disconnect`; close
    /// its socket once the write buffer drains.
    CloseWhenFlushed {
        /// Target connection id.
        conn_id: u64,
    },
}

/// The cross-thread mailbox into the reactor: shard workers push
/// replies here and wake the eventfd; the reactor drains it once per
/// loop iteration, preserving FIFO order (so a flow's verdicts always
/// precede the `DrainComplete` that barriers them).
pub(crate) struct Outbox {
    pending: Mutex<VecDeque<OutMsg>>,
    wake: WakeFd,
}

impl Outbox {
    /// Creates the mailbox and its wakeup eventfd.
    ///
    /// # Errors
    ///
    /// The `eventfd` errno on failure.
    pub(crate) fn new() -> io::Result<Outbox> {
        Ok(Outbox { pending: Mutex::new(VecDeque::new()), wake: WakeFd::new()? })
    }

    /// Wakes the reactor without queueing a message (used by shutdown
    /// to make it re-check the stop/finish flags).
    pub(crate) fn wake(&self) {
        self.wake.wake();
    }

    fn wake_raw_fd(&self) -> std::os::fd::RawFd {
        self.wake.raw_fd()
    }

    fn drain_wake(&self) {
        self.wake.drain();
    }

    fn push(&self, msg: OutMsg) {
        let mut pending = self.pending.lock().unwrap_or_else(PoisonError::into_inner);
        let was_empty = pending.is_empty();
        pending.push_back(msg);
        drop(pending);
        // One eventfd write per empty→non-empty transition, not per
        // message: the reactor drains the whole queue under the same
        // mutex every loop iteration, so whoever finds the queue
        // non-empty knows a wake for this drain cycle is already in
        // flight. Per-verdict wakes cost a syscall per reply and
        // double the reactor's epoll wakeups under load.
        if was_empty {
            self.wake.wake();
        }
    }

    fn drain_into(&self, out: &mut Vec<OutMsg>) {
        let mut pending = self.pending.lock().unwrap_or_else(PoisonError::into_inner);
        out.extend(pending.drain(..));
    }
}

impl std::fmt::Debug for Outbox {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Outbox").finish_non_exhaustive()
    }
}

/// Where a shard worker sends a connection's responses: a handle on
/// the reactor's outbox, replacing the old per-connection
/// `mpsc::Sender<Response>` + writer thread.
#[derive(Clone, Debug)]
pub(crate) struct ReplySink {
    conn_id: u64,
    outbox: Arc<Outbox>,
}

impl ReplySink {
    pub(crate) fn new(conn_id: u64, outbox: Arc<Outbox>) -> ReplySink {
        ReplySink { conn_id, outbox }
    }

    /// Queues `response` for delivery and wakes the reactor.
    pub(crate) fn send(&self, response: Response) {
        self.outbox.push(OutMsg::Reply { conn_id: self.conn_id, response });
    }
}

/// Counts down one ack per shard; the last ack publishes the fan-in
/// result to the outbox. Replaces the blocking `mpsc` ack channel the
/// old reader thread parked on — the reactor can never block on a
/// barrier, so barriers complete via message instead.
pub(crate) struct FanInGate {
    conn_id: u64,
    disconnect: bool,
    remaining: AtomicUsize,
    flushed: AtomicU64,
    outbox: Arc<Outbox>,
}

impl FanInGate {
    /// Gate for a `Drain` barrier over `shards` workers: completion
    /// replies `DrainComplete(total flushed)`.
    pub(crate) fn drain(conn_id: u64, shards: usize, outbox: Arc<Outbox>) -> Arc<FanInGate> {
        Arc::new(FanInGate {
            conn_id,
            disconnect: false,
            remaining: AtomicUsize::new(shards),
            flushed: AtomicU64::new(0),
            outbox,
        })
    }

    /// Gate for a connection teardown over `shards` workers:
    /// completion tells the reactor to close the socket once its write
    /// buffer drains.
    pub(crate) fn disconnect(conn_id: u64, shards: usize, outbox: Arc<Outbox>) -> Arc<FanInGate> {
        Arc::new(FanInGate {
            conn_id,
            disconnect: true,
            remaining: AtomicUsize::new(shards),
            flushed: AtomicU64::new(0),
            outbox,
        })
    }

    /// One shard's ack, carrying how many of the connection's flows it
    /// flushed. The final ack publishes the result.
    pub(crate) fn ack(&self, flushed: u32) {
        self.flushed.fetch_add(u64::from(flushed), Ordering::Relaxed);
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let total = self.flushed.load(Ordering::Relaxed);
            let msg = if self.disconnect {
                OutMsg::CloseWhenFlushed { conn_id: self.conn_id }
            } else {
                let flows = u32::try_from(total).unwrap_or(u32::MAX);
                OutMsg::Reply { conn_id: self.conn_id, response: Response::DrainComplete(flows) }
            };
            self.outbox.push(msg);
        }
    }
}

/// One TCP connection's reactor-side state.
struct Conn {
    stream: TcpStream,
    conn_id: u64,
    token: u64,
    asm: FrameAssembler,
    out: WriteBuffer,
    /// Interest mask currently registered with epoll.
    interest: u32,
    /// EOF or protocol error seen: no more reads.
    read_closed: bool,
    /// Disconnect gates already pushed to the shards.
    disconnect_sent: bool,
    /// All shards acked the disconnect: close once `out` drains.
    close_when_flushed: bool,
    accepted_at: Instant,
}

/// One UDP peer acting as a pseudo-connection (keyed by source
/// address, holding a conn id for verdict routing).
struct UdpPeer {
    addr: SocketAddr,
    first_seen: Instant,
    /// Refreshed on every datagram; drives idle/LRU eviction when the
    /// peer table hits its cap.
    last_seen: Instant,
}

/// Whose request is being handled (determines where direct replies
/// like `Stats` go).
enum Origin {
    Tcp(usize),
    Udp(u64),
}

/// The reactor: owns the listener, the UDP socket, and every
/// connection; runs on its own thread until shutdown.
pub(crate) struct Reactor {
    epoll: Epoll,
    listener: Option<TcpListener>,
    udp: Option<UdpSocket>,
    shared: Arc<Shared>,
    outbox: Arc<Outbox>,
    conns: Vec<Option<Conn>>,
    free_slots: Vec<usize>,
    by_id: HashMap<u64, usize>,
    udp_peers: HashMap<SocketAddr, u64>,
    udp_by_id: HashMap<u64, UdpPeer>,
    udp_out: VecDeque<(SocketAddr, Vec<u8>)>,
    udp_interest: u32,
    /// Serves one-shot `ClassifyBuffer` requests on the reactor thread
    /// (stateless per call; shared across connections).
    extractor: FeatureExtractor,
    per_shard: Vec<Vec<Job>>,
    pending_frames: usize,
    dirty: Vec<usize>,
    out_scratch: Vec<OutMsg>,
    scratch: Vec<u8>,
    reassembly_bytes: u64,
    /// Set after a persistent accept failure: the listener is
    /// deregistered from epoll until this instant so the reactor keeps
    /// servicing (and closing) existing connections instead of
    /// spinning on an accept that cannot succeed.
    accept_pause: Option<Instant>,
}

impl Reactor {
    /// Builds the reactor and registers its root event sources. The
    /// listener (and UDP socket, if any) must already be nonblocking.
    pub(crate) fn new(
        listener: TcpListener,
        udp: Option<UdpSocket>,
        shared: Arc<Shared>,
    ) -> io::Result<Reactor> {
        let epoll = Epoll::new()?;
        epoll.add(listener.as_raw_fd(), TOKEN_LISTENER, EPOLLIN)?;
        let outbox = Arc::clone(&shared.outbox);
        epoll.add(outbox.wake_raw_fd(), TOKEN_WAKE, EPOLLIN)?;
        if let Some(socket) = &udp {
            epoll.add(socket.as_raw_fd(), TOKEN_UDP, EPOLLIN)?;
        }
        let pipeline = &shared.config.pipeline;
        let extractor =
            FeatureExtractor::new(pipeline.widths.clone(), pipeline.mode.clone(), pipeline.seed);
        let shards = shared.config.shards;
        Ok(Reactor {
            epoll,
            listener: Some(listener),
            udp,
            shared,
            outbox,
            conns: Vec::new(),
            free_slots: Vec::new(),
            by_id: HashMap::new(),
            udp_peers: HashMap::new(),
            udp_by_id: HashMap::new(),
            udp_out: VecDeque::new(),
            udp_interest: EPOLLIN,
            extractor,
            per_shard: (0..shards).map(|_| Vec::new()).collect(),
            pending_frames: 0,
            dirty: Vec::new(),
            out_scratch: Vec::new(),
            scratch: vec![0u8; 64 * 1024],
            reassembly_bytes: 0,
            accept_pause: None,
        })
    }

    /// The event loop. Returns when shutdown completes: stop closes
    /// the listener, finish flushes buffered responses (bounded by
    /// [`FLUSH_GRACE`]) and exits.
    pub(crate) fn run(mut self) {
        let mut events = vec![EpollEvent::default(); 1024];
        let mut finish_deadline: Option<Instant> = None;
        let mut wait_errors = 0u32;

        loop {
            if self.accept_pause.is_some_and(|resume_at| Instant::now() >= resume_at) {
                self.resume_accept();
            }
            let deadline = match (finish_deadline, self.accept_pause) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
            let timeout_ms = match deadline {
                None => -1,
                Some(deadline) => {
                    let left = deadline.saturating_duration_since(Instant::now());
                    i32::try_from(left.as_millis().min(100)).unwrap_or(100)
                }
            };
            let n = match self.epoll.wait(&mut events, timeout_ms) {
                Ok(n) => {
                    wait_errors = 0;
                    n
                }
                // A failing epoll_wait must not become a hot loop:
                // back off, and if it keeps failing (EBADF/EINVAL —
                // the epoll fd itself is broken) the reactor is
                // unrecoverable, so exit instead of spinning forever.
                Err(e) => {
                    wait_errors += 1;
                    if wait_errors >= MAX_WAIT_ERRORS {
                        // lint: allow(L004) — the reactor thread is dying and can no longer serve Stats; stderr is the only channel left
                        eprintln!(
                            "iustitia-reactor: epoll_wait failed {wait_errors} times, exiting: {e}"
                        );
                        return;
                    }
                    std::thread::sleep(Duration::from_millis(10));
                    0
                }
            };

            // Connections first, accepts last: a slot freed by a close
            // in this batch is never reused while the batch still
            // holds an event for its old occupant.
            let mut accept_pending = false;
            for ev in events.iter().take(n) {
                let ready = ev.events;
                match ev.token {
                    TOKEN_LISTENER => accept_pending = true,
                    TOKEN_WAKE => self.outbox.drain_wake(),
                    TOKEN_UDP => self.udp_ready(ready),
                    token => self.conn_ready(token, ready),
                }
            }
            self.dispatch_pending();
            self.process_outbox();
            if accept_pending && finish_deadline.is_none() {
                self.accept_ready();
            }
            self.flush_dirty();
            self.publish_gauges();

            if self.listener.is_some() && self.shared.stop.load(Ordering::SeqCst) {
                // Stop accepting; existing connections keep serving
                // until the workers finish draining.
                if let Some(listener) = self.listener.take() {
                    let _ = self.epoll.delete(listener.as_raw_fd());
                }
                self.accept_pause = None;
            }
            if self.shared.finish.load(Ordering::SeqCst) {
                let deadline = *finish_deadline.get_or_insert_with(|| Instant::now() + FLUSH_GRACE);
                self.flush_all();
                if self.all_flushed() || Instant::now() >= deadline {
                    break;
                }
            }
        }
    }

    // ---- accept path ----------------------------------------------

    fn accept_ready(&mut self) {
        if self.accept_pause.is_some() {
            return;
        }
        loop {
            let Some(listener) = &self.listener else { return };
            match listener.accept() {
                Ok((stream, _)) => self.register_conn(stream),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                // Transient per-connection failures: that one
                // connection is gone, keep accepting the rest.
                Err(e)
                    if e.kind() == io::ErrorKind::Interrupted
                        || e.kind() == io::ErrorKind::ConnectionAborted => {}
                // EMFILE/ENFILE and other persistent failures leave the
                // pending connection queued, so retrying immediately
                // can never make progress — and only this thread can
                // close fds to relieve the pressure. Park the listener
                // and get back to epoll_wait.
                Err(_) => {
                    self.pause_accept();
                    return;
                }
            }
        }
    }

    /// Deregisters the listener for [`ACCEPT_BACKOFF`] after a
    /// persistent accept failure; without this, level-triggered epoll
    /// would re-report the listener every iteration and the loop would
    /// spin on a failing `accept`.
    fn pause_accept(&mut self) {
        let Some(listener) = &self.listener else { return };
        let _ = self.epoll.delete(listener.as_raw_fd());
        self.accept_pause = Some(Instant::now() + ACCEPT_BACKOFF);
    }

    /// Re-registers the listener once the accept backoff expires. If
    /// the re-add itself fails, the backoff is extended and retried.
    fn resume_accept(&mut self) {
        self.accept_pause = None;
        let Some(listener) = &self.listener else { return };
        if self.epoll.add(listener.as_raw_fd(), TOKEN_LISTENER, EPOLLIN).is_err() {
            self.accept_pause = Some(Instant::now() + ACCEPT_BACKOFF);
        }
    }

    fn register_conn(&mut self, stream: TcpStream) {
        let _ = stream.set_nodelay(true);
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let conn_id = self.shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
        ServeMetrics::add(&self.shared.metrics.connections, 1);
        let idx = self.free_slots.pop().unwrap_or_else(|| {
            self.conns.push(None);
            self.conns.len() - 1
        });
        let token = TOKEN_BASE + idx as u64;
        let interest = EPOLLIN | EPOLLRDHUP;
        if self.epoll.add(stream.as_raw_fd(), token, interest).is_err() {
            self.free_slots.push(idx);
            return;
        }
        self.conns[idx] = Some(Conn {
            stream,
            conn_id,
            token,
            asm: FrameAssembler::new(),
            out: WriteBuffer::new(),
            interest,
            read_closed: false,
            disconnect_sent: false,
            close_when_flushed: false,
            accepted_at: Instant::now(),
        });
        self.by_id.insert(conn_id, idx);
    }

    // ---- connection path ------------------------------------------

    fn conn_ready(&mut self, token: u64, ready: u32) {
        let idx = (token.saturating_sub(TOKEN_BASE)) as usize;
        if self.conns.get(idx).is_none_or(|slot| slot.is_none()) {
            return; // stale event for a slot closed earlier this batch
        }
        if ready & (EPOLLERR | EPOLLHUP) != 0 {
            // The peer is gone in both directions; buffered responses
            // are undeliverable.
            self.close_conn(idx);
            return;
        }
        if ready & EPOLLOUT != 0 {
            self.flush_conn(idx);
        }
        if ready & (EPOLLIN | EPOLLRDHUP) != 0 {
            self.read_conn(idx);
        }
        self.update_interest(idx);
    }

    /// Reads whatever the socket has (up to [`READ_BUDGET`]), then
    /// decodes and handles every complete frame banked so far.
    fn read_conn(&mut self, idx: usize) {
        let mut saw_eof = false;
        let mut read_total = 0usize;
        loop {
            let Some(conn) = self.conns[idx].as_mut() else { return };
            if conn.read_closed {
                return;
            }
            let before = conn.asm.buffered_bytes() as u64;
            match conn.asm.fill_from(&mut conn.stream, &mut self.scratch) {
                Ok(0) => {
                    saw_eof = true;
                    break;
                }
                Ok(n) => {
                    self.reassembly_bytes = self
                        .reassembly_bytes
                        .wrapping_add(conn.asm.buffered_bytes() as u64 - before);
                    read_total += n;
                    if read_total >= READ_BUDGET {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.close_conn(idx);
                    return;
                }
            }
        }
        self.process_frames(idx);
        if saw_eof {
            self.read_eof(idx);
        }
    }

    /// Decodes and handles every complete frame in the connection's
    /// reassembly buffer, dispatching to the shards each time
    /// `batch_limit` frames accumulate.
    fn process_frames(&mut self, idx: usize) {
        let batch_limit = self.shared.config.batch_limit;
        loop {
            let frame = {
                let Some(conn) = self.conns[idx].as_mut() else { return };
                if conn.read_closed {
                    return;
                }
                let before = conn.asm.buffered_bytes() as u64;
                let next = conn.asm.next_frame();
                let after = conn.asm.buffered_bytes() as u64;
                self.reassembly_bytes = self.reassembly_bytes.wrapping_sub(before - after);
                next
            };
            match frame {
                Ok(Some((type_byte, body))) => match Request::decode(type_byte, &body) {
                    Ok(request) => {
                        self.handle_request(&Origin::Tcp(idx), request);
                        self.pending_frames += 1;
                        if self.pending_frames >= batch_limit {
                            self.dispatch_pending();
                        }
                    }
                    Err(e) => {
                        self.protocol_error(idx, &e);
                        return;
                    }
                },
                Ok(None) => return,
                Err(e) => {
                    self.protocol_error(idx, &e);
                    return;
                }
            }
        }
    }

    /// EOF from the peer: clean at a frame boundary (begin the
    /// drain-then-close sequence), truncation otherwise (protocol
    /// error, mirroring blocking `read_frame`).
    fn read_eof(&mut self, idx: usize) {
        let eof_error = {
            let Some(conn) = self.conns[idx].as_mut() else { return };
            if conn.read_closed {
                return;
            }
            conn.read_closed = true;
            conn.asm.eof_error()
        };
        if let Some(err) = eof_error {
            self.queue_response(idx, &Response::Error(err.to_string()));
        }
        self.begin_disconnect(idx);
    }

    /// A malformed/oversized/truncated frame: everything decoded so
    /// far is dispatched, the peer gets an `Error` frame explaining
    /// why, and the connection drains then closes — the same sequence
    /// the blocking frontend performed.
    fn protocol_error(&mut self, idx: usize, err: &ProtoError) {
        self.dispatch_pending();
        self.queue_response(idx, &Response::Error(err.to_string()));
        let Some(conn) = self.conns[idx].as_mut() else { return };
        conn.read_closed = true;
        self.begin_disconnect(idx);
    }

    /// Pushes this connection's `Disconnect` through every shard, so
    /// in-flight packets classify and routes are forgotten before the
    /// socket closes.
    fn begin_disconnect(&mut self, idx: usize) {
        let conn_id = {
            let Some(conn) = self.conns[idx].as_mut() else { return };
            if conn.disconnect_sent {
                return;
            }
            conn.disconnect_sent = true;
            conn.conn_id
        };
        // Packets this connection submitted must reach the shards
        // before the disconnect that forgets their routes.
        self.dispatch_pending();
        let gate =
            FanInGate::disconnect(conn_id, self.shared.queues.len(), Arc::clone(&self.outbox));
        for queue in &self.shared.queues {
            if !queue.push_control(Job::Disconnect { conn_id, gate: Arc::clone(&gate) }) {
                // Queue already closed (server shutting down): the
                // workers will drop routes wholesale; count the shard
                // as acked so the close still completes.
                gate.ack(0);
            }
        }
    }

    // ---- request handling -----------------------------------------

    fn origin_conn_id(&self, origin: &Origin) -> Option<u64> {
        match origin {
            Origin::Tcp(idx) => self.conns.get(*idx).and_then(Option::as_ref).map(|c| c.conn_id),
            Origin::Udp(conn_id) => Some(*conn_id),
        }
    }

    fn reply_direct(&mut self, origin: &Origin, response: &Response) {
        match origin {
            Origin::Tcp(idx) => self.queue_response(*idx, response),
            Origin::Udp(conn_id) => {
                if let Some(peer) = self.udp_by_id.get(conn_id) {
                    let addr = peer.addr;
                    self.udp_send(addr, response);
                }
            }
        }
    }

    fn handle_request(&mut self, origin: &Origin, request: Request) {
        let Some(conn_id) = self.origin_conn_id(origin) else { return };
        match request {
            Request::SubmitPacket(packet) => {
                let t0 = Instant::now();
                let flow = FlowId::of_tuple(&packet.tuple);
                self.shared.metrics.record(Stage::Hash, t0.elapsed().as_nanos() as u64);
                let shard = shard_index(&flow, self.shared.config.shards);
                let reply = ReplySink::new(conn_id, Arc::clone(&self.outbox));
                if let Some(jobs) = self.per_shard.get_mut(shard) {
                    jobs.push(Job::Packet { packet, flow, conn_id, reply });
                }
            }
            Request::ClassifyBuffer(data) => {
                let t0 = Instant::now();
                let buffer_size = self.shared.config.pipeline.buffer_size;
                let prefix = &data[..data.len().min(buffer_size)];
                let features = self.extractor.extract(prefix);
                let label = self.shared.model.predict(&features);
                self.shared.metrics.record(Stage::Classify, t0.elapsed().as_nanos() as u64);
                ServeMetrics::add(&self.shared.metrics.classify_requests, 1);
                self.reply_direct(origin, &Response::ClassifyResult(label));
            }
            Request::Stats => {
                // Account for earlier submits in this batch first (and
                // write out any Busy rejections they produced), so a
                // client's own submit→stats ordering is reflected.
                self.dispatch_pending();
                self.process_outbox();
                let snapshot = self.shared.snapshot();
                self.reply_direct(origin, &Response::Stats(Box::new(snapshot)));
            }
            Request::Drain => {
                // Barrier: everything submitted before the drain must
                // reach the shards before the drain jobs do.
                self.dispatch_pending();
                let gate =
                    FanInGate::drain(conn_id, self.shared.queues.len(), Arc::clone(&self.outbox));
                for queue in &self.shared.queues {
                    if !queue.push_control(Job::Drain { conn_id, gate: Arc::clone(&gate) }) {
                        gate.ack(0);
                    }
                }
            }
        }
    }

    /// Pushes each shard's pending jobs under one lock acquisition and
    /// applies the admission outcome: `Busy` replies for rejected
    /// packets, drop counters for evictions. This is the reactor's
    /// event-dispatch entry point into the shard fan-in.
    pub(crate) fn dispatch_pending(&mut self) {
        self.pending_frames = 0;
        for (shard, jobs) in self.per_shard.iter_mut().enumerate() {
            if jobs.is_empty() {
                continue;
            }
            let submitted = jobs.len() as u64;
            let Some(queue) = self.shared.queues.get(shard) else { continue };
            let pending = std::mem::take(jobs);
            let outcome = queue.push_batch(pending);
            let rejected = outcome.rejected.len() as u64;
            ServeMetrics::add(&self.shared.metrics.packets, submitted.saturating_sub(rejected));
            ServeMetrics::add(&self.shared.metrics.busy_rejects, rejected);
            ServeMetrics::add(&self.shared.metrics.dropped_oldest, outcome.dropped.len() as u64);
            for job in outcome.rejected {
                if let Job::Packet { packet, reply, .. } = job {
                    reply.send(Response::Busy(packet.tuple));
                }
            }
        }
    }

    // ---- response path --------------------------------------------

    /// Encodes one response into the connection's write buffer. An
    /// unencodable response (a server bug, not a peer failure)
    /// degrades to a protocol `Error` frame.
    fn queue_response(&mut self, idx: usize, response: &Response) {
        let encoded = match response.encode() {
            Ok(frame) => Ok(frame),
            Err(e) => Response::Error(format!("unencodable response: {e}")).encode(),
        };
        let Ok((type_byte, body)) = encoded else { return };
        let Some(conn) = self.conns[idx].as_mut() else { return };
        if conn.out.push_frame(type_byte, &body).is_err() {
            return;
        }
        if !self.dirty.contains(&idx) {
            self.dirty.push(idx);
        }
    }

    /// Flushes every connection touched since the last loop iteration
    /// (batching all responses queued this iteration into one write).
    fn flush_dirty(&mut self) {
        let mut dirty = std::mem::take(&mut self.dirty);
        for idx in dirty.drain(..) {
            if self.conns.get(idx).is_none_or(|slot| slot.is_none()) {
                continue;
            }
            self.flush_conn(idx);
            self.update_interest(idx);
        }
        self.dirty = dirty;
    }

    /// Writes as much buffered output as the socket accepts; closes on
    /// write failure or when a deferred close finishes flushing.
    fn flush_conn(&mut self, idx: usize) {
        let Some(conn) = self.conns[idx].as_mut() else { return };
        match conn.out.flush_to(&mut conn.stream) {
            Ok(true) => {
                if conn.close_when_flushed {
                    self.close_conn(idx);
                }
            }
            Ok(false) => {} // EWOULDBLOCK: interest update re-arms EPOLLOUT
            Err(_) => self.close_conn(idx),
        }
    }

    /// Re-registers the connection's epoll interest if it changed:
    /// reads while the stream is open, writes only while output is
    /// buffered.
    fn update_interest(&mut self, idx: usize) {
        let Some(conn) = self.conns[idx].as_mut() else { return };
        let mut desired = 0u32;
        if !conn.read_closed {
            desired |= EPOLLIN | EPOLLRDHUP;
        }
        if !conn.out.is_empty() {
            desired |= EPOLLOUT;
        }
        if desired != conn.interest
            && self.epoll.modify(conn.stream.as_raw_fd(), conn.token, desired).is_ok()
        {
            conn.interest = desired;
        }
    }

    fn close_conn(&mut self, idx: usize) {
        let Some(conn) = self.conns.get_mut(idx).and_then(Option::take) else { return };
        let _ = self.epoll.delete(conn.stream.as_raw_fd());
        self.by_id.remove(&conn.conn_id);
        self.reassembly_bytes =
            self.reassembly_bytes.wrapping_sub(conn.asm.buffered_bytes() as u64);
        self.free_slots.push(idx);
        if !conn.disconnect_sent {
            // Dropped without EOF (reset, write failure): the shards
            // must still forget its routes.
            let gate = FanInGate::disconnect(
                conn.conn_id,
                self.shared.queues.len(),
                Arc::clone(&self.outbox),
            );
            for queue in &self.shared.queues {
                if !queue.push_control(Job::Disconnect {
                    conn_id: conn.conn_id,
                    gate: Arc::clone(&gate),
                }) {
                    gate.ack(0);
                }
            }
        }
    }

    // ---- outbox ---------------------------------------------------

    /// Drains the worker→reactor mailbox: encodes replies into
    /// connection write buffers (or UDP datagrams) and applies
    /// deferred closes.
    fn process_outbox(&mut self) {
        let mut msgs = std::mem::take(&mut self.out_scratch);
        self.outbox.drain_into(&mut msgs);
        for msg in msgs.drain(..) {
            match msg {
                OutMsg::Reply { conn_id, response } => {
                    if matches!(response, Response::FlowVerdict(_)) {
                        self.record_accept_to_verdict(conn_id);
                    }
                    if matches!(response, Response::DrainComplete(_)) {
                        ServeMetrics::add(&self.shared.metrics.drains, 1);
                    }
                    if let Some(&idx) = self.by_id.get(&conn_id) {
                        self.queue_response(idx, &response);
                    } else if let Some(peer) = self.udp_by_id.get(&conn_id) {
                        let addr = peer.addr;
                        self.udp_send(addr, &response);
                    }
                    // Neither: the connection closed before its reply
                    // could be delivered; drop it, as the old writer
                    // thread did when its socket died.
                }
                OutMsg::CloseWhenFlushed { conn_id } => {
                    if let Some(&idx) = self.by_id.get(&conn_id) {
                        if let Some(conn) = self.conns[idx].as_mut() {
                            conn.close_when_flushed = true;
                            if conn.out.is_empty() {
                                self.close_conn(idx);
                            }
                        }
                    }
                }
            }
        }
        self.out_scratch = msgs;
    }

    fn record_accept_to_verdict(&self, conn_id: u64) {
        let since = if let Some(&idx) = self.by_id.get(&conn_id) {
            self.conns.get(idx).and_then(Option::as_ref).map(|c| c.accepted_at)
        } else {
            self.udp_by_id.get(&conn_id).map(|p| p.first_seen)
        };
        if let Some(accepted_at) = since {
            self.shared.metrics.accept_to_verdict.record(accepted_at.elapsed().as_nanos() as u64);
        }
    }

    // ---- UDP adapter ----------------------------------------------

    fn udp_ready(&mut self, ready: u32) {
        if ready & EPOLLOUT != 0 {
            self.udp_flush();
        }
        if ready & EPOLLIN != 0 {
            loop {
                let Some(socket) = &self.udp else { return };
                match socket.recv_from(&mut self.scratch) {
                    Ok((n, addr)) => {
                        ServeMetrics::add(&self.shared.metrics.udp_datagrams, 1);
                        self.udp_datagram(addr, n);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => break,
                }
            }
        }
        self.udp_update_interest();
    }

    /// One datagram = exactly one frame (same length-prefixed format
    /// as the stream transport, validated by the same assembler).
    fn udp_datagram(&mut self, addr: SocketAddr, len: usize) {
        let data = self.scratch.get(..len).unwrap_or(&[]).to_vec();
        let mut asm = FrameAssembler::new();
        asm.extend(&data);
        let frame = match asm.next_frame() {
            Ok(Some(frame)) if asm.at_frame_boundary() => frame,
            Ok(Some(_)) | Ok(None) => {
                let why = asm.eof_error().map_or_else(
                    || "datagram must contain exactly one frame".to_string(),
                    |e| e.to_string(),
                );
                self.udp_send(addr, &Response::Error(why));
                return;
            }
            Err(e) => {
                self.udp_send(addr, &Response::Error(e.to_string()));
                return;
            }
        };
        let request = match Request::decode(frame.0, &frame.1) {
            Ok(request) => request,
            Err(e) => {
                self.udp_send(addr, &Response::Error(e.to_string()));
                return;
            }
        };
        let conn_id = match self.udp_peers.get(&addr) {
            Some(&id) => {
                if let Some(peer) = self.udp_by_id.get_mut(&id) {
                    peer.last_seen = Instant::now();
                }
                id
            }
            None => {
                if self.udp_by_id.len() >= self.shared.config.max_udp_peers {
                    self.evict_udp_peers();
                }
                if self.udp_by_id.len() >= self.shared.config.max_udp_peers {
                    // Only possible with a zero cap (UDP effectively
                    // disabled by configuration).
                    self.udp_send(addr, &Response::Error("too many UDP peers".into()));
                    return;
                }
                let id = self.shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
                let now = Instant::now();
                self.udp_peers.insert(addr, id);
                self.udp_by_id.insert(id, UdpPeer { addr, first_seen: now, last_seen: now });
                id
            }
        };
        self.handle_request(&Origin::Udp(conn_id), request);
    }

    /// Makes room in the peer table: drops every peer idle for
    /// [`UDP_PEER_IDLE`], or failing that the single least-recently-seen
    /// peer, so a new peer can always register — a stream of spoofed
    /// source addresses recycles table slots instead of permanently
    /// exhausting them.
    fn evict_udp_peers(&mut self) {
        let now = Instant::now();
        let mut evict: Vec<u64> = self
            .udp_by_id
            .iter()
            .filter(|(_, peer)| now.duration_since(peer.last_seen) >= UDP_PEER_IDLE)
            .map(|(&id, _)| id)
            .collect();
        if evict.is_empty() {
            evict.extend(
                self.udp_by_id.iter().min_by_key(|(_, peer)| peer.last_seen).map(|(&id, _)| id),
            );
        }
        for id in evict {
            self.forget_udp_peer(id);
        }
    }

    /// Removes one UDP pseudo-connection and pushes its `Disconnect`
    /// through the shards, so verdict routes it still holds are
    /// forgotten exactly as a closed TCP connection's are.
    fn forget_udp_peer(&mut self, conn_id: u64) {
        let Some(peer) = self.udp_by_id.remove(&conn_id) else { return };
        self.udp_peers.remove(&peer.addr);
        let gate =
            FanInGate::disconnect(conn_id, self.shared.queues.len(), Arc::clone(&self.outbox));
        for queue in &self.shared.queues {
            if !queue.push_control(Job::Disconnect { conn_id, gate: Arc::clone(&gate) }) {
                gate.ack(0);
            }
        }
    }

    /// Encodes a response as a single datagram; on `EWOULDBLOCK` the
    /// datagram queues and write interest is armed on the UDP socket.
    fn udp_send(&mut self, addr: SocketAddr, response: &Response) {
        let encoded = match response.encode() {
            Ok(frame) => Ok(frame),
            Err(e) => Response::Error(format!("unencodable response: {e}")).encode(),
        };
        let Ok((type_byte, body)) = encoded else { return };
        if body.len() > MAX_FRAME {
            return;
        }
        let mut datagram = Vec::with_capacity(body.len() + 5);
        let Ok(()) = crate::proto::write_frame(&mut datagram, type_byte, &body) else { return };
        let Some(socket) = &self.udp else { return };
        if !self.udp_out.is_empty() {
            self.udp_out.push_back((addr, datagram));
            return;
        }
        match socket.send_to(&datagram, addr) {
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                self.udp_out.push_back((addr, datagram));
            }
            // Sent, or an unreachable peer (nothing to do for a
            // datagram transport).
            _ => {}
        }
    }

    fn udp_flush(&mut self) {
        while let Some((addr, datagram)) = self.udp_out.front() {
            let Some(socket) = &self.udp else { return };
            match socket.send_to(datagram, *addr) {
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                _ => {
                    self.udp_out.pop_front();
                }
            }
        }
    }

    fn udp_update_interest(&mut self) {
        let Some(socket) = &self.udp else { return };
        let desired = if self.udp_out.is_empty() { EPOLLIN } else { EPOLLIN | EPOLLOUT };
        if desired != self.udp_interest
            && self.epoll.modify(socket.as_raw_fd(), TOKEN_UDP, desired).is_ok()
        {
            self.udp_interest = desired;
        }
    }

    // ---- gauges & shutdown ----------------------------------------

    fn publish_gauges(&self) {
        let open = (self.by_id.len() + self.udp_by_id.len()) as u64;
        self.shared.metrics.open_connections.store(open, Ordering::Relaxed);
        self.shared.metrics.reassembly_buffer_bytes.store(self.reassembly_bytes, Ordering::Relaxed);
    }

    fn flush_all(&mut self) {
        self.udp_flush();
        for idx in 0..self.conns.len() {
            if self.conns[idx].as_ref().is_some_and(|c| !c.out.is_empty()) {
                self.flush_conn(idx);
                self.update_interest(idx);
            }
        }
    }

    fn all_flushed(&self) -> bool {
        self.udp_out.is_empty() && self.conns.iter().flatten().all(|conn| conn.out.is_empty())
    }
}

impl std::fmt::Debug for Reactor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Reactor")
            .field("open_conns", &self.by_id.len())
            .field("udp_peers", &self.udp_by_id.len())
            .finish_non_exhaustive()
    }
}
