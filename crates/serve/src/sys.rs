//! Thin Linux syscall shims for the event-driven frontend: `epoll(7)`
//! and `eventfd(2)`.
//!
//! The workspace vendors every dependency, so rather than pulling in a
//! libc crate this module declares the four glibc symbols it needs by
//! hand (`std` already links the C runtime) and wraps them in safe RAII
//! types built on [`std::os::fd::OwnedFd`]. This is the only module in
//! the crate allowed to use `unsafe`; everything above it ([`crate::reactor`],
//! [`crate::conn`], [`crate::server`]) stays under `deny(unsafe_code)`.
//!
//! Scope is deliberately tiny: level-triggered interest registration,
//! a bounded wait, and a nonblocking eventfd used as a cross-thread
//! wakeup. Errors surface as [`std::io::Error`] from `errno`.
#![allow(unsafe_code)]

use std::io;
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::os::raw::{c_int, c_uint, c_void};

/// Readable readiness (also set for incoming connections on a listener).
pub const EPOLLIN: u32 = 0x001;
/// Writable readiness.
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (always reported, need not be requested).
pub const EPOLLERR: u32 = 0x008;
/// Hang-up (always reported, need not be requested).
pub const EPOLLHUP: u32 = 0x010;
/// Peer closed its write half (must be requested explicitly).
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
const EPOLL_CLOEXEC: c_int = 0o2000000;
const EFD_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;

/// One readiness record, layout-compatible with the kernel's
/// `struct epoll_event`. On x86-64 the kernel ABI packs the struct to
/// 12 bytes; other architectures use natural alignment.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy, Default)]
pub struct EpollEvent {
    /// Bitmask of `EPOLL*` readiness flags.
    pub events: u32,
    /// The caller-chosen token registered with the fd.
    pub token: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// A level-triggered epoll instance.
#[derive(Debug)]
pub struct Epoll {
    fd: OwnedFd,
}

impl Epoll {
    /// Creates a close-on-exec epoll instance.
    ///
    /// # Errors
    ///
    /// The `epoll_create1` errno on failure.
    pub fn new() -> io::Result<Epoll> {
        let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        // SAFETY: epoll_create1 returned a fresh fd >= 0 that nothing
        // else owns.
        Ok(Epoll { fd: unsafe { OwnedFd::from_raw_fd(fd) } })
    }

    fn ctl(&self, op: c_int, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
        let mut ev = EpollEvent { events: interest, token };
        cvt(unsafe { epoll_ctl(self.fd.as_raw_fd(), op, fd, &mut ev) })?;
        Ok(())
    }

    /// Registers `fd` with the given `token` and `interest` mask.
    ///
    /// # Errors
    ///
    /// The `epoll_ctl` errno (e.g. `EEXIST` for a duplicate add).
    pub fn add(&self, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, token, interest)
    }

    /// Rewrites the interest mask for an already-registered `fd`.
    ///
    /// # Errors
    ///
    /// The `epoll_ctl` errno (e.g. `ENOENT` if never registered).
    pub fn modify(&self, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, token, interest)
    }

    /// Deregisters `fd`.
    ///
    /// # Errors
    ///
    /// The `epoll_ctl` errno (e.g. `ENOENT` if never registered).
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Waits for readiness, filling `events` from the start; returns
    /// how many records are valid. `timeout_ms < 0` blocks forever,
    /// `0` polls. An interrupting signal yields `Ok(0)`.
    ///
    /// # Errors
    ///
    /// The `epoll_wait` errno other than `EINTR`.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        if events.is_empty() {
            return Ok(0);
        }
        let cap = c_int::try_from(events.len()).unwrap_or(c_int::MAX);
        // SAFETY: the pointer/capacity pair describes the caller's
        // slice, and the kernel writes at most `cap` records.
        let ret = unsafe { epoll_wait(self.fd.as_raw_fd(), events.as_mut_ptr(), cap, timeout_ms) };
        match cvt(ret) {
            Ok(n) => Ok(n as usize),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => Ok(0),
            Err(e) => Err(e),
        }
    }
}

/// A nonblocking `eventfd` used to wake the reactor from other threads
/// (shard workers completing verdicts, `Server::shutdown`). This is
/// the replacement for the old "connect a throwaway TCP socket to
/// yourself" shutdown hack.
#[derive(Debug)]
pub struct WakeFd {
    fd: OwnedFd,
}

impl WakeFd {
    /// Creates a close-on-exec, nonblocking eventfd with counter 0.
    ///
    /// # Errors
    ///
    /// The `eventfd` errno on failure.
    pub fn new() -> io::Result<WakeFd> {
        let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        // SAFETY: eventfd returned a fresh fd >= 0 that nothing else
        // owns.
        Ok(WakeFd { fd: unsafe { OwnedFd::from_raw_fd(fd) } })
    }

    /// The raw fd, for registering with an [`Epoll`].
    #[must_use]
    pub fn raw_fd(&self) -> RawFd {
        self.fd.as_raw_fd()
    }

    /// Signals the reactor. Failures are ignored: `EAGAIN` means the
    /// counter is already saturated — the reactor is provably pending
    /// a wakeup — and any other failure mode has no caller-side remedy.
    pub fn wake(&self) {
        let one: u64 = 1;
        // SAFETY: the buffer is 8 valid bytes, as eventfd requires.
        let _ = unsafe { write(self.fd.as_raw_fd(), std::ptr::addr_of!(one).cast::<c_void>(), 8) };
    }

    /// Consumes all pending wakeups (one read resets the counter).
    pub fn drain(&self) {
        let mut count: u64 = 0;
        // SAFETY: the buffer is 8 valid bytes, as eventfd requires.
        let _ =
            unsafe { read(self.fd.as_raw_fd(), std::ptr::addr_of_mut!(count).cast::<c_void>(), 8) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn wakefd_round_trip_through_epoll() {
        let ep = Epoll::new().unwrap();
        let wake = WakeFd::new().unwrap();
        ep.add(wake.raw_fd(), 42, EPOLLIN).unwrap();

        let mut events = vec![EpollEvent::default(); 8];
        // Nothing pending: a zero-timeout poll sees nothing.
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);

        wake.wake();
        wake.wake(); // coalesces into the same counter
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        let ev = events[0];
        let (token, ready) = (ev.token, ev.events);
        assert_eq!(token, 42);
        assert_ne!(ready & EPOLLIN, 0);

        // Level-triggered: still readable until drained.
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 1);
        wake.drain();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn socket_readiness_and_interest_rewrite() {
        use std::os::fd::AsRawFd;

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();

        let ep = Epoll::new().unwrap();
        ep.add(server_side.as_raw_fd(), 7, EPOLLIN | EPOLLRDHUP).unwrap();

        let mut events = vec![EpollEvent::default(); 8];
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0, "no bytes yet");

        client.write_all(b"hi").unwrap();
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        let (token, ready) = (events[0].token, events[0].events);
        assert_eq!(token, 7);
        assert_ne!(ready & EPOLLIN, 0);

        // Rewrite interest to write-only: an idle writable socket
        // reports EPOLLOUT immediately, and the pending read bytes no
        // longer wake us for EPOLLIN.
        ep.modify(server_side.as_raw_fd(), 7, EPOLLOUT).unwrap();
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        assert_ne!(events[0].events & EPOLLOUT, 0);
        assert_eq!(events[0].events & EPOLLIN, 0);

        ep.delete(server_side.as_raw_fd()).unwrap();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn rdhup_reports_peer_write_close() {
        use std::os::fd::AsRawFd;

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server_side, _) = listener.accept().unwrap();

        let ep = Epoll::new().unwrap();
        ep.add(server_side.as_raw_fd(), 9, EPOLLIN | EPOLLRDHUP).unwrap();
        drop(client);

        let mut events = vec![EpollEvent::default(); 8];
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        assert_ne!(events[0].events & (EPOLLRDHUP | EPOLLIN), 0);
    }
}
