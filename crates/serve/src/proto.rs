//! Length-prefixed binary wire protocol for the classification service.
//!
//! # Framing
//!
//! Every message is one *frame*:
//!
//! ```text
//! +-------------------+-----------+------------------+
//! | length: u32 (BE)  | type: u8  | body: length - 1 |
//! +-------------------+-----------+------------------+
//! ```
//!
//! `length` counts the type byte plus the body and is capped at
//! [`MAX_FRAME`]. Integers are big-endian; `f64` values travel as the
//! big-endian bytes of their IEEE-754 bit pattern.
//!
//! # Requests (client → server)
//!
//! | type | message | body |
//! |------|---------|------|
//! | `0x01` | [`Request::SubmitPacket`] | `timestamp: f64`, `tuple: 13B`, `flags: u8`, `payload: u32 + bytes` |
//! | `0x02` | [`Request::ClassifyBuffer`] | `payload: u32 + bytes` |
//! | `0x03` | [`Request::Stats`] | empty |
//! | `0x04` | [`Request::Drain`] | empty |
//!
//! The 13-byte tuple encoding is [`FiveTuple::as_bytes`]: source IP,
//! destination IP, source port, destination port, IANA protocol number
//! (6 = TCP, 17 = UDP).
//!
//! # Responses (server → client)
//!
//! | type | message | body |
//! |------|---------|------|
//! | `0x81` | [`Response::FlowVerdict`] | `tuple: 13B`, `label: u8`, `packets: u32`, `buffered_bytes: u32`, `fill_time: f64` |
//! | `0x82` | [`Response::Busy`] | `tuple: 13B` |
//! | `0x83` | [`Response::ClassifyResult`] | `label: u8` |
//! | `0x84` | [`Response::Stats`] | see [`StatsSnapshot::encode_into`](crate::metrics::StatsSnapshot) |
//! | `0x85` | [`Response::DrainComplete`] | `flows: u32` |
//! | `0x86` | [`Response::Error`] | `message: u32 + UTF-8 bytes` |
//!
//! `SubmitPacket` is streaming: it has no immediate reply. The server
//! pushes one `FlowVerdict` per *completed* flow (buffer filled, flow
//! closed, idle-flushed, or drained) and `Busy` when admission control
//! rejects a packet. `Drain` is a barrier: after all previously
//! submitted packets are processed, every in-flight flow is classified
//! from whatever bytes it has buffered, the verdicts are pushed, and
//! `DrainComplete` reports how many flows this drain flushed for the
//! requesting connection.

use std::io::{BufReader, Read, Write};
use std::net::Ipv4Addr;

use iustitia_corpus::FileClass;
use iustitia_netsim::{FiveTuple, Packet, TcpFlags};

use crate::metrics::StatsSnapshot;

/// Maximum frame size (type byte + body) the peer will accept.
pub const MAX_FRAME: usize = 1 << 20;

/// Protocol-level failure: transport error or a malformed frame.
#[derive(Debug)]
pub enum ProtoError {
    /// Underlying socket/stream error.
    Io(std::io::Error),
    /// Structurally invalid frame (bad length, unknown type or field).
    Malformed(String),
    /// The length prefix claims more than [`MAX_FRAME`] bytes. Typed so
    /// servers can reject the frame before allocating anything.
    FrameTooLarge {
        /// Claimed frame length (type byte + body).
        len: usize,
    },
    /// The stream ended mid-frame: the length prefix promised
    /// `expected` bytes but only `got` arrived before EOF.
    Truncated {
        /// Bytes the frame (or its length prefix) should have had.
        expected: usize,
        /// Bytes actually read before the stream ended.
        got: usize,
    },
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "i/o error: {e}"),
            ProtoError::Malformed(msg) => write!(f, "malformed frame: {msg}"),
            ProtoError::FrameTooLarge { len } => {
                write!(f, "frame of {len} bytes exceeds MAX_FRAME ({MAX_FRAME})")
            }
            ProtoError::Truncated { expected, got } => {
                write!(f, "truncated frame: expected {expected} bytes, got {got}")
            }
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<std::io::Error> for ProtoError {
    fn from(e: std::io::Error) -> Self {
        ProtoError::Io(e)
    }
}

fn malformed(msg: impl Into<String>) -> ProtoError {
    ProtoError::Malformed(msg.into())
}

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Stream one packet into the sharded pipeline.
    SubmitPacket(Packet),
    /// One-shot: classify the first `b` bytes of a byte buffer,
    /// bypassing flow state and the CDB.
    ClassifyBuffer(Vec<u8>),
    /// Ask for a metrics snapshot.
    Stats,
    /// Barrier: classify all in-flight flows and report.
    Drain,
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A flow completed and was classified.
    FlowVerdict(FlowVerdict),
    /// Admission control rejected a packet for this flow.
    Busy(FiveTuple),
    /// Answer to [`Request::ClassifyBuffer`].
    ClassifyResult(FileClass),
    /// Answer to [`Request::Stats`].
    ///
    /// Boxed: a snapshot carries four histograms and is far larger
    /// than every other variant.
    Stats(Box<StatsSnapshot>),
    /// Answer to [`Request::Drain`]: flows flushed for this connection.
    DrainComplete(u32),
    /// The request could not be honored.
    Error(String),
}

/// The final classification of one flow, as sent over the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowVerdict {
    /// The flow's 5-tuple.
    pub tuple: FiveTuple,
    /// Assigned nature.
    pub label: FileClass,
    /// Data packets that contributed to the classification buffer.
    pub packets: u32,
    /// Bytes in the buffer when classified.
    pub buffered_bytes: u32,
    /// Seconds from the flow's first data packet to classification.
    pub fill_time: f64,
}

// ------------------------------------------------------------ framing

/// Writes one frame (`type_byte` + `body`).
///
/// # Errors
///
/// Returns any transport error from the writer.
pub fn write_frame<W: Write>(w: &mut W, type_byte: u8, body: &[u8]) -> Result<(), ProtoError> {
    let frame_len = body.len().saturating_add(1);
    if frame_len > MAX_FRAME {
        return Err(ProtoError::FrameTooLarge { len: frame_len });
    }
    let len = u32::try_from(frame_len).map_err(|_| ProtoError::FrameTooLarge { len: frame_len })?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(&[type_byte])?;
    w.write_all(body)?;
    Ok(())
}

/// Reads one frame, returning `(type_byte, body)`; `None` on clean EOF
/// at a frame boundary.
///
/// The length prefix is validated *before* the body buffer is
/// allocated, so a hostile peer cannot make the reader reserve more
/// than [`MAX_FRAME`] bytes.
///
/// # Errors
///
/// Returns [`ProtoError::Io`] on transport errors,
/// [`ProtoError::FrameTooLarge`] on oversized length prefixes,
/// [`ProtoError::Truncated`] when the stream ends mid-frame, and
/// [`ProtoError::Malformed`] on zero-length frames.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<(u8, Vec<u8>)>, ProtoError> {
    let mut len_bytes = [0u8; 4];
    match fill(r, &mut len_bytes)? {
        0 => return Ok(None), // clean EOF at a frame boundary
        4 => {}
        got => return Err(ProtoError::Truncated { expected: 4, got }),
    }
    let len = u32::from_be_bytes(len_bytes) as usize;
    if len == 0 {
        return Err(malformed("zero-length frame"));
    }
    if len > MAX_FRAME {
        return Err(ProtoError::FrameTooLarge { len });
    }
    let mut frame = vec![0u8; len];
    let got = fill(r, &mut frame)?;
    if got < len {
        return Err(ProtoError::Truncated { expected: len, got });
    }
    let body = frame.split_off(1);
    Ok(Some((frame[0], body)))
}

/// Reads until `buf` is full or EOF; returns how many bytes landed.
fn fill<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<usize, ProtoError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled = filled.saturating_add(n),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(filled)
}

/// Whether more buffered input is immediately available (without
/// touching the socket). Lets readers batch frames that already
/// arrived.
pub fn has_buffered_input<R: Read>(r: &BufReader<R>) -> bool {
    !r.buffer().is_empty()
}

// ----------------------------------------------------- field encoding

fn put_tuple(out: &mut Vec<u8>, tuple: &FiveTuple) {
    out.extend_from_slice(&tuple.as_bytes());
}

fn put_bytes(out: &mut Vec<u8>, data: &[u8]) -> Result<(), ProtoError> {
    let len = u32::try_from(data.len())
        .map_err(|_| malformed(format!("byte field of {} exceeds u32 range", data.len())))?;
    out.extend_from_slice(&len.to_be_bytes());
    out.extend_from_slice(data);
    Ok(())
}

/// A [`FileClass`] index as its one-byte wire form.
fn class_byte(label: FileClass) -> Result<u8, ProtoError> {
    u8::try_from(label.index())
        .map_err(|_| malformed(format!("class index {} exceeds u8 range", label.index())))
}

/// Cursor-style reader over a frame body.
pub(crate) struct FieldReader<'a> {
    body: &'a [u8],
    pos: usize,
}

impl<'a> FieldReader<'a> {
    pub(crate) fn new(body: &'a [u8]) -> Self {
        FieldReader { body, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.body.len());
        let end = end.ok_or_else(|| malformed("truncated frame body"))?;
        let slice = &self.body[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// A fixed-size array; infallible once `take` has sized the slice.
    fn array<const N: usize>(&mut self) -> Result<[u8; N], ProtoError> {
        let mut out = [0u8; N];
        out.copy_from_slice(self.take(N)?);
        Ok(out)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_be_bytes(self.array()?))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_be_bytes(self.array()?))
    }

    pub(crate) fn f64(&mut self) -> Result<f64, ProtoError> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub(crate) fn bytes(&mut self) -> Result<&'a [u8], ProtoError> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    pub(crate) fn tuple(&mut self) -> Result<FiveTuple, ProtoError> {
        let b = self.take(13)?;
        let src_ip = Ipv4Addr::new(b[0], b[1], b[2], b[3]);
        let dst_ip = Ipv4Addr::new(b[4], b[5], b[6], b[7]);
        let src_port = u16::from_be_bytes([b[8], b[9]]);
        let dst_port = u16::from_be_bytes([b[10], b[11]]);
        match b[12] {
            6 => Ok(FiveTuple::tcp(src_ip, src_port, dst_ip, dst_port)),
            17 => Ok(FiveTuple::udp(src_ip, src_port, dst_ip, dst_port)),
            other => Err(malformed(format!("unknown protocol number {other}"))),
        }
    }

    pub(crate) fn label(&mut self) -> Result<FileClass, ProtoError> {
        let idx = self.u8()?;
        if idx as usize >= FileClass::ALL.len() {
            return Err(malformed(format!("unknown class index {idx}")));
        }
        Ok(FileClass::from_index(idx as usize))
    }

    pub(crate) fn finish(self) -> Result<(), ProtoError> {
        if self.pos == self.body.len() {
            Ok(())
        } else {
            Err(malformed(format!("{} trailing bytes in frame body", self.body.len() - self.pos)))
        }
    }
}

// --------------------------------------------------- request encoding

const REQ_SUBMIT_PACKET: u8 = 0x01;
const REQ_CLASSIFY_BUFFER: u8 = 0x02;
const REQ_STATS: u8 = 0x03;
const REQ_DRAIN: u8 = 0x04;

impl Request {
    /// Serializes into `(type_byte, body)`.
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError::Malformed`] if a field cannot be
    /// represented on the wire (e.g. a payload longer than `u32::MAX`).
    pub fn encode(&self) -> Result<(u8, Vec<u8>), ProtoError> {
        match self {
            Request::SubmitPacket(p) => {
                let mut body = Vec::with_capacity(30usize.saturating_add(p.payload.len()));
                body.extend_from_slice(&p.timestamp.to_bits().to_be_bytes());
                put_tuple(&mut body, &p.tuple);
                body.push(p.flags.bits());
                put_bytes(&mut body, &p.payload)?;
                Ok((REQ_SUBMIT_PACKET, body))
            }
            Request::ClassifyBuffer(payload) => {
                let mut body = Vec::with_capacity(4usize.saturating_add(payload.len()));
                put_bytes(&mut body, payload)?;
                Ok((REQ_CLASSIFY_BUFFER, body))
            }
            Request::Stats => Ok((REQ_STATS, Vec::new())),
            Request::Drain => Ok((REQ_DRAIN, Vec::new())),
        }
    }

    /// Parses a frame previously produced by [`Request::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError::Malformed`] on unknown types or bad bodies.
    pub fn decode(type_byte: u8, body: &[u8]) -> Result<Request, ProtoError> {
        let mut r = FieldReader::new(body);
        let req = match type_byte {
            REQ_SUBMIT_PACKET => {
                let timestamp = r.f64()?;
                let tuple = r.tuple()?;
                let flags = TcpFlags::from_bits_truncate(r.u8()?);
                let payload = r.bytes()?.to_vec();
                Request::SubmitPacket(Packet { timestamp, tuple, flags, payload })
            }
            REQ_CLASSIFY_BUFFER => Request::ClassifyBuffer(r.bytes()?.to_vec()),
            REQ_STATS => Request::Stats,
            REQ_DRAIN => Request::Drain,
            other => return Err(malformed(format!("unknown request type {other:#04x}"))),
        };
        r.finish()?;
        Ok(req)
    }
}

// -------------------------------------------------- response encoding

const RESP_FLOW_VERDICT: u8 = 0x81;
const RESP_BUSY: u8 = 0x82;
const RESP_CLASSIFY_RESULT: u8 = 0x83;
const RESP_STATS: u8 = 0x84;
const RESP_DRAIN_COMPLETE: u8 = 0x85;
const RESP_ERROR: u8 = 0x86;

impl Response {
    /// Serializes into `(type_byte, body)`.
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError::Malformed`] if a field cannot be
    /// represented on the wire.
    pub fn encode(&self) -> Result<(u8, Vec<u8>), ProtoError> {
        match self {
            Response::FlowVerdict(v) => {
                let mut body = Vec::with_capacity(30);
                put_tuple(&mut body, &v.tuple);
                body.push(class_byte(v.label)?);
                body.extend_from_slice(&v.packets.to_be_bytes());
                body.extend_from_slice(&v.buffered_bytes.to_be_bytes());
                body.extend_from_slice(&v.fill_time.to_bits().to_be_bytes());
                Ok((RESP_FLOW_VERDICT, body))
            }
            Response::Busy(tuple) => {
                let mut body = Vec::with_capacity(13);
                put_tuple(&mut body, tuple);
                Ok((RESP_BUSY, body))
            }
            Response::ClassifyResult(label) => {
                Ok((RESP_CLASSIFY_RESULT, vec![class_byte(*label)?]))
            }
            Response::Stats(snapshot) => {
                let mut body = Vec::new();
                snapshot.encode_into(&mut body);
                Ok((RESP_STATS, body))
            }
            Response::DrainComplete(flows) => {
                Ok((RESP_DRAIN_COMPLETE, flows.to_be_bytes().to_vec()))
            }
            Response::Error(msg) => {
                let mut body = Vec::with_capacity(4usize.saturating_add(msg.len()));
                put_bytes(&mut body, msg.as_bytes())?;
                Ok((RESP_ERROR, body))
            }
        }
    }

    /// Parses a frame previously produced by [`Response::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError::Malformed`] on unknown types or bad bodies.
    pub fn decode(type_byte: u8, body: &[u8]) -> Result<Response, ProtoError> {
        let mut r = FieldReader::new(body);
        let resp = match type_byte {
            RESP_FLOW_VERDICT => Response::FlowVerdict(FlowVerdict {
                tuple: r.tuple()?,
                label: r.label()?,
                packets: r.u32()?,
                buffered_bytes: r.u32()?,
                fill_time: r.f64()?,
            }),
            RESP_BUSY => Response::Busy(r.tuple()?),
            RESP_CLASSIFY_RESULT => Response::ClassifyResult(r.label()?),
            RESP_STATS => Response::Stats(Box::new(StatsSnapshot::decode(&mut r)?)),
            RESP_DRAIN_COMPLETE => Response::DrainComplete(r.u32()?),
            RESP_ERROR => {
                let msg = String::from_utf8(r.bytes()?.to_vec())
                    .map_err(|_| malformed("error message is not UTF-8"))?;
                Response::Error(msg)
            }
            other => return Err(malformed(format!("unknown response type {other:#04x}"))),
        };
        r.finish()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuple() -> FiveTuple {
        FiveTuple::tcp(Ipv4Addr::new(10, 1, 2, 3), 4321, Ipv4Addr::new(192, 168, 0, 9), 443)
    }

    fn round_trip_request(req: Request) {
        let (t, body) = req.encode().unwrap();
        assert_eq!(Request::decode(t, &body).unwrap(), req);
    }

    fn round_trip_response(resp: Response) {
        let (t, body) = resp.encode().unwrap();
        assert_eq!(Response::decode(t, &body).unwrap(), resp);
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(Request::SubmitPacket(Packet {
            timestamp: 1.25,
            tuple: tuple(),
            flags: TcpFlags::ACK | TcpFlags::FIN,
            payload: vec![1, 2, 3, 4, 5],
        }));
        round_trip_request(Request::ClassifyBuffer(vec![0; 64]));
        round_trip_request(Request::Stats);
        round_trip_request(Request::Drain);
    }

    #[test]
    fn responses_round_trip() {
        round_trip_response(Response::FlowVerdict(FlowVerdict {
            tuple: tuple(),
            label: FileClass::Encrypted,
            packets: 3,
            buffered_bytes: 32,
            fill_time: 0.125,
        }));
        round_trip_response(Response::Busy(tuple()));
        round_trip_response(Response::ClassifyResult(FileClass::Text));
        round_trip_response(Response::DrainComplete(17));
        round_trip_response(Response::Error("queue exploded".into()));
    }

    #[test]
    fn udp_tuple_round_trips() {
        let t = FiveTuple::udp(Ipv4Addr::new(1, 2, 3, 4), 53, Ipv4Addr::new(5, 6, 7, 8), 5060);
        round_trip_response(Response::Busy(t));
    }

    #[test]
    fn frames_round_trip_through_a_stream() {
        let mut buf = Vec::new();
        let (t1, b1) = Request::Stats.encode().unwrap();
        let (t2, b2) = Request::ClassifyBuffer(vec![9; 10]).encode().unwrap();
        write_frame(&mut buf, t1, &b1).unwrap();
        write_frame(&mut buf, t2, &b2).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        let (rt1, rb1) = read_frame(&mut cursor).unwrap().unwrap();
        let (rt2, rb2) = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(Request::decode(rt1, &rb1).unwrap(), Request::Stats);
        assert_eq!(Request::decode(rt2, &rb2).unwrap(), Request::ClassifyBuffer(vec![9; 10]));
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn truncated_frame_is_a_typed_error() {
        let mut buf = Vec::new();
        let (t, b) = Request::ClassifyBuffer(vec![1; 100]).encode().unwrap();
        write_frame(&mut buf, t, &b).unwrap();
        buf.truncate(buf.len() - 10);
        let mut cursor = std::io::Cursor::new(buf);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(ProtoError::Truncated { expected: 105, got: 95 })
        ));
    }

    #[test]
    fn partial_length_prefix_is_truncated_not_clean_eof() {
        let mut cursor = std::io::Cursor::new(vec![0u8, 0]);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(ProtoError::Truncated { expected: 4, got: 2 })
        ));
    }

    #[test]
    fn unknown_types_and_trailing_bytes_are_malformed() {
        assert!(matches!(Request::decode(0x7F, &[]), Err(ProtoError::Malformed(_))));
        assert!(matches!(Response::decode(0x10, &[]), Err(ProtoError::Malformed(_))));
        let (t, mut body) = Request::Stats.encode().unwrap();
        body.push(0);
        assert!(matches!(Request::decode(t, &body), Err(ProtoError::Malformed(_))));
    }

    #[test]
    fn oversized_frame_is_rejected_on_read() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&((MAX_FRAME as u32) + 1).to_be_bytes());
        buf.push(REQ_STATS);
        let mut cursor = std::io::Cursor::new(buf);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(ProtoError::FrameTooLarge { len }) if len == MAX_FRAME + 1
        ));
    }

    #[test]
    fn oversized_frame_is_rejected_on_write() {
        let mut buf = Vec::new();
        let body = vec![0u8; MAX_FRAME];
        assert!(matches!(
            write_frame(&mut buf, REQ_STATS, &body),
            Err(ProtoError::FrameTooLarge { .. })
        ));
        assert!(buf.is_empty(), "nothing written for a rejected frame");
    }
}
