//! Blocking client library for the serve wire protocol.
//!
//! A [`Client`] owns one TCP connection. A background reader thread
//! splits incoming frames into two streams:
//!
//! * **events** — server-initiated [`FlowVerdict`] and `Busy` frames,
//!   which arrive whenever a shard worker finishes (or refuses) a flow.
//!   Consume them with [`Client::poll_events`] or
//!   [`Client::recv_event_timeout`].
//! * **replies** — direct answers to `ClassifyBuffer`, `Stats`, and
//!   `Drain` requests, consumed by the blocking request methods.
//!
//! Packet submission is pipelined: [`Client::submit_packet`] only
//! appends to a write buffer; call [`Client::flush`] (or any blocking
//! request, which flushes first) to push frames onto the wire.

use std::io::{BufReader, BufWriter, Write};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::sync::mpsc;
use std::thread::JoinHandle;
use std::time::Duration;

use iustitia_corpus::FileClass;
use iustitia_netsim::{FiveTuple, Packet};

use crate::metrics::StatsSnapshot;
use crate::proto::{read_frame, write_frame, FlowVerdict, ProtoError, Request, Response};

/// Server-initiated notification.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientEvent {
    /// A flow this connection submitted packets for was classified.
    Verdict(FlowVerdict),
    /// A packet was refused admission (server overloaded).
    Busy(FiveTuple),
}

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The server sent something indecipherable or out of protocol.
    Proto(String),
    /// The server reported an error frame.
    Server(String),
    /// The connection closed before the expected reply arrived.
    Disconnected,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Proto(msg) => write!(f, "protocol error: {msg}"),
            ClientError::Server(msg) => write!(f, "server error: {msg}"),
            ClientError::Disconnected => write!(f, "connection closed"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        match e {
            ProtoError::Io(io) => ClientError::Io(io),
            ProtoError::Malformed(msg) => ClientError::Proto(msg),
            oversized @ ProtoError::FrameTooLarge { .. } => {
                ClientError::Proto(oversized.to_string())
            }
            truncated @ ProtoError::Truncated { .. } => ClientError::Proto(truncated.to_string()),
        }
    }
}

/// A blocking connection to an `iustitia-serve` server.
pub struct Client {
    writer: BufWriter<TcpStream>,
    events: mpsc::Receiver<ClientEvent>,
    replies: mpsc::Receiver<Response>,
    reader_handle: Option<JoinHandle<()>>,
}

impl Client {
    /// Connects and spawns the background reader thread.
    ///
    /// # Errors
    ///
    /// Returns any socket error from establishing the connection.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let read_half = stream.try_clone()?;
        let (event_tx, events) = mpsc::channel();
        let (reply_tx, replies) = mpsc::channel();
        let reader_handle = std::thread::Builder::new()
            .name("iustitia-client-reader".into())
            .spawn(move || reader_loop(read_half, &event_tx, &reply_tx))?;
        Ok(Client {
            writer: BufWriter::new(stream),
            events,
            replies,
            reader_handle: Some(reader_handle),
        })
    }

    /// Queues one packet for submission (buffered; see [`flush`](Self::flush)).
    ///
    /// # Errors
    ///
    /// Returns a socket error if the write buffer cannot be extended.
    pub fn submit_packet(&mut self, packet: &Packet) -> Result<(), ClientError> {
        let (t, body) = Request::SubmitPacket(packet.clone()).encode()?;
        write_frame(&mut self.writer, t, &body)?;
        Ok(())
    }

    /// Pushes all buffered frames onto the wire.
    ///
    /// # Errors
    ///
    /// Returns a socket error if the flush fails.
    pub fn flush(&mut self) -> Result<(), ClientError> {
        self.writer.flush()?;
        Ok(())
    }

    /// One-shot classification of a buffer's first `b` bytes (no flow
    /// state involved). Blocks for the reply.
    ///
    /// # Errors
    ///
    /// Fails on socket errors, a server-reported error, or disconnect.
    pub fn classify_buffer(&mut self, data: &[u8]) -> Result<FileClass, ClientError> {
        match self.request(Request::ClassifyBuffer(data.to_vec()))? {
            Response::ClassifyResult(label) => Ok(label),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches a live metrics snapshot. Blocks for the reply.
    ///
    /// # Errors
    ///
    /// Fails on socket errors, a server-reported error, or disconnect.
    pub fn stats(&mut self) -> Result<StatsSnapshot, ClientError> {
        match self.request(Request::Stats)? {
            Response::Stats(snapshot) => Ok(*snapshot),
            other => Err(unexpected(&other)),
        }
    }

    /// Runs a drain barrier: every packet submitted before this call is
    /// processed, all in-flight flows are classified from their
    /// buffered bytes, and their verdicts are en route before this
    /// returns. Returns how many of the flushed flows were this
    /// connection's.
    ///
    /// # Errors
    ///
    /// Fails on socket errors, a server-reported error, or disconnect.
    pub fn drain(&mut self) -> Result<u32, ClientError> {
        match self.request(Request::Drain)? {
            Response::DrainComplete(flushed) => Ok(flushed),
            other => Err(unexpected(&other)),
        }
    }

    /// Collects all events received so far without blocking.
    pub fn poll_events(&mut self) -> Vec<ClientEvent> {
        self.events.try_iter().collect()
    }

    /// Waits up to `timeout` for the next event.
    pub fn recv_event_timeout(&mut self, timeout: Duration) -> Option<ClientEvent> {
        self.events.recv_timeout(timeout).ok()
    }

    /// Flushes, closes the write half, and waits for the server to
    /// finish. Remaining events are returned.
    ///
    /// # Errors
    ///
    /// Returns a socket error if the final flush fails.
    pub fn close(mut self) -> Result<Vec<ClientEvent>, ClientError> {
        self.writer.flush()?;
        self.writer.get_ref().shutdown(Shutdown::Write)?;
        if let Some(handle) = self.reader_handle.take() {
            let _ = handle.join();
        }
        Ok(self.events.try_iter().collect())
    }

    fn request(&mut self, request: Request) -> Result<Response, ClientError> {
        let (t, body) = request.encode()?;
        write_frame(&mut self.writer, t, &body)?;
        self.writer.flush()?;
        match self.replies.recv() {
            Ok(Response::Error(msg)) => Err(ClientError::Server(msg)),
            Ok(response) => Ok(response),
            Err(_) => Err(ClientError::Disconnected),
        }
    }
}

impl Drop for Client {
    fn drop(&mut self) {
        let _ = self.writer.flush();
        let _ = self.writer.get_ref().shutdown(Shutdown::Both);
        if let Some(handle) = self.reader_handle.take() {
            let _ = handle.join();
        }
    }
}

fn unexpected(response: &Response) -> ClientError {
    ClientError::Proto(format!("unexpected reply frame: {response:?}"))
}

/// Routes incoming frames: verdict/busy notifications to the event
/// channel, everything else to the reply channel. Exits on EOF or
/// error.
fn reader_loop(
    stream: TcpStream,
    event_tx: &mpsc::Sender<ClientEvent>,
    reply_tx: &mpsc::Sender<Response>,
) {
    let mut reader = BufReader::new(stream);
    loop {
        let frame = match read_frame(&mut reader) {
            Ok(Some(frame)) => frame,
            Ok(None) | Err(_) => return,
        };
        let Ok(response) = Response::decode(frame.0, &frame.1) else {
            return;
        };
        let ok = match response {
            Response::FlowVerdict(v) => event_tx.send(ClientEvent::Verdict(v)).is_ok(),
            Response::Busy(tuple) => event_tx.send(ClientEvent::Busy(tuple)).is_ok(),
            other => reply_tx.send(other).is_ok(),
        };
        if !ok {
            return;
        }
    }
}
