//! `iustitia` — command-line interface to the flow-nature classifier.
//!
//! ```text
//! iustitia train        [--model cart|svm] [--buffer B] [--per-class N] [--seed S]
//!                       [--battery true|false] --out PATH
//! iustitia classify     --model PATH [--buffer B] FILE...
//! iustitia entropy      FILE...
//! iustitia simulate     --model PATH [--flows N] [--buffer B] [--seed S]
//! iustitia serve        --model PATH [--listen ADDR] [--shards N] [--queue N]
//!                       [--admission reject|drop-oldest] [--buffer B] [--seed S] [--stats-interval SECS]
//! iustitia bench-client --addr HOST:PORT [--flows N] [--seed S]
//! ```
//!
//! `train` synthesizes a labeled corpus and fits a model on `H_b`
//! prefix vectors; `classify` labels on-disk files from their first `B`
//! bytes; `entropy` prints the full `h1..h10` entropy vector of each
//! file; `simulate` drives a synthetic gateway trace through the online
//! pipeline and reports CDB/queue statistics; `serve` runs the
//! networked classification service; `bench-client` streams a synthetic
//! trace at a running server and reports throughput and latency.
//!
//! `train` fits on entropy vectors plus the randomness-test battery by
//! default (`--battery false` reverts to the paper's entropy-only
//! feature set); `classify`, `simulate`, and `serve` detect from the
//! loaded model's feature count whether battery features are required.

use std::process::ExitCode;
use std::time::{Duration, Instant};

use iustitia::features::{FeatureExtractor, FeatureMode, TrainingMethod};
use iustitia::model::{train_from_corpus, train_from_corpus_battery, ModelKind, NatureModel};
use iustitia::pipeline::{Iustitia, PipelineConfig, Verdict};
use iustitia_corpus::CorpusBuilder;
use iustitia_entropy::{entropy_vector, FeatureWidths, BATTERY_FEATURES};
use iustitia_netsim::{ContentMode, Packet, TraceConfig, TraceGenerator};
use iustitia_serve::{AdmissionPolicy, Client, ClientEvent, Server, ServerConfig, Stage};

const USAGE: &str = "\
usage:
  iustitia train        [--model cart|svm] [--buffer B] [--per-class N] [--seed S]
                        [--battery true|false] --out PATH
  iustitia classify     --model PATH [--buffer B] FILE...
  iustitia entropy      FILE...
  iustitia simulate     --model PATH [--flows N] [--buffer B] [--seed S]
  iustitia serve        --model PATH [--listen ADDR] [--shards N] [--queue N]
                        [--admission reject|drop-oldest] [--buffer B] [--seed S] [--stats-interval SECS]
  iustitia bench-client --addr HOST:PORT [--flows N] [--seed S]

  iustitia --help | -h  print this message
";

/// Per-command flag allowlists, so a typo is named instead of silently
/// swallowed.
fn allowed_flags(command: &str) -> Option<&'static [&'static str]> {
    Some(match command {
        "train" => &["model", "buffer", "per-class", "seed", "out", "battery"],
        "classify" => &["model", "buffer"],
        "entropy" => &[],
        "simulate" => &["model", "flows", "buffer", "seed"],
        "serve" => {
            &["model", "listen", "shards", "queue", "admission", "buffer", "seed", "stats-interval"]
        }
        "bench-client" => &["addr", "flows", "seed"],
        _ => return None,
    })
}

/// Tiny flag parser: collects `--key value` pairs and positionals,
/// rejecting flags not in the command's allowlist.
#[derive(Debug)]
struct Args {
    flags: Vec<(String, String)>,
    positional: Vec<String>,
}

impl Args {
    fn parse(command: &str, raw: &[String], allowed: &[&str]) -> Result<Args, String> {
        let mut flags = Vec::new();
        let mut positional = Vec::new();
        let mut it = raw.iter();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                if !allowed.contains(&key) {
                    let expected = if allowed.is_empty() {
                        "no flags".to_string()
                    } else {
                        allowed.iter().map(|f| format!("--{f}")).collect::<Vec<_>>().join(", ")
                    };
                    return Err(format!(
                        "unknown flag --{key} for '{command}' (expected: {expected})"
                    ));
                }
                let value = it.next().ok_or_else(|| format!("flag --{key} needs a value"))?.clone();
                flags.push((key.to_string(), value));
            } else if a.starts_with('-') && a.len() > 1 {
                return Err(format!("unknown flag {a} for '{command}' (see iustitia --help)"));
            } else {
                positional.push(a.clone());
            }
        }
        Ok(Args { flags, positional })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.flags.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    fn get_parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("invalid value for --{key}: {v}")),
        }
    }
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let wants_help = |a: &String| a == "--help" || a == "-h" || a == "help";
    if raw.is_empty() || raw.iter().any(wants_help) {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let (command, rest) = raw.split_first().expect("raw is non-empty");
    let Some(allowed) = allowed_flags(command) else {
        eprintln!("error: unknown command: {command}\n{USAGE}");
        return ExitCode::FAILURE;
    };
    let args = match Args::parse(command, rest, allowed) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match command.as_str() {
        "train" => cmd_train(&args),
        "classify" => cmd_classify(&args),
        "entropy" => cmd_entropy(&args),
        "simulate" => cmd_simulate(&args),
        "serve" => cmd_serve(&args),
        "bench-client" => cmd_bench_client(&args),
        _ => unreachable!("allowed_flags gated the command"),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Whether a loaded model was trained with the randomness battery,
/// judged by its feature count (entropy widths alone vs widths +
/// [`BATTERY_FEATURES`]); any other count is a mismatch error.
fn model_wants_battery(model: &NatureModel, widths: &FeatureWidths) -> Result<bool, String> {
    let n = model.n_features();
    if n == widths.len() {
        Ok(false)
    } else if n == widths.len() + BATTERY_FEATURES {
        Ok(true)
    } else {
        Err(format!(
            "model expects {n} features; this build extracts {} (entropy) or {} (entropy + battery)",
            widths.len(),
            widths.len() + BATTERY_FEATURES
        ))
    }
}

fn cmd_train(args: &Args) -> Result<(), String> {
    let out = args.get("out").ok_or("train requires --out PATH")?;
    let b: usize = args.get_parsed("buffer", 32)?;
    let per_class: usize = args.get_parsed("per-class", 150)?;
    let seed: u64 = args.get_parsed("seed", 42u64)?;
    let kind = match args.get("model").unwrap_or("svm") {
        "cart" => ModelKind::paper_cart(),
        "svm" => ModelKind::paper_svm(),
        other => return Err(format!("unknown model kind: {other} (use cart|svm)")),
    };

    let battery: bool = args.get_parsed("battery", true)?;
    let features = if battery { "entropy + randomness battery" } else { "entropy only" };
    eprintln!(
        "synthesizing corpus ({per_class} files/class) and training at b={b} ({features})..."
    );
    let corpus =
        CorpusBuilder::new(seed).files_per_class(per_class).size_range(1024, 16384).build();
    let widths = FeatureWidths::svm_selected();
    let train = if battery { train_from_corpus_battery } else { train_from_corpus };
    let model =
        train(&corpus, &widths, TrainingMethod::Prefix { b }, FeatureMode::Exact, &kind, seed)
            .map_err(|e| e.to_string())?;

    // Hold-out estimate so the user knows what they got.
    let test = CorpusBuilder::new(seed ^ 0xA5A5)
        .files_per_class(per_class / 3 + 1)
        .size_range(1024, 16384)
        .build();
    let test_ds = iustitia::features::dataset_from_corpus_battery(
        &test,
        &widths,
        TrainingMethod::Prefix { b },
        FeatureMode::Exact,
        seed ^ 1,
        battery,
    );
    eprintln!("hold-out accuracy: {:.1}%", 100.0 * model.accuracy_on(&test_ds));

    model.save(out).map_err(|e| e.to_string())?;
    eprintln!("model written to {out}");
    Ok(())
}

fn cmd_classify(args: &Args) -> Result<(), String> {
    let model_path = args.get("model").ok_or("classify requires --model PATH")?;
    let b: usize = args.get_parsed("buffer", 32)?;
    if args.positional.is_empty() {
        return Err("classify requires at least one FILE".into());
    }
    let model = NatureModel::load(model_path).map_err(|e| e.to_string())?;
    let widths = FeatureWidths::svm_selected();
    let battery = model_wants_battery(&model, &widths)?;
    let mut fx = FeatureExtractor::new(widths, FeatureMode::Exact, 0).with_battery(battery);
    for path in &args.positional {
        let data = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
        let prefix = &data[..b.min(data.len())];
        let label = model.predict(&fx.extract(prefix));
        println!("{label}\t{path}");
    }
    Ok(())
}

fn cmd_entropy(args: &Args) -> Result<(), String> {
    if args.positional.is_empty() {
        return Err("entropy requires at least one FILE".into());
    }
    println!("file\t{}", (1..=10).map(|k| format!("h{k}")).collect::<Vec<_>>().join("\t"));
    for path in &args.positional {
        let data = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
        let v = entropy_vector(&data, &iustitia_entropy::vector::FULL_WIDTHS);
        let cells: Vec<String> = v.iter().map(|h| format!("{h:.4}")).collect();
        println!("{path}\t{}", cells.join("\t"));
    }
    Ok(())
}

fn cmd_simulate(args: &Args) -> Result<(), String> {
    let model_path = args.get("model").ok_or("simulate requires --model PATH")?;
    let b: usize = args.get_parsed("buffer", 32)?;
    let flows: usize = args.get_parsed("flows", 500)?;
    let seed: u64 = args.get_parsed("seed", 7u64)?;
    let model = NatureModel::load(model_path).map_err(|e| e.to_string())?;
    let battery = model_wants_battery(&model, &FeatureWidths::svm_selected())?;

    let mut config = TraceConfig::small_test(seed);
    config.n_flows = flows;
    config.content = ContentMode::Realistic;
    let mut pipeline = Iustitia::new(
        model,
        PipelineConfig { buffer_size: b, battery, ..PipelineConfig::headline(seed) },
    );

    let mut hits = 0u64;
    let mut classified = 0u64;
    let mut packets = 0u64;
    for packet in TraceGenerator::new(config) {
        packets += 1;
        match pipeline.process_packet(&packet) {
            Verdict::Hit(_) => hits += 1,
            Verdict::Classified(_) => classified += 1,
            _ => {}
        }
    }
    println!("packets:            {packets}");
    println!("flows classified:   {classified}");
    println!("cdb hits:           {hits}");
    println!("live cdb records:   {}", pipeline.cdb().len());
    println!("queues (t/b/e/c):   {:?}", pipeline.queues().forwarded);
    let stats = pipeline.cdb().stats();
    println!(
        "cdb churn:          {} inserted, {} closed, {} timed out",
        stats.inserted, stats.removed_by_close, stats.removed_by_timeout
    );
    Ok(())
}

fn cmd_serve(args: &Args) -> Result<(), String> {
    let model_path = args.get("model").ok_or("serve requires --model PATH")?;
    let listen = args.get("listen").unwrap_or("127.0.0.1:7009");
    let shards: usize = args.get_parsed("shards", 4)?;
    let queue: usize = args.get_parsed("queue", 1024)?;
    let b: usize = args.get_parsed("buffer", 32)?;
    let seed: u64 = args.get_parsed("seed", 7u64)?;
    let interval: u64 = args.get_parsed("stats-interval", 10u64)?;
    let admission = match args.get("admission").unwrap_or("reject") {
        "reject" => AdmissionPolicy::RejectBusy,
        "drop-oldest" => AdmissionPolicy::DropOldest,
        other => return Err(format!("unknown admission policy: {other} (use reject|drop-oldest)")),
    };
    let model = NatureModel::load(model_path).map_err(|e| e.to_string())?;
    let battery = model_wants_battery(&model, &FeatureWidths::svm_selected())?;

    let mut config = ServerConfig::new(PipelineConfig {
        buffer_size: b,
        battery,
        ..PipelineConfig::headline(seed)
    });
    config.shards = shards;
    config.queue_capacity = queue;
    config.admission = admission;

    let server = Server::start(listen, model, config).map_err(|e| e.to_string())?;
    println!("iustitia-serve listening on {} ({shards} shards, b={b})", server.local_addr());
    if let Some(udp) = server.udp_addr() {
        println!("udp datagram ingest on {udp}");
    }

    // Periodic one-line stats until the process is killed.
    loop {
        std::thread::sleep(Duration::from_secs(interval.max(1)));
        let s = server.stats();
        let classify_p50 = s.stage(Stage::Classify).p50().unwrap_or(0);
        eprintln!(
            "packets={} hits={} flows={} busy={} dropped={} conns={} open={} udp={} \
             classify_p50={}ns accept_to_verdict_p50={}ns pending={} resident={}B \
             reassembly={}B pool_hits={} pool_size={} batch_p50={} queue_locks={} \
             early_exit={} verdict_bytes_p50={}B",
            s.packets,
            s.hits,
            s.flows_classified,
            s.busy_rejects,
            s.dropped_oldest,
            s.connections,
            s.open_connections,
            s.udp_datagrams,
            classify_p50,
            s.accept_to_verdict.p50().unwrap_or(0),
            s.pending_flows(),
            s.resident_feature_bytes(),
            s.reassembly_buffer_bytes,
            s.state_pool_hits(),
            s.state_pool_size(),
            s.batch_size.p50().unwrap_or(0),
            s.queue_lock_acquisitions,
            s.early_exit_verdicts(),
            s.bytes_at_verdict.p50().unwrap_or(0),
        );
    }
}

fn cmd_bench_client(args: &Args) -> Result<(), String> {
    let addr = args.get("addr").ok_or("bench-client requires --addr HOST:PORT")?;
    let flows: usize = args.get_parsed("flows", 500)?;
    let seed: u64 = args.get_parsed("seed", 7u64)?;

    let mut config = TraceConfig::small_test(seed);
    config.n_flows = flows;
    config.content = ContentMode::Realistic;
    eprintln!("generating {flows}-flow synthetic trace...");
    let packets: Vec<Packet> = TraceGenerator::new(config).collect();

    let mut client = Client::connect(addr).map_err(|e| e.to_string())?;
    let mut verdicts = 0u64;
    let mut busy = 0u64;
    let tally = |events: Vec<ClientEvent>, verdicts: &mut u64, busy: &mut u64| {
        for event in events {
            match event {
                ClientEvent::Verdict(_) => *verdicts += 1,
                ClientEvent::Busy(_) => *busy += 1,
            }
        }
    };

    let start = Instant::now();
    for packet in &packets {
        client.submit_packet(packet).map_err(|e| e.to_string())?;
        let events = client.poll_events();
        tally(events, &mut verdicts, &mut busy);
    }
    client.flush().map_err(|e| e.to_string())?;
    client.drain().map_err(|e| e.to_string())?;
    let events = client.poll_events();
    tally(events, &mut verdicts, &mut busy);
    let elapsed = start.elapsed().as_secs_f64();

    let stats = client.stats().map_err(|e| e.to_string())?;
    println!("packets sent:     {}", packets.len());
    println!("wall time:        {elapsed:.3} s");
    println!("throughput:       {:.0} packets/s", packets.len() as f64 / elapsed);
    println!("verdicts:         {verdicts}");
    println!("busy rejects:     {busy}");
    println!("server packets:   {} (hits {})", stats.packets, stats.hits);
    println!(
        "pending flows:    {} ({} B resident feature state across {} shards)",
        stats.pending_flows(),
        stats.resident_feature_bytes(),
        stats.shards.len(),
    );
    println!(
        "state pool:       {} recycled flow states ({} parked)",
        stats.state_pool_hits(),
        stats.state_pool_size(),
    );
    println!(
        "batch dispatch:   {} segments, p50 size {} ({} distinct-flow p50), {} queue locks",
        stats.batch_size.count(),
        stats.batch_size.p50().unwrap_or(0),
        stats.flows_per_batch.p50().unwrap_or(0),
        stats.queue_lock_acquisitions,
    );
    println!(
        "bytes at verdict: p50 {}B p99 {}B over {} verdicts ({} anytime early exits)",
        stats.bytes_at_verdict.p50().unwrap_or(0),
        stats.bytes_at_verdict.p99().unwrap_or(0),
        stats.bytes_at_verdict.count(),
        stats.early_exit_verdicts(),
    );
    println!("stage latency (server-side, approximate ns):");
    for stage in Stage::ALL {
        let h = stats.stage(stage);
        println!(
            "  {:<12} n={:<9} p50={:<8} p99={}",
            stage.name(),
            h.count(),
            h.p50().map_or_else(|| "-".into(), |v| v.to_string()),
            h.p99().map_or_else(|| "-".into(), |v| v.to_string()),
        );
    }
    client.close().map_err(|e| e.to_string())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::{allowed_flags, Args};

    fn args(raw: &[&str]) -> Result<Args, String> {
        Args::parse(
            "classify",
            &raw.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
            &["model", "buffer"],
        )
    }

    #[test]
    fn parses_flags_and_positionals() {
        let a = args(&["--model", "m.json", "file1", "--buffer", "64", "file2"]).unwrap();
        assert_eq!(a.get("model"), Some("m.json"));
        assert_eq!(a.get_parsed("buffer", 0usize).unwrap(), 64);
        assert_eq!(a.positional, vec!["file1", "file2"]);
    }

    #[test]
    fn later_flags_win() {
        let a = args(&["--buffer", "32", "--buffer", "128"]).unwrap();
        assert_eq!(a.get_parsed("buffer", 0usize).unwrap(), 128);
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(args(&["--model"]).is_err());
    }

    #[test]
    fn invalid_numeric_value_is_an_error() {
        let a = args(&["--buffer", "not-a-number"]).unwrap();
        assert!(a.get_parsed("buffer", 0usize).is_err());
    }

    #[test]
    fn defaults_apply_when_flag_absent() {
        let a = args(&[]).unwrap();
        assert_eq!(a.get_parsed("buffer", 32usize).unwrap(), 32);
        assert_eq!(a.get("model"), None);
    }

    #[test]
    fn unknown_flags_are_named() {
        let err = args(&["--bogus", "1"]).unwrap_err();
        assert!(err.contains("--bogus"), "error names the flag: {err}");
        assert!(err.contains("--model"), "error lists valid flags: {err}");
        let err = args(&["-x"]).unwrap_err();
        assert!(err.contains("-x"), "short junk is named too: {err}");
    }

    #[test]
    fn every_command_has_an_allowlist() {
        for command in ["train", "classify", "entropy", "simulate", "serve", "bench-client"] {
            assert!(allowed_flags(command).is_some(), "{command} missing");
        }
        assert!(allowed_flags("bogus").is_none());
    }
}
