//! Live service metrics: atomic counters and per-stage latency
//! histograms, snapshotted on demand by the `Stats` request.
//!
//! Latencies use power-of-two bucketed histograms (bucket `i` holds
//! samples in `[2^i, 2^(i+1))` nanoseconds), so recording is a single
//! relaxed atomic increment on the packet path and quantiles are
//! reconstructed from bucket counts with at most 2× resolution error —
//! the classic HdrHistogram-style tradeoff, reduced to its cheapest
//! form.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::proto::ProtoError;

/// Number of power-of-two buckets: covers 1 ns .. ~585 years.
pub const BUCKETS: usize = 64;

/// Pipeline stages with dedicated latency histograms.
///
/// The packet path attributes each packet's processing time to the
/// stage that *terminated* it: a CDB hit never reaches the buffer, a
/// buffered packet never reaches the classifier. `Hash` is measured
/// separately on the reader thread, where the flow ID is computed for
/// shard routing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// SHA-1 flow-ID computation (reader thread, every data packet).
    Hash = 0,
    /// CDB lookup resolving to a hit (worker thread).
    CdbLookup = 1,
    /// Payload appended to a partially filled buffer (worker thread).
    BufferFill = 2,
    /// Buffer completed: feature extraction + model inference + CDB
    /// insert (worker thread).
    Classify = 3,
}

impl Stage {
    /// All stages, index order.
    pub const ALL: [Stage; 4] = [Stage::Hash, Stage::CdbLookup, Stage::BufferFill, Stage::Classify];

    /// Stable snake_case name, used in CLI output.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Hash => "hash",
            Stage::CdbLookup => "cdb_lookup",
            Stage::BufferFill => "buffer_fill",
            Stage::Classify => "classify",
        }
    }
}

/// Lock-free latency histogram with power-of-two buckets.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram { buckets: std::array::from_fn(|_| AtomicU64::new(0)) }
    }
}

impl LatencyHistogram {
    /// Records one sample of `nanos` nanoseconds.
    pub fn record(&self, nanos: u64) {
        let idx = nanos.checked_ilog2().unwrap_or(0) as usize;
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Copies the current bucket counts.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
        }
    }
}

/// Immutable copy of a histogram's buckets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// `buckets[i]` counts samples in `[2^i, 2^(i+1))` ns.
    pub buckets: [u64; BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot { buckets: [0; BUCKETS] }
    }
}

impl HistogramSnapshot {
    /// Total number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Approximate `q`-quantile in nanoseconds (`q` in `[0, 1]`),
    /// using each bucket's geometric-ish midpoint (`1.5 × 2^i`).
    /// Returns `None` when the histogram is empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &count) in self.buckets.iter().enumerate() {
            seen += count;
            if seen >= rank {
                let low = 1u64 << i;
                return Some(low + low / 2);
            }
        }
        None
    }

    /// Approximate median latency in ns.
    #[must_use]
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.50)
    }

    /// Approximate 99th-percentile latency in ns.
    #[must_use]
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }
}

/// Per-shard gauges, refreshed by each shard worker after every batch
/// it drains.
///
/// Unlike the monotone counters these are *levels*: `pending_flows`
/// mirrors [`Iustitia::pending_flows`] and `resident_feature_bytes`
/// mirrors [`Iustitia::resident_feature_bytes`] for the shard's
/// pipeline, so an operator can watch the streaming pipeline's
/// per-flow memory instead of inferring it from `b × pending`.
///
/// [`Iustitia::pending_flows`]: iustitia::Iustitia::pending_flows
/// [`Iustitia::resident_feature_bytes`]: iustitia::Iustitia::resident_feature_bytes
#[derive(Debug, Default)]
pub struct ShardGauges {
    /// Flows currently buffered in this shard, awaiting a verdict.
    pub pending_flows: AtomicU64,
    /// Estimated heap bytes resident across this shard's pending
    /// flows (feature counters + header staging).
    pub resident_feature_bytes: AtomicU64,
    /// Flows whose feature state was recycled from the shard
    /// pipeline's free list instead of freshly allocated.
    pub state_pool_hits: AtomicU64,
    /// Feature states currently parked on the shard pipeline's free
    /// list.
    pub state_pool_size: AtomicU64,
    /// Verdicts this shard's pipeline emitted from an anytime probe
    /// before the fixed-`b` buffer filled (mirrors
    /// `Iustitia::early_exit_verdicts`; stays 0 with anytime off).
    pub early_exit_verdicts: AtomicU64,
}

impl ShardGauges {
    /// Stores all gauge levels (Relaxed; the values are advisory).
    pub fn set(&self, pending: u64, resident: u64, pool_hits: u64, pool_size: u64, early: u64) {
        self.pending_flows.store(pending, Ordering::Relaxed);
        self.resident_feature_bytes.store(resident, Ordering::Relaxed);
        self.state_pool_hits.store(pool_hits, Ordering::Relaxed);
        self.state_pool_size.store(pool_size, Ordering::Relaxed);
        self.early_exit_verdicts.store(early, Ordering::Relaxed);
    }
}

/// Live counters and histograms for a running server.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    /// Packets accepted into shard queues.
    pub packets: AtomicU64,
    /// CDB hits on the packet path.
    pub hits: AtomicU64,
    /// Flows classified (one verdict each).
    pub flows_classified: AtomicU64,
    /// Packets rejected with `Busy` (RejectBusy admission).
    pub busy_rejects: AtomicU64,
    /// Packets evicted from full queues (DropOldest admission).
    pub dropped_oldest: AtomicU64,
    /// One-shot `ClassifyBuffer` requests served.
    pub classify_requests: AtomicU64,
    /// `Drain` barriers completed.
    pub drains: AtomicU64,
    /// Connections accepted since start.
    pub connections: AtomicU64,
    /// UDP datagrams ingested by the reactor's datagram adapter.
    pub udp_datagrams: AtomicU64,
    /// Gauge: connections currently registered with the reactor
    /// (TCP sockets plus live UDP pseudo-peers).
    pub open_connections: AtomicU64,
    /// Gauge: bytes parked in per-connection reassembly buffers
    /// (partial frames awaiting more reads), summed over connections.
    pub reassembly_buffer_bytes: AtomicU64,
    /// Per-stage latency histograms, indexed by [`Stage`].
    pub stages: [LatencyHistogram; 4],
    /// Accept-to-verdict latency: time from a connection's accept (or
    /// a UDP peer's first datagram) to each flow verdict written back
    /// on it, in nanoseconds.
    pub accept_to_verdict: LatencyHistogram,
    /// Packets per batch dispatched into a shard pipeline (the
    /// power-of-two buckets hold batch sizes, not nanoseconds). A
    /// healthy batching path shows mass well above bucket 0.
    pub batch_size: LatencyHistogram,
    /// Distinct flows per dispatched batch. Together with
    /// [`batch_size`](Self::batch_size) this shows the amortization
    /// ratio: packets-per-flow-group per batch.
    pub flows_per_batch: LatencyHistogram,
    /// Buffered bytes at the moment each flow got its verdict (the
    /// power-of-two buckets hold byte counts, not nanoseconds). With
    /// anytime early exit enabled the mass sits below `b`; without it
    /// every full-buffer verdict lands at `b` and only idle/close
    /// leftovers fall short.
    pub bytes_at_verdict: LatencyHistogram,
    /// Per-shard gauges, indexed by shard id (empty until
    /// [`with_shards`](Self::with_shards)).
    pub shards: Vec<ShardGauges>,
}

impl ServeMetrics {
    /// Metrics block with one gauge set per shard.
    #[must_use]
    pub fn with_shards(n: usize) -> Self {
        ServeMetrics { shards: (0..n).map(|_| ShardGauges::default()).collect(), ..Self::default() }
    }

    /// Adds `n` to a counter.
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Records a stage latency sample.
    pub fn record(&self, stage: Stage, nanos: u64) {
        self.stages[stage as usize].record(nanos);
    }

    /// Copies every counter and histogram.
    ///
    /// `queue_lock_acquisitions` lives on the shard queues, not in this
    /// block; the server fills it in via
    /// [`StatsSnapshot::with_queue_locks`].
    #[must_use]
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            packets: self.packets.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            flows_classified: self.flows_classified.load(Ordering::Relaxed),
            busy_rejects: self.busy_rejects.load(Ordering::Relaxed),
            dropped_oldest: self.dropped_oldest.load(Ordering::Relaxed),
            classify_requests: self.classify_requests.load(Ordering::Relaxed),
            drains: self.drains.load(Ordering::Relaxed),
            connections: self.connections.load(Ordering::Relaxed),
            udp_datagrams: self.udp_datagrams.load(Ordering::Relaxed),
            open_connections: self.open_connections.load(Ordering::Relaxed),
            reassembly_buffer_bytes: self.reassembly_buffer_bytes.load(Ordering::Relaxed),
            queue_lock_acquisitions: 0,
            stages: std::array::from_fn(|i| self.stages[i].snapshot()),
            accept_to_verdict: self.accept_to_verdict.snapshot(),
            batch_size: self.batch_size.snapshot(),
            flows_per_batch: self.flows_per_batch.snapshot(),
            bytes_at_verdict: self.bytes_at_verdict.snapshot(),
            shards: self
                .shards
                .iter()
                .map(|g| ShardStats {
                    pending_flows: g.pending_flows.load(Ordering::Relaxed),
                    resident_feature_bytes: g.resident_feature_bytes.load(Ordering::Relaxed),
                    state_pool_hits: g.state_pool_hits.load(Ordering::Relaxed),
                    state_pool_size: g.state_pool_size.load(Ordering::Relaxed),
                    early_exit_verdicts: g.early_exit_verdicts.load(Ordering::Relaxed),
                })
                .collect(),
        }
    }
}

/// Point-in-time copy of one shard's gauges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardStats {
    /// Flows currently buffered in this shard, awaiting a verdict.
    pub pending_flows: u64,
    /// Estimated heap bytes resident across this shard's pending
    /// flows (feature counters + header staging).
    pub resident_feature_bytes: u64,
    /// Flows whose feature state was recycled from the shard
    /// pipeline's free list instead of freshly allocated.
    pub state_pool_hits: u64,
    /// Feature states currently parked on the shard pipeline's free
    /// list.
    pub state_pool_size: u64,
    /// Verdicts this shard emitted from an anytime probe before the
    /// fixed-`b` buffer filled.
    pub early_exit_verdicts: u64,
}

/// Point-in-time copy of all server metrics, as returned by the
/// `Stats` request.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Packets accepted into shard queues.
    pub packets: u64,
    /// CDB hits on the packet path.
    pub hits: u64,
    /// Flows classified (one verdict each).
    pub flows_classified: u64,
    /// Packets rejected with `Busy`.
    pub busy_rejects: u64,
    /// Packets evicted from full queues.
    pub dropped_oldest: u64,
    /// One-shot classification requests served.
    pub classify_requests: u64,
    /// Drain barriers completed.
    pub drains: u64,
    /// Connections accepted since start.
    pub connections: u64,
    /// UDP datagrams ingested by the reactor's datagram adapter.
    pub udp_datagrams: u64,
    /// Gauge: connections currently registered with the reactor.
    pub open_connections: u64,
    /// Gauge: bytes parked in per-connection reassembly buffers.
    pub reassembly_buffer_bytes: u64,
    /// Shard-queue mutex acquisitions, summed over all shard queues.
    /// Compare against `packets` to see the batch amortization: the
    /// ratio stays far below one acquisition per packet.
    pub queue_lock_acquisitions: u64,
    /// Per-stage histograms, indexed by [`Stage`].
    pub stages: [HistogramSnapshot; 4],
    /// Accept-to-verdict latency per flow verdict, in nanoseconds.
    pub accept_to_verdict: HistogramSnapshot,
    /// Packets per dispatched batch (bucket index is `log2(size)`).
    pub batch_size: HistogramSnapshot,
    /// Distinct flows per dispatched batch.
    pub flows_per_batch: HistogramSnapshot,
    /// Buffered bytes at the moment of each flow verdict (bucket index
    /// is `log2(bytes)`).
    pub bytes_at_verdict: HistogramSnapshot,
    /// Per-shard gauges, indexed by shard id.
    pub shards: Vec<ShardStats>,
}

/// Upper bound on the shard count accepted when decoding a snapshot
/// (guards allocation against a corrupt length word).
const MAX_WIRE_SHARDS: u64 = 65_536;

/// Version word leading the stats wire encoding. Bumped whenever
/// fields are added, removed, or reordered, so a client and server
/// from different sides of a format change fail the decode loudly
/// instead of silently misreading shifted words. Version 2 added the
/// `udp_datagrams`/`open_connections`/`reassembly_buffer_bytes`
/// gauges and the accept-to-verdict histogram. Version 3 added the
/// bytes-at-verdict histogram and the per-shard early-exit gauge.
const STATS_WIRE_VERSION: u64 = 3;

impl StatsSnapshot {
    /// Histogram for one stage.
    #[must_use]
    pub fn stage(&self, stage: Stage) -> &HistogramSnapshot {
        &self.stages[stage as usize]
    }

    /// Fills in the queue-lock counter (summed across shard queues by
    /// the server, which owns the queues).
    #[must_use]
    pub fn with_queue_locks(mut self, acquisitions: u64) -> Self {
        self.queue_lock_acquisitions = acquisitions;
        self
    }

    /// Total pending flows across all shards.
    #[must_use]
    pub fn pending_flows(&self) -> u64 {
        self.shards.iter().map(|s| s.pending_flows).sum()
    }

    /// Total resident feature-state bytes across all shards.
    #[must_use]
    pub fn resident_feature_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.resident_feature_bytes).sum()
    }

    /// Total pool-recycled flow states across all shards.
    #[must_use]
    pub fn state_pool_hits(&self) -> u64 {
        self.shards.iter().map(|s| s.state_pool_hits).sum()
    }

    /// Total parked feature states across all shards.
    #[must_use]
    pub fn state_pool_size(&self) -> u64 {
        self.shards.iter().map(|s| s.state_pool_size).sum()
    }

    /// Total anytime early-exit verdicts across all shards.
    #[must_use]
    pub fn early_exit_verdicts(&self) -> u64 {
        self.shards.iter().map(|s| s.early_exit_verdicts).sum()
    }

    /// Wire encoding: the [`STATS_WIRE_VERSION`] word, the twelve
    /// counters/gauges, the four stage histograms, the
    /// accept-to-verdict histogram, the two batch-shape histograms,
    /// the bytes-at-verdict histogram, then the shard-gauge section
    /// (shard count followed by five gauges per shard), all as
    /// big-endian `u64`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        for v in [
            STATS_WIRE_VERSION,
            self.packets,
            self.hits,
            self.flows_classified,
            self.busy_rejects,
            self.dropped_oldest,
            self.classify_requests,
            self.drains,
            self.connections,
            self.udp_datagrams,
            self.open_connections,
            self.reassembly_buffer_bytes,
            self.queue_lock_acquisitions,
        ] {
            out.extend_from_slice(&v.to_be_bytes());
        }
        for hist in self.stages.iter().chain([
            &self.accept_to_verdict,
            &self.batch_size,
            &self.flows_per_batch,
            &self.bytes_at_verdict,
        ]) {
            for &bucket in &hist.buckets {
                out.extend_from_slice(&bucket.to_be_bytes());
            }
        }
        out.extend_from_slice(&(self.shards.len() as u64).to_be_bytes());
        for shard in &self.shards {
            out.extend_from_slice(&shard.pending_flows.to_be_bytes());
            out.extend_from_slice(&shard.resident_feature_bytes.to_be_bytes());
            out.extend_from_slice(&shard.state_pool_hits.to_be_bytes());
            out.extend_from_slice(&shard.state_pool_size.to_be_bytes());
            out.extend_from_slice(&shard.early_exit_verdicts.to_be_bytes());
        }
    }

    /// Inverse of [`encode_into`](Self::encode_into).
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError::Malformed`] if the body is truncated,
    /// carries an unknown format version, or declares an implausible
    /// shard count.
    pub(crate) fn decode(r: &mut crate::proto::FieldReader<'_>) -> Result<Self, ProtoError> {
        let version = r.u64()?;
        if version != STATS_WIRE_VERSION {
            return Err(ProtoError::Malformed(format!(
                "stats snapshot version {version}, this build speaks {STATS_WIRE_VERSION}"
            )));
        }
        let mut snapshot = StatsSnapshot {
            packets: r.u64()?,
            hits: r.u64()?,
            flows_classified: r.u64()?,
            busy_rejects: r.u64()?,
            dropped_oldest: r.u64()?,
            classify_requests: r.u64()?,
            drains: r.u64()?,
            connections: r.u64()?,
            udp_datagrams: r.u64()?,
            open_connections: r.u64()?,
            reassembly_buffer_bytes: r.u64()?,
            queue_lock_acquisitions: r.u64()?,
            stages: Default::default(),
            accept_to_verdict: HistogramSnapshot::default(),
            batch_size: HistogramSnapshot::default(),
            flows_per_batch: HistogramSnapshot::default(),
            bytes_at_verdict: HistogramSnapshot::default(),
            shards: Vec::new(),
        };
        for hist in snapshot.stages.iter_mut().chain([
            &mut snapshot.accept_to_verdict,
            &mut snapshot.batch_size,
            &mut snapshot.flows_per_batch,
            &mut snapshot.bytes_at_verdict,
        ]) {
            for bucket in &mut hist.buckets {
                *bucket = r.u64()?;
            }
        }
        let shard_count = r.u64()?;
        if shard_count > MAX_WIRE_SHARDS {
            return Err(ProtoError::Malformed("implausible shard count".into()));
        }
        snapshot.shards.reserve(shard_count as usize);
        for _ in 0..shard_count {
            snapshot.shards.push(ShardStats {
                pending_flows: r.u64()?,
                resident_feature_bytes: r.u64()?,
                state_pool_hits: r.u64()?,
                state_pool_size: r.u64()?,
                early_exit_verdicts: r.u64()?,
            });
        }
        Ok(snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_power_of_two() {
        let h = LatencyHistogram::default();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1024);
        let s = h.snapshot();
        assert_eq!(s.buckets[0], 2, "0 and 1 land in bucket 0");
        assert_eq!(s.buckets[1], 2, "2 and 3 land in bucket 1");
        assert_eq!(s.buckets[10], 1);
        assert_eq!(s.count(), 5);
    }

    #[test]
    fn quantiles_from_known_distribution() {
        let h = LatencyHistogram::default();
        for _ in 0..99 {
            h.record(100); // bucket 6: [64, 128)
        }
        h.record(1 << 20); // one outlier
        let s = h.snapshot();
        assert_eq!(s.p50(), Some(96), "1.5 * 64");
        assert_eq!(s.p99(), Some(96));
        assert_eq!(s.quantile(1.0), Some((1 << 20) + (1 << 19)));
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        assert_eq!(HistogramSnapshot::default().p50(), None);
        assert_eq!(HistogramSnapshot::default().count(), 0);
    }

    #[test]
    fn metrics_snapshot_reflects_counters() {
        let m = ServeMetrics::default();
        ServeMetrics::add(&m.packets, 10);
        ServeMetrics::add(&m.hits, 3);
        m.record(Stage::Classify, 5000);
        let s = m.snapshot();
        assert_eq!(s.packets, 10);
        assert_eq!(s.hits, 3);
        assert_eq!(s.stage(Stage::Classify).count(), 1);
        assert_eq!(s.stage(Stage::Hash).count(), 0);
    }

    #[test]
    fn snapshot_wire_round_trip() {
        let m = ServeMetrics::with_shards(3);
        ServeMetrics::add(&m.packets, 12345);
        ServeMetrics::add(&m.dropped_oldest, 7);
        ServeMetrics::add(&m.udp_datagrams, 31);
        m.open_connections.store(1000, Ordering::Relaxed);
        m.reassembly_buffer_bytes.store(4096, Ordering::Relaxed);
        m.record(Stage::Hash, 250);
        m.record(Stage::BufferFill, 999);
        m.accept_to_verdict.record(1_500_000);
        m.batch_size.record(64);
        m.batch_size.record(3);
        m.flows_per_batch.record(5);
        m.bytes_at_verdict.record(512);
        m.bytes_at_verdict.record(32);
        m.shards[0].set(4, 4 * 2240, 120, 9, 17);
        m.shards[2].set(1, 96, 41, 2, 5);
        let snapshot = m.snapshot().with_queue_locks(77);
        let mut body = Vec::new();
        snapshot.encode_into(&mut body);
        let mut reader = crate::proto::FieldReader::new(&body);
        let back = StatsSnapshot::decode(&mut reader).unwrap();
        reader.finish().unwrap();
        assert_eq!(back, snapshot);
        assert_eq!(back.queue_lock_acquisitions, 77);
        assert_eq!(back.udp_datagrams, 31);
        assert_eq!(back.open_connections, 1000);
        assert_eq!(back.reassembly_buffer_bytes, 4096);
        assert_eq!(back.accept_to_verdict.count(), 1);
        assert_eq!(back.batch_size.count(), 2);
        assert_eq!(back.flows_per_batch.count(), 1);
        assert_eq!(back.pending_flows(), 5);
        assert_eq!(back.resident_feature_bytes(), 4 * 2240 + 96);
        assert_eq!(back.state_pool_hits(), 161);
        assert_eq!(back.state_pool_size(), 11);
        assert_eq!(back.bytes_at_verdict.count(), 2);
        assert_eq!(back.early_exit_verdicts(), 22);
    }

    #[test]
    fn shardless_snapshot_round_trips_empty_gauge_section() {
        let snapshot = ServeMetrics::default().snapshot();
        assert!(snapshot.shards.is_empty());
        let mut body = Vec::new();
        snapshot.encode_into(&mut body);
        let mut reader = crate::proto::FieldReader::new(&body);
        let back = StatsSnapshot::decode(&mut reader).unwrap();
        reader.finish().unwrap();
        assert_eq!(back, snapshot);
    }

    #[test]
    fn decode_rejects_mismatched_version() {
        let mut body = Vec::new();
        StatsSnapshot::default().encode_into(&mut body);
        // A peer from the other side of a format change: same payload,
        // different leading version word.
        body[..8].copy_from_slice(&(STATS_WIRE_VERSION + 1).to_be_bytes());
        let mut reader = crate::proto::FieldReader::new(&body);
        let err = StatsSnapshot::decode(&mut reader).unwrap_err();
        assert!(err.to_string().contains("version"), "got: {err}");
    }

    #[test]
    fn decode_rejects_implausible_shard_count() {
        let mut body = Vec::new();
        StatsSnapshot::default().encode_into(&mut body);
        // Overwrite the shard-count word (last 8 bytes of an empty
        // gauge section) with an absurd value.
        let n = body.len();
        body[n - 8..].copy_from_slice(&u64::MAX.to_be_bytes());
        let mut reader = crate::proto::FieldReader::new(&body);
        assert!(StatsSnapshot::decode(&mut reader).is_err());
    }
}
