//! Per-connection byte-level state machines for the event-driven
//! frontend: incremental frame reassembly and buffered non-blocking
//! writes.
//!
//! A blocking reader can simply call [`read_frame`](crate::proto::read_frame)
//! and let the socket park the thread mid-frame. A readiness-based
//! reactor cannot: a connection's bytes arrive in arbitrary slices —
//! possibly one byte at a time, possibly splitting the 4-byte length
//! prefix — and the reactor must bank whatever arrived and move on to
//! the next ready socket. [`FrameAssembler`] is that bank: it holds the
//! undecoded tail of the stream and yields complete `(type, body)`
//! frames as they materialize, applying *exactly* the validation rules
//! of `read_frame` (zero-length frames are malformed, length prefixes
//! above [`MAX_FRAME`](crate::proto::MAX_FRAME) are rejected as soon as
//! the prefix itself is readable — before any payload is buffered — and
//! EOF mid-frame is a typed [`ProtoError::Truncated`]). The equivalence
//! is pinned by the vendored-proptest suite in
//! `crates/serve/tests/reassembly_properties.rs`.
//!
//! [`WriteBuffer`] is the mirror image for the write half: responses
//! are framed into a connection-local buffer and drained opportunistically;
//! when the socket signals `EWOULDBLOCK` the leftover stays put and the
//! reactor re-arms write interest for that connection only.

use std::io::{Read, Write};

use crate::proto::{write_frame, ProtoError, MAX_FRAME};

/// Compact the reassembly buffer once this many consumed bytes
/// accumulate at its front (keeps the buffer from creeping while
/// avoiding a memmove per frame).
const COMPACT_AT: usize = 16 * 1024;

/// Incremental reassembly of length-prefixed frames from a
/// non-blocking byte stream.
///
/// Feed arbitrary slices with [`extend`](Self::extend) (or straight
/// from a socket with [`fill_from`](Self::fill_from)) and pull complete
/// frames with [`next_frame`](Self::next_frame).
#[derive(Debug, Default)]
pub struct FrameAssembler {
    buf: Vec<u8>,
    start: usize,
}

impl FrameAssembler {
    /// An empty assembler.
    #[must_use]
    pub fn new() -> FrameAssembler {
        FrameAssembler::default()
    }

    /// Banks `bytes` at the end of the unprocessed tail.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.compact();
        self.buf.extend_from_slice(bytes);
    }

    /// Reads once from `r` (expected non-blocking) into the bank.
    /// Returns the byte count (`Ok(0)` is EOF); `WouldBlock` and
    /// `Interrupted` surface as ordinary errors for the caller to
    /// classify.
    ///
    /// # Errors
    ///
    /// Any transport error from `r`, including `WouldBlock`.
    pub fn fill_from<R: Read>(&mut self, r: &mut R, scratch: &mut [u8]) -> std::io::Result<usize> {
        let n = r.read(scratch)?;
        self.extend(scratch.get(..n).unwrap_or(&[]));
        Ok(n)
    }

    /// Bytes currently banked and not yet consumed by a decoded frame.
    #[must_use]
    pub fn buffered_bytes(&self) -> usize {
        self.buf.len().saturating_sub(self.start)
    }

    /// Whether the stream sits at a clean frame boundary (an EOF here
    /// is a graceful close, anywhere else it is truncation).
    #[must_use]
    pub fn at_frame_boundary(&self) -> bool {
        self.buffered_bytes() == 0
    }

    /// The typed error an EOF at the current position implies, mirroring
    /// [`read_frame`](crate::proto::read_frame): `None` at a frame
    /// boundary, [`ProtoError::Truncated`] mid-prefix or mid-frame.
    #[must_use]
    pub fn eof_error(&self) -> Option<ProtoError> {
        let avail = self.buffered_bytes();
        if avail == 0 {
            return None;
        }
        if avail < 4 {
            return Some(ProtoError::Truncated { expected: 4, got: avail });
        }
        let len = self.peek_len().unwrap_or(0);
        Some(ProtoError::Truncated { expected: len, got: avail.saturating_sub(4) })
    }

    /// The frame length the banked prefix claims, if 4 bytes are in.
    fn peek_len(&self) -> Option<usize> {
        let rest = self.buf.get(self.start..).unwrap_or(&[]);
        match *rest {
            [a, b, c, d, ..] => Some(u32::from_be_bytes([a, b, c, d]) as usize),
            _ => None,
        }
    }

    /// Yields the next complete frame as `(type_byte, body)`, or
    /// `Ok(None)` when more bytes are needed.
    ///
    /// Validation order matches `read_frame`: the length prefix is
    /// checked the moment its 4 bytes are available — a hostile
    /// `len > MAX_FRAME` is rejected *before* any payload byte is
    /// banked for it, and a zero-length frame is malformed.
    ///
    /// # Errors
    ///
    /// [`ProtoError::FrameTooLarge`] and [`ProtoError::Malformed`] as
    /// described; the assembler should be discarded after an error.
    pub fn next_frame(&mut self) -> Result<Option<(u8, Vec<u8>)>, ProtoError> {
        let Some(len) = self.peek_len() else { return Ok(None) };
        if len == 0 {
            return Err(ProtoError::Malformed("zero-length frame".into()));
        }
        if len > MAX_FRAME {
            return Err(ProtoError::FrameTooLarge { len });
        }
        let total = len.saturating_add(4);
        let rest = self.buf.get(self.start..).unwrap_or(&[]);
        let Some(frame) = rest.get(4..total) else { return Ok(None) };
        let Some((&type_byte, body)) = frame.split_first() else {
            return Err(ProtoError::Malformed("zero-length frame".into()));
        };
        let body = body.to_vec();
        self.start = self.start.saturating_add(total);
        self.compact();
        Ok(Some((type_byte, body)))
    }

    /// Drops consumed front bytes once they pass the compaction
    /// threshold (or the buffer emptied, which is free).
    fn compact(&mut self) {
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        } else if self.start >= COMPACT_AT {
            let len = self.buf.len();
            // start <= len is a struct invariant (start only advances
            // past banked bytes), so the copy range is always valid.
            // lint: allow(L008) — start <= len invariant, range valid
            self.buf.copy_within(self.start.., 0);
            self.buf.truncate(len - self.start);
            self.start = 0;
        }
    }
}

/// Buffered frames awaiting a writable socket.
///
/// Frames are encoded straight into one flat buffer; `flush_to` drains
/// as much as the peer will take and leaves the rest for the next
/// writability event.
#[derive(Debug, Default)]
pub struct WriteBuffer {
    buf: Vec<u8>,
    start: usize,
}

impl WriteBuffer {
    /// An empty write buffer.
    #[must_use]
    pub fn new() -> WriteBuffer {
        WriteBuffer::default()
    }

    /// Appends one frame (`type_byte` + `body`) to the pending bytes.
    ///
    /// # Errors
    ///
    /// [`ProtoError::FrameTooLarge`] if the frame exceeds the protocol
    /// cap (nothing is appended in that case).
    pub fn push_frame(&mut self, type_byte: u8, body: &[u8]) -> Result<(), ProtoError> {
        write_frame(&mut self.buf, type_byte, body)
    }

    /// Bytes still awaiting the wire.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.buf.len().saturating_sub(self.start)
    }

    /// Whether everything has been flushed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pending() == 0
    }

    /// Writes as much pending data as `w` accepts right now. Returns
    /// `Ok(true)` when the buffer fully drained, `Ok(false)` when the
    /// peer would block (write interest should be re-armed).
    ///
    /// # Errors
    ///
    /// Transport errors other than `WouldBlock`/`Interrupted`; a
    /// zero-byte write is reported as `WriteZero`.
    pub fn flush_to<W: Write>(&mut self, w: &mut W) -> std::io::Result<bool> {
        while self.start < self.buf.len() {
            let pending = self.buf.get(self.start..).unwrap_or(&[]);
            match w.write(pending) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::WriteZero,
                        "peer accepted zero bytes",
                    ))
                }
                Ok(n) => self.start = self.start.saturating_add(n),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) => return Err(e),
            }
        }
        self.buf.clear();
        self.start = 0;
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{read_frame, Request};

    fn frame_bytes(frames: &[(u8, Vec<u8>)]) -> Vec<u8> {
        let mut out = Vec::new();
        for (t, body) in frames {
            write_frame(&mut out, *t, body).unwrap();
        }
        out
    }

    #[test]
    fn whole_frames_come_back_out() {
        let frames = vec![(0x03, vec![]), (0x02, vec![1, 2, 3])];
        let mut asm = FrameAssembler::new();
        asm.extend(&frame_bytes(&frames));
        assert_eq!(asm.next_frame().unwrap(), Some((0x03, vec![])));
        assert_eq!(asm.next_frame().unwrap(), Some((0x02, vec![1, 2, 3])));
        assert_eq!(asm.next_frame().unwrap(), None);
        assert!(asm.at_frame_boundary());
        assert!(asm.eof_error().is_none());
    }

    #[test]
    fn one_byte_feeds_split_the_length_prefix() {
        let (t, body) = Request::ClassifyBuffer(vec![7; 9]).encode().unwrap();
        let bytes = frame_bytes(&[(t, body.clone())]);
        let mut asm = FrameAssembler::new();
        for (i, b) in bytes.iter().enumerate() {
            assert!(!asm.at_frame_boundary() || i == 0 || i == bytes.len());
            asm.extend(std::slice::from_ref(b));
            if i + 1 < bytes.len() {
                assert_eq!(asm.next_frame().unwrap(), None, "frame complete early at byte {i}");
            }
        }
        assert_eq!(asm.next_frame().unwrap(), Some((t, body)));
    }

    #[test]
    fn oversized_length_rejected_before_payload_arrives() {
        let mut asm = FrameAssembler::new();
        // Only the hostile prefix, not a single payload byte.
        asm.extend(&((MAX_FRAME as u32) + 1).to_be_bytes());
        assert!(matches!(
            asm.next_frame(),
            Err(ProtoError::FrameTooLarge { len }) if len == MAX_FRAME + 1
        ));
        assert_eq!(asm.buffered_bytes(), 4, "nothing was banked for the bogus frame");
    }

    #[test]
    fn zero_length_frame_is_malformed() {
        let mut asm = FrameAssembler::new();
        asm.extend(&0u32.to_be_bytes());
        assert!(matches!(asm.next_frame(), Err(ProtoError::Malformed(_))));
    }

    #[test]
    fn eof_error_mirrors_read_frame() {
        // Mid-prefix.
        let mut asm = FrameAssembler::new();
        asm.extend(&[0, 0]);
        assert!(matches!(asm.eof_error(), Some(ProtoError::Truncated { expected: 4, got: 2 })));

        // Mid-frame: same expectation read_frame reports for the
        // identical byte stream.
        let (t, body) = Request::ClassifyBuffer(vec![1; 100]).encode().unwrap();
        let mut bytes = frame_bytes(&[(t, body)]);
        bytes.truncate(bytes.len() - 10);
        let mut asm = FrameAssembler::new();
        asm.extend(&bytes);
        assert_eq!(asm.next_frame().unwrap(), None);
        let Some(ProtoError::Truncated { expected, got }) = asm.eof_error() else {
            panic!("expected truncation");
        };
        let mut cursor = std::io::Cursor::new(bytes);
        let Err(ProtoError::Truncated { expected: re, got: rg }) = read_frame(&mut cursor) else {
            panic!("read_frame should report truncation");
        };
        assert_eq!((expected, got), (re, rg));
    }

    #[test]
    fn compaction_preserves_the_stream() {
        let mut asm = FrameAssembler::new();
        let frames: Vec<(u8, Vec<u8>)> = (0..200).map(|i| (0x02, vec![i as u8; 200])).collect();
        let bytes = frame_bytes(&frames);
        let mut decoded = Vec::new();
        for chunk in bytes.chunks(333) {
            asm.extend(chunk);
            while let Some(frame) = asm.next_frame().unwrap() {
                decoded.push(frame);
            }
        }
        assert_eq!(decoded, frames);
    }

    #[test]
    fn write_buffer_drains_across_partial_writes() {
        /// Accepts at most `cap` bytes per write, then blocks once.
        struct Dribble {
            out: Vec<u8>,
            cap: usize,
            block_next: bool,
        }
        impl Write for Dribble {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                if self.block_next {
                    self.block_next = false;
                    return Err(std::io::ErrorKind::WouldBlock.into());
                }
                let n = buf.len().min(self.cap);
                self.out.extend_from_slice(&buf[..n]);
                self.block_next = true;
                Ok(n)
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let mut wb = WriteBuffer::new();
        wb.push_frame(0x85, &7u32.to_be_bytes()).unwrap();
        wb.push_frame(0x83, &[2]).unwrap();
        let expect = {
            let mut v = Vec::new();
            write_frame(&mut v, 0x85, &7u32.to_be_bytes()).unwrap();
            write_frame(&mut v, 0x83, &[2]).unwrap();
            v
        };
        let mut sink = Dribble { out: Vec::new(), cap: 3, block_next: false };
        let mut rounds = 0;
        loop {
            rounds += 1;
            if wb.flush_to(&mut sink).unwrap() {
                break;
            }
        }
        assert!(rounds > 1, "the dribbling sink must force re-arms");
        assert_eq!(sink.out, expect);
        assert!(wb.is_empty());
    }

    #[test]
    fn write_buffer_rejects_oversized_frames_without_buffering() {
        let mut wb = WriteBuffer::new();
        let body = vec![0u8; MAX_FRAME];
        assert!(wb.push_frame(0x81, &body).is_err());
        assert!(wb.is_empty(), "rejected frame left no partial bytes behind");
    }
}
