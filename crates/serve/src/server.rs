//! The multi-threaded classification server.
//!
//! # Architecture
//!
//! ```text
//!  clients ── TCP ──┐   ┌───────────┐   per-shard bounded queues
//!  clients ── TCP ──┼─► │  reactor  │ ──┬──► [queue 0] ─► worker 0 (Iustitia + CDB)
//!      ...          │   │  (epoll,  │   ├──► [queue 1] ─► worker 1 (Iustitia + CDB)
//!  peers ─── UDP ───┘   │ 1 thread) │   ├──► [queue 2] ─► worker 2 (Iustitia + CDB)
//!  clients ◄────────────│  outbox   │   └──► [queue 3] ─► worker 3 (Iustitia + CDB)
//!                       └───────────┘          (verdicts fan back via the outbox)
//! ```
//!
//! A single [`Reactor`] thread owns every socket: it accepts
//! connections, reassembles frames from nonblocking reads, computes
//! flow IDs, and batches packets per shard. Flow-affine work is routed
//! by [`shard_index`](iustitia::concurrent::shard_index) — the same
//! partitioning as the offline
//! [`ShardedIustitia`](iustitia::concurrent::ShardedIustitia) fleet —
//! to one of `N` *shard workers*, each owning an independent
//! [`Iustitia`] pipeline and CDB, so no classification state is ever
//! shared and the packet path takes no locks beyond its own shard
//! queue. Workers push responses into the reactor's outbox and wake
//! its eventfd; the reactor serializes them onto the owning socket.
//!
//! Backpressure is per shard: bounded ingress queues with a
//! configurable [`AdmissionPolicy`]. The reactor batches every frame
//! already buffered on a socket (up to [`ServerConfig::batch_limit`])
//! and pushes each shard's share under a single lock acquisition —
//! exactly the dispatch the old per-connection reader threads
//! performed, minus the threads.
//!
//! Shutdown is graceful and has two phases: *stop* closes the listener
//! and the queues, letting every worker drain its backlog, classify
//! all in-flight flows from the bytes they have buffered, and emit
//! final verdicts; *finish* then flushes those verdicts to
//! still-connected clients before the reactor exits. The `Drain`
//! request offers the same barrier per connection at runtime.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use iustitia::cdb::FlowId;
use iustitia::model::AnytimeModel;
use iustitia::model::NatureModel;
use iustitia::pipeline::{BatchPacket, ClassifiedFlow, Iustitia, PipelineConfig, Verdict};
use iustitia_netsim::{FiveTuple, Packet};

use crate::metrics::{ServeMetrics, Stage};
use crate::proto::{FlowVerdict, Response};
use crate::queue::{AdmissionPolicy, BoundedQueue};
use crate::reactor::{FanInGate, Outbox, Reactor, ReplySink};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Number of shard workers (each with its own pipeline + CDB).
    pub shards: usize,
    /// Per-shard ingress queue capacity, in packets.
    pub queue_capacity: usize,
    /// What to do when a shard queue is full.
    pub admission: AdmissionPolicy,
    /// Maximum frames the reactor decodes per connection batch before
    /// dispatching to the shards.
    pub batch_limit: usize,
    /// Also bind a UDP socket on the same port and serve one-frame
    /// datagrams through the reactor.
    pub udp: bool,
    /// Cap on distinct UDP peers holding verdict routes at once. Under
    /// cap pressure the reactor evicts idle peers (least-recently-seen
    /// first) rather than rejecting new ones, so a burst of spoofed
    /// source addresses cannot permanently wedge the datagram adapter.
    pub max_udp_peers: usize,
    /// Pipeline configuration replicated into every shard (each shard
    /// gets a decorrelated RNG seed).
    pub pipeline: PipelineConfig,
    /// Calibrated anytime model (confidence scorer plus per-stage
    /// classifiers), attached to every shard pipeline. Early-exit
    /// probes only run when [`PipelineConfig::anytime`] is also set on
    /// `pipeline`.
    pub anytime: Option<AnytimeModel>,
}

impl ServerConfig {
    /// Defaults: 4 shards, 1024-packet queues, `RejectBusy`, 64-frame
    /// batches, UDP enabled with a 65 536-peer table.
    #[must_use]
    pub fn new(pipeline: PipelineConfig) -> Self {
        ServerConfig {
            shards: 4,
            queue_capacity: 1024,
            admission: AdmissionPolicy::default(),
            batch_limit: 64,
            udp: true,
            max_udp_peers: 65_536,
            pipeline,
            anytime: None,
        }
    }
}

/// Work item on a shard queue.
pub(crate) enum Job {
    /// One packet to classify, with the reply sink of the connection
    /// that submitted it.
    Packet {
        /// The packet itself.
        packet: Packet,
        /// Its flow id (computed on the reactor thread).
        flow: FlowId,
        /// The submitting connection.
        conn_id: u64,
        /// Where its flow's verdict must be delivered.
        reply: ReplySink,
    },
    /// Barrier: classify all in-flight flows now; the last shard's ack
    /// replies `DrainComplete` through the gate.
    Drain {
        /// The draining connection.
        conn_id: u64,
        /// Fan-in gate counting one ack per shard.
        gate: Arc<FanInGate>,
    },
    /// The connection went away: forget its verdict routes. The last
    /// shard's ack lets the reactor close the socket.
    Disconnect {
        /// The departed connection.
        conn_id: u64,
        /// Fan-in gate counting one ack per shard.
        gate: Arc<FanInGate>,
    },
}

/// Where a pending flow's verdict must be delivered.
struct Route {
    tuple: FiveTuple,
    conn_id: u64,
    reply: ReplySink,
}

/// State shared by every thread of one server.
pub(crate) struct Shared {
    pub(crate) config: ServerConfig,
    pub(crate) model: Arc<NatureModel>,
    pub(crate) metrics: ServeMetrics,
    pub(crate) queues: Vec<BoundedQueue<Job>>,
    /// Phase 1 of shutdown: stop accepting connections.
    pub(crate) stop: AtomicBool,
    /// Phase 2 of shutdown: workers have drained; flush and exit.
    pub(crate) finish: AtomicBool,
    pub(crate) next_conn_id: AtomicU64,
    /// The worker→reactor mailbox (also carries the wakeup eventfd).
    pub(crate) outbox: Arc<Outbox>,
}

impl Shared {
    /// Full stats snapshot, including the queue-lock counter summed
    /// across the shard queues (which live outside [`ServeMetrics`]).
    pub(crate) fn snapshot(&self) -> crate::metrics::StatsSnapshot {
        let locks = self.queues.iter().map(BoundedQueue::lock_acquisitions).sum();
        self.metrics.snapshot().with_queue_locks(locks)
    }
}

/// A running classification server; dropping it (or calling
/// [`shutdown`](Server::shutdown)) drains and joins all threads.
pub struct Server {
    addr: SocketAddr,
    udp_addr: Option<SocketAddr>,
    shared: Arc<Shared>,
    reactor_handle: Option<JoinHandle<()>>,
    worker_handles: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (TCP, plus UDP on the same port when
    /// `config.udp`) and starts serving.
    ///
    /// # Errors
    ///
    /// Returns any socket error from binding the listener or setting
    /// up the reactor's epoll instance and wakeup eventfd.
    ///
    /// # Panics
    ///
    /// Panics if `config.shards == 0` or `config.batch_limit == 0`.
    pub fn start(
        addr: impl ToSocketAddrs,
        model: NatureModel,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        assert!(config.shards > 0, "need at least one shard");
        assert!(config.batch_limit > 0, "batch limit must be positive");
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        // UDP shares the port number (distinct protocol namespace); a
        // bind failure degrades to TCP-only rather than failing start.
        let udp_socket = if config.udp {
            UdpSocket::bind(addr).ok().filter(|s| s.set_nonblocking(true).is_ok())
        } else {
            None
        };
        let udp_addr = udp_socket.as_ref().and_then(|s| s.local_addr().ok());

        let queues = (0..config.shards)
            .map(|_| BoundedQueue::new(config.queue_capacity, config.admission))
            .collect();
        let metrics = ServeMetrics::with_shards(config.shards);
        let outbox = Arc::new(Outbox::new()?);
        let shared = Arc::new(Shared {
            config,
            model: Arc::new(model),
            metrics,
            queues,
            stop: AtomicBool::new(false),
            finish: AtomicBool::new(false),
            next_conn_id: AtomicU64::new(0),
            outbox,
        });

        let mut worker_handles = Vec::with_capacity(shared.config.shards);
        let mut spawn_error = None;
        for shard in 0..shared.config.shards {
            let shared = Arc::clone(&shared);
            match std::thread::Builder::new()
                .name(format!("iustitia-shard-{shard}"))
                .spawn(move || shard_worker(&shared, shard))
            {
                Ok(handle) => worker_handles.push(handle),
                Err(e) => {
                    spawn_error = Some(e);
                    break;
                }
            }
        }
        let reactor_result = match spawn_error {
            Some(e) => Err(e),
            None => Reactor::new(listener, udp_socket, Arc::clone(&shared)).and_then(|reactor| {
                std::thread::Builder::new()
                    .name("iustitia-reactor".into())
                    .spawn(move || reactor.run())
            }),
        };
        let reactor_handle = match reactor_result {
            Ok(handle) => handle,
            Err(e) => {
                // Unwind the partial start: close the queues so any
                // already-running workers drain and exit, then report.
                shared.stop.store(true, Ordering::SeqCst);
                for queue in &shared.queues {
                    queue.close();
                }
                for handle in worker_handles {
                    let _ = handle.join();
                }
                return Err(e);
            }
        };

        Ok(Server { addr, udp_addr, shared, reactor_handle: Some(reactor_handle), worker_handles })
    }

    /// The bound TCP address (useful with port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound UDP address, when the datagram adapter is enabled.
    #[must_use]
    pub fn udp_addr(&self) -> Option<SocketAddr> {
        self.udp_addr
    }

    /// A metrics snapshot, equivalent to the `Stats` request.
    #[must_use]
    pub fn stats(&self) -> crate::metrics::StatsSnapshot {
        self.shared.snapshot()
    }

    /// Stops accepting, closes the shard queues, waits for every
    /// worker to drain its backlog, classify in-flight flows, and emit
    /// final verdicts, then flushes those verdicts to still-connected
    /// clients before tearing the reactor down.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        // Phase 1: no new connections, no new work. The eventfd wake
        // replaces the old hack of connecting a throwaway TCP socket
        // to the listener just to unblock a blocking accept.
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.outbox.wake();
        for queue in &self.shared.queues {
            queue.close();
        }
        for handle in self.worker_handles.drain(..) {
            let _ = handle.join();
        }
        // Phase 2: workers have emitted every verdict into the outbox;
        // let the reactor flush them to the sockets and exit.
        self.shared.finish.store(true, Ordering::SeqCst);
        self.shared.outbox.wake();
        if let Some(handle) = self.reactor_handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// A packet job pulled off the shard queue, awaiting batched dispatch.
struct PacketJob {
    packet: Packet,
    flow: FlowId,
    conn_id: u64,
    reply: ReplySink,
}

/// One shard worker: owns an [`Iustitia`] pipeline (with its own CDB)
/// and processes its queue until the server shuts down, then drains.
///
/// Each condvar wakeup drains the whole backlog with a single
/// [`BoundedQueue::pop_all`]. Contiguous stretches of packet jobs form
/// a *segment*; control jobs (drain barriers, disconnects) flush the
/// pending segment first, so their ordering guarantees are unchanged.
/// Segments are grouped by flow ID and dispatched through
/// [`Iustitia::process_batch`], which resolves each flow's pipeline
/// state once per same-flow run instead of once per packet.
fn shard_worker(shared: &Arc<Shared>, shard: usize) {
    let mut config = shared.config.pipeline.clone();
    // Decorrelate per-shard RNG streams, as the offline fleet does.
    config.seed = config.seed.wrapping_add(shard as u64);
    let idle_timeout = config.idle_timeout;
    let mut pipeline = Iustitia::new((*shared.model).clone(), config);
    if let Some(anytime) = &shared.config.anytime {
        pipeline = pipeline.with_anytime(anytime.clone());
    }
    let mut routes: HashMap<FlowId, Route> = HashMap::new();
    let mut last_t = 0.0f64;
    // Reused across segments: pending packet jobs and verdict scratch.
    let mut segment: Vec<PacketJob> = Vec::new();
    let mut verdicts: Vec<Verdict> = Vec::new();

    while let Some(batch) = shared.queues[shard].pop_all() {
        for job in batch {
            match job {
                Job::Packet { packet, flow, conn_id, reply } => {
                    segment.push(PacketJob { packet, flow, conn_id, reply });
                }
                Job::Drain { conn_id, gate } => {
                    // Barrier: everything submitted before the drain is
                    // dispatched before the sweep.
                    process_segment(
                        &mut pipeline,
                        &mut routes,
                        shared,
                        &mut last_t,
                        &mut segment,
                        &mut verdicts,
                    );
                    pipeline.sweep_idle(last_t + idle_timeout + 1.0);
                    let flushed = emit_verdicts(&mut pipeline, &mut routes, shared, Some(conn_id));
                    // Refresh gauges before acking so a Stats request
                    // issued right after the drain sees the swept state.
                    shared.metrics.shards[shard].set(
                        pipeline.pending_flows() as u64,
                        pipeline.resident_feature_bytes() as u64,
                        pipeline.state_pool_hits(),
                        pipeline.state_pool_size() as u64,
                        pipeline.early_exit_verdicts(),
                    );
                    gate.ack(flushed);
                }
                Job::Disconnect { conn_id, gate } => {
                    // Flush first: packets this connection submitted
                    // before going away still get processed, and their
                    // routes must exist to be forgotten here.
                    process_segment(
                        &mut pipeline,
                        &mut routes,
                        shared,
                        &mut last_t,
                        &mut segment,
                        &mut verdicts,
                    );
                    routes.retain(|_, route| route.conn_id != conn_id);
                    gate.ack(0);
                }
            }
        }
        process_segment(
            &mut pipeline,
            &mut routes,
            shared,
            &mut last_t,
            &mut segment,
            &mut verdicts,
        );
        // Refresh this shard's gauges once per drained batch: cheap
        // (a few relaxed stores) and fresh enough for a Stats poll.
        shared.metrics.shards[shard].set(
            pipeline.pending_flows() as u64,
            pipeline.resident_feature_bytes() as u64,
            pipeline.state_pool_hits(),
            pipeline.state_pool_size() as u64,
            pipeline.early_exit_verdicts(),
        );
    }

    // Queue closed: graceful shutdown. Classify every in-flight flow
    // from the bytes it has buffered and emit final verdicts.
    pipeline.sweep_idle(last_t + idle_timeout + 1.0);
    emit_verdicts(&mut pipeline, &mut routes, shared, None);
    shared.metrics.shards[shard].set(
        0,
        0,
        pipeline.state_pool_hits(),
        pipeline.state_pool_size() as u64,
        pipeline.early_exit_verdicts(),
    );
}

/// Dispatches one segment (a contiguous stretch of packet jobs from a
/// drained batch) through the pipeline's batch path.
///
/// The segment is stable-sorted by flow ID: same-flow packets become
/// adjacent while each flow keeps its arrival order, so
/// [`Iustitia::process_batch`] resolves every flow's state once per
/// run. Cross-flow order within one drained segment is a scheduling
/// detail — concurrent connections already interleave arbitrarily in
/// the queue — and the batch path is bit-identical to per-packet
/// dispatch on whatever order is chosen.
fn process_segment(
    pipeline: &mut Iustitia,
    routes: &mut HashMap<FlowId, Route>,
    shared: &Arc<Shared>,
    last_t: &mut f64,
    segment: &mut Vec<PacketJob>,
    verdicts: &mut Vec<Verdict>,
) {
    if segment.is_empty() {
        return;
    }
    for job in segment.iter() {
        if job.packet.timestamp > *last_t {
            *last_t = job.packet.timestamp;
        }
    }
    let mut order: Vec<usize> = (0..segment.len()).collect();
    order.sort_by(|&a, &b| segment[a].flow.cmp(&segment[b].flow));
    let grouped: Vec<&PacketJob> = order.iter().map(|&i| &segment[i]).collect();
    let flows =
        grouped.iter().zip(grouped.iter().skip(1)).filter(|(a, b)| a.flow != b.flow).count() + 1;
    shared.metrics.batch_size.record(grouped.len() as u64);
    shared.metrics.flows_per_batch.record(flows as u64);

    // Split the grouped segment the same way process_batch does: runs
    // of same-flow data packets go through the batch path; closes and
    // non-data packets are dispatched singly with the original
    // per-packet bookkeeping (they can tear down flow state, which
    // interacts with verdict routing).
    let mut rest: &[&PacketJob] = &grouped;
    while let Some((first, tail)) = rest.split_first() {
        if !first.packet.is_data() || first.packet.flags.closes_flow() {
            process_single(pipeline, routes, shared, first);
            rest = tail;
            continue;
        }
        let run_len = 1 + tail
            .iter()
            .take_while(|j| {
                j.flow == first.flow && j.packet.is_data() && !j.packet.flags.closes_flow()
            })
            .count();
        let (run, remainder) = rest.split_at(run_len);
        process_flow_run(pipeline, routes, shared, run, verdicts);
        rest = remainder;
    }
    segment.clear();
}

/// Dispatches one packet with the original per-packet bookkeeping
/// (route insertion, stage attribution, verdict emission, route
/// teardown on close).
fn process_single(
    pipeline: &mut Iustitia,
    routes: &mut HashMap<FlowId, Route>,
    shared: &Arc<Shared>,
    job: &PacketJob,
) {
    if job.packet.is_data() {
        routes.entry(job.flow).or_insert_with(|| Route {
            tuple: job.packet.tuple,
            conn_id: job.conn_id,
            reply: job.reply.clone(),
        });
    }
    let closes = job.packet.flags.closes_flow();
    let t0 = Instant::now();
    let verdict = pipeline.process_packet(&job.packet);
    let nanos = t0.elapsed().as_nanos() as u64;
    match verdict {
        Verdict::Hit(_) => {
            shared.metrics.record(Stage::CdbLookup, nanos);
            ServeMetrics::add(&shared.metrics.hits, 1);
            // Flow already classified; no verdict owed.
            routes.remove(&job.flow);
        }
        Verdict::Buffering => {
            shared.metrics.record(Stage::BufferFill, nanos);
        }
        Verdict::Classified(_) => {
            shared.metrics.record(Stage::Classify, nanos);
        }
        Verdict::Ignored => {}
    }
    emit_verdicts(pipeline, routes, shared, None);
    if closes {
        // Flow state is gone (partial leftovers were classified and
        // emitted above, if any).
        routes.remove(&job.flow);
    }
}

/// Dispatches a run of same-flow data packets through
/// [`Iustitia::process_batch`], then replays the per-packet route
/// bookkeeping against the returned verdicts.
///
/// Log entries for *other* flows (opportunistic idle sweeps firing
/// mid-run) are delivered up front: their routes are untouched while
/// this run executes, so the route each would have seen under
/// per-packet dispatch is the route it sees here. Entries for the
/// run's own flow are delivered positionally at its `Classified`
/// verdicts, which is where per-packet dispatch would have emitted
/// them relative to the route insert/remove sequence.
fn process_flow_run(
    pipeline: &mut Iustitia,
    routes: &mut HashMap<FlowId, Route>,
    shared: &Arc<Shared>,
    run: &[&PacketJob],
    verdicts: &mut Vec<Verdict>,
) {
    let flow = run[0].flow;
    let items: Vec<BatchPacket<'_>> =
        run.iter().map(|j| BatchPacket { flow: j.flow, packet: &j.packet }).collect();
    let t0 = Instant::now();
    pipeline.process_batch(&items, verdicts);
    let nanos = t0.elapsed().as_nanos() as u64;
    // Attribute the mean per-packet cost to the stage that terminated
    // each packet, mirroring the per-packet path's accounting.
    let per_packet = nanos / items.len() as u64;

    let log = pipeline.take_log();
    if !log.is_empty() {
        ServeMetrics::add(&shared.metrics.flows_classified, log.len() as u64);
    }
    let mut own: Vec<ClassifiedFlow> = Vec::new();
    for entry in log {
        shared.metrics.bytes_at_verdict.record(entry.buffered_bytes as u64);
        if entry.id == flow {
            own.push(entry);
        } else {
            deliver(routes, &entry);
        }
    }
    let mut own = own.into_iter();

    for (job, verdict) in run.iter().zip(verdicts.iter()) {
        if job.packet.is_data() && !routes.contains_key(&flow) {
            routes.insert(
                flow,
                Route { tuple: job.packet.tuple, conn_id: job.conn_id, reply: job.reply.clone() },
            );
        }
        match verdict {
            Verdict::Hit(_) => {
                shared.metrics.record(Stage::CdbLookup, per_packet);
                ServeMetrics::add(&shared.metrics.hits, 1);
                routes.remove(&flow);
            }
            Verdict::Buffering => shared.metrics.record(Stage::BufferFill, per_packet),
            Verdict::Classified(_) => {
                shared.metrics.record(Stage::Classify, per_packet);
                if let Some(entry) = own.next() {
                    deliver(routes, &entry);
                }
            }
            Verdict::Ignored => {}
        }
    }
    // A flow swept idle mid-run (evicted by its own sweep-due packet,
    // then re-buffered) logs an extra entry with no Classified verdict;
    // deliver any such leftovers to the flow's current route.
    for entry in own {
        deliver(routes, &entry);
    }
}

/// Sends one classification to the connection that owns the flow,
/// consuming its route (each route delivers exactly one verdict).
fn deliver(routes: &mut HashMap<FlowId, Route>, flow: &ClassifiedFlow) {
    if let Some(route) = routes.remove(&flow.id) {
        route.reply.send(Response::FlowVerdict(FlowVerdict {
            tuple: route.tuple,
            label: flow.label,
            packets: flow.packets,
            buffered_bytes: flow.buffered_bytes as u32,
            fill_time: flow.fill_time,
        }));
    }
}

/// Delivers every newly logged classification to the connection that
/// owns the flow. Returns how many belonged to `count_conn`.
fn emit_verdicts(
    pipeline: &mut Iustitia,
    routes: &mut HashMap<FlowId, Route>,
    shared: &Arc<Shared>,
    count_conn: Option<u64>,
) -> u32 {
    let log = pipeline.take_log();
    if log.is_empty() {
        return 0;
    }
    let mut matched = 0u32;
    ServeMetrics::add(&shared.metrics.flows_classified, log.len() as u64);
    for flow in log {
        shared.metrics.bytes_at_verdict.record(flow.buffered_bytes as u64);
        if let Some(route) = routes.get(&flow.id) {
            if count_conn == Some(route.conn_id) {
                matched += 1;
            }
        }
        deliver(routes, &flow);
    }
    matched
}
