//! The multi-threaded classification server.
//!
//! # Architecture
//!
//! ```text
//!                      ┌────────────┐   per-shard bounded queues
//!  client ── TCP ───►  │ reader thd │ ──┬──► [queue 0] ─► worker 0 (Iustitia + CDB)
//!                      │  (batches) │   ├──► [queue 1] ─► worker 1 (Iustitia + CDB)
//!  client ◄── TCP ───  │ writer thd │   ├──► [queue 2] ─► worker 2 (Iustitia + CDB)
//!                      └────────────┘   └──► [queue 3] ─► worker 3 (Iustitia + CDB)
//! ```
//!
//! Each accepted connection gets a *reader* thread (decodes frames,
//! computes flow IDs, batches packets per shard) and a *writer* thread
//! (serializes responses from an internal channel). Flow-affine work is
//! routed by [`shard_index`] — the same partitioning as the offline
//! [`ShardedIustitia`](iustitia::concurrent::ShardedIustitia) fleet —
//! to one of `N` *shard workers*, each owning an independent
//! [`Iustitia`] pipeline and CDB, so no classification state is ever
//! shared and the packet path takes no locks beyond its own shard
//! queue.
//!
//! Backpressure is per shard: bounded ingress queues with a
//! configurable [`AdmissionPolicy`]. Reader threads batch every frame
//! already buffered on the socket (up to [`ServerConfig::batch_limit`])
//! and push each shard's share under a single lock acquisition.
//!
//! Shutdown is graceful: closing the queues lets every worker drain its
//! backlog, classify all in-flight flows from the bytes they have
//! buffered, and emit final verdicts before exiting. The `Drain`
//! request offers the same barrier per connection at runtime.

use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Instant;

use iustitia::cdb::FlowId;
use iustitia::concurrent::shard_index;
use iustitia::features::FeatureExtractor;
use iustitia::model::NatureModel;
use iustitia::pipeline::{BatchPacket, ClassifiedFlow, Iustitia, PipelineConfig, Verdict};
use iustitia_netsim::{FiveTuple, Packet};

use crate::metrics::{ServeMetrics, Stage};
use crate::proto::{
    has_buffered_input, read_frame, write_frame, FlowVerdict, ProtoError, Request, Response,
};
use crate::queue::{AdmissionPolicy, BoundedQueue};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Number of shard workers (each with its own pipeline + CDB).
    pub shards: usize,
    /// Per-shard ingress queue capacity, in packets.
    pub queue_capacity: usize,
    /// What to do when a shard queue is full.
    pub admission: AdmissionPolicy,
    /// Maximum frames a reader decodes per batch before dispatching.
    pub batch_limit: usize,
    /// Pipeline configuration replicated into every shard (each shard
    /// gets a decorrelated RNG seed).
    pub pipeline: PipelineConfig,
}

impl ServerConfig {
    /// Defaults: 4 shards, 1024-packet queues, `RejectBusy`, 64-frame
    /// batches.
    #[must_use]
    pub fn new(pipeline: PipelineConfig) -> Self {
        ServerConfig {
            shards: 4,
            queue_capacity: 1024,
            admission: AdmissionPolicy::default(),
            batch_limit: 64,
            pipeline,
        }
    }
}

/// Work item on a shard queue.
enum Job {
    /// One packet to classify, with the reply channel of the
    /// connection that submitted it.
    Packet { packet: Packet, flow: FlowId, conn_id: u64, reply: mpsc::Sender<Response> },
    /// Barrier: classify all in-flight flows now; ack with the number
    /// of flushed flows that belonged to `conn_id`.
    Drain { conn_id: u64, ack: mpsc::Sender<u32> },
    /// The connection went away: forget its verdict routes (dropping
    /// its reply senders, which lets its writer thread exit).
    Disconnect { conn_id: u64 },
}

/// Where a pending flow's verdict must be delivered.
struct Route {
    tuple: FiveTuple,
    conn_id: u64,
    reply: mpsc::Sender<Response>,
}

/// State shared by every thread of one server.
struct Shared {
    config: ServerConfig,
    model: Arc<NatureModel>,
    metrics: ServeMetrics,
    queues: Vec<BoundedQueue<Job>>,
    stop: AtomicBool,
    next_conn_id: AtomicU64,
}

impl Shared {
    /// Full stats snapshot, including the queue-lock counter summed
    /// across the shard queues (which live outside [`ServeMetrics`]).
    fn snapshot(&self) -> crate::metrics::StatsSnapshot {
        let locks = self.queues.iter().map(BoundedQueue::lock_acquisitions).sum();
        self.metrics.snapshot().with_queue_locks(locks)
    }
}

/// A running classification server; dropping it (or calling
/// [`shutdown`](Server::shutdown)) drains and joins all threads.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_handle: Option<JoinHandle<()>>,
    worker_handles: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` and starts accepting connections.
    ///
    /// # Errors
    ///
    /// Returns any socket error from binding the listener.
    ///
    /// # Panics
    ///
    /// Panics if `config.shards == 0` or `config.batch_limit == 0`.
    pub fn start(
        addr: impl ToSocketAddrs,
        model: NatureModel,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        assert!(config.shards > 0, "need at least one shard");
        assert!(config.batch_limit > 0, "batch limit must be positive");
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;

        let queues = (0..config.shards)
            .map(|_| BoundedQueue::new(config.queue_capacity, config.admission))
            .collect();
        let metrics = ServeMetrics::with_shards(config.shards);
        let shared = Arc::new(Shared {
            config,
            model: Arc::new(model),
            metrics,
            queues,
            stop: AtomicBool::new(false),
            next_conn_id: AtomicU64::new(0),
        });

        let mut worker_handles = Vec::with_capacity(shared.config.shards);
        let mut spawn_error = None;
        for shard in 0..shared.config.shards {
            let shared = Arc::clone(&shared);
            match std::thread::Builder::new()
                .name(format!("iustitia-shard-{shard}"))
                .spawn(move || shard_worker(&shared, shard))
            {
                Ok(handle) => worker_handles.push(handle),
                Err(e) => {
                    spawn_error = Some(e);
                    break;
                }
            }
        }
        let accept_result = match spawn_error {
            Some(e) => Err(e),
            None => {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name("iustitia-accept".into())
                    .spawn(move || accept_loop(&listener, &shared))
            }
        };
        let accept_handle = match accept_result {
            Ok(handle) => handle,
            Err(e) => {
                // Unwind the partial start: close the queues so any
                // already-running workers drain and exit, then report.
                shared.stop.store(true, Ordering::SeqCst);
                for queue in &shared.queues {
                    queue.close();
                }
                for handle in worker_handles {
                    let _ = handle.join();
                }
                return Err(e);
            }
        };

        Ok(Server { addr, shared, accept_handle: Some(accept_handle), worker_handles })
    }

    /// The bound address (useful with port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A metrics snapshot, equivalent to the `Stats` request.
    #[must_use]
    pub fn stats(&self) -> crate::metrics::StatsSnapshot {
        self.shared.snapshot()
    }

    /// Stops accepting, closes the shard queues, and waits for every
    /// worker to drain its backlog, classify in-flight flows, and emit
    /// final verdicts to still-connected clients.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        for queue in &self.shared.queues {
            queue.close();
        }
        for handle in self.worker_handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(shared);
        let conn_id = shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
        ServeMetrics::add(&shared.metrics.connections, 1);
        let _ =
            std::thread::Builder::new().name(format!("iustitia-conn-{conn_id}")).spawn(move || {
                let _ = handle_connection(stream, &shared, conn_id);
            });
    }
}

/// Serializes responses from the connection's internal channel onto the
/// socket, flushing whenever the channel momentarily runs dry.
fn writer_loop(stream: TcpStream, rx: &mpsc::Receiver<Response>) {
    let mut writer = BufWriter::new(stream);
    while let Ok(response) = rx.recv() {
        if !write_response(&mut writer, &response) {
            return;
        }
        loop {
            match rx.try_recv() {
                Ok(next) => {
                    if !write_response(&mut writer, &next) {
                        return;
                    }
                }
                Err(mpsc::TryRecvError::Empty) => break,
                Err(mpsc::TryRecvError::Disconnected) => {
                    let _ = writer.flush();
                    return;
                }
            }
        }
        if writer.flush().is_err() {
            return;
        }
    }
    let _ = writer.flush();
}

/// Encodes and writes one response frame; returns `false` when the
/// connection should be torn down. An unencodable response (a server
/// bug, not a peer failure) degrades to a protocol `Error` frame so the
/// client learns something went wrong instead of losing a reply.
fn write_response<W: Write>(writer: &mut W, response: &Response) -> bool {
    let encoded = match response.encode() {
        Ok(frame) => Ok(frame),
        Err(e) => Response::Error(format!("unencodable response: {e}")).encode(),
    };
    match encoded {
        Ok((t, body)) => write_frame(writer, t, &body).is_ok(),
        Err(_) => false,
    }
}

fn handle_connection(
    stream: TcpStream,
    shared: &Arc<Shared>,
    conn_id: u64,
) -> Result<(), ProtoError> {
    stream.set_nodelay(true)?;
    let write_half = stream.try_clone()?;
    let (resp_tx, resp_rx) = mpsc::channel::<Response>();
    let writer_handle = std::thread::Builder::new()
        .name(format!("iustitia-conn-{conn_id}-w"))
        .spawn(move || writer_loop(write_half, &resp_rx))?;

    let result = reader_loop(&stream, shared, conn_id, &resp_tx);
    match &result {
        // Tell the peer why its connection is going away — unless the
        // transport itself failed, in which case nothing can be sent.
        Err(
            e @ (ProtoError::Malformed(_)
            | ProtoError::FrameTooLarge { .. }
            | ProtoError::Truncated { .. }),
        ) => {
            let _ = resp_tx.send(Response::Error(e.to_string()));
        }
        Ok(()) | Err(ProtoError::Io(_)) => {}
    }
    // Drop every reply sender the shards still hold for this
    // connection, so the writer's channel can disconnect. (During
    // server shutdown the queues are closed and workers drop their
    // routes wholesale instead.)
    for queue in &shared.queues {
        queue.push_control(Job::Disconnect { conn_id });
    }
    drop(resp_tx); // writer drains remaining responses, then exits
    let _ = writer_handle.join();
    result
}

fn reader_loop(
    stream: &TcpStream,
    shared: &Arc<Shared>,
    conn_id: u64,
    resp_tx: &mpsc::Sender<Response>,
) -> Result<(), ProtoError> {
    let config = &shared.config;
    let pipeline_config = &config.pipeline;
    // One-shot ClassifyBuffer requests are served directly on the
    // reader thread with a connection-local extractor.
    let mut extractor = FeatureExtractor::new(
        pipeline_config.widths.clone(),
        pipeline_config.mode.clone(),
        pipeline_config.seed ^ conn_id,
    );
    let mut reader = BufReader::new(stream);
    // Reused per batch: jobs grouped by destination shard.
    let mut per_shard: Vec<Vec<Job>> = (0..config.shards).map(|_| Vec::new()).collect();

    'conn: loop {
        let Some((type_byte, body)) = read_frame(&mut reader)? else {
            break 'conn; // clean EOF
        };
        let mut batch = vec![Request::decode(type_byte, &body)?];
        while batch.len() < config.batch_limit && has_buffered_input(&reader) {
            match read_frame(&mut reader)? {
                Some((t, b)) => batch.push(Request::decode(t, &b)?),
                None => break,
            }
        }

        for request in batch {
            match request {
                Request::SubmitPacket(packet) => {
                    let t0 = Instant::now();
                    let flow = FlowId::of_tuple(&packet.tuple);
                    shared.metrics.record(Stage::Hash, t0.elapsed().as_nanos() as u64);
                    let shard = shard_index(&flow, config.shards);
                    per_shard[shard].push(Job::Packet {
                        packet,
                        flow,
                        conn_id,
                        reply: resp_tx.clone(),
                    });
                }
                Request::ClassifyBuffer(data) => {
                    let t0 = Instant::now();
                    let prefix = &data[..data.len().min(pipeline_config.buffer_size)];
                    let label = shared.model.predict(&extractor.extract(prefix));
                    shared.metrics.record(Stage::Classify, t0.elapsed().as_nanos() as u64);
                    ServeMetrics::add(&shared.metrics.classify_requests, 1);
                    if resp_tx.send(Response::ClassifyResult(label)).is_err() {
                        break 'conn;
                    }
                }
                Request::Stats => {
                    // Account for earlier submits in this batch first, so a
                    // client's own submit→stats ordering is reflected.
                    dispatch(shared, &mut per_shard);
                    if resp_tx.send(Response::Stats(Box::new(shared.snapshot()))).is_err() {
                        break 'conn;
                    }
                }
                Request::Drain => {
                    // Barrier semantics: everything submitted before the
                    // drain must reach the shards before the drain job.
                    dispatch(shared, &mut per_shard);
                    let (ack_tx, ack_rx) = mpsc::channel::<u32>();
                    for queue in &shared.queues {
                        queue.push_control(Job::Drain { conn_id, ack: ack_tx.clone() });
                    }
                    drop(ack_tx);
                    let flushed: u32 = ack_rx.iter().sum();
                    ServeMetrics::add(&shared.metrics.drains, 1);
                    if resp_tx.send(Response::DrainComplete(flushed)).is_err() {
                        break 'conn;
                    }
                }
            }
        }
        dispatch(shared, &mut per_shard);
    }
    dispatch(shared, &mut per_shard);
    Ok(())
}

/// Pushes each shard's pending jobs under one lock acquisition and
/// applies the admission outcome: `Busy` frames for rejected packets,
/// drop counters for evictions.
fn dispatch(shared: &Arc<Shared>, per_shard: &mut [Vec<Job>]) {
    for (shard, jobs) in per_shard.iter_mut().enumerate() {
        if jobs.is_empty() {
            continue;
        }
        let submitted = jobs.len() as u64;
        let outcome = shared.queues[shard].push_batch(jobs.drain(..));
        let rejected = outcome.rejected.len() as u64;
        ServeMetrics::add(&shared.metrics.packets, submitted - rejected);
        ServeMetrics::add(&shared.metrics.busy_rejects, rejected);
        ServeMetrics::add(&shared.metrics.dropped_oldest, outcome.dropped.len() as u64);
        for job in outcome.rejected {
            if let Job::Packet { packet, reply, .. } = job {
                let _ = reply.send(Response::Busy(packet.tuple));
            }
        }
    }
}

/// A packet job pulled off the shard queue, awaiting batched dispatch.
struct PacketJob {
    packet: Packet,
    flow: FlowId,
    conn_id: u64,
    reply: mpsc::Sender<Response>,
}

/// One shard worker: owns an [`Iustitia`] pipeline (with its own CDB)
/// and processes its queue until the server shuts down, then drains.
///
/// Each condvar wakeup drains the whole backlog with a single
/// [`BoundedQueue::pop_all`]. Contiguous stretches of packet jobs form
/// a *segment*; control jobs (drain barriers, disconnects) flush the
/// pending segment first, so their ordering guarantees are unchanged.
/// Segments are grouped by flow ID and dispatched through
/// [`Iustitia::process_batch`], which resolves each flow's pipeline
/// state once per same-flow run instead of once per packet.
fn shard_worker(shared: &Arc<Shared>, shard: usize) {
    let mut config = shared.config.pipeline.clone();
    // Decorrelate per-shard RNG streams, as the offline fleet does.
    config.seed = config.seed.wrapping_add(shard as u64);
    let idle_timeout = config.idle_timeout;
    let mut pipeline = Iustitia::new((*shared.model).clone(), config);
    let mut routes: HashMap<FlowId, Route> = HashMap::new();
    let mut last_t = 0.0f64;
    // Reused across segments: pending packet jobs and verdict scratch.
    let mut segment: Vec<PacketJob> = Vec::new();
    let mut verdicts: Vec<Verdict> = Vec::new();

    while let Some(batch) = shared.queues[shard].pop_all() {
        for job in batch {
            match job {
                Job::Packet { packet, flow, conn_id, reply } => {
                    segment.push(PacketJob { packet, flow, conn_id, reply });
                }
                Job::Drain { conn_id, ack } => {
                    // Barrier: everything submitted before the drain is
                    // dispatched before the sweep.
                    process_segment(
                        &mut pipeline,
                        &mut routes,
                        shared,
                        &mut last_t,
                        &mut segment,
                        &mut verdicts,
                    );
                    pipeline.sweep_idle(last_t + idle_timeout + 1.0);
                    let flushed = emit_verdicts(&mut pipeline, &mut routes, shared, Some(conn_id));
                    // Refresh gauges before acking so a Stats request
                    // issued right after the drain sees the swept state.
                    shared.metrics.shards[shard].set(
                        pipeline.pending_flows() as u64,
                        pipeline.resident_feature_bytes() as u64,
                        pipeline.state_pool_hits(),
                        pipeline.state_pool_size() as u64,
                    );
                    let _ = ack.send(flushed);
                }
                Job::Disconnect { conn_id } => {
                    // Flush first: packets this connection submitted
                    // before going away still get processed, and their
                    // routes must exist to be forgotten here.
                    process_segment(
                        &mut pipeline,
                        &mut routes,
                        shared,
                        &mut last_t,
                        &mut segment,
                        &mut verdicts,
                    );
                    routes.retain(|_, route| route.conn_id != conn_id);
                }
            }
        }
        process_segment(
            &mut pipeline,
            &mut routes,
            shared,
            &mut last_t,
            &mut segment,
            &mut verdicts,
        );
        // Refresh this shard's gauges once per drained batch: cheap
        // (a few relaxed stores) and fresh enough for a Stats poll.
        shared.metrics.shards[shard].set(
            pipeline.pending_flows() as u64,
            pipeline.resident_feature_bytes() as u64,
            pipeline.state_pool_hits(),
            pipeline.state_pool_size() as u64,
        );
    }

    // Queue closed: graceful shutdown. Classify every in-flight flow
    // from the bytes it has buffered and emit final verdicts.
    pipeline.sweep_idle(last_t + idle_timeout + 1.0);
    emit_verdicts(&mut pipeline, &mut routes, shared, None);
    shared.metrics.shards[shard].set(
        0,
        0,
        pipeline.state_pool_hits(),
        pipeline.state_pool_size() as u64,
    );
}

/// Dispatches one segment (a contiguous stretch of packet jobs from a
/// drained batch) through the pipeline's batch path.
///
/// The segment is stable-sorted by flow ID: same-flow packets become
/// adjacent while each flow keeps its arrival order, so
/// [`Iustitia::process_batch`] resolves every flow's state once per
/// run. Cross-flow order within one drained segment is a scheduling
/// detail — concurrent connections already interleave arbitrarily in
/// the queue — and the batch path is bit-identical to per-packet
/// dispatch on whatever order is chosen.
fn process_segment(
    pipeline: &mut Iustitia,
    routes: &mut HashMap<FlowId, Route>,
    shared: &Arc<Shared>,
    last_t: &mut f64,
    segment: &mut Vec<PacketJob>,
    verdicts: &mut Vec<Verdict>,
) {
    if segment.is_empty() {
        return;
    }
    for job in segment.iter() {
        if job.packet.timestamp > *last_t {
            *last_t = job.packet.timestamp;
        }
    }
    let mut order: Vec<usize> = (0..segment.len()).collect();
    order.sort_by(|&a, &b| segment[a].flow.cmp(&segment[b].flow));
    let grouped: Vec<&PacketJob> = order.iter().map(|&i| &segment[i]).collect();
    let flows =
        grouped.iter().zip(grouped.iter().skip(1)).filter(|(a, b)| a.flow != b.flow).count() + 1;
    shared.metrics.batch_size.record(grouped.len() as u64);
    shared.metrics.flows_per_batch.record(flows as u64);

    // Split the grouped segment the same way process_batch does: runs
    // of same-flow data packets go through the batch path; closes and
    // non-data packets are dispatched singly with the original
    // per-packet bookkeeping (they can tear down flow state, which
    // interacts with verdict routing).
    let mut rest: &[&PacketJob] = &grouped;
    while let Some((first, tail)) = rest.split_first() {
        if !first.packet.is_data() || first.packet.flags.closes_flow() {
            process_single(pipeline, routes, shared, first);
            rest = tail;
            continue;
        }
        let run_len = 1 + tail
            .iter()
            .take_while(|j| {
                j.flow == first.flow && j.packet.is_data() && !j.packet.flags.closes_flow()
            })
            .count();
        let (run, remainder) = rest.split_at(run_len);
        process_flow_run(pipeline, routes, shared, run, verdicts);
        rest = remainder;
    }
    segment.clear();
}

/// Dispatches one packet with the original per-packet bookkeeping
/// (route insertion, stage attribution, verdict emission, route
/// teardown on close).
fn process_single(
    pipeline: &mut Iustitia,
    routes: &mut HashMap<FlowId, Route>,
    shared: &Arc<Shared>,
    job: &PacketJob,
) {
    if job.packet.is_data() {
        routes.entry(job.flow).or_insert_with(|| Route {
            tuple: job.packet.tuple,
            conn_id: job.conn_id,
            reply: job.reply.clone(),
        });
    }
    let closes = job.packet.flags.closes_flow();
    let t0 = Instant::now();
    let verdict = pipeline.process_packet(&job.packet);
    let nanos = t0.elapsed().as_nanos() as u64;
    match verdict {
        Verdict::Hit(_) => {
            shared.metrics.record(Stage::CdbLookup, nanos);
            ServeMetrics::add(&shared.metrics.hits, 1);
            // Flow already classified; no verdict owed.
            routes.remove(&job.flow);
        }
        Verdict::Buffering => {
            shared.metrics.record(Stage::BufferFill, nanos);
        }
        Verdict::Classified(_) => {
            shared.metrics.record(Stage::Classify, nanos);
        }
        Verdict::Ignored => {}
    }
    emit_verdicts(pipeline, routes, shared, None);
    if closes {
        // Flow state is gone (partial leftovers were classified and
        // emitted above, if any).
        routes.remove(&job.flow);
    }
}

/// Dispatches a run of same-flow data packets through
/// [`Iustitia::process_batch`], then replays the per-packet route
/// bookkeeping against the returned verdicts.
///
/// Log entries for *other* flows (opportunistic idle sweeps firing
/// mid-run) are delivered up front: their routes are untouched while
/// this run executes, so the route each would have seen under
/// per-packet dispatch is the route it sees here. Entries for the
/// run's own flow are delivered positionally at its `Classified`
/// verdicts, which is where per-packet dispatch would have emitted
/// them relative to the route insert/remove sequence.
fn process_flow_run(
    pipeline: &mut Iustitia,
    routes: &mut HashMap<FlowId, Route>,
    shared: &Arc<Shared>,
    run: &[&PacketJob],
    verdicts: &mut Vec<Verdict>,
) {
    let flow = run[0].flow;
    let items: Vec<BatchPacket<'_>> =
        run.iter().map(|j| BatchPacket { flow: j.flow, packet: &j.packet }).collect();
    let t0 = Instant::now();
    pipeline.process_batch(&items, verdicts);
    let nanos = t0.elapsed().as_nanos() as u64;
    // Attribute the mean per-packet cost to the stage that terminated
    // each packet, mirroring the per-packet path's accounting.
    let per_packet = nanos / items.len() as u64;

    let log = pipeline.take_log();
    if !log.is_empty() {
        ServeMetrics::add(&shared.metrics.flows_classified, log.len() as u64);
    }
    let mut own: Vec<ClassifiedFlow> = Vec::new();
    for entry in log {
        if entry.id == flow {
            own.push(entry);
        } else {
            deliver(routes, &entry);
        }
    }
    let mut own = own.into_iter();

    for (job, verdict) in run.iter().zip(verdicts.iter()) {
        if job.packet.is_data() && !routes.contains_key(&flow) {
            routes.insert(
                flow,
                Route { tuple: job.packet.tuple, conn_id: job.conn_id, reply: job.reply.clone() },
            );
        }
        match verdict {
            Verdict::Hit(_) => {
                shared.metrics.record(Stage::CdbLookup, per_packet);
                ServeMetrics::add(&shared.metrics.hits, 1);
                routes.remove(&flow);
            }
            Verdict::Buffering => shared.metrics.record(Stage::BufferFill, per_packet),
            Verdict::Classified(_) => {
                shared.metrics.record(Stage::Classify, per_packet);
                if let Some(entry) = own.next() {
                    deliver(routes, &entry);
                }
            }
            Verdict::Ignored => {}
        }
    }
    // A flow swept idle mid-run (evicted by its own sweep-due packet,
    // then re-buffered) logs an extra entry with no Classified verdict;
    // deliver any such leftovers to the flow's current route.
    for entry in own {
        deliver(routes, &entry);
    }
}

/// Sends one classification to the connection that owns the flow,
/// consuming its route (each route delivers exactly one verdict).
fn deliver(routes: &mut HashMap<FlowId, Route>, flow: &ClassifiedFlow) {
    if let Some(route) = routes.remove(&flow.id) {
        let _ = route.reply.send(Response::FlowVerdict(FlowVerdict {
            tuple: route.tuple,
            label: flow.label,
            packets: flow.packets,
            buffered_bytes: flow.buffered_bytes as u32,
            fill_time: flow.fill_time,
        }));
    }
}

/// Delivers every newly logged classification to the connection that
/// owns the flow. Returns how many belonged to `count_conn`.
fn emit_verdicts(
    pipeline: &mut Iustitia,
    routes: &mut HashMap<FlowId, Route>,
    shared: &Arc<Shared>,
    count_conn: Option<u64>,
) -> u32 {
    let log = pipeline.take_log();
    if log.is_empty() {
        return 0;
    }
    let mut matched = 0u32;
    ServeMetrics::add(&shared.metrics.flows_classified, log.len() as u64);
    for flow in log {
        if let Some(route) = routes.get(&flow.id) {
            if count_conn == Some(route.conn_id) {
                matched += 1;
            }
        }
        deliver(routes, &flow);
    }
    matched
}
