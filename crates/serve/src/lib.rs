//! `iustitia-serve` — a networked classification service wrapping the
//! [`iustitia`] pipeline.
//!
//! The offline crates answer *"what is the nature of this flow?"* for
//! traces already on disk; this crate serves the same question over
//! TCP at line rate. A [`Server`] partitions flow state across `N`
//! shard workers (each owning a private pipeline + classification
//! database), admits packets through bounded per-shard queues with a
//! configurable [`AdmissionPolicy`], batches frame decoding on reader
//! threads, and exports live counters and per-stage latency histograms
//! through the `Stats` request.
//!
//! The matching [`Client`] speaks the length-prefixed binary protocol
//! of [`proto`]: streamed [`SubmitPacket`](proto::Request::SubmitPacket)
//! requests produce asynchronous flow verdicts, while
//! [`ClassifyBuffer`](proto::Request::ClassifyBuffer) offers one-shot
//! classification of a byte buffer's first *b* bytes.
//!
//! Each shard's pipeline compiles its model at construction
//! (`NatureModel::compile`), so every verdict on the hot path runs the
//! flat-array / packed-support-vector inference form with zero heap
//! allocations per classification; a steady-state recycled flow is
//! allocation-free from first packet through verdict (see the
//! counting-allocator test in `iustitia`, and `results/BENCH_ml.json`
//! for the boxed-vs-compiled predict timings).
//!
//! ```no_run
//! use iustitia::features::{FeatureMode, TrainingMethod};
//! use iustitia::model::{train_from_corpus, ModelKind};
//! use iustitia::pipeline::PipelineConfig;
//! use iustitia_entropy::FeatureWidths;
//! use iustitia_serve::{Client, Server, ServerConfig};
//!
//! let corpus = iustitia_corpus::CorpusBuilder::new(7).build();
//! let model = train_from_corpus(
//!     &corpus,
//!     &FeatureWidths::svm_selected(),
//!     TrainingMethod::Prefix { b: 32 },
//!     FeatureMode::Exact,
//!     &ModelKind::paper_cart(),
//!     7,
//! )
//! .expect("balanced corpus");
//! let server = Server::start("127.0.0.1:0", model, ServerConfig::new(PipelineConfig::headline(7)))?;
//!
//! let mut client = Client::connect(server.local_addr())?;
//! let label = client.classify_buffer(b"GET /index.html HTTP/1.1\r\n\r\n")?;
//! println!("classified as {}", label.name());
//!
//! client.close()?;
//! server.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod conn;
pub mod metrics;
pub mod proto;
pub mod queue;
pub mod reactor;
pub mod server;
pub mod sys;

pub use client::{Client, ClientError, ClientEvent};
pub use conn::{FrameAssembler, WriteBuffer};
pub use metrics::{
    HistogramSnapshot, LatencyHistogram, ServeMetrics, ShardGauges, ShardStats, Stage,
    StatsSnapshot,
};
pub use proto::{FlowVerdict, ProtoError, Request, Response};
pub use queue::{AdmissionPolicy, BoundedQueue, PushOutcome};
pub use server::{Server, ServerConfig};
