//! Bounded per-shard ingress queues with configurable admission
//! control.
//!
//! `std::sync::mpsc` cannot evict from the head of a full channel, so
//! backpressure policies are built on a plain `Mutex<VecDeque>` +
//! `Condvar` pair. Producers (connection reader threads) push whole
//! batches under one lock acquisition; the consumer (the shard worker)
//! drains the entire queue per wakeup, so lock traffic amortizes to
//! O(1) per batch on both sides.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// What to do with new packets when a shard's ingress queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionPolicy {
    /// Refuse the newcomer and tell the client `Busy` — a router
    /// shedding load at the edge. Keeps already-buffered flows intact.
    #[default]
    RejectBusy,
    /// Evict the oldest queued packet to admit the newcomer — favors
    /// fresh traffic over a stale backlog.
    DropOldest,
}

/// Outcome of a batched push.
#[derive(Debug, Default)]
pub struct PushOutcome<T> {
    /// Items refused admission (RejectBusy only).
    pub rejected: Vec<T>,
    /// Items evicted from the head (DropOldest only).
    pub dropped: Vec<T>,
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded MPSC queue with pluggable full-queue behavior.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    capacity: usize,
    policy: AdmissionPolicy,
    /// Times the state mutex has been locked, over the queue's whole
    /// life. Every path goes through [`lock_state`](Self::lock_state),
    /// so this observably proves the batch amortization: a burst of N
    /// packets costs O(N / batch) acquisitions, not O(N).
    lock_acquisitions: AtomicU64,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize, policy: AdmissionPolicy) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        BoundedQueue {
            inner: Mutex::new(Inner { items: VecDeque::new(), closed: false }),
            not_empty: Condvar::new(),
            capacity,
            policy,
            lock_acquisitions: AtomicU64::new(0),
        }
    }

    /// How many times the queue mutex has been acquired so far.
    ///
    /// Condvar re-acquisitions inside a blocked [`pop_all`](Self::pop_all)
    /// are not counted: the consumer's cost per wakeup is the single
    /// [`lock_state`](Self::lock_state) call that drains the backlog.
    #[must_use]
    pub fn lock_acquisitions(&self) -> u64 {
        self.lock_acquisitions.load(Ordering::Relaxed)
    }

    /// The configured admission policy.
    #[must_use]
    pub fn policy(&self) -> AdmissionPolicy {
        self.policy
    }

    /// Locks the queue state, recovering from a poisoned mutex.
    ///
    /// A panicking producer (e.g. a batch iterator that panics
    /// mid-push) poisons the lock, but the guarded state — a `VecDeque`
    /// plus a closed flag — is consistent after every individual
    /// mutation, so the guard is recovered via `into_inner` semantics
    /// rather than wedging the whole shard behind the poison.
    fn lock_state(&self) -> MutexGuard<'_, Inner<T>> {
        self.lock_acquisitions.fetch_add(1, Ordering::Relaxed);
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Pushes a batch under one lock acquisition, applying the
    /// admission policy per item. Items pushed after the queue is
    /// closed are returned as rejected.
    pub fn push_batch(&self, batch: impl IntoIterator<Item = T>) -> PushOutcome<T> {
        let mut outcome = PushOutcome { rejected: Vec::new(), dropped: Vec::new() };
        let mut inner = self.lock_state();
        let mut pushed = false;
        for item in batch {
            if inner.closed {
                outcome.rejected.push(item);
                continue;
            }
            if inner.items.len() >= self.capacity {
                match self.policy {
                    AdmissionPolicy::RejectBusy => {
                        outcome.rejected.push(item);
                        continue;
                    }
                    AdmissionPolicy::DropOldest => {
                        if let Some(evicted) = inner.items.pop_front() {
                            outcome.dropped.push(evicted);
                        }
                    }
                }
            }
            inner.items.push_back(item);
            pushed = true;
        }
        drop(inner);
        if pushed {
            self.not_empty.notify_one();
        }
        outcome
    }

    /// Pushes a single control item, bypassing the capacity check (so
    /// barriers like drain/stop can never be refused). Returns `false`
    /// if the queue is closed.
    pub fn push_control(&self, item: T) -> bool {
        let mut inner = self.lock_state();
        if inner.closed {
            return false;
        }
        inner.items.push_back(item);
        drop(inner);
        self.not_empty.notify_one();
        true
    }

    /// Blocks until items are available, then drains them all. Returns
    /// `None` once the queue is closed *and* empty.
    pub fn pop_all(&self) -> Option<Vec<T>> {
        let mut inner = self.lock_state();
        loop {
            if !inner.items.is_empty() {
                return Some(inner.items.drain(..).collect());
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Current queue depth.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock_state().items.len()
    }

    /// Whether the queue is currently empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Closes the queue: future pushes are rejected, and `pop_all`
    /// returns `None` once the backlog is drained.
    pub fn close(&self) {
        let mut inner = self.lock_state();
        inner.closed = true;
        drop(inner);
        self.not_empty.notify_all();
    }
}

impl<T> std::fmt::Debug for BoundedQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoundedQueue")
            .field("capacity", &self.capacity)
            .field("policy", &self.policy)
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn reject_busy_refuses_overflow() {
        let q = BoundedQueue::new(2, AdmissionPolicy::RejectBusy);
        let outcome = q.push_batch([1, 2, 3, 4]);
        assert_eq!(outcome.rejected, vec![3, 4]);
        assert!(outcome.dropped.is_empty());
        assert_eq!(q.pop_all(), Some(vec![1, 2]));
    }

    #[test]
    fn drop_oldest_evicts_head() {
        let q = BoundedQueue::new(2, AdmissionPolicy::DropOldest);
        let outcome = q.push_batch([1, 2, 3, 4]);
        assert!(outcome.rejected.is_empty());
        assert_eq!(outcome.dropped, vec![1, 2]);
        assert_eq!(q.pop_all(), Some(vec![3, 4]));
    }

    #[test]
    fn control_pushes_bypass_capacity() {
        let q = BoundedQueue::new(1, AdmissionPolicy::RejectBusy);
        q.push_batch([1]);
        assert!(q.push_control(99));
        assert_eq!(q.pop_all(), Some(vec![1, 99]));
    }

    #[test]
    fn close_rejects_then_drains() {
        let q = BoundedQueue::new(4, AdmissionPolicy::RejectBusy);
        q.push_batch([1, 2]);
        q.close();
        assert!(!q.push_control(3));
        assert_eq!(q.push_batch([4]).rejected, vec![4]);
        assert_eq!(q.pop_all(), Some(vec![1, 2]));
        assert_eq!(q.pop_all(), None);
    }

    #[test]
    fn poisoned_lock_recovers_instead_of_wedging_the_shard() {
        let q = Arc::new(BoundedQueue::new(8, AdmissionPolicy::RejectBusy));
        // A batch iterator that panics mid-iteration panics *while the
        // queue mutex is held*, poisoning it.
        let poisoner = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                q.push_batch((0..4).map(|i| if i == 2 { panic!("producer died") } else { i }));
            })
        };
        assert!(poisoner.join().is_err(), "producer must have panicked");
        // The queue must keep working: items pushed before the panic
        // survive, and new pushes/pops go through.
        let outcome = q.push_batch([10, 11]);
        assert!(outcome.rejected.is_empty());
        assert_eq!(q.len(), 4);
        assert_eq!(q.pop_all(), Some(vec![0, 1, 10, 11]));
        q.close();
        assert_eq!(q.pop_all(), None);
    }

    #[test]
    fn burst_amortizes_lock_acquisitions() {
        // A burst of 512 packets pushed in reader-sized batches and
        // drained by pop_all must cost a tiny, deterministic number of
        // lock acquisitions — nowhere near one per packet.
        let q = BoundedQueue::new(1024, AdmissionPolicy::RejectBusy);
        let n = 512usize;
        for chunk in (0..n).collect::<Vec<_>>().chunks(64) {
            let outcome = q.push_batch(chunk.iter().copied());
            assert!(outcome.rejected.is_empty());
        }
        let mut drained = 0;
        while drained < n {
            drained += q.pop_all().expect("items pending").len();
        }
        // 8 batch pushes + 1 draining pop: far below the 512 a
        // lock-per-packet design would take.
        assert_eq!(drained, n);
        assert!(
            q.lock_acquisitions() <= 16,
            "expected ~9 acquisitions for a {}-packet burst, got {}",
            n,
            q.lock_acquisitions()
        );
    }

    #[test]
    fn consumer_wakes_on_push() {
        let q = Arc::new(BoundedQueue::new(8, AdmissionPolicy::RejectBusy));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut seen = Vec::new();
                while let Some(batch) = q.pop_all() {
                    seen.extend(batch);
                }
                seen
            })
        };
        for i in 0..100 {
            let mut pending = vec![i];
            while !pending.is_empty() {
                pending = q.push_batch(pending).rejected;
                if !pending.is_empty() {
                    std::thread::yield_now();
                }
            }
        }
        q.close();
        let mut seen = consumer.join().unwrap();
        seen.sort_unstable();
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
    }
}
