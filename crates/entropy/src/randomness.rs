//! Incremental HEDGE-style randomness-test battery.
//!
//! The entropy vector cannot separate compressed streams from
//! ciphertext: both sit at `h1 ≳ 0.95` (HEDGE, Casino et al.; EnCoD,
//! De Gaspari et al.). What *does* separate them is that DEFLATE-family
//! output fails classical randomness tests that keystream output
//! passes. This module computes four such statistics per flow,
//! streamed per-packet alongside the entropy vector:
//!
//! * **Chi-square distance** of the byte distribution from uniform —
//!   Huffman-coded output carries residual bit bias that barely moves
//!   `h1` but blows up `χ²` (a `p(1) = 0.55` bit source has `χ²`
//!   noncentrality ≈ 170 at 2 KiB while `h1 ≈ 0.99`).
//! * **Runs test** on the bit stream (MSB-first within each byte) —
//!   back-reference repetition correlates adjacent bits, dragging the
//!   observed run count away from its conditional expectation.
//! * **Byte-value autocorrelation** at lags 1, 2, and 4 — LZ match
//!   copies repeat short patterns, which ciphertext never does.
//! * **Longest byte run** — literal runs survive compression framing;
//!   a uniform stream essentially never repeats a byte 3+ times in a
//!   few KiB.
//!
//! # Incremental ≡ one-shot, bit-identical
//!
//! The battery follows the kernel's contract
//! ([`IncrementalVector`](crate::IncrementalVector)): `update` folds
//! each chunk into *integer* accumulators only (byte counts, bit/run
//! tallies, lag-pair moment sums, a rolling 4-byte window carried
//! across chunks), and [`finish`](RandomnessBattery::finish) derives
//! every float from those integers in one fixed sequence of operations.
//! Equal inputs give equal integer states regardless of chunking, and
//! equal integer states give bit-identical floats — so chunked ≡
//! one-shot holds by construction, with no per-chunk carry buffer.
//!
//! # Pooling
//!
//! The state is a fixed-size struct with **no heap storage at all**, so
//! [`reset`](RandomnessBattery::reset) trivially keeps (the absence of)
//! allocations and the pipeline's zero-steady-state-allocation
//! guarantee extends through the battery unchanged.

/// Autocorrelation lags, in feature order.
const LAGS: [usize; 3] = [1, 2, 4];

/// Number of features the battery emits, in [`finish`] order:
/// chi-square, bit-runs, autocorrelation at lags 1/2/4, longest run.
///
/// [`finish`]: RandomnessBattery::finish
pub const BATTERY_FEATURES: usize = 6;

/// Integer moment sums for one autocorrelation lag: the pair count and
/// the five sums a Pearson correlation needs (`Σa`, `Σb`, `Σa²`, `Σb²`,
/// `Σab` over pairs `(x[i−lag], x[i])`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct LagAcc {
    pairs: u64,
    sum_a: u64,
    sum_b: u64,
    sum_aa: u64,
    sum_bb: u64,
    sum_ab: u64,
}

/// Streaming randomness-test battery, fed one chunk at a time.
///
/// # Examples
///
/// ```
/// use iustitia_entropy::RandomnessBattery;
///
/// let data = b"chunked feeding is bit-identical to one-shot feeding";
/// let mut inc = RandomnessBattery::new();
/// for chunk in data.chunks(7) {
///     inc.update(chunk);
/// }
/// let mut one_shot = RandomnessBattery::new();
/// one_shot.update(data);
/// assert_eq!(inc.finish(), one_shot.finish());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RandomnessBattery {
    /// Byte-value histogram for the chi-square statistic.
    counts: [u64; 256],
    /// Total bytes fed.
    total: u64,
    /// Total 1-bits fed.
    bit_ones: u64,
    /// Bit-level runs so far (1 after the first byte's first bit).
    bit_runs: u64,
    /// Last bit fed (LSB of the previous byte), valid when `total > 0`.
    prev_bit: u8,
    /// Rolling window of the last ≤4 bytes (most recent in the low
    /// byte), carried across chunks so lag partners span packets.
    window: u32,
    /// Per-lag Pearson accumulators, parallel to [`LAGS`].
    lags: [LagAcc; LAGS.len()],
    /// Current run length of equal bytes.
    cur_run: u64,
    /// Longest run of equal bytes seen.
    max_run: u64,
}

impl Default for RandomnessBattery {
    fn default() -> Self {
        Self::new()
    }
}

impl RandomnessBattery {
    /// Creates an empty battery.
    pub fn new() -> Self {
        RandomnessBattery {
            counts: [0; 256],
            total: 0,
            bit_ones: 0,
            bit_runs: 0,
            prev_bit: 0,
            window: 0,
            lags: [LagAcc::default(); LAGS.len()],
            cur_run: 0,
            max_run: 0,
        }
    }

    /// Folds one chunk of payload into the integer accumulators.
    pub fn update(&mut self, chunk: &[u8]) {
        for &b in chunk {
            let bv = u64::from(b);
            // lint: allow(L008) — b as usize < 256, the counts table length
            self.counts[b as usize] += 1;

            // Bit stream, MSB-first within each byte: runs grow by one
            // per adjacent unequal bit pair, plus one to open the
            // stream. `b ^ (b >> 1)` marks the 7 within-byte
            // adjacencies; the byte boundary compares the previous
            // byte's LSB with this byte's MSB.
            self.bit_ones += u64::from(b.count_ones());
            let within = u64::from(((b ^ (b >> 1)) & 0x7F).count_ones());
            if self.total == 0 {
                self.bit_runs = 1 + within;
            } else {
                self.bit_runs += within + u64::from((self.prev_bit ^ (b >> 7)) & 1);
            }
            self.prev_bit = b & 1;

            // Autocorrelation: the partner for lag L is the byte fed L
            // positions earlier, read from the rolling window *before*
            // this byte is pushed in.
            for (acc, &lag) in self.lags.iter_mut().zip(&LAGS) {
                if self.total >= lag as u64 {
                    let a = u64::from((self.window >> (8 * (lag - 1))) & 0xFF);
                    acc.pairs += 1;
                    acc.sum_a += a;
                    acc.sum_b += bv;
                    acc.sum_aa += a * a;
                    acc.sum_bb += bv * bv;
                    acc.sum_ab += a * bv;
                }
            }
            self.window = (self.window << 8) | u32::from(b);

            // Longest run of equal bytes. The window's low byte now
            // holds this byte; compare against the byte before it.
            if self.total > 0 && ((self.window >> 8) & 0xFF) as u8 == b {
                self.cur_run += 1;
            } else {
                self.cur_run = 1;
            }
            self.max_run = self.max_run.max(self.cur_run);

            self.total += 1;
        }
    }

    /// Total bytes fed so far.
    pub fn total_bytes(&self) -> u64 {
        self.total
    }

    /// Rewinds to the empty state. The struct owns no heap storage, so
    /// this trivially preserves the zero-allocation pooling contract:
    /// a recycled battery is field-for-field identical to a fresh one.
    pub fn reset(&mut self) {
        *self = Self::new();
    }

    /// Derives the feature values, each normalized into `[0, 1]`:
    ///
    /// 1. **Chi-square distance** `d/(d + 255)` with
    ///    `d = |χ² − 255|` — ≈0 for uniform bytes, →1 as the byte
    ///    distribution departs from uniform.
    /// 2. **Runs ratio** `R/E[R|n₀,n₁] / 2`, clamped — ≈0.5 for
    ///    independent bits, below for run-heavy (correlated) streams.
    /// 3. **Autocorrelation** `(r + 1)/2` at lags 1, 2, and 4 (three
    ///    features) — ≈0.5 for independent bytes, above for positively
    ///    correlated ones.
    /// 4. **Longest byte run** `min(run, 256)/256`.
    ///
    /// All floats derive from the integer accumulators in a fixed
    /// operation order, so equal fed inputs (however chunked) give
    /// bit-identical outputs. An empty battery returns all zeros.
    pub fn finish(&self) -> [f64; BATTERY_FEATURES] {
        if self.total == 0 {
            return [0.0; BATTERY_FEATURES];
        }
        let n = self.total as f64;

        // Chi-square against the uniform byte distribution, 255 df.
        let expected = n / 256.0;
        let mut chi = 0.0f64;
        for &c in &self.counts {
            let d = c as f64 - expected;
            chi += d * d / expected;
        }
        let chi_dist = (chi - 255.0).abs();
        let chi_feature = chi_dist / (chi_dist + 255.0);

        // Wald–Wolfowitz runs ratio, conditioned on the observed bit
        // counts: E[R | n0, n1] = 1 + 2·n0·n1/bits.
        let bits = 8 * self.total;
        let ones = self.bit_ones;
        let zeros = bits - ones;
        let runs_feature = if ones == 0 || zeros == 0 {
            0.0
        } else {
            let expected_runs = 1.0 + (2.0 * ones as f64 * zeros as f64) / bits as f64;
            (self.bit_runs as f64 / expected_runs / 2.0).clamp(0.0, 1.0)
        };

        let mut out = [0.0; BATTERY_FEATURES];
        out[0] = chi_feature;
        out[1] = runs_feature;
        for (slot, acc) in out[2..2 + LAGS.len()].iter_mut().zip(&self.lags) {
            *slot = pearson_feature(acc);
        }
        out[2 + LAGS.len()] = self.max_run.min(256) as f64 / 256.0;
        out
    }
}

/// Pearson correlation of a lag's pairs, mapped to `[0, 1]` via
/// `(r + 1)/2`. The products are exact in `i128`, so the only float
/// operations are the final conversions, square roots, and one divide —
/// a fixed sequence independent of how the input was chunked.
/// Degenerate accumulators (fewer than two pairs, or a constant side)
/// report the uncorrelated midpoint `0.5`.
fn pearson_feature(acc: &LagAcc) -> f64 {
    if acc.pairs < 2 {
        return 0.5;
    }
    let m = i128::from(acc.pairs);
    let num = m * i128::from(acc.sum_ab) - i128::from(acc.sum_a) * i128::from(acc.sum_b);
    let den_a = m * i128::from(acc.sum_aa) - i128::from(acc.sum_a) * i128::from(acc.sum_a);
    let den_b = m * i128::from(acc.sum_bb) - i128::from(acc.sum_b) * i128::from(acc.sum_b);
    if den_a <= 0 || den_b <= 0 {
        return 0.5;
    }
    let r = num as f64 / ((den_a as f64).sqrt() * (den_b as f64).sqrt());
    (0.5 * (r + 1.0)).clamp(0.0, 1.0)
}

/// One-shot battery over a complete byte slice.
pub fn battery_features(data: &[u8]) -> [f64; BATTERY_FEATURES] {
    let mut b = RandomnessBattery::new();
    b.update(data);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-uniform bytes (splitmix64 stream).
    fn uniform_bytes(n: usize, seed: u64) -> Vec<u8> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                (z ^ (z >> 31)) as u8
            })
            .collect()
    }

    #[test]
    fn incremental_equals_one_shot_across_chunkings() {
        let data = uniform_bytes(4096, 7);
        let one_shot = battery_features(&data);
        for chunk_len in [1usize, 2, 3, 7, 64, 1500, 4096] {
            let mut inc = RandomnessBattery::new();
            for chunk in data.chunks(chunk_len) {
                inc.update(chunk);
            }
            assert_eq!(inc.finish(), one_shot, "chunk_len={chunk_len}");
        }
    }

    #[test]
    fn reset_restores_the_fresh_state() {
        let mut battery = RandomnessBattery::new();
        battery.update(&uniform_bytes(1000, 3));
        battery.reset();
        assert_eq!(battery, RandomnessBattery::new());
        battery.update(b"abc");
        assert_eq!(battery.finish(), battery_features(b"abc"));
    }

    #[test]
    fn empty_input_reports_zeros() {
        assert_eq!(battery_features(&[]), [0.0; BATTERY_FEATURES]);
    }

    #[test]
    fn uniform_bytes_look_random() {
        let f = battery_features(&uniform_bytes(8192, 42));
        assert!(f[0] < 0.25, "chi feature on uniform bytes: {}", f[0]);
        assert!((f[1] - 0.5).abs() < 0.05, "runs feature on uniform bytes: {}", f[1]);
        for (lag, value) in f.iter().enumerate().take(5).skip(2) {
            assert!((value - 0.5).abs() < 0.05, "lag feature {lag}: {value}");
        }
        assert!(f[5] <= 3.0 / 256.0, "longest run on uniform bytes: {}", f[5]);
    }

    #[test]
    fn biased_bits_fail_chi_square_while_repetition_fails_autocorrelation() {
        // Bytes of iid biased bits (p(1)=0.55): h1 stays ≈0.99 but the
        // popcount skew concentrates byte mass — chi must light up.
        let mut state = 99u64;
        let mut bit = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 40) as u32 % 100 < 55
        };
        let biased: Vec<u8> = (0..4096)
            .map(|_| {
                let mut b = 0u8;
                for _ in 0..8 {
                    b = (b << 1) | u8::from(bit());
                }
                b
            })
            .collect();
        let f = battery_features(&biased);
        let u = battery_features(&uniform_bytes(4096, 1));
        assert!(f[0] > 2.0 * u[0] + 0.1, "biased chi {} vs uniform {}", f[0], u[0]);

        // Repeated 2-byte patterns: lag-2 autocorrelation must rise.
        let mut patterned = Vec::new();
        let base = uniform_bytes(4096, 5);
        let mut i = 0;
        while patterned.len() < 4096 {
            let pat = [base[i % base.len()], base[(i + 1) % base.len()]];
            for _ in 0..3 {
                patterned.extend_from_slice(&pat);
            }
            i += 2;
        }
        let p = battery_features(&patterned);
        assert!(p[3] > 0.6, "lag-2 autocorrelation on patterned data: {}", p[3]);
    }

    #[test]
    fn single_byte_input_is_well_defined() {
        let f = battery_features(&[0xA5]);
        assert!(f.iter().all(|v| v.is_finite()));
        assert_eq!(f[5], 1.0 / 256.0);
    }
}
