//! Frequency histograms over k-byte grams.
//!
//! The paper treats every consecutive `k` bytes of a file (or flow buffer)
//! as one element of the alphabet `f_k` of all possible `k`-byte strings,
//! so a sequence of `m` bytes yields `m - k + 1` elements. This module
//! provides the counting structure shared by exact entropy calculation
//! ([`crate::vector`]) and the divergence measures ([`crate::divergence`]).
//!
//! Counting is the per-byte hot path of the whole system (§4 of the
//! paper demands it be near-memcpy cheap), so the storage is tiered by
//! alphabet size instead of always paying a general-purpose hash map:
//!
//! * `k = 1` — a dense `[u64; 256]` array: one indexed add per byte.
//! * `k = 2` — a dense 64 KiB (`65 536 × u64`) table plus a *touched*
//!   index list, so `distinct`, iteration, and reset cost O(distinct)
//!   rather than O(65 536).
//! * `k ≥ 3` — the open-addressing Fx-hashed [`CounterTable`]
//!   (`256^k` no longer fits a dense table).
//!
//! All three representations sit behind the same API, and
//! [`sum_m_log_m`](GramHistogram::sum_m_log_m) still sums counts in
//! sorted order, so every float the crate derives from a histogram is
//! bit-identical across representations.

use crate::fastmap::CounterTable;

/// Number of slots in the dense `k = 2` table (`256^2`).
const DENSE2_SLOTS: usize = 1 << 16;

/// A frequency histogram of the `k`-byte grams of a byte sequence.
///
/// Grams are packed into a `u128` (big-endian within the low `8k` bits),
/// which supports every feature width used by the paper (`k ≤ 10`) and
/// anything up to `k = 16`.
///
/// # Examples
///
/// ```
/// use iustitia_entropy::GramHistogram;
///
/// let h = GramHistogram::from_bytes(b"abab", 2);
/// // windows: "ab", "ba", "ab"
/// assert_eq!(h.window_count(), 3);
/// assert_eq!(h.count_of(b"ab"), 2);
/// assert_eq!(h.count_of(b"ba"), 1);
/// assert_eq!(h.distinct(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct GramHistogram {
    k: usize,
    store: Store,
    windows: u64,
}

/// Width-tiered counter storage (see the module docs).
#[derive(Debug, Clone)]
enum Store {
    /// `k = 1`: dense byte-indexed counters; `distinct` is maintained
    /// on first touch so it never needs a scan.
    Dense1 {
        /// `counts[b]` = occurrences of byte `b`.
        counts: Box<[u64; 256]>,
        /// Number of non-zero entries.
        distinct: u32,
    },
    /// `k = 2`: dense gram-indexed counters plus the list of occupied
    /// indices (each index appears exactly once, pushed on first touch).
    Dense2 {
        /// `counts[g]` = occurrences of packed 2-gram `g`.
        counts: Box<[u64]>,
        /// Indices with non-zero count, in first-touch order.
        touched: Vec<u16>,
    },
    /// `k ≥ 3`: open-addressing Fx-hashed counter table.
    Open(CounterTable),
}

impl Store {
    fn for_width(k: usize) -> Self {
        match k {
            // lint: allow(L009) — tier storage is allocated once per histogram at flow setup; pooled reuse clears it
            1 => Store::Dense1 { counts: Box::new([0u64; 256]), distinct: 0 },
            2 => Store::Dense2 {
                // lint: allow(L009) — tier storage is allocated once per histogram at flow setup; pooled reuse clears it
                counts: vec![0u64; DENSE2_SLOTS].into_boxed_slice(),
                touched: Vec::new(),
            },
            _ => Store::Open(CounterTable::new()),
        }
    }

    fn get(&self, key: u128) -> u64 {
        match self {
            // lint: allow(L008) — key is masked to the 256-slot dense table
            Store::Dense1 { counts, .. } => counts[key as usize & 0xFF],
            // lint: allow(L008) — key is masked to the 2^16-slot dense table
            Store::Dense2 { counts, .. } => counts[key as usize & 0xFFFF],
            Store::Open(table) => table.get(key),
        }
    }

    fn distinct(&self) -> usize {
        match self {
            Store::Dense1 { distinct, .. } => *distinct as usize,
            Store::Dense2 { touched, .. } => touched.len(),
            Store::Open(table) => table.len(),
        }
    }

    /// Resets every counter while keeping allocations (pool recycling):
    /// O(1) pages for `k = 1`, O(distinct) for `k = 2`, O(capacity) for
    /// the open table.
    fn clear(&mut self) {
        match self {
            Store::Dense1 { counts, distinct } => {
                counts.fill(0);
                *distinct = 0;
            }
            Store::Dense2 { counts, touched } => {
                for &idx in touched.iter() {
                    // lint: allow(L008) — touched holds indices previously written, all < 2^16
                    counts[idx as usize] = 0;
                }
                touched.clear();
            }
            Store::Open(table) => table.clear(),
        }
    }
}

/// Iterator over a histogram's `(packed_gram, count)` pairs.
enum StoreIter<'a> {
    Dense1(std::iter::Enumerate<std::slice::Iter<'a, u64>>),
    Dense2 { counts: &'a [u64], touched: std::slice::Iter<'a, u16> },
    Open(Box<dyn Iterator<Item = (u128, u64)> + 'a>),
}

impl Iterator for StoreIter<'_> {
    type Item = (u128, u64);

    fn next(&mut self) -> Option<(u128, u64)> {
        match self {
            StoreIter::Dense1(inner) => {
                for (i, &c) in inner.by_ref() {
                    if c != 0 {
                        return Some((i as u128, c));
                    }
                }
                None
            }
            StoreIter::Dense2 { counts, touched } => {
                touched.next().map(|&idx| (u128::from(idx), counts[idx as usize]))
            }
            StoreIter::Open(inner) => inner.next(),
        }
    }
}

/// One counting step of the dense `k = 2` tier, kept as a free function
/// so the unrolled slab loop in
/// [`GramHistogram::extend_packed_carry`] stays branch-light and the
/// borrow of `counts` / `touched` is taken once per lane.
#[inline(always)]
fn bump_dense2(counts: &mut [u64], touched: &mut Vec<u16>, idx: u16) {
    // lint: allow(L008) — idx is a u16, always within the 2^16-slot dense table
    let c = &mut counts[idx as usize];
    if *c == 0 {
        // lint: allow(L009) — touched holds at most 2^16 entries; its capacity survives pooled reuse
        touched.push(idx);
    }
    *c += 1;
}

/// Packs up to 16 bytes into a `u128` key.
///
/// # Panics
///
/// Panics if `gram.len() > 16`.
#[inline]
pub(crate) fn pack_gram(gram: &[u8]) -> u128 {
    // lint: allow(L008) — k <= 16 is a GramHistogram construction invariant; every gram is a k-byte window
    assert!(gram.len() <= 16, "grams longer than 16 bytes are unsupported");
    let mut key: u128 = 0;
    for &b in gram {
        key = (key << 8) | u128::from(b);
    }
    key
}

impl GramHistogram {
    /// Creates an empty histogram for `k`-byte grams.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `k > 16`.
    pub fn new(k: usize) -> Self {
        // lint: allow(L008) — constructor contract: k is fixed at configuration time, not per packet
        assert!((1..=16).contains(&k), "feature width k must be in 1..=16, got {k}");
        GramHistogram { k, store: Store::for_width(k), windows: 0 }
    }

    /// Builds the histogram of all `k`-grams of `data`.
    ///
    /// If `data.len() < k` the histogram is empty.
    pub fn from_bytes(data: &[u8], k: usize) -> Self {
        let mut h = Self::new(k);
        h.extend_from_bytes(data);
        h
    }

    /// Pre-sizes the backing store for counting the grams of `bytes`
    /// contiguous payload bytes, so feeding that many never rehashes
    /// mid-stream. No-op on the dense tiers (already full-alphabet).
    pub fn reserve_bytes(&mut self, bytes: usize) {
        if let Store::Open(table) = &mut self.store {
            table.reserve(bytes.saturating_sub(self.k - 1));
        }
    }

    /// Counts all `k`-grams of `data` into this histogram.
    ///
    /// Note that calling this twice with two halves of a buffer is *not*
    /// equivalent to one call with the whole buffer: the grams spanning
    /// the boundary are not counted. The flow pipeline therefore streams
    /// through [`crate::incremental::IncrementalVector`], whose rolling
    /// window keeps boundary grams.
    pub fn extend_from_bytes(&mut self, data: &[u8]) {
        if data.len() < self.k {
            return;
        }
        if let Store::Open(table) = &mut self.store {
            // Worst case every window is distinct; one rehash up front
            // replaces the cascade of doublings mid-scan.
            table.reserve(data.len() - self.k + 1);
        }
        // Seed the rolling window with the first k−1 bytes, then run the
        // same slab loop the incremental path uses: every window of
        // `data` ends at or after byte k−1.
        // lint: allow(L008) — data.len() >= k (early return above), so k - 1 is in range
        let seed = pack_gram(&data[..self.k - 1]);
        // lint: allow(L008) — data.len() >= k (early return above)
        self.extend_packed_carry(seed, (self.k - 1) as u64, &data[self.k - 1..]);
    }

    /// Counts every `k`-gram window of a flow's byte stream that ends
    /// inside `chunk` — the slab path shared by the one-shot and
    /// incremental feeds. `prev_key` is the rolling packed window of the
    /// last ≤16 bytes fed before `chunk` (as maintained by
    /// [`crate::incremental::IncrementalVector`]) and `total` is how
    /// many bytes were fed before.
    ///
    /// The storage tier is resolved **once per chunk** and the inner
    /// loops run over contiguous bytes in fixed-width lanes (the dense
    /// `k = 2` tier is 4-way unrolled with indices derived straight from
    /// byte pairs, so the only loop-carried value is one byte), instead
    /// of dispatching on the tier per byte.
    ///
    /// Window-for-window identical to feeding the same bytes through the
    /// per-byte rolling update: the window ending at chunk byte `i`
    /// (0-based) covers stream bytes `total+i+1−k ..= total+i` and is
    /// valid iff `total + i + 1 >= k`, so the first counting byte is
    /// `start = (k − 1 − total).max(0)` and each later byte slides the
    /// same window by one. Equal window enumerations give equal count
    /// multisets, and [`sum_m_log_m`](Self::sum_m_log_m) sorts before
    /// summing, so every derived float is bit-identical.
    pub(crate) fn extend_packed_carry(&mut self, prev_key: u128, total: u64, chunk: &[u8]) {
        let start = (self.k as u64).saturating_sub(total + 1) as usize;
        if start >= chunk.len() {
            return;
        }
        let windows = chunk.len() - start;
        match &mut self.store {
            Store::Dense1 { counts, distinct } => {
                // k == 1: every byte is its own window (start == 0) and
                // the byte *is* the table index — a pure contiguous
                // counting loop with no rolling state at all.
                for &b in chunk {
                    // lint: allow(L008) — b as usize < 256, the Dense1 table length
                    let c = &mut counts[b as usize];
                    if *c == 0 {
                        *distinct += 1;
                    }
                    *c += 1;
                }
            }
            Store::Dense2 { counts, touched } => {
                // k == 2 ⇒ start ∈ {0, 1}: either the previous byte is
                // the low byte of `prev_key`, or (total == 0) the first
                // chunk byte only warms the window.
                let mut prev: u8 = if start == 0 {
                    prev_key as u8
                } else {
                    // lint: allow(L008) — start < chunk.len() (early return above)
                    chunk[0]
                };
                // lint: allow(L008) — start < chunk.len() (early return above)
                let body = &chunk[start..];
                let mut quads = body.chunks_exact(4);
                for quad in quads.by_ref() {
                    // lint: allow(L008) — chunks_exact(4) yields exactly 4 bytes
                    let (b0, b1, b2, b3) = (quad[0], quad[1], quad[2], quad[3]);
                    bump_dense2(counts, touched, u16::from_be_bytes([prev, b0]));
                    bump_dense2(counts, touched, u16::from_be_bytes([b0, b1]));
                    bump_dense2(counts, touched, u16::from_be_bytes([b1, b2]));
                    bump_dense2(counts, touched, u16::from_be_bytes([b2, b3]));
                    prev = b3;
                }
                for &b in quads.remainder() {
                    bump_dense2(counts, touched, u16::from_be_bytes([prev, b]));
                    prev = b;
                }
            }
            Store::Open(table) => {
                let mask = width_mask(self.k);
                let mut key = prev_key;
                // lint: allow(L008) — start < chunk.len() (early return above)
                for &b in &chunk[..start] {
                    key = (key << 8) | u128::from(b);
                }
                // lint: allow(L008) — start < chunk.len() (early return above)
                for &b in &chunk[start..] {
                    key = ((key << 8) | u128::from(b)) & mask;
                    table.increment(key);
                }
            }
        }
        self.windows += windows as u64;
    }

    /// Counts the `k`-grams of `carry ++ data` into this histogram,
    /// where `carry` is the tail of previously counted bytes
    /// (`carry.len() < k` required): because `carry` is shorter than
    /// `k`, every window of the concatenation ends inside `data` and is
    /// therefore new.
    ///
    /// If `carry.len() + data.len() < k` nothing is counted.
    ///
    /// # Panics
    ///
    /// Panics if `carry.len() >= k`.
    pub fn extend_across(&mut self, carry: &[u8], data: &[u8]) {
        assert!(carry.len() < self.k, "carry must be shorter than k");
        if carry.is_empty() {
            self.extend_from_bytes(data);
            return;
        }
        let total = carry.len() + data.len();
        if total < self.k {
            return;
        }
        // The carry bytes are exactly the rolling window the incremental
        // path would hold after feeding them, so the slab loop applies
        // directly (start = k − 1 − carry.len()).
        self.extend_packed_carry(pack_gram(carry), carry.len() as u64, data);
    }

    /// Resets the histogram to empty while keeping its allocations
    /// (dense tables, open-table slots), so pooled flow state recycles
    /// without touching the allocator.
    pub fn clear(&mut self) {
        self.store.clear();
        self.windows = 0;
    }

    /// The gram width `k` this histogram counts.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Total number of windows counted (`m - k + 1` for a single
    /// `m`-byte input).
    pub fn window_count(&self) -> u64 {
        self.windows
    }

    /// Number of distinct grams observed.
    pub fn distinct(&self) -> usize {
        self.store.distinct()
    }

    /// The count of one specific gram (0 if never seen).
    ///
    /// # Panics
    ///
    /// Panics if `gram.len() != k`.
    pub fn count_of(&self, gram: &[u8]) -> u64 {
        assert_eq!(gram.len(), self.k, "gram length must equal k");
        self.store.get(pack_gram(gram))
    }

    /// Iterates over `(packed_gram, count)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (u128, u64)> + '_ {
        match &self.store {
            Store::Dense1 { counts, .. } => StoreIter::Dense1(counts.iter().enumerate()),
            Store::Dense2 { counts, touched } => {
                StoreIter::Dense2 { counts, touched: touched.iter() }
            }
            // lint: allow(L009) — arbitrary-order diagnostic iterator; reached from the sweep only via .iter() fan-out
            Store::Open(table) => StoreIter::Open(Box::new(table.iter())),
        }
    }

    /// Iterates over the raw counts in arbitrary order.
    pub fn counts(&self) -> impl Iterator<Item = u64> + '_ {
        self.iter().map(|(_, c)| c)
    }

    /// Σ mᵢ·log2(mᵢ) over all gram counts mᵢ — the quantity `S_k`
    /// that the streaming sketch of [`crate::estimate`] approximates.
    ///
    /// Counts are summed in sorted order so the result is bit-for-bit
    /// reproducible — across runs *and* across storage tiers (hash-map,
    /// dense, and open-addressing iteration orders all collapse to the
    /// same sorted multiset).
    pub fn sum_m_log_m(&self) -> f64 {
        let mut counts: Vec<u64> = Vec::new();
        self.sum_m_log_m_with(&mut counts)
    }

    /// [`sum_m_log_m`](Self::sum_m_log_m) using a caller-owned scratch
    /// buffer, so steady-state feature finishes allocate nothing once
    /// the buffer has grown to the flow's distinct-gram count.
    ///
    /// Matches the store tiers directly (instead of going through
    /// [`Self::iter`], whose open-table arm boxes its iterator): the
    /// same non-zero counts land in `scratch`, are sorted, and are
    /// summed by the identical fold — bit-for-bit the same float as
    /// `sum_m_log_m`.
    pub fn sum_m_log_m_with(&self, scratch: &mut Vec<u64>) -> f64 {
        scratch.clear();
        match &self.store {
            Store::Dense1 { counts, .. } => {
                scratch.extend(counts.iter().copied().filter(|&c| c != 0));
            }
            Store::Dense2 { counts, touched } => {
                // lint: allow(L008) — touched holds indices previously written, all < 2^16
                scratch.extend(touched.iter().map(|&idx| counts[idx as usize]));
            }
            Store::Open(table) => scratch.extend(table.iter().map(|(_, c)| c)),
        }
        scratch.sort_unstable();
        scratch
            .iter()
            .map(|&c| {
                let c = c as f64;
                c * c.log2()
            })
            .sum()
    }

    /// Number of counters an exact implementation needs for this input —
    /// used to size the `(δ,ε)` estimation budget `α` (Formula 3).
    pub fn counters_used(&self) -> usize {
        self.store.distinct()
    }
}

/// The low-`8k`-bit mask of a rolling window key.
#[inline]
pub(crate) fn width_mask(k: usize) -> u128 {
    if k >= 16 {
        u128::MAX
    } else {
        (1u128 << (8 * k)) - 1
    }
}

impl PartialEq for GramHistogram {
    /// Semantic equality: same width, same windows, same gram → count
    /// mapping — independent of storage tier or insertion order.
    fn eq(&self, other: &Self) -> bool {
        self.k == other.k
            && self.windows == other.windows
            && self.distinct() == other.distinct()
            && self.iter().all(|(gram, count)| other.store.get(gram) == count)
    }
}

impl Eq for GramHistogram {}

impl Extend<u8> for GramHistogram {
    /// Extends from an iterator of bytes. Equivalent to collecting the
    /// bytes and calling [`GramHistogram::extend_from_bytes`] once.
    fn extend<T: IntoIterator<Item = u8>>(&mut self, iter: T) {
        // lint: allow(L009) — convenience Extend impl; the pipeline feeds slices via extend_from_bytes
        let buf: Vec<u8> = iter.into_iter().collect();
        self.extend_from_bytes(&buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_is_empty() {
        let h = GramHistogram::from_bytes(b"", 1);
        assert_eq!(h.window_count(), 0);
        assert_eq!(h.distinct(), 0);
    }

    #[test]
    fn input_shorter_than_k_is_empty() {
        let h = GramHistogram::from_bytes(b"ab", 3);
        assert_eq!(h.window_count(), 0);
    }

    #[test]
    fn single_byte_grams() {
        let h = GramHistogram::from_bytes(b"aabbbc", 1);
        assert_eq!(h.window_count(), 6);
        assert_eq!(h.count_of(b"a"), 2);
        assert_eq!(h.count_of(b"b"), 3);
        assert_eq!(h.count_of(b"c"), 1);
        assert_eq!(h.count_of(b"z"), 0);
        assert_eq!(h.distinct(), 3);
    }

    #[test]
    fn overlapping_windows_match_paper_example() {
        // Paper §3.1: F = <a,b,c,d> as 2-grams is <ab, bc, cd>.
        let h = GramHistogram::from_bytes(b"abcd", 2);
        assert_eq!(h.window_count(), 3);
        assert_eq!(h.count_of(b"ab"), 1);
        assert_eq!(h.count_of(b"bc"), 1);
        assert_eq!(h.count_of(b"cd"), 1);
    }

    #[test]
    fn window_count_is_m_minus_k_plus_1() {
        for k in 1..=10 {
            let data = vec![7u8; 100];
            let h = GramHistogram::from_bytes(&data, k);
            assert_eq!(h.window_count(), (100 - k + 1) as u64, "k={k}");
            assert_eq!(h.distinct(), 1);
        }
    }

    #[test]
    fn wide_grams_pack_correctly() {
        let data: Vec<u8> = (0u8..32).collect();
        let h = GramHistogram::from_bytes(&data, 10);
        assert_eq!(h.window_count(), 23);
        assert_eq!(h.distinct(), 23);
        assert_eq!(h.count_of(&data[0..10]), 1);
        assert_eq!(h.count_of(&data[22..32]), 1);
    }

    #[test]
    fn k16_mask_does_not_overflow() {
        let data: Vec<u8> = (0u8..64).map(|i| i.wrapping_mul(37)).collect();
        let h = GramHistogram::from_bytes(&data, 16);
        assert_eq!(h.window_count(), 49);
        assert_eq!(h.count_of(&data[0..16]), 1);
    }

    #[test]
    fn sum_m_log_m_matches_manual() {
        let h = GramHistogram::from_bytes(b"aabb", 1);
        // counts: a=2, b=2 → 2*log2(2) + 2*log2(2) = 4
        assert!((h.sum_m_log_m() - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "feature width k")]
    fn zero_k_panics() {
        GramHistogram::new(0);
    }

    #[test]
    #[should_panic(expected = "gram length")]
    fn count_of_wrong_len_panics() {
        GramHistogram::from_bytes(b"abc", 2).count_of(b"abc");
    }

    #[test]
    fn extend_across_matches_contiguous_counting() {
        let data: Vec<u8> = (0u8..64).map(|i| i.wrapping_mul(31)).collect();
        for k in 2..=5 {
            for cut in [1usize, k - 1, k, 17, 63] {
                let whole = GramHistogram::from_bytes(&data, k);
                let mut split = GramHistogram::new(k);
                split.extend_from_bytes(&data[..cut]);
                let carry_start = cut.saturating_sub(k - 1);
                split.extend_across(&data[carry_start..cut], &data[cut..]);
                assert_eq!(split, whole, "k={k} cut={cut}");
            }
        }
    }

    #[test]
    fn extend_across_short_total_counts_nothing() {
        let mut h = GramHistogram::new(4);
        h.extend_across(b"ab", b"c");
        assert_eq!(h.window_count(), 0);
        assert_eq!(h.distinct(), 0);
    }

    #[test]
    #[should_panic(expected = "carry must be shorter")]
    fn extend_across_long_carry_panics() {
        GramHistogram::new(2).extend_across(b"ab", b"cd");
    }

    #[test]
    fn extend_trait_counts_like_slice() {
        let mut h = GramHistogram::new(2);
        h.extend(b"abcd".iter().copied());
        assert_eq!(h.window_count(), 3);
    }

    #[test]
    fn iter_visits_every_tier_correctly() {
        for k in [1usize, 2, 3] {
            let data: Vec<u8> = (0u8..=255).flat_map(|b| [b, b.wrapping_mul(7)]).collect();
            let h = GramHistogram::from_bytes(&data, k);
            let mut pairs: Vec<(u128, u64)> = h.iter().collect();
            pairs.sort_unstable();
            assert_eq!(pairs.len(), h.distinct(), "k={k}");
            let total: u64 = pairs.iter().map(|&(_, c)| c).sum();
            assert_eq!(total, h.window_count(), "k={k}");
            for &(gram, count) in &pairs {
                assert!(count > 0);
                let mut bytes = vec![0u8; k];
                for (i, byte) in bytes.iter_mut().enumerate() {
                    *byte = (gram >> (8 * (k - 1 - i))) as u8;
                }
                assert_eq!(h.count_of(&bytes), count, "k={k} gram={gram:#x}");
            }
        }
    }

    #[test]
    fn clear_resets_but_keeps_counting_correctly() {
        for k in [1usize, 2, 4] {
            let data: Vec<u8> = (0u8..200).map(|i| i.wrapping_mul(13)).collect();
            let mut h = GramHistogram::from_bytes(&data, k);
            h.clear();
            assert_eq!(h.window_count(), 0, "k={k}");
            assert_eq!(h.distinct(), 0, "k={k}");
            h.extend_from_bytes(&data);
            assert_eq!(h, GramHistogram::from_bytes(&data, k), "k={k}");
        }
    }

    #[test]
    fn equality_is_semantic_not_representational() {
        // Same counts reached through different feeding orders.
        let mut a = GramHistogram::new(2);
        a.extend_from_bytes(b"xyxy");
        let mut b = GramHistogram::new(2);
        b.extend_from_bytes(b"xy");
        b.extend_across(b"y", b"xy");
        assert_eq!(a, b);
        // Different counts are unequal even with equal distinct/windows.
        let c = GramHistogram::from_bytes(b"xxyy", 2);
        assert_ne!(a, c);
    }
}
