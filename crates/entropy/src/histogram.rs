//! Frequency histograms over k-byte grams.
//!
//! The paper treats every consecutive `k` bytes of a file (or flow buffer)
//! as one element of the alphabet `f_k` of all possible `k`-byte strings,
//! so a sequence of `m` bytes yields `m - k + 1` elements. This module
//! provides the counting structure shared by exact entropy calculation
//! ([`crate::vector`]) and the divergence measures ([`crate::divergence`]).

use std::collections::HashMap;

/// A frequency histogram of the `k`-byte grams of a byte sequence.
///
/// Grams are packed into a `u128` (big-endian within the low `8k` bits),
/// which supports every feature width used by the paper (`k ≤ 10`) and
/// anything up to `k = 16`.
///
/// # Examples
///
/// ```
/// use iustitia_entropy::GramHistogram;
///
/// let h = GramHistogram::from_bytes(b"abab", 2);
/// // windows: "ab", "ba", "ab"
/// assert_eq!(h.window_count(), 3);
/// assert_eq!(h.count_of(b"ab"), 2);
/// assert_eq!(h.count_of(b"ba"), 1);
/// assert_eq!(h.distinct(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GramHistogram {
    k: usize,
    counts: HashMap<u128, u64>,
    windows: u64,
}

/// Packs up to 16 bytes into a `u128` key.
///
/// # Panics
///
/// Panics if `gram.len() > 16`.
#[inline]
pub(crate) fn pack_gram(gram: &[u8]) -> u128 {
    assert!(gram.len() <= 16, "grams longer than 16 bytes are unsupported");
    let mut key: u128 = 0;
    for &b in gram {
        key = (key << 8) | u128::from(b);
    }
    key
}

impl GramHistogram {
    /// Creates an empty histogram for `k`-byte grams.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `k > 16`.
    pub fn new(k: usize) -> Self {
        assert!((1..=16).contains(&k), "feature width k must be in 1..=16, got {k}");
        GramHistogram { k, counts: HashMap::new(), windows: 0 }
    }

    /// Builds the histogram of all `k`-grams of `data`.
    ///
    /// If `data.len() < k` the histogram is empty.
    pub fn from_bytes(data: &[u8], k: usize) -> Self {
        let mut h = Self::new(k);
        h.extend_from_bytes(data);
        h
    }

    /// Counts all `k`-grams of `data` into this histogram.
    ///
    /// Note that calling this twice with two halves of a buffer is *not*
    /// equivalent to one call with the whole buffer: the grams spanning
    /// the boundary are not counted. The flow pipeline therefore buffers
    /// `b` contiguous payload bytes before computing features.
    pub fn extend_from_bytes(&mut self, data: &[u8]) {
        if data.len() < self.k {
            return;
        }
        if self.k == 1 {
            // Fast path: dense iteration without window packing.
            for &b in data {
                *self.counts.entry(u128::from(b)).or_insert(0) += 1;
            }
            self.windows += data.len() as u64;
            return;
        }
        let mask: u128 = if self.k == 16 { u128::MAX } else { (1u128 << (8 * self.k)) - 1 };
        let mut key = pack_gram(&data[..self.k - 1]);
        for &b in &data[self.k - 1..] {
            key = ((key << 8) | u128::from(b)) & mask;
            *self.counts.entry(key).or_insert(0) += 1;
        }
        self.windows += (data.len() - self.k + 1) as u64;
    }

    /// Counts the `k`-grams of `carry ++ data` into this histogram,
    /// where `carry` is the tail of previously counted bytes
    /// (`carry.len() < k` required). Used by the incremental builder
    /// ([`crate::incremental::IncrementalVector`]) to count grams that
    /// straddle packet boundaries without re-feeding whole buffers:
    /// because `carry` is shorter than `k`, every window of the
    /// concatenation ends inside `data` and is therefore new.
    ///
    /// If `carry.len() + data.len() < k` nothing is counted.
    ///
    /// # Panics
    ///
    /// Panics if `carry.len() >= k`.
    pub fn extend_across(&mut self, carry: &[u8], data: &[u8]) {
        assert!(carry.len() < self.k, "carry must be shorter than k");
        if carry.is_empty() {
            self.extend_from_bytes(data);
            return;
        }
        let total = carry.len() + data.len();
        if total < self.k {
            return;
        }
        let mask: u128 = if self.k == 16 { u128::MAX } else { (1u128 << (8 * self.k)) - 1 };
        let mut key: u128 = 0;
        let mut fed = 0usize;
        for &b in carry.iter().chain(data.iter()) {
            key = ((key << 8) | u128::from(b)) & mask;
            fed += 1;
            if fed >= self.k {
                *self.counts.entry(key).or_insert(0) += 1;
            }
        }
        self.windows += (total - self.k + 1) as u64;
    }

    /// The gram width `k` this histogram counts.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Total number of windows counted (`m - k + 1` for a single
    /// `m`-byte input).
    pub fn window_count(&self) -> u64 {
        self.windows
    }

    /// Number of distinct grams observed.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// The count of one specific gram (0 if never seen).
    ///
    /// # Panics
    ///
    /// Panics if `gram.len() != k`.
    pub fn count_of(&self, gram: &[u8]) -> u64 {
        assert_eq!(gram.len(), self.k, "gram length must equal k");
        self.counts.get(&pack_gram(gram)).copied().unwrap_or(0)
    }

    /// Iterates over `(packed_gram, count)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (u128, u64)> + '_ {
        self.counts.iter().map(|(&g, &c)| (g, c))
    }

    /// Iterates over the raw counts in arbitrary order.
    pub fn counts(&self) -> impl Iterator<Item = u64> + '_ {
        self.counts.values().copied()
    }

    /// Σ mᵢ·log2(mᵢ) over all gram counts mᵢ — the quantity `S_k`
    /// that the streaming sketch of [`crate::estimate`] approximates.
    ///
    /// Counts are summed in sorted order so the result is bit-for-bit
    /// reproducible (HashMap iteration order would otherwise perturb
    /// the floating-point sum across runs).
    pub fn sum_m_log_m(&self) -> f64 {
        let mut counts: Vec<u64> = self.counts.values().copied().collect();
        counts.sort_unstable();
        counts
            .into_iter()
            .map(|c| {
                let c = c as f64;
                c * c.log2()
            })
            .sum()
    }

    /// Number of counters an exact implementation needs for this input —
    /// used to size the `(δ,ε)` estimation budget `α` (Formula 3).
    pub fn counters_used(&self) -> usize {
        self.counts.len()
    }
}

impl Extend<u8> for GramHistogram {
    /// Extends from an iterator of bytes. Equivalent to collecting the
    /// bytes and calling [`GramHistogram::extend_from_bytes`] once.
    fn extend<T: IntoIterator<Item = u8>>(&mut self, iter: T) {
        let buf: Vec<u8> = iter.into_iter().collect();
        self.extend_from_bytes(&buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_is_empty() {
        let h = GramHistogram::from_bytes(b"", 1);
        assert_eq!(h.window_count(), 0);
        assert_eq!(h.distinct(), 0);
    }

    #[test]
    fn input_shorter_than_k_is_empty() {
        let h = GramHistogram::from_bytes(b"ab", 3);
        assert_eq!(h.window_count(), 0);
    }

    #[test]
    fn single_byte_grams() {
        let h = GramHistogram::from_bytes(b"aabbbc", 1);
        assert_eq!(h.window_count(), 6);
        assert_eq!(h.count_of(b"a"), 2);
        assert_eq!(h.count_of(b"b"), 3);
        assert_eq!(h.count_of(b"c"), 1);
        assert_eq!(h.count_of(b"z"), 0);
        assert_eq!(h.distinct(), 3);
    }

    #[test]
    fn overlapping_windows_match_paper_example() {
        // Paper §3.1: F = <a,b,c,d> as 2-grams is <ab, bc, cd>.
        let h = GramHistogram::from_bytes(b"abcd", 2);
        assert_eq!(h.window_count(), 3);
        assert_eq!(h.count_of(b"ab"), 1);
        assert_eq!(h.count_of(b"bc"), 1);
        assert_eq!(h.count_of(b"cd"), 1);
    }

    #[test]
    fn window_count_is_m_minus_k_plus_1() {
        for k in 1..=10 {
            let data = vec![7u8; 100];
            let h = GramHistogram::from_bytes(&data, k);
            assert_eq!(h.window_count(), (100 - k + 1) as u64, "k={k}");
            assert_eq!(h.distinct(), 1);
        }
    }

    #[test]
    fn wide_grams_pack_correctly() {
        let data: Vec<u8> = (0u8..32).collect();
        let h = GramHistogram::from_bytes(&data, 10);
        assert_eq!(h.window_count(), 23);
        assert_eq!(h.distinct(), 23);
        assert_eq!(h.count_of(&data[0..10]), 1);
        assert_eq!(h.count_of(&data[22..32]), 1);
    }

    #[test]
    fn k16_mask_does_not_overflow() {
        let data: Vec<u8> = (0u8..64).map(|i| i.wrapping_mul(37)).collect();
        let h = GramHistogram::from_bytes(&data, 16);
        assert_eq!(h.window_count(), 49);
        assert_eq!(h.count_of(&data[0..16]), 1);
    }

    #[test]
    fn sum_m_log_m_matches_manual() {
        let h = GramHistogram::from_bytes(b"aabb", 1);
        // counts: a=2, b=2 → 2*log2(2) + 2*log2(2) = 4
        assert!((h.sum_m_log_m() - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "feature width k")]
    fn zero_k_panics() {
        GramHistogram::new(0);
    }

    #[test]
    #[should_panic(expected = "gram length")]
    fn count_of_wrong_len_panics() {
        GramHistogram::from_bytes(b"abc", 2).count_of(b"abc");
    }

    #[test]
    fn extend_across_matches_contiguous_counting() {
        let data: Vec<u8> = (0u8..64).map(|i| i.wrapping_mul(31)).collect();
        for k in 2..=5 {
            for cut in [1usize, k - 1, k, 17, 63] {
                let whole = GramHistogram::from_bytes(&data, k);
                let mut split = GramHistogram::new(k);
                split.extend_from_bytes(&data[..cut]);
                let carry_start = cut.saturating_sub(k - 1);
                split.extend_across(&data[carry_start..cut], &data[cut..]);
                assert_eq!(split, whole, "k={k} cut={cut}");
            }
        }
    }

    #[test]
    fn extend_across_short_total_counts_nothing() {
        let mut h = GramHistogram::new(4);
        h.extend_across(b"ab", b"c");
        assert_eq!(h.window_count(), 0);
        assert_eq!(h.distinct(), 0);
    }

    #[test]
    #[should_panic(expected = "carry must be shorter")]
    fn extend_across_long_carry_panics() {
        GramHistogram::new(2).extend_across(b"ab", b"cd");
    }

    #[test]
    fn extend_trait_counts_like_slice() {
        let mut h = GramHistogram::new(2);
        h.extend(b"abcd".iter().copied());
        assert_eq!(h.window_count(), 3);
    }
}
