//! Streaming `(δ,ε)`-approximate entropy estimation (§4.4 of the paper).
//!
//! Calculating exact entropy vectors for every flow costs one counter per
//! distinct gram. Iustitia instead adapts the streaming entropy estimator
//! of Lall et al. (SIGMETRICS 2006), which builds on the
//! Alon–Matias–Szegedy frequency-moment sketch: estimate
//! `S_k = Σᵢ m_ik·log(m_ik)` by sampling random stream positions and
//! counting suffix occurrences, then plug `S_k` into Formula 1.
//!
//! For an error bound `ε` with failure probability `δ`, feature `h_k`
//! needs `g·z_k` counters with
//!
//! ```text
//! z_k = ⌈32·log_{|f_k|}(b) / ε²⌉      g = ⌈2·log₂(1/δ)⌉
//! ```
//!
//! The sketch requires `|f_k| ≫ b`, which fails for `h_1`
//! (`|f_1| = 256`), so — exactly as the paper prescribes — `h_1` is always
//! computed exactly and only `k ≥ 2` features are estimated.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::fastmap::FxHashMap;
use crate::histogram::GramHistogram;
use crate::vector::FeatureWidths;
use crate::BITS_PER_BYTE;

/// Mixing constant for deriving independent per-width RNG streams from
/// one base seed (the 64-bit golden-ratio constant).
const WIDTH_SEED_MIX: u64 = 0x9E37_79B9_7F4A_7C15;

/// Errors from the `(δ,ε)` estimation configuration or invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum EstimateError {
    /// `ε` must be strictly positive.
    InvalidEpsilon(f64),
    /// `δ` must be inside `(0, 1)`.
    InvalidDelta(f64),
    /// Estimation is undefined for `h_1` because `|f_1| = 256` violates
    /// the sketch's `|f_k| ≫ b` assumption; compute `h_1` exactly.
    UnsupportedWidth(usize),
}

impl fmt::Display for EstimateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EstimateError::InvalidEpsilon(e) => {
                write!(f, "epsilon must be positive, got {e}")
            }
            EstimateError::InvalidDelta(d) => {
                write!(f, "delta must be in (0, 1), got {d}")
            }
            EstimateError::UnsupportedWidth(k) => {
                write!(f, "streaming estimation unsupported for feature width {k}; h_1 must be computed exactly")
            }
        }
    }
}

impl std::error::Error for EstimateError {}

/// Configuration of the `(δ,ε)`-approximation: relative error at most `ε`
/// with probability at least `1 − δ`.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EstimatorConfig {
    /// Relative error bound `ε > 0`.
    pub epsilon: f64,
    /// Failure probability `δ ∈ (0, 1)`.
    pub delta: f64,
}

impl EstimatorConfig {
    /// Creates a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns [`EstimateError::InvalidEpsilon`] or
    /// [`EstimateError::InvalidDelta`] on out-of-range parameters.
    pub fn new(epsilon: f64, delta: f64) -> Result<Self, EstimateError> {
        if epsilon <= 0.0 || epsilon.is_nan() {
            return Err(EstimateError::InvalidEpsilon(epsilon));
        }
        if !(delta > 0.0 && delta < 1.0) {
            return Err(EstimateError::InvalidDelta(delta));
        }
        Ok(EstimatorConfig { epsilon, delta })
    }

    /// The paper's best SVM operating point for `b′ = 1024`
    /// (§4.4.2: `ε = 0.25`, `δ = 0.75`).
    pub fn svm_optimal() -> Self {
        EstimatorConfig { epsilon: 0.25, delta: 0.75 }
    }

    /// The paper's best CART operating point for `b′ = 1024`
    /// (§4.4.2: `ε = 0.5`, `δ = 0.1`).
    pub fn cart_optimal() -> Self {
        EstimatorConfig { epsilon: 0.5, delta: 0.1 }
    }

    /// Number of estimator groups `g = ⌈2·log₂(1/δ)⌉` (at least 1).
    pub fn groups(&self) -> usize {
        ((2.0 * (1.0 / self.delta).log2()).ceil() as usize).max(1)
    }

    /// Number of estimators per group for feature width `k` and buffer
    /// size `b`: `z_k = ⌈32·log_{|f_k|}(b) / ε²⌉` (at least 1).
    pub fn estimators_per_group(&self, k: usize, b: usize) -> usize {
        let log_fk_b = (b.max(2) as f64).log2() / (BITS_PER_BYTE * k as f64);
        ((32.0 * log_fk_b / (self.epsilon * self.epsilon)).ceil() as usize).max(1)
    }
}

/// Total counters `g·z_k` required to estimate `h_k` on a `b`-byte buffer
/// (the left side of Formula 3 for one feature).
///
/// # Errors
///
/// Returns [`EstimateError::UnsupportedWidth`] for `k < 2`.
pub fn counters_required(
    config: &EstimatorConfig,
    k: usize,
    b: usize,
) -> Result<usize, EstimateError> {
    if k < 2 {
        return Err(EstimateError::UnsupportedWidth(k));
    }
    Ok(config.groups() * config.estimators_per_group(k, b))
}

/// The lower bound on `ε` from Formula 4:
/// `ε > sqrt(K_φ · (log₂ b / α) · log₂(1/δ))`
/// where `K_φ = 8·Σ_{i ∈ φ, i ≠ 1} 1/i` is the feature-set coefficient and
/// `α` is the counter budget of the exact calculation.
///
/// For the paper's feature sets: `K_φSVM = 8·(1/2+1/3+1/5) ≈ 8.26`,
/// `K_φCART = 8·(1/3+1/4+1/5) ≈ 6.27`.
pub fn min_epsilon(widths: &FeatureWidths, b: usize, alpha: usize, delta: f64) -> f64 {
    let k_phi: f64 = widths.iter().filter(|&k| k != 1).map(|k| 8.0 / k as f64).sum();
    let log2_b = (b.max(2) as f64).log2();
    (k_phi * (log2_b / alpha.max(1) as f64) * (1.0 / delta).log2()).sqrt()
}

/// The streaming entropy estimator of §4.4.1.
///
/// Holds the `(δ,ε)` configuration and a base seed from which each
/// estimation derives its sampling RNG, so experiments are reproducible
/// and — crucially for the flow pipeline — estimates for different
/// flows are independent of interleaving: the sampling stream for a
/// payload depends only on `(seed, k)`, never on which flows were
/// estimated before it.
///
/// One-shot estimation ([`estimate_sk`](Self::estimate_sk) and
/// friends) is implemented as a single pass of the incremental sketch
/// ([`begin_incremental`](Self::begin_incremental)), so feeding a
/// payload in arbitrary chunks produces bit-identical results to
/// feeding it at once.
///
/// # Examples
///
/// ```
/// use iustitia_entropy::{entropy, EstimatorConfig, StreamingEntropyEstimator};
///
/// let data: Vec<u8> = (0..4096u32).map(|i| (i.wrapping_mul(2654435761) >> 16) as u8).collect();
/// let cfg = EstimatorConfig::new(0.25, 0.25)?;
/// let mut est = StreamingEntropyEstimator::with_seed(cfg, 42);
/// let approx = est.estimate_hk(&data, 3)?;
/// let exact = entropy(&data, 3);
/// assert!((approx - exact).abs() < 0.25, "approx={approx} exact={exact}");
/// # Ok::<(), iustitia_entropy::EstimateError>(())
/// ```
#[derive(Debug, Clone)]
pub struct StreamingEntropyEstimator {
    config: EstimatorConfig,
    seed: u64,
}

impl StreamingEntropyEstimator {
    /// Creates an estimator with an OS-derived base seed.
    pub fn new(config: EstimatorConfig) -> Self {
        StreamingEntropyEstimator::with_seed(config, StdRng::from_entropy().gen())
    }

    /// Creates an estimator with a deterministic seed (for experiments).
    pub fn with_seed(config: EstimatorConfig, seed: u64) -> Self {
        StreamingEntropyEstimator { config, seed }
    }

    /// The configuration in use.
    pub fn config(&self) -> &EstimatorConfig {
        &self.config
    }

    /// The sampling RNG for feature width `k`: derived fresh from the
    /// base seed for every estimation, so no sampling state carries
    /// over between payloads (or between flows of a shared pipeline).
    fn width_rng(&self, k: usize) -> StdRng {
        StdRng::seed_from_u64(self.seed ^ (k as u64).wrapping_mul(WIDTH_SEED_MIX))
    }

    /// Starts an incremental estimation session sized for a buffer of
    /// `b_hint` bytes (the pipeline passes its configured `b`; one-shot
    /// callers pass the payload length). Feed chunks with
    /// [`IncrementalEstimator::update`] and read the vector with
    /// [`IncrementalEstimator::finish`].
    pub fn begin_incremental(&self, widths: &FeatureWidths, b_hint: usize) -> IncrementalEstimator {
        let slots = widths
            .iter()
            .map(|k| {
                if k == 1 {
                    WidthSlot::Exact(GramHistogram::new(1))
                } else {
                    WidthSlot::Sketch(IncrementalSketch::new(
                        &self.config,
                        k,
                        b_hint,
                        self.width_rng(k),
                    ))
                }
            })
            // lint: allow(L009) — flow-setup cold path: runs on pool miss; recycled flows go through reset_incremental
            .collect();
        // lint: allow(L009) — flow-setup cold path: width list cloned once per fresh session
        IncrementalEstimator { widths: widths.clone(), slots }
    }

    /// Resets a previously used incremental session to the exact state
    /// [`begin_incremental`](Self::begin_incremental) would produce for
    /// `b_hint`, reusing its allocations (tracker arrays, gram index,
    /// histogram tables) — the pool-recycling path of the flow pipeline.
    ///
    /// The sampling RNG is re-derived from `(seed, k)` just as for a
    /// fresh session, so a recycled session is bit-identical to a fresh
    /// one on the same payload.
    pub fn reset_incremental(&self, session: &mut IncrementalEstimator, b_hint: usize) {
        for (slot, k) in session.slots.iter_mut().zip(session.widths.iter()) {
            match slot {
                WidthSlot::Exact(hist) => hist.clear(),
                WidthSlot::Sketch(sketch) => {
                    sketch.reset(&self.config, b_hint, self.width_rng(k));
                }
            }
        }
    }

    /// Estimates `S_k = Σᵢ m_ik·log₂(m_ik)` over the `k`-grams of `data`
    /// using the sampling procedure of §4.4.1 (reservoir form).
    ///
    /// # Errors
    ///
    /// Returns [`EstimateError::UnsupportedWidth`] for `k < 2`.
    pub fn estimate_sk(&mut self, data: &[u8], k: usize) -> Result<f64, EstimateError> {
        if k < 2 {
            return Err(EstimateError::UnsupportedWidth(k));
        }
        if data.len() < k + 1 {
            return Ok(0.0);
        }
        let mut sketch = IncrementalSketch::new(&self.config, k, data.len(), self.width_rng(k));
        sketch.update(data);
        Ok(sketch.estimate_sk())
    }

    /// Estimates the normalized entropy `h_k` of `data` by plugging the
    /// estimated `S_k` into Formula 1.
    ///
    /// # Errors
    ///
    /// Returns [`EstimateError::UnsupportedWidth`] for `k < 2` — the
    /// caller must compute `h_1` exactly (see
    /// [`estimate_vector`](Self::estimate_vector), which does this
    /// automatically).
    pub fn estimate_hk(&mut self, data: &[u8], k: usize) -> Result<f64, EstimateError> {
        if k < 2 {
            return Err(EstimateError::UnsupportedWidth(k));
        }
        if data.len() < k + 1 {
            return Ok(0.0);
        }
        let m = (data.len() - k + 1) as f64;
        let sk = self.estimate_sk(data, k)?;
        let bits = m.log2() - sk / m;
        Ok((bits / (BITS_PER_BYTE * k as f64)).clamp(0.0, 1.0))
    }

    /// Estimates a full entropy vector: `h_1` exactly, every `k ≥ 2`
    /// feature via the streaming sketch — the hybrid Iustitia deploys.
    ///
    /// Implemented as one incremental session fed the whole payload, so
    /// it is bit-identical to [`begin_incremental`](Self::begin_incremental)
    /// over any packetization of `data` (with `b_hint = data.len()`).
    pub fn estimate_vector(&mut self, data: &[u8], widths: &FeatureWidths) -> Vec<f64> {
        let mut session = self.begin_incremental(widths, data.len());
        session.update(data);
        session.finish()
    }

    /// Total counters this estimator uses for the feature set on a
    /// `b`-byte buffer (`h_1`'s exact counters excluded, per the paper's
    /// Formula 3 which sums over `φᵢ ≠ h_1`).
    pub fn total_counters(&self, widths: &FeatureWidths, b: usize) -> usize {
        widths
            .iter()
            .filter(|&k| k >= 2)
            .map(|k| self.config.groups() * self.config.estimators_per_group(k, b))
            .sum()
    }
}

/// One running estimator of the AMS sketch: the gram adopted at its
/// current sample position and the occurrences seen since.
#[derive(Debug, Clone)]
struct Tracker {
    gram: u128,
    count: u64,
}

/// Incremental form of the §4.4.1 sampling procedure for one feature
/// width `k ≥ 2`.
///
/// The one-shot procedure samples a uniform window position per
/// estimator and counts suffix occurrences. Streaming, that is exactly
/// size-1 reservoir sampling: after `t` windows each estimator holds a
/// uniformly random position in `[1, t]`, replaced at window `s` with
/// probability `1/s`. Replacement times are drawn by skip-ahead — after
/// adopting at window `t`, the survival probability through window `s`
/// is `∏_{i=t+1..s}(1 − 1/i) = t/s`, so the next replacement window is
/// `⌊t/u⌋ + 1` for `u` uniform in `[0, 1)` — giving O(log n) amortized
/// work per window instead of a coin flip per estimator per window.
/// Between replacements, a gram→trackers index bumps the suffix counts
/// of every estimator tracking the current window's gram.
#[derive(Debug, Clone)]
pub(crate) struct IncrementalSketch {
    k: usize,
    mask: u128,
    groups: usize,
    z: usize,
    trackers: Vec<Tracker>,
    /// Packed gram → indices of trackers currently counting it.
    by_gram: FxHashMap<u128, Vec<u32>>,
    /// Min-heap of `(replacement window, tracker index)`.
    schedule: BinaryHeap<Reverse<(u64, u32)>>,
    rng: StdRng,
    /// Rolling window key over the last `k` bytes fed.
    key: u128,
    /// Bytes fed so far (the first `k − 1` complete no window).
    fed: u64,
    /// Windows seen so far (`fed − k + 1` once `fed ≥ k`).
    windows: u64,
    /// Scratch: tracker indices due for replacement at the current window.
    due: Vec<u32>,
}

impl IncrementalSketch {
    fn new(config: &EstimatorConfig, k: usize, b_hint: usize, rng: StdRng) -> Self {
        debug_assert!(k >= 2, "h_1 is always exact; sketches are for k >= 2");
        let groups = config.groups();
        let z = config.estimators_per_group(k, b_hint);
        let n = groups * z;
        // lint: allow(L009) — flow-setup cold path: sketch construction happens on pool miss only
        let mut schedule = BinaryHeap::with_capacity(n);
        for idx in 0..n {
            // Every estimator adopts the first window it sees.
            // lint: allow(L009) — flow-setup cold path: fills the freshly reserved schedule
            schedule.push(Reverse((1, idx as u32)));
        }
        IncrementalSketch {
            k,
            mask: if k == 16 { u128::MAX } else { (1u128 << (8 * k)) - 1 },
            groups,
            z,
            // lint: allow(L009) — flow-setup cold path: tracker array built once per fresh sketch
            trackers: vec![Tracker { gram: 0, count: 0 }; n],
            by_gram: FxHashMap::default(),
            schedule,
            rng,
            key: 0,
            fed: 0,
            windows: 0,
            due: Vec::new(),
        }
    }

    /// Resident counters (`g·z`, fixed at construction).
    fn counters(&self) -> usize {
        self.trackers.len()
    }

    /// Restores the freshly-constructed state for a (possibly new)
    /// `b_hint`, reusing the tracker, index, and heap allocations. The
    /// RNG is replaced with the fresh per-width stream so a recycled
    /// sketch samples identically to a new one.
    fn reset(&mut self, config: &EstimatorConfig, b_hint: usize, rng: StdRng) {
        self.z = config.estimators_per_group(self.k, b_hint);
        let n = self.groups * self.z;
        self.trackers.clear();
        // lint: allow(L009) — pooled reuse: resize re-fills retained capacity, growing only when a larger b_hint arrives
        self.trackers.resize(n, Tracker { gram: 0, count: 0 });
        self.by_gram.clear();
        self.schedule.clear();
        for idx in 0..n {
            // lint: allow(L009) — pooled reuse: schedule capacity is retained across reset
            self.schedule.push(Reverse((1, idx as u32)));
        }
        self.rng = rng;
        self.key = 0;
        self.fed = 0;
        self.windows = 0;
        self.due.clear();
    }

    /// Feeds one chunk of the stream.
    fn update(&mut self, chunk: &[u8]) {
        for &b in chunk {
            self.key = ((self.key << 8) | u128::from(b)) & self.mask;
            self.fed += 1;
            if self.fed < self.k as u64 {
                continue;
            }
            self.windows += 1;
            let t = self.windows;
            // Estimators already tracking this gram count one more
            // suffix occurrence (a tracker replaced below restarts at 1
            // regardless, preserving the sequential semantics).
            if let Some(idxs) = self.by_gram.get(&self.key) {
                for &i in idxs {
                    // lint: allow(L008) — by_gram holds tracker indices < trackers.len() by construction
                    self.trackers[i as usize].count += 1;
                }
            }
            self.due.clear();
            while let Some(&Reverse((when, idx))) = self.schedule.peek() {
                if when > t {
                    break;
                }
                self.schedule.pop();
                // lint: allow(L009) — due is bounded by the estimator count n and retains capacity
                self.due.push(idx);
            }
            if self.due.is_empty() {
                continue;
            }
            // Sorted index order fixes the RNG consumption order when
            // several estimators replace at the same window, keeping
            // results independent of heap tie-breaking.
            self.due.sort_unstable();
            for di in 0..self.due.len() {
                // lint: allow(L008) — di < due.len() by the loop bound
                let idx = self.due[di];
                // lint: allow(L008) — schedule indices are < trackers.len() by construction
                let old = &self.trackers[idx as usize];
                if old.count > 0 {
                    if let Some(v) = self.by_gram.get_mut(&old.gram) {
                        if let Some(pos) = v.iter().position(|&x| x == idx) {
                            // lint: allow(L008) — position() just found pos in v, so swap_remove is in-bounds
                            v.swap_remove(pos);
                        }
                        if v.is_empty() {
                            // lint: allow(L008) — FxHashMap::remove never panics (the KB is conservative for Vec::remove)
                            self.by_gram.remove(&old.gram);
                        }
                    }
                }
                // lint: allow(L008) — schedule indices are < trackers.len() by construction
                self.trackers[idx as usize] = Tracker { gram: self.key, count: 1 };
                // lint: allow(L009) — per-gram index vecs are bounded by z; steady state is allocation-free per pool_alloc.rs
                self.by_gram.entry(self.key).or_default().push(idx);
                let u: f64 = self.rng.gen();
                let next = if u <= 0.0 {
                    u64::MAX
                } else {
                    let next_f = (t as f64 / u).floor();
                    if next_f >= u64::MAX as f64 {
                        u64::MAX
                    } else {
                        next_f as u64 + 1
                    }
                };
                // lint: allow(L009) — heap capacity n is fixed at construction and retained
                self.schedule.push(Reverse((next, idx)));
            }
        }
    }

    /// The `S_k` estimate over everything fed so far: per-estimator
    /// unbiased values `m·(r·log r − (r−1)·log(r−1))`, group averages,
    /// then the median of groups (steps 4–6 of §4.4.1).
    fn estimate_sk(&self) -> f64 {
        // lint: allow(L009) — owned-scratch convenience path; the anytime probe threads pooled scratch via estimate_sk_with
        let mut group_means = Vec::with_capacity(self.groups);
        self.estimate_sk_with(&mut group_means)
    }

    /// As [`estimate_sk`](Self::estimate_sk), reusing `group_means`
    /// (cleared first) for the median buffer so steady-state callers —
    /// the pipeline's mid-flow anytime probes — allocate nothing once
    /// the scratch has grown to `groups` capacity. Bit-identical.
    fn estimate_sk_with(&self, group_means: &mut Vec<f64>) -> f64 {
        let m = self.windows;
        if m <= 1 {
            return 0.0;
        }
        let mf = m as f64;
        group_means.clear();
        for g in 0..self.groups {
            let mut sum = 0.0;
            // lint: allow(L008) — g < groups, so the slice ends at most at n = groups*z
            for tracker in &self.trackers[g * self.z..(g + 1) * self.z] {
                let r = tracker.count;
                if r > 1 {
                    let rf = r as f64;
                    sum += mf * (rf * rf.log2() - (rf - 1.0) * (rf - 1.0).log2());
                }
            }
            // lint: allow(L009) — pooled scratch: grows to `groups` entries once, then reused allocation-free
            group_means.push(sum / self.z as f64);
        }
        // lint: allow(L009) — stable sort of `groups` elements; scratch-backed callers amortize its buffer too
        group_means.sort_by(f64::total_cmp);
        let med = if group_means.len() % 2 == 1 {
            // lint: allow(L008) — group_means is non-empty (groups >= 1) and len/2 is in-bounds
            group_means[group_means.len() / 2]
        } else {
            let hi = group_means.len() / 2;
            // lint: allow(L008) — hi = len/2 >= 1 in the even branch, so hi-1 and hi are in-bounds
            0.5 * (group_means[hi - 1] + group_means[hi])
        };
        med.max(0.0)
    }

    /// The normalized entropy `h_k` of everything fed so far.
    fn estimate_hk(&self) -> f64 {
        let m = self.windows;
        if m <= 1 {
            return 0.0;
        }
        let mf = m as f64;
        let bits = mf.log2() - self.estimate_sk() / mf;
        (bits / (BITS_PER_BYTE * self.k as f64)).clamp(0.0, 1.0)
    }

    /// As [`estimate_hk`](Self::estimate_hk), threading `group_means`
    /// scratch through the `S_k` median step. Bit-identical.
    fn estimate_hk_with(&self, group_means: &mut Vec<f64>) -> f64 {
        let m = self.windows;
        if m <= 1 {
            return 0.0;
        }
        let mf = m as f64;
        let bits = mf.log2() - self.estimate_sk_with(group_means) / mf;
        (bits / (BITS_PER_BYTE * self.k as f64)).clamp(0.0, 1.0)
    }
}

/// Per-width state of an [`IncrementalEstimator`].
#[derive(Debug, Clone)]
enum WidthSlot {
    /// `h_1` is always exact (a dense 256-entry table at most).
    Exact(GramHistogram),
    /// `k ≥ 2`: the fixed-size `g·z` reservoir sketch.
    Sketch(IncrementalSketch),
}

/// An in-progress estimated entropy vector, fed one payload chunk at a
/// time — the estimated-mode counterpart of
/// [`IncrementalVector`](crate::incremental::IncrementalVector).
///
/// Created by
/// [`StreamingEntropyEstimator::begin_incremental`]. Feeding the same
/// bytes in any chunking yields bit-identical results, and matches
/// [`StreamingEntropyEstimator::estimate_vector`] when `b_hint` equals
/// the total payload length.
#[derive(Debug, Clone)]
pub struct IncrementalEstimator {
    widths: FeatureWidths,
    slots: Vec<WidthSlot>,
}

impl IncrementalEstimator {
    /// Feeds one chunk of payload into every per-width slot.
    pub fn update(&mut self, chunk: &[u8]) {
        for slot in &mut self.slots {
            match slot {
                WidthSlot::Exact(hist) => hist.extend_from_bytes(chunk),
                WidthSlot::Sketch(sketch) => sketch.update(chunk),
            }
        }
    }

    /// The feature widths this session produces.
    pub fn widths(&self) -> &FeatureWidths {
        &self.widths
    }

    /// Total bytes fed so far.
    pub fn total_bytes(&self) -> u64 {
        match self.slots.first() {
            Some(WidthSlot::Exact(hist)) => hist.window_count(),
            Some(WidthSlot::Sketch(sketch)) => sketch.fed,
            None => 0,
        }
    }

    /// Counters currently resident: the fixed `g·z` budget per sketch
    /// width plus the exact `h_1` table's distinct grams.
    pub fn counters_used(&self) -> usize {
        self.slots
            .iter()
            .map(|slot| match slot {
                WidthSlot::Exact(hist) => hist.counters_used(),
                WidthSlot::Sketch(sketch) => sketch.counters(),
            })
            .sum()
    }

    /// The estimated entropy vector of everything fed so far (`h_1`
    /// exact, `k ≥ 2` via the sketch).
    pub fn finish(&self) -> Vec<f64> {
        // lint: allow(L009) — owned-result convenience API; the pipeline uses finish_into with pooled scratch
        let mut out = Vec::with_capacity(self.slots.len());
        // lint: allow(L009) — owned-result convenience API; the pipeline uses finish_into with pooled scratch
        let mut counts = Vec::new();
        self.finish_into(&mut out, &mut counts);
        out
    }

    /// Writes the feature values into `out` (cleared first), using
    /// `counts_scratch` for the exact `h_1` slot's count sorting.
    /// Bit-identical to [`finish`](Self::finish).
    ///
    /// Note the sketch slots still build one small `group_means` vector
    /// per finish (`estimate_sk`'s median step, §4.4.1 step 6); use
    /// [`finish_into_with`](Self::finish_into_with) to pool that buffer
    /// too and make the whole finish allocation-free in steady state.
    pub fn finish_into(&self, out: &mut Vec<f64>, counts_scratch: &mut Vec<u64>) {
        out.clear();
        out.extend(self.slots.iter().map(|slot| match slot {
            WidthSlot::Exact(hist) => {
                crate::vector::entropy_of_histogram_with(hist, counts_scratch)
            }
            WidthSlot::Sketch(sketch) => sketch.estimate_hk(),
        }));
    }

    /// As [`finish_into`](Self::finish_into), additionally reusing
    /// `means_scratch` for every sketch slot's group-means median step,
    /// so repeated finishes — the anytime probe runs one per probed
    /// packet — allocate nothing once all scratch has grown.
    /// Bit-identical to [`finish`](Self::finish).
    pub fn finish_into_with(
        &self,
        out: &mut Vec<f64>,
        counts_scratch: &mut Vec<u64>,
        means_scratch: &mut Vec<f64>,
    ) {
        out.clear();
        for slot in &self.slots {
            let h = match slot {
                WidthSlot::Exact(hist) => {
                    crate::vector::entropy_of_histogram_with(hist, counts_scratch)
                }
                WidthSlot::Sketch(sketch) => sketch.estimate_hk_with(means_scratch),
            };
            // lint: allow(L009) — pooled output vector: grows to widths.len() once, then reused
            out.push(h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::entropy;

    fn pseudo_random(n: usize, seed: u64) -> Vec<u8> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 24) as u8
            })
            .collect()
    }

    #[test]
    fn config_validation() {
        assert!(EstimatorConfig::new(0.25, 0.5).is_ok());
        assert_eq!(EstimatorConfig::new(0.0, 0.5), Err(EstimateError::InvalidEpsilon(0.0)));
        assert_eq!(EstimatorConfig::new(0.5, 0.0), Err(EstimateError::InvalidDelta(0.0)));
        assert_eq!(EstimatorConfig::new(0.5, 1.0), Err(EstimateError::InvalidDelta(1.0)));
    }

    #[test]
    fn paper_operating_points() {
        let svm = EstimatorConfig::svm_optimal();
        assert_eq!((svm.epsilon, svm.delta), (0.25, 0.75));
        let cart = EstimatorConfig::cart_optimal();
        assert_eq!((cart.epsilon, cart.delta), (0.5, 0.1));
    }

    #[test]
    fn group_and_z_formulas() {
        let cfg = EstimatorConfig::new(0.5, 0.25).unwrap();
        // g = ceil(2*log2(4)) = 4
        assert_eq!(cfg.groups(), 4);
        // z_2 = ceil(32 * (log2(1024)/16) / 0.25) = ceil(32*0.625/0.25) = 80
        assert_eq!(cfg.estimators_per_group(2, 1024), 80);
        // z_5 = ceil(32 * (10/40) / 0.25) = 32
        assert_eq!(cfg.estimators_per_group(5, 1024), 32);
    }

    #[test]
    fn counters_required_rejects_h1() {
        let cfg = EstimatorConfig::new(0.25, 0.25).unwrap();
        assert!(matches!(
            counters_required(&cfg, 1, 1024),
            Err(EstimateError::UnsupportedWidth(1))
        ));
        assert!(counters_required(&cfg, 2, 1024).unwrap() > 0);
    }

    #[test]
    fn min_epsilon_matches_paper_constants() {
        // Paper: K_φSVM = 8.26..., K_φCART = 6.26..., and with b=1024,
        // α≈1911: ε > 0.18·sqrt(log2(1/δ)).
        let svm = FeatureWidths::svm_selected();
        let cart = FeatureWidths::cart_selected();
        let k_svm: f64 = 8.0 * (0.5 + 1.0 / 3.0 + 0.2);
        assert!((k_svm - 8.266).abs() < 0.01);
        let eps_at_half = min_epsilon(&svm, 1024, 1911, 0.5);
        // sqrt(8.266 * 10/1911 * 1) ≈ 0.208
        assert!((eps_at_half - (k_svm * 10.0 / 1911.0f64).sqrt()).abs() < 1e-9);
        assert!(min_epsilon(&cart, 1024, 1911, 0.5) < eps_at_half);
    }

    #[test]
    fn estimate_constant_data_is_zero() {
        let cfg = EstimatorConfig::new(0.3, 0.3).unwrap();
        let mut est = StreamingEntropyEstimator::with_seed(cfg, 1);
        let h = est.estimate_hk(&[9u8; 2048], 2).unwrap();
        assert!(h.abs() < 1e-9, "h={h}");
    }

    #[test]
    fn estimate_tracks_exact_on_random_data() {
        let data = pseudo_random(4096, 7);
        let cfg = EstimatorConfig::new(0.2, 0.2).unwrap();
        let mut est = StreamingEntropyEstimator::with_seed(cfg, 11);
        for k in [2usize, 3, 5] {
            let exact = entropy(&data, k);
            let approx = est.estimate_hk(&data, k).unwrap();
            assert!(
                (approx - exact).abs() <= 0.2 * exact.max(0.05) + 0.05,
                "k={k} exact={exact} approx={approx}"
            );
        }
    }

    #[test]
    fn estimate_tracks_exact_on_textlike_data() {
        let data: Vec<u8> = b"flow nature identification at high speed using entropy. "
            .iter()
            .cycle()
            .take(2048)
            .copied()
            .collect();
        let cfg = EstimatorConfig::new(0.25, 0.25).unwrap();
        let mut est = StreamingEntropyEstimator::with_seed(cfg, 3);
        let exact = entropy(&data, 2);
        let approx = est.estimate_hk(&data, 2).unwrap();
        assert!((approx - exact).abs() < 0.15, "exact={exact} approx={approx}");
    }

    #[test]
    fn estimate_vector_mixes_exact_h1() {
        let data = pseudo_random(1024, 5);
        let widths = FeatureWidths::svm_selected();
        let cfg = EstimatorConfig::svm_optimal();
        let mut est = StreamingEntropyEstimator::with_seed(cfg, 21);
        let v = est.estimate_vector(&data, &widths);
        assert_eq!(v.len(), 4);
        // h1 is the exact computation (up to float summation order).
        assert!((v[0] - entropy(&data, 1)).abs() < 1e-12);
        assert!(v.iter().all(|h| (0.0..=1.0).contains(h)));
    }

    #[test]
    fn short_input_estimates_zero() {
        let cfg = EstimatorConfig::new(0.25, 0.25).unwrap();
        let mut est = StreamingEntropyEstimator::with_seed(cfg, 2);
        assert_eq!(est.estimate_hk(b"ab", 2).unwrap(), 0.0);
        assert_eq!(est.estimate_sk(b"", 3).unwrap(), 0.0);
    }

    #[test]
    fn total_counters_excludes_h1_and_shrinks_with_epsilon() {
        let widths = FeatureWidths::svm_selected();
        let loose =
            StreamingEntropyEstimator::with_seed(EstimatorConfig::new(0.5, 0.5).unwrap(), 0);
        let tight =
            StreamingEntropyEstimator::with_seed(EstimatorConfig::new(0.1, 0.5).unwrap(), 0);
        let c_loose = loose.total_counters(&widths, 1024);
        let c_tight = tight.total_counters(&widths, 1024);
        assert!(c_loose < c_tight);
        // h1 contributes nothing: {1} alone would be zero counters.
        let only_h1 = FeatureWidths::new(vec![1]);
        assert_eq!(loose.total_counters(&only_h1, 1024), 0);
    }

    #[test]
    fn groups_is_at_least_one_even_for_large_delta() {
        // δ → 1 drives 2·log2(1/δ) → 0; the group count must clamp at 1.
        let cfg = EstimatorConfig::new(0.5, 0.99).unwrap();
        assert_eq!(cfg.groups(), 1);
    }

    #[test]
    fn minimal_length_input_estimates_without_panic() {
        let cfg = EstimatorConfig::new(0.5, 0.5).unwrap();
        let mut est = StreamingEntropyEstimator::with_seed(cfg, 1);
        // Exactly k+1 bytes: two windows.
        let h = est.estimate_hk(&[1, 2, 3], 2).unwrap();
        assert!((0.0..=1.0).contains(&h));
    }

    #[test]
    fn cart_widths_estimate_vector_shape() {
        let data = pseudo_random(512, 3);
        let widths = FeatureWidths::cart_selected();
        let mut est = StreamingEntropyEstimator::with_seed(EstimatorConfig::cart_optimal(), 5);
        let v = est.estimate_vector(&data, &widths);
        assert_eq!(v.len(), 4);
        assert!(v.iter().all(|h| (0.0..=1.0).contains(h)));
    }

    #[test]
    fn incremental_session_matches_one_shot_vector() {
        let data = pseudo_random(2048, 17);
        let widths = FeatureWidths::svm_selected();
        let cfg = EstimatorConfig::svm_optimal();
        let mut est = StreamingEntropyEstimator::with_seed(cfg, 9);
        let one_shot = est.estimate_vector(&data, &widths);
        for chunk_len in [1usize, 2, 3, 97, 2048] {
            let mut session = est.begin_incremental(&widths, data.len());
            for chunk in data.chunks(chunk_len) {
                session.update(chunk);
            }
            assert_eq!(session.finish(), one_shot, "chunk_len={chunk_len}");
        }
    }

    #[test]
    fn scratch_threaded_finish_matches_owned_finish() {
        // finish_into_with (the anytime probe's zero-alloc path) must be
        // bit-identical to finish()/finish_into(), mid-flow and at the end,
        // with dirty reused scratch.
        let data = pseudo_random(2048, 23);
        let widths = FeatureWidths::svm_selected();
        let cfg = EstimatorConfig::svm_optimal();
        let est = StreamingEntropyEstimator::with_seed(cfg, 9);
        let mut session = est.begin_incremental(&widths, data.len());
        let mut out = Vec::new();
        let mut counts = vec![7u64; 3];
        let mut means = vec![0.25f64; 5];
        for chunk in data.chunks(113) {
            session.update(chunk);
            session.finish_into_with(&mut out, &mut counts, &mut means);
            assert_eq!(out, session.finish(), "mid-flow probe after {}B", session.total_bytes());
        }
        let mut plain = Vec::new();
        session.finish_into(&mut plain, &mut counts);
        assert_eq!(out, plain);
    }

    #[test]
    fn one_shot_estimates_do_not_bleed_between_calls() {
        // The sampling stream depends only on (seed, k): estimating an
        // unrelated payload in between must not change a result.
        let a = pseudo_random(1024, 5);
        let b = pseudo_random(1024, 6);
        let cfg = EstimatorConfig::svm_optimal();
        let mut est = StreamingEntropyEstimator::with_seed(cfg, 4);
        let first = est.estimate_hk(&a, 3).unwrap();
        let _ = est.estimate_hk(&b, 3).unwrap();
        assert_eq!(est.estimate_hk(&a, 3).unwrap(), first);
    }

    #[test]
    fn incremental_counters_are_fixed_budget() {
        let widths = FeatureWidths::new(vec![2, 3]);
        let cfg = EstimatorConfig::svm_optimal();
        let est = StreamingEntropyEstimator::with_seed(cfg, 0);
        let session = est.begin_incremental(&widths, 1024);
        let budget = est.total_counters(&widths, 1024);
        assert_eq!(session.counters_used(), budget);
        // Feeding data must not grow the sketch.
        let mut session = session;
        session.update(&pseudo_random(4096, 2));
        assert_eq!(session.counters_used(), budget);
        assert_eq!(session.total_bytes(), 4096);
    }

    #[test]
    fn recycled_session_is_bit_identical_to_fresh() {
        let data = pseudo_random(2048, 17);
        let widths = FeatureWidths::svm_selected();
        let cfg = EstimatorConfig::svm_optimal();
        let est = StreamingEntropyEstimator::with_seed(cfg, 9);
        let mut fresh = est.begin_incremental(&widths, 1024);
        for chunk in data.chunks(41) {
            fresh.update(chunk);
        }
        let expected = fresh.finish();
        // Dirty a session with unrelated data, reset, re-feed: results
        // and counter budget must match a fresh session exactly.
        let mut recycled = est.begin_incremental(&widths, 1024);
        recycled.update(&pseudo_random(4096, 2));
        est.reset_incremental(&mut recycled, 1024);
        assert_eq!(recycled.total_bytes(), 0);
        for chunk in data.chunks(41) {
            recycled.update(chunk);
        }
        assert_eq!(recycled.finish(), expected);
    }

    #[test]
    fn reset_resizes_for_new_buffer_hint() {
        let widths = FeatureWidths::new(vec![2, 3]);
        let cfg = EstimatorConfig::svm_optimal();
        let est = StreamingEntropyEstimator::with_seed(cfg, 0);
        let mut session = est.begin_incremental(&widths, 256);
        est.reset_incremental(&mut session, 16384);
        assert_eq!(session.counters_used(), est.total_counters(&widths, 16384));
    }

    #[test]
    fn error_display() {
        let e = EstimateError::UnsupportedWidth(1);
        assert!(e.to_string().contains("unsupported"));
        assert!(EstimateError::InvalidEpsilon(-1.0).to_string().contains("positive"));
        assert!(EstimateError::InvalidDelta(2.0).to_string().contains("(0, 1)"));
    }
}
