//! Streaming `(δ,ε)`-approximate entropy estimation (§4.4 of the paper).
//!
//! Calculating exact entropy vectors for every flow costs one counter per
//! distinct gram. Iustitia instead adapts the streaming entropy estimator
//! of Lall et al. (SIGMETRICS 2006), which builds on the
//! Alon–Matias–Szegedy frequency-moment sketch: estimate
//! `S_k = Σᵢ m_ik·log(m_ik)` by sampling random stream positions and
//! counting suffix occurrences, then plug `S_k` into Formula 1.
//!
//! For an error bound `ε` with failure probability `δ`, feature `h_k`
//! needs `g·z_k` counters with
//!
//! ```text
//! z_k = ⌈32·log_{|f_k|}(b) / ε²⌉      g = ⌈2·log₂(1/δ)⌉
//! ```
//!
//! The sketch requires `|f_k| ≫ b`, which fails for `h_1`
//! (`|f_1| = 256`), so — exactly as the paper prescribes — `h_1` is always
//! computed exactly and only `k ≥ 2` features are estimated.

use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::vector::FeatureWidths;
use crate::BITS_PER_BYTE;

/// Errors from the `(δ,ε)` estimation configuration or invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum EstimateError {
    /// `ε` must be strictly positive.
    InvalidEpsilon(f64),
    /// `δ` must be inside `(0, 1)`.
    InvalidDelta(f64),
    /// Estimation is undefined for `h_1` because `|f_1| = 256` violates
    /// the sketch's `|f_k| ≫ b` assumption; compute `h_1` exactly.
    UnsupportedWidth(usize),
}

impl fmt::Display for EstimateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EstimateError::InvalidEpsilon(e) => {
                write!(f, "epsilon must be positive, got {e}")
            }
            EstimateError::InvalidDelta(d) => {
                write!(f, "delta must be in (0, 1), got {d}")
            }
            EstimateError::UnsupportedWidth(k) => {
                write!(f, "streaming estimation unsupported for feature width {k}; h_1 must be computed exactly")
            }
        }
    }
}

impl std::error::Error for EstimateError {}

/// Configuration of the `(δ,ε)`-approximation: relative error at most `ε`
/// with probability at least `1 − δ`.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EstimatorConfig {
    /// Relative error bound `ε > 0`.
    pub epsilon: f64,
    /// Failure probability `δ ∈ (0, 1)`.
    pub delta: f64,
}

impl EstimatorConfig {
    /// Creates a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns [`EstimateError::InvalidEpsilon`] or
    /// [`EstimateError::InvalidDelta`] on out-of-range parameters.
    pub fn new(epsilon: f64, delta: f64) -> Result<Self, EstimateError> {
        if epsilon <= 0.0 || epsilon.is_nan() {
            return Err(EstimateError::InvalidEpsilon(epsilon));
        }
        if !(delta > 0.0 && delta < 1.0) {
            return Err(EstimateError::InvalidDelta(delta));
        }
        Ok(EstimatorConfig { epsilon, delta })
    }

    /// The paper's best SVM operating point for `b′ = 1024`
    /// (§4.4.2: `ε = 0.25`, `δ = 0.75`).
    pub fn svm_optimal() -> Self {
        EstimatorConfig { epsilon: 0.25, delta: 0.75 }
    }

    /// The paper's best CART operating point for `b′ = 1024`
    /// (§4.4.2: `ε = 0.5`, `δ = 0.1`).
    pub fn cart_optimal() -> Self {
        EstimatorConfig { epsilon: 0.5, delta: 0.1 }
    }

    /// Number of estimator groups `g = ⌈2·log₂(1/δ)⌉` (at least 1).
    pub fn groups(&self) -> usize {
        ((2.0 * (1.0 / self.delta).log2()).ceil() as usize).max(1)
    }

    /// Number of estimators per group for feature width `k` and buffer
    /// size `b`: `z_k = ⌈32·log_{|f_k|}(b) / ε²⌉` (at least 1).
    pub fn estimators_per_group(&self, k: usize, b: usize) -> usize {
        let log_fk_b = (b.max(2) as f64).log2() / (BITS_PER_BYTE * k as f64);
        ((32.0 * log_fk_b / (self.epsilon * self.epsilon)).ceil() as usize).max(1)
    }
}

/// Total counters `g·z_k` required to estimate `h_k` on a `b`-byte buffer
/// (the left side of Formula 3 for one feature).
///
/// # Errors
///
/// Returns [`EstimateError::UnsupportedWidth`] for `k < 2`.
pub fn counters_required(
    config: &EstimatorConfig,
    k: usize,
    b: usize,
) -> Result<usize, EstimateError> {
    if k < 2 {
        return Err(EstimateError::UnsupportedWidth(k));
    }
    Ok(config.groups() * config.estimators_per_group(k, b))
}

/// The lower bound on `ε` from Formula 4:
/// `ε > sqrt(K_φ · (log₂ b / α) · log₂(1/δ))`
/// where `K_φ = 8·Σ_{i ∈ φ, i ≠ 1} 1/i` is the feature-set coefficient and
/// `α` is the counter budget of the exact calculation.
///
/// For the paper's feature sets: `K_φSVM = 8·(1/2+1/3+1/5) ≈ 8.26`,
/// `K_φCART = 8·(1/3+1/4+1/5) ≈ 6.27`.
pub fn min_epsilon(widths: &FeatureWidths, b: usize, alpha: usize, delta: f64) -> f64 {
    let k_phi: f64 = widths.iter().filter(|&k| k != 1).map(|k| 8.0 / k as f64).sum();
    let log2_b = (b.max(2) as f64).log2();
    (k_phi * (log2_b / alpha.max(1) as f64) * (1.0 / delta).log2()).sqrt()
}

/// The streaming entropy estimator of §4.4.1.
///
/// Holds the `(δ,ε)` configuration and a seeded RNG so experiments are
/// reproducible. Each [`estimate`](Self::estimate_hk) call runs the
/// six-step sampling procedure of the paper on a full buffer.
///
/// # Examples
///
/// ```
/// use iustitia_entropy::{entropy, EstimatorConfig, StreamingEntropyEstimator};
///
/// let data: Vec<u8> = (0..4096u32).map(|i| (i.wrapping_mul(2654435761) >> 16) as u8).collect();
/// let cfg = EstimatorConfig::new(0.25, 0.25)?;
/// let mut est = StreamingEntropyEstimator::with_seed(cfg, 42);
/// let approx = est.estimate_hk(&data, 3)?;
/// let exact = entropy(&data, 3);
/// assert!((approx - exact).abs() < 0.25, "approx={approx} exact={exact}");
/// # Ok::<(), iustitia_entropy::EstimateError>(())
/// ```
#[derive(Debug, Clone)]
pub struct StreamingEntropyEstimator {
    config: EstimatorConfig,
    rng: StdRng,
}

impl StreamingEntropyEstimator {
    /// Creates an estimator with an OS-seeded RNG.
    pub fn new(config: EstimatorConfig) -> Self {
        StreamingEntropyEstimator { config, rng: StdRng::from_entropy() }
    }

    /// Creates an estimator with a deterministic seed (for experiments).
    pub fn with_seed(config: EstimatorConfig, seed: u64) -> Self {
        StreamingEntropyEstimator { config, rng: StdRng::seed_from_u64(seed) }
    }

    /// The configuration in use.
    pub fn config(&self) -> &EstimatorConfig {
        &self.config
    }

    /// Estimates `S_k = Σᵢ m_ik·log₂(m_ik)` over the `k`-grams of `data`
    /// using the sampling procedure of §4.4.1.
    ///
    /// # Errors
    ///
    /// Returns [`EstimateError::UnsupportedWidth`] for `k < 2`.
    pub fn estimate_sk(&mut self, data: &[u8], k: usize) -> Result<f64, EstimateError> {
        if k < 2 {
            return Err(EstimateError::UnsupportedWidth(k));
        }
        if data.len() < k + 1 {
            return Ok(0.0);
        }
        let m = data.len() - k + 1; // number of windows
        let g = self.config.groups();
        let z = self.config.estimators_per_group(k, data.len());

        let mut group_means = Vec::with_capacity(g);
        for _ in 0..g {
            let mut sum = 0.0;
            for _ in 0..z {
                // Steps 1-2: random location, count suffix occurrences of
                // the gram found there.
                let j = self.rng.gen_range(0..m);
                let gram = &data[j..j + k];
                let mut r: u64 = 0;
                for w in j..m {
                    if &data[w..w + k] == gram {
                        r += 1;
                    }
                }
                // Step 4: unbiased estimator m·(r·log r − (r−1)·log(r−1)).
                let rf = r as f64;
                let x = if r <= 1 {
                    0.0
                } else {
                    (m as f64) * (rf * rf.log2() - (rf - 1.0) * (rf - 1.0).log2())
                };
                sum += x;
            }
            // Step 5: group average.
            group_means.push(sum / z as f64);
        }
        // Step 6: median of group averages.
        group_means.sort_by(f64::total_cmp);
        let med = if group_means.len() % 2 == 1 {
            group_means[group_means.len() / 2]
        } else {
            let hi = group_means.len() / 2;
            0.5 * (group_means[hi - 1] + group_means[hi])
        };
        Ok(med.max(0.0))
    }

    /// Estimates the normalized entropy `h_k` of `data` by plugging the
    /// estimated `S_k` into Formula 1.
    ///
    /// # Errors
    ///
    /// Returns [`EstimateError::UnsupportedWidth`] for `k < 2` — the
    /// caller must compute `h_1` exactly (see
    /// [`estimate_vector`](Self::estimate_vector), which does this
    /// automatically).
    pub fn estimate_hk(&mut self, data: &[u8], k: usize) -> Result<f64, EstimateError> {
        if k < 2 {
            return Err(EstimateError::UnsupportedWidth(k));
        }
        if data.len() < k + 1 {
            return Ok(0.0);
        }
        let m = (data.len() - k + 1) as f64;
        let sk = self.estimate_sk(data, k)?;
        let bits = m.log2() - sk / m;
        Ok((bits / (BITS_PER_BYTE * k as f64)).clamp(0.0, 1.0))
    }

    /// Estimates a full entropy vector: `h_1` exactly, every `k ≥ 2`
    /// feature via the streaming sketch — the hybrid Iustitia deploys.
    pub fn estimate_vector(&mut self, data: &[u8], widths: &FeatureWidths) -> Vec<f64> {
        widths
            .iter()
            .map(|k| {
                if k == 1 {
                    crate::vector::entropy(data, 1)
                } else {
                    // `k >= 2` here, so UnsupportedWidth is unreachable;
                    // fall back to the exact computation rather than panic
                    // if the estimator ever refuses a width.
                    match self.estimate_hk(data, k) {
                        Ok(h) => h,
                        Err(_) => crate::vector::entropy(data, k),
                    }
                }
            })
            .collect()
    }

    /// Total counters this estimator uses for the feature set on a
    /// `b`-byte buffer (`h_1`'s exact counters excluded, per the paper's
    /// Formula 3 which sums over `φᵢ ≠ h_1`).
    pub fn total_counters(&self, widths: &FeatureWidths, b: usize) -> usize {
        widths
            .iter()
            .filter(|&k| k >= 2)
            .map(|k| self.config.groups() * self.config.estimators_per_group(k, b))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::entropy;

    fn pseudo_random(n: usize, seed: u64) -> Vec<u8> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 24) as u8
            })
            .collect()
    }

    #[test]
    fn config_validation() {
        assert!(EstimatorConfig::new(0.25, 0.5).is_ok());
        assert_eq!(EstimatorConfig::new(0.0, 0.5), Err(EstimateError::InvalidEpsilon(0.0)));
        assert_eq!(EstimatorConfig::new(0.5, 0.0), Err(EstimateError::InvalidDelta(0.0)));
        assert_eq!(EstimatorConfig::new(0.5, 1.0), Err(EstimateError::InvalidDelta(1.0)));
    }

    #[test]
    fn paper_operating_points() {
        let svm = EstimatorConfig::svm_optimal();
        assert_eq!((svm.epsilon, svm.delta), (0.25, 0.75));
        let cart = EstimatorConfig::cart_optimal();
        assert_eq!((cart.epsilon, cart.delta), (0.5, 0.1));
    }

    #[test]
    fn group_and_z_formulas() {
        let cfg = EstimatorConfig::new(0.5, 0.25).unwrap();
        // g = ceil(2*log2(4)) = 4
        assert_eq!(cfg.groups(), 4);
        // z_2 = ceil(32 * (log2(1024)/16) / 0.25) = ceil(32*0.625/0.25) = 80
        assert_eq!(cfg.estimators_per_group(2, 1024), 80);
        // z_5 = ceil(32 * (10/40) / 0.25) = 32
        assert_eq!(cfg.estimators_per_group(5, 1024), 32);
    }

    #[test]
    fn counters_required_rejects_h1() {
        let cfg = EstimatorConfig::new(0.25, 0.25).unwrap();
        assert!(matches!(
            counters_required(&cfg, 1, 1024),
            Err(EstimateError::UnsupportedWidth(1))
        ));
        assert!(counters_required(&cfg, 2, 1024).unwrap() > 0);
    }

    #[test]
    fn min_epsilon_matches_paper_constants() {
        // Paper: K_φSVM = 8.26..., K_φCART = 6.26..., and with b=1024,
        // α≈1911: ε > 0.18·sqrt(log2(1/δ)).
        let svm = FeatureWidths::svm_selected();
        let cart = FeatureWidths::cart_selected();
        let k_svm: f64 = 8.0 * (0.5 + 1.0 / 3.0 + 0.2);
        assert!((k_svm - 8.266).abs() < 0.01);
        let eps_at_half = min_epsilon(&svm, 1024, 1911, 0.5);
        // sqrt(8.266 * 10/1911 * 1) ≈ 0.208
        assert!((eps_at_half - (k_svm * 10.0 / 1911.0f64).sqrt()).abs() < 1e-9);
        assert!(min_epsilon(&cart, 1024, 1911, 0.5) < eps_at_half);
    }

    #[test]
    fn estimate_constant_data_is_zero() {
        let cfg = EstimatorConfig::new(0.3, 0.3).unwrap();
        let mut est = StreamingEntropyEstimator::with_seed(cfg, 1);
        let h = est.estimate_hk(&[9u8; 2048], 2).unwrap();
        assert!(h.abs() < 1e-9, "h={h}");
    }

    #[test]
    fn estimate_tracks_exact_on_random_data() {
        let data = pseudo_random(4096, 7);
        let cfg = EstimatorConfig::new(0.2, 0.2).unwrap();
        let mut est = StreamingEntropyEstimator::with_seed(cfg, 11);
        for k in [2usize, 3, 5] {
            let exact = entropy(&data, k);
            let approx = est.estimate_hk(&data, k).unwrap();
            assert!(
                (approx - exact).abs() <= 0.2 * exact.max(0.05) + 0.05,
                "k={k} exact={exact} approx={approx}"
            );
        }
    }

    #[test]
    fn estimate_tracks_exact_on_textlike_data() {
        let data: Vec<u8> = b"flow nature identification at high speed using entropy. "
            .iter()
            .cycle()
            .take(2048)
            .copied()
            .collect();
        let cfg = EstimatorConfig::new(0.25, 0.25).unwrap();
        let mut est = StreamingEntropyEstimator::with_seed(cfg, 3);
        let exact = entropy(&data, 2);
        let approx = est.estimate_hk(&data, 2).unwrap();
        assert!((approx - exact).abs() < 0.15, "exact={exact} approx={approx}");
    }

    #[test]
    fn estimate_vector_mixes_exact_h1() {
        let data = pseudo_random(1024, 5);
        let widths = FeatureWidths::svm_selected();
        let cfg = EstimatorConfig::svm_optimal();
        let mut est = StreamingEntropyEstimator::with_seed(cfg, 21);
        let v = est.estimate_vector(&data, &widths);
        assert_eq!(v.len(), 4);
        // h1 is the exact computation (up to float summation order).
        assert!((v[0] - entropy(&data, 1)).abs() < 1e-12);
        assert!(v.iter().all(|h| (0.0..=1.0).contains(h)));
    }

    #[test]
    fn short_input_estimates_zero() {
        let cfg = EstimatorConfig::new(0.25, 0.25).unwrap();
        let mut est = StreamingEntropyEstimator::with_seed(cfg, 2);
        assert_eq!(est.estimate_hk(b"ab", 2).unwrap(), 0.0);
        assert_eq!(est.estimate_sk(b"", 3).unwrap(), 0.0);
    }

    #[test]
    fn total_counters_excludes_h1_and_shrinks_with_epsilon() {
        let widths = FeatureWidths::svm_selected();
        let loose =
            StreamingEntropyEstimator::with_seed(EstimatorConfig::new(0.5, 0.5).unwrap(), 0);
        let tight =
            StreamingEntropyEstimator::with_seed(EstimatorConfig::new(0.1, 0.5).unwrap(), 0);
        let c_loose = loose.total_counters(&widths, 1024);
        let c_tight = tight.total_counters(&widths, 1024);
        assert!(c_loose < c_tight);
        // h1 contributes nothing: {1} alone would be zero counters.
        let only_h1 = FeatureWidths::new(vec![1]);
        assert_eq!(loose.total_counters(&only_h1, 1024), 0);
    }

    #[test]
    fn groups_is_at_least_one_even_for_large_delta() {
        // δ → 1 drives 2·log2(1/δ) → 0; the group count must clamp at 1.
        let cfg = EstimatorConfig::new(0.5, 0.99).unwrap();
        assert_eq!(cfg.groups(), 1);
    }

    #[test]
    fn minimal_length_input_estimates_without_panic() {
        let cfg = EstimatorConfig::new(0.5, 0.5).unwrap();
        let mut est = StreamingEntropyEstimator::with_seed(cfg, 1);
        // Exactly k+1 bytes: two windows.
        let h = est.estimate_hk(&[1, 2, 3], 2).unwrap();
        assert!((0.0..=1.0).contains(&h));
    }

    #[test]
    fn cart_widths_estimate_vector_shape() {
        let data = pseudo_random(512, 3);
        let widths = FeatureWidths::cart_selected();
        let mut est = StreamingEntropyEstimator::with_seed(EstimatorConfig::cart_optimal(), 5);
        let v = est.estimate_vector(&data, &widths);
        assert_eq!(v.len(), 4);
        assert!(v.iter().all(|h| (0.0..=1.0).contains(h)));
    }

    #[test]
    fn error_display() {
        let e = EstimateError::UnsupportedWidth(1);
        assert!(e.to_string().contains("unsupported"));
        assert!(EstimateError::InvalidEpsilon(-1.0).to_string().contains("positive"));
        assert!(EstimateError::InvalidDelta(2.0).to_string().contains("(0, 1)"));
    }
}
