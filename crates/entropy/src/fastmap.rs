//! Vendored FxHash-style hashing and an open-addressing counter table.
//!
//! The gram-counting hot path ([`crate::histogram`]) increments one
//! counter per byte per feature width; routing those increments through
//! `std`'s SipHash-keyed `HashMap` costs more than the arithmetic it
//! guards. This module provides the two cheap replacements the kernel
//! uses instead:
//!
//! * [`CounterTable`] — a linear-probing, power-of-two, insert-only
//!   `u128 → u64` counter map. Counts only ever increment, so a zero
//!   count doubles as the empty-slot marker and the table never needs
//!   tombstones: growth rehashes live entries only.
//! * [`FxHashMap`] / [`FxBuildHasher`] — a drop-in `HashMap` alias
//!   using the same multiply-based hash, for the places that need a
//!   real map (the estimator's gram → tracker index, divergence
//!   probability tables).
//!
//! The hash is the well-known firefox ("Fx") construction: per 64-bit
//! word, `h = (h.rotate_left(5) ^ word) * K` with a fixed odd constant
//! `K`. It is not collision-resistant against adversarial keys, which
//! is acceptable here: keys are at most `256^k` packed grams and the
//! tables are bounded by the classification window `b`, so the worst
//! case degrades to a short linear scan, never unbounded growth.

use std::hash::{BuildHasher, Hasher};

/// The Fx multiply constant (an odd 64-bit number with good bit
/// diffusion, as used by the firefox hasher).
const FX_K: u64 = 0x517c_c1b7_2722_0a95;

#[inline]
fn fx_mix(hash: u64, word: u64) -> u64 {
    (hash.rotate_left(5) ^ word).wrapping_mul(FX_K)
}

/// Hashes one packed gram (both 64-bit halves folded through the Fx
/// round function).
///
/// Grams of width `k ≤ 8` pack entirely into the low word; for those
/// the second (dependent) mix round is skipped — one well-predicted
/// branch buys back a multiply on the per-byte counting path. The
/// function stays deterministic per value, which is all the table
/// needs.
#[inline]
#[must_use]
pub fn fx_hash_u128(key: u128) -> u64 {
    let hi = (key >> 64) as u64;
    let lo = fx_mix(0, key as u64);
    if hi == 0 {
        lo
    } else {
        fx_mix(lo, hi)
    }
}

/// One `(packed gram, count)` slot; `count == 0` marks an empty slot
/// (valid because a present key always has count ≥ 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Slot {
    key: u128,
    count: u64,
}

const EMPTY: Slot = Slot { key: 0, count: 0 };

/// Initial capacity of the first allocation (power of two).
const INITIAL_CAPACITY: usize = 16;

/// An open-addressing `u128 → u64` counter table.
///
/// Linear probing over a power-of-two slot array, indexed by the high
/// bits of [`fx_hash_u128`]. The only mutation is
/// [`increment`](Self::increment): keys are never removed, so lookups
/// can stop at the first empty slot and growth reinserts live entries
/// without tombstone bookkeeping. Load is kept at or below ½ — linear
/// probing degrades quadratically with load (≈8.5 expected probes per
/// miss at ¾ load vs ≈2.5 at ½), and probe length, not hashing, is
/// what the gram hot path pays for.
/// [`clear`](Self::clear) resets the table while keeping its
/// allocation, which is what lets pooled flow state recycle without
/// touching the allocator.
///
/// # Examples
///
/// ```
/// use iustitia_entropy::fastmap::CounterTable;
///
/// let mut t = CounterTable::new();
/// t.increment(7);
/// t.increment(7);
/// t.increment(9);
/// assert_eq!(t.get(7), 2);
/// assert_eq!(t.get(9), 1);
/// assert_eq!(t.get(8), 0);
/// assert_eq!(t.len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CounterTable {
    slots: Vec<Slot>,
    /// Occupied slots (distinct keys).
    len: usize,
    /// `64 − log2(capacity)`: shift that maps a hash to a slot index.
    shift: u32,
}

impl CounterTable {
    /// Creates an empty table. No allocation until the first
    /// [`increment`](Self::increment).
    #[must_use]
    pub fn new() -> Self {
        CounterTable { slots: Vec::new(), len: 0, shift: 0 }
    }

    /// Creates a table pre-sized for `expected_keys` distinct keys, so
    /// filling it to that point never rehashes.
    #[must_use]
    pub fn with_capacity(expected_keys: usize) -> Self {
        let mut t = CounterTable::new();
        t.reserve(expected_keys);
        t
    }

    /// Ensures room for `additional` further distinct keys at ≤ ½ load
    /// (one rehash now instead of a cascade of doublings later).
    pub fn reserve(&mut self, additional: usize) {
        let needed = self.len.saturating_add(additional).saturating_mul(2);
        if needed > self.slots.len() {
            self.rehash(needed.next_power_of_two().max(INITIAL_CAPACITY));
        }
    }

    /// Number of distinct keys.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no key has been counted yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The count of `key` (0 if never incremented).
    #[must_use]
    pub fn get(&self, key: u128) -> u64 {
        if self.slots.is_empty() {
            return 0;
        }
        let mask = self.slots.len() - 1;
        let mut i = (fx_hash_u128(key) >> self.shift) as usize;
        loop {
            // lint: allow(L008) — masked probe: slots.len() is a power of two, mask = len - 1
            let slot = &self.slots[i & mask];
            if slot.count == 0 {
                return 0;
            }
            if slot.key == key {
                return slot.count;
            }
            i = i.wrapping_add(1);
        }
    }

    /// Adds 1 to the count of `key`, inserting it at count 1 if absent.
    #[inline]
    pub fn increment(&mut self, key: u128) {
        if self.len.saturating_mul(2) >= self.slots.len() {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut i = (fx_hash_u128(key) >> self.shift) as usize;
        loop {
            // lint: allow(L008) — masked probe: slots.len() is a power of two, mask = len - 1
            let slot = &mut self.slots[i & mask];
            if slot.count == 0 {
                *slot = Slot { key, count: 1 };
                self.len = self.len.saturating_add(1);
                return;
            }
            if slot.key == key {
                slot.count = slot.count.saturating_add(1);
                return;
            }
            i = i.wrapping_add(1);
        }
    }

    /// Doubles capacity (or makes the first allocation).
    fn grow(&mut self) {
        self.rehash(self.slots.len().saturating_mul(2).max(INITIAL_CAPACITY));
    }

    /// Re-slots every live entry into a `new_cap`-slot array
    /// (`new_cap` a power of two). Counts-only-increment means there
    /// are no tombstones to filter: every non-empty slot is live.
    fn rehash(&mut self, new_cap: usize) {
        // lint: allow(L009) — growth path: runs only when a flow exceeds its reserve() budget
        let old = std::mem::replace(&mut self.slots, vec![EMPTY; new_cap]);
        // lint: allow(L008) — new_cap ≥ INITIAL_CAPACITY, never zero
        self.shift = 64 - new_cap.ilog2();
        let mask = new_cap - 1;
        for slot in old {
            if slot.count == 0 {
                continue;
            }
            let mut i = (fx_hash_u128(slot.key) >> self.shift) as usize;
            // lint: allow(L008) — masked probe: new_cap is a power of two, mask = len - 1
            while self.slots[i & mask].count != 0 {
                i = i.wrapping_add(1);
            }
            // lint: allow(L008) — masked probe: new_cap is a power of two, mask = len - 1
            self.slots[i & mask] = slot;
        }
    }

    /// Empties the table, keeping its allocation for reuse.
    pub fn clear(&mut self) {
        self.slots.fill(EMPTY);
        self.len = 0;
    }

    /// Iterates over `(key, count)` pairs in arbitrary (slot) order.
    pub fn iter(&self) -> impl Iterator<Item = (u128, u64)> + '_ {
        self.slots.iter().filter(|s| s.count != 0).map(|s| (s.key, s.count))
    }

    /// Allocated slot count (benchmark/diagnostic aid).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

/// A [`Hasher`] running the Fx round function over the written words.
///
/// Only as strong as its inputs need: used for packed-gram and small
/// integer keys inside this workspace, not for untrusted map keys.
#[derive(Debug, Clone, Default)]
pub struct FxHasher {
    hash: u64,
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk);
            self.hash = fx_mix(self.hash, u64::from_le_bytes(word));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.hash = fx_mix(self.hash, u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.hash = fx_mix(self.hash, u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.hash = fx_mix(self.hash, u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.hash = fx_mix(self.hash, u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.hash = fx_mix(self.hash, v);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.hash = fx_mix(fx_mix(self.hash, v as u64), (v >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.hash = fx_mix(self.hash, v as u64);
    }
}

/// [`BuildHasher`] for [`FxHasher`] (stateless, so every map is
/// deterministic across runs — unlike `RandomState`).
#[derive(Debug, Clone, Copy, Default)]
pub struct FxBuildHasher;

impl BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;

    #[inline]
    fn build_hasher(&self) -> FxHasher {
        FxHasher::default()
    }
}

/// A `HashMap` keyed by the Fx hash — the drop-in replacement for
/// `std`'s SipHash default inside this crate's hot paths.
// lint: allow(L007) — this alias IS the sanctioned fast-hashed HashMap
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn pseudo_random_keys(n: usize, seed: u64) -> Vec<u128> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                // Mix of narrow and wide keys, with repeats.
                if x.is_multiple_of(3) {
                    u128::from(x % 257)
                } else {
                    u128::from(x) << 64 | u128::from(x.wrapping_mul(31))
                }
            })
            .collect()
    }

    #[test]
    fn empty_table() {
        let t = CounterTable::new();
        assert_eq!(t.len(), 0);
        assert!(t.is_empty());
        assert_eq!(t.get(0), 0);
        assert_eq!(t.iter().count(), 0);
        assert_eq!(t.capacity(), 0);
    }

    #[test]
    fn counts_match_std_hashmap_model() {
        let keys = pseudo_random_keys(10_000, 7);
        let mut table = CounterTable::new();
        let mut model: HashMap<u128, u64> = HashMap::new();
        for &k in &keys {
            table.increment(k);
            *model.entry(k).or_insert(0) += 1;
        }
        assert_eq!(table.len(), model.len());
        for (&k, &c) in &model {
            assert_eq!(table.get(k), c, "key {k}");
        }
        let mut from_iter: Vec<(u128, u64)> = table.iter().collect();
        from_iter.sort_unstable();
        let mut from_model: Vec<(u128, u64)> = model.into_iter().collect();
        from_model.sort_unstable();
        assert_eq!(from_iter, from_model);
    }

    #[test]
    fn growth_keeps_counts() {
        let mut t = CounterTable::new();
        // Sequential keys force several doublings past INITIAL_CAPACITY.
        for round in 1..=3u64 {
            for k in 0..500u128 {
                t.increment(k);
            }
            assert_eq!(t.len(), 500, "round {round}");
            for k in 0..500u128 {
                assert_eq!(t.get(k), round, "round {round} key {k}");
            }
        }
        assert!(t.capacity() >= 500 * 4 / 3);
        assert!(t.capacity().is_power_of_two());
    }

    #[test]
    fn zero_key_is_a_real_key() {
        // key 0 must be distinguishable from an empty slot.
        let mut t = CounterTable::new();
        t.increment(0);
        t.increment(0);
        assert_eq!(t.get(0), 2);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut t = CounterTable::new();
        for k in 0..1000u128 {
            t.increment(k);
        }
        let cap = t.capacity();
        t.clear();
        assert_eq!(t.len(), 0);
        assert_eq!(t.capacity(), cap);
        assert_eq!(t.get(3), 0);
        t.increment(3);
        assert_eq!(t.get(3), 1);
    }

    #[test]
    fn fx_hashmap_behaves_like_a_map() {
        let mut m: FxHashMap<u128, Vec<u32>> = FxHashMap::default();
        m.entry(5).or_default().push(1);
        m.entry(5).or_default().push(2);
        m.entry(9).or_default().push(3);
        assert_eq!(m.get(&5), Some(&vec![1, 2]));
        assert_eq!(m.len(), 2);
        m.remove(&5);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn fx_hash_spreads_small_keys() {
        // High bits index the table, so small keys must not collapse
        // into the same high bits.
        let hashes: Vec<u64> = (0..256u128).map(|k| fx_hash_u128(k) >> 56).collect();
        let distinct: std::collections::HashSet<u64> = hashes.iter().copied().collect();
        assert!(distinct.len() > 128, "only {} distinct high bytes", distinct.len());
    }

    #[test]
    fn hasher_write_paths_agree_on_word_boundaries() {
        let mut a = FxHasher::default();
        a.write_u64(0x0123_4567_89AB_CDEF);
        let mut b = FxHasher::default();
        b.write(&0x0123_4567_89AB_CDEFu64.to_le_bytes());
        assert_eq!(a.finish(), b.finish());
    }
}
