//! Kullback–Leibler and Jensen–Shannon divergence (Formula 2).
//!
//! Section 3.2 of the paper validates *hypothesis 2* — "the randomness of
//! the beginning portion of a file represents the randomness of the entire
//! file" — by measuring the Jensen–Shannon divergence between the k-gram
//! distribution of the first `b` bytes of a file and that of the whole
//! file (Figure 3). JSD is computed as
//!
//! ```text
//! JSD(P‖Q) = H(M) − ½·H(P) − ½·H(Q),   M = (P + Q) / 2
//! ```
//!
//! With base-2 logarithms JSD is smooth, symmetric, and bounded in
//! `[0, 1]`; `JSD(P‖Q) = 0` iff `P = Q`.

use crate::fastmap::{FxBuildHasher, FxHashMap};
use crate::histogram::GramHistogram;

/// A probability distribution over `k`-byte grams, derived from a
/// [`GramHistogram`].
///
/// # Examples
///
/// ```
/// use iustitia_entropy::{jensen_shannon_divergence, ByteDistribution};
///
/// let p = ByteDistribution::from_bytes(b"aaaabbbb", 1);
/// let q = ByteDistribution::from_bytes(b"bbbbaaaa", 1);
/// assert!(jensen_shannon_divergence(&p, &q) < 1e-12); // same histogram
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ByteDistribution {
    k: usize,
    probs: FxHashMap<u128, f64>,
}

impl ByteDistribution {
    /// Builds the `k`-gram probability distribution of `data`.
    ///
    /// Returns an empty distribution when `data` has fewer than `k` bytes.
    pub fn from_bytes(data: &[u8], k: usize) -> Self {
        Self::from_histogram(&GramHistogram::from_bytes(data, k))
    }

    /// Converts a histogram of counts into a probability distribution.
    pub fn from_histogram(hist: &GramHistogram) -> Self {
        let total = hist.window_count() as f64;
        let mut probs = FxHashMap::with_capacity_and_hasher(hist.distinct(), FxBuildHasher);
        if total > 0.0 {
            for (gram, count) in hist.iter() {
                probs.insert(gram, count as f64 / total);
            }
        }
        ByteDistribution { k: hist.k(), probs }
    }

    /// The gram width.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of grams with non-zero probability.
    pub fn support_size(&self) -> usize {
        self.probs.len()
    }

    /// Probability of a packed gram (0 if outside the support).
    pub fn prob(&self, gram: u128) -> f64 {
        self.probs.get(&gram).copied().unwrap_or(0.0)
    }

    /// Shannon entropy of the distribution in bits.
    ///
    /// Terms are summed in gram order so the result is bit-for-bit
    /// reproducible across runs.
    pub fn entropy_bits(&self) -> f64 {
        let mut entries: Vec<(u128, f64)> = self.probs.iter().map(|(&g, &p)| (g, p)).collect();
        entries.sort_unstable_by_key(|&(g, _)| g);
        -entries.into_iter().filter(|&(_, p)| p > 0.0).map(|(_, p)| p * p.log2()).sum::<f64>()
    }

    /// Whether the distribution is empty (input shorter than `k`).
    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }

    fn keys(&self) -> impl Iterator<Item = u128> + '_ {
        self.probs.keys().copied()
    }
}

/// Kullback–Leibler divergence `KLD(P‖Q) = Σᵢ pᵢ·log2(pᵢ/qᵢ)` in bits.
///
/// Returns `f64::INFINITY` when the support of `P` is not contained in
/// the support of `Q` (the standard convention), and 0 for two empty
/// distributions.
///
/// # Panics
///
/// Panics if the two distributions have different gram widths.
pub fn kl_divergence(p: &ByteDistribution, q: &ByteDistribution) -> f64 {
    assert_eq!(p.k(), q.k(), "KLD requires equal gram widths");
    let mut d = 0.0;
    for gram in p.keys() {
        let pi = p.prob(gram);
        if pi == 0.0 {
            continue;
        }
        let qi = q.prob(gram);
        if qi == 0.0 {
            return f64::INFINITY;
        }
        d += pi * (pi / qi).log2();
    }
    d.max(0.0)
}

/// Jensen–Shannon divergence `JSD(P‖Q) = H(M) − ½H(P) − ½H(Q)` in bits,
/// where `M = (P+Q)/2` (Formula 2). Bounded in `[0, 1]`, symmetric,
/// and 0 iff `P = Q`.
///
/// # Panics
///
/// Panics if the two distributions have different gram widths.
pub fn jensen_shannon_divergence(p: &ByteDistribution, q: &ByteDistribution) -> f64 {
    assert_eq!(p.k(), q.k(), "JSD requires equal gram widths");
    if p.is_empty() && q.is_empty() {
        return 0.0;
    }
    // H(M) computed over the union support, in gram order for
    // reproducible summation.
    let mut union: Vec<u128> = p.keys().chain(q.keys()).collect();
    union.sort_unstable();
    union.dedup();
    let mut h_m = 0.0;
    for gram in union {
        let m = 0.5 * (p.prob(gram) + q.prob(gram));
        if m > 0.0 {
            h_m -= m * m.log2();
        }
    }
    let jsd = h_m - 0.5 * p.entropy_bits() - 0.5 * q.entropy_bits();
    jsd.clamp(0.0, 1.0)
}

/// JSD between the first `portion` of `data` and the whole of `data`,
/// over `k`-grams — the quantity plotted in Figure 3.
///
/// `portion` is clamped to `(0, 1]`; a prefix shorter than `k` bytes
/// yields JSD against an empty distribution, reported as the maximal
/// divergence 1.0 (nothing of the file has been seen).
///
/// # Examples
///
/// ```
/// use iustitia_entropy::prefix_jsd;
///
/// let data: Vec<u8> = (0..200u8).cycle().take(10_000).collect();
/// // Seeing the full file is zero divergence.
/// assert!(prefix_jsd(&data, 1.0, 1) < 1e-9);
/// // Seeing a fifth of a stationary stream is already close.
/// assert!(prefix_jsd(&data, 0.2, 1) < 0.05);
/// ```
pub fn prefix_jsd(data: &[u8], portion: f64, k: usize) -> f64 {
    let portion = portion.clamp(f64::MIN_POSITIVE, 1.0);
    let b = ((data.len() as f64) * portion).round() as usize;
    let b = b.min(data.len());
    let p = ByteDistribution::from_bytes(&data[..b], k);
    let q = ByteDistribution::from_bytes(data, k);
    if p.is_empty() && !q.is_empty() {
        return 1.0;
    }
    jensen_shannon_divergence(&p, &q)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dist(data: &[u8], k: usize) -> ByteDistribution {
        ByteDistribution::from_bytes(data, k)
    }

    #[test]
    fn kld_of_identical_is_zero() {
        let p = dist(b"abcabcabc", 1);
        assert!(kl_divergence(&p, &p) < 1e-12);
    }

    #[test]
    fn kld_infinite_outside_support() {
        let p = dist(b"abc", 1);
        let q = dist(b"ab", 1);
        assert!(kl_divergence(&p, &q).is_infinite());
        // The reverse is finite: support(q) ⊆ support(p).
        assert!(kl_divergence(&q, &p).is_finite());
    }

    #[test]
    fn kld_manual_value() {
        // p = (1/2, 1/2) over {a,b}; q = (3/4, 1/4).
        let p = dist(b"ab", 1);
        let q = dist(b"aaab", 1);
        let expected = 0.5 * (0.5f64 / 0.75).log2() + 0.5 * (0.5f64 / 0.25).log2();
        assert!((kl_divergence(&p, &q) - expected).abs() < 1e-12);
    }

    #[test]
    fn jsd_zero_iff_equal() {
        let p = dist(b"hello world", 1);
        let q = dist(b"hello world", 1);
        assert!(jensen_shannon_divergence(&p, &q) < 1e-12);
    }

    #[test]
    fn jsd_symmetric() {
        let p = dist(b"aaaaabbbcc", 1);
        let q = dist(b"abcabcabcz", 1);
        let d1 = jensen_shannon_divergence(&p, &q);
        let d2 = jensen_shannon_divergence(&q, &p);
        assert!((d1 - d2).abs() < 1e-12);
        assert!(d1 > 0.0);
    }

    #[test]
    fn jsd_of_disjoint_supports_is_one() {
        let p = dist(b"aaaa", 1);
        let q = dist(b"bbbb", 1);
        assert!((jensen_shannon_divergence(&p, &q) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jsd_is_average_of_klds_to_mean() {
        // Cross-check Formula 2's two forms on a non-trivial pair.
        let p = dist(b"aabbbbcc", 1);
        let q = dist(b"abcddddd", 1);
        let jsd = jensen_shannon_divergence(&p, &q);
        // Build M explicitly and average KLDs.
        let mut h_m = 0.0;
        for g in [b'a', b'b', b'c', b'd'] {
            let m = 0.5 * (p.prob(g as u128) + q.prob(g as u128));
            if m > 0.0 {
                h_m -= m * m.log2();
            }
        }
        let expected = h_m - 0.5 * p.entropy_bits() - 0.5 * q.entropy_bits();
        assert!((jsd - expected).abs() < 1e-12);
    }

    #[test]
    fn prefix_jsd_decreases_with_portion_for_stationary_data() {
        let data: Vec<u8> = b"the quick brown fox jumps over the lazy dog. "
            .iter()
            .cycle()
            .take(8192)
            .copied()
            .collect();
        let d20 = prefix_jsd(&data, 0.2, 1);
        let d80 = prefix_jsd(&data, 0.8, 1);
        let d100 = prefix_jsd(&data, 1.0, 1);
        assert!(d20 >= d80, "d20={d20} d80={d80}");
        assert!(d80 >= d100);
        assert!(d100 < 1e-9);
    }

    #[test]
    fn prefix_jsd_two_gram_larger_than_one_gram() {
        // Figure 3(b): f2 divergence is larger than f1 at the same portion
        // (sparser distributions are harder to learn from a prefix).
        let data: Vec<u8> = b"entropy vectors classify flows into classes. "
            .iter()
            .cycle()
            .take(4096)
            .copied()
            .collect();
        let d1 = prefix_jsd(&data, 0.1, 1);
        let d2 = prefix_jsd(&data, 0.1, 2);
        assert!(d2 >= d1, "d1={d1} d2={d2}");
    }

    #[test]
    fn prefix_jsd_tiny_prefix_is_max() {
        let data = vec![1u8; 100];
        assert_eq!(prefix_jsd(&data, 0.001, 3), 1.0);
    }

    #[test]
    #[should_panic(expected = "equal gram widths")]
    fn mismatched_widths_panic() {
        let p = dist(b"abc", 1);
        let q = dist(b"abc", 2);
        jensen_shannon_divergence(&p, &q);
    }

    #[test]
    fn empty_distributions() {
        let p = dist(b"", 1);
        let q = dist(b"", 1);
        assert_eq!(jensen_shannon_divergence(&p, &q), 0.0);
        assert_eq!(kl_divergence(&p, &q), 0.0);
        assert!(p.is_empty());
    }
}
