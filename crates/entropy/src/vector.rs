//! Normalized entropy `h_k` and entropy vectors (Formula 1 of the paper).
//!
//! For a byte sequence of length `m` viewed as `M = m - k + 1` overlapping
//! `k`-byte grams over the alphabet `f_k` (`|f_k| = 256^k`), the paper
//! defines the normalized entropy
//!
//! ```text
//! h_k = log(M) - (1/M) · Σ_i m_ik · log(m_ik)        [base |f_k|]
//! ```
//!
//! which is Shannon entropy with logarithm base `|f_k|`, so `h_k ∈ [0, 1]`
//! ("element per symbol"): 0 when all grams are identical and 1 when all
//! `|f_k|` grams appear equally often. The *entropy vector* of a file is
//! `H_F = ⟨h_1, h_2, …⟩`; Iustitia uses (subsets of) `h_1 … h_10` as
//! classifier features.

use crate::histogram::GramHistogram;
use crate::BITS_PER_BYTE;

/// Feature widths used by the paper's full entropy vector: `h_1 … h_10`.
pub const FULL_WIDTHS: [usize; 10] = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10];

/// A set of feature widths (the `k` values of the `h_k` features used
/// by a classifier), e.g. the paper's `φ′_SVM = {h1, h2, h3, h5}`.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct FeatureWidths(Vec<usize>);

impl FeatureWidths {
    /// Creates a feature-width set.
    ///
    /// # Panics
    ///
    /// Panics if `widths` is empty or contains a width outside `1..=16`.
    pub fn new(widths: impl Into<Vec<usize>>) -> Self {
        let widths = widths.into();
        // lint: allow(L008) — constructor contract: widths are validated once at configuration time, not per packet
        assert!(!widths.is_empty(), "feature width set must be non-empty");
        for &k in &widths {
            // lint: allow(L008) — constructor contract: widths are validated once at configuration time, not per packet
            assert!((1..=16).contains(&k), "feature width {k} outside 1..=16");
        }
        FeatureWidths(widths)
    }

    /// The paper's full feature vector `h_1 … h_10`.
    pub fn full() -> Self {
        FeatureWidths(FULL_WIDTHS.to_vec())
    }

    /// `φ′_CART = {h1, h3, h4, h5}` — the memory-friendly CART feature
    /// set chosen in §4.1.
    pub fn cart_selected() -> Self {
        FeatureWidths(vec![1, 3, 4, 5])
    }

    /// `φ′_SVM = {h1, h2, h3, h5}` — the memory-friendly SVM feature set
    /// chosen in §4.1.
    pub fn svm_selected() -> Self {
        FeatureWidths(vec![1, 2, 3, 5])
    }

    /// The widths as a slice.
    pub fn as_slice(&self) -> &[usize] {
        &self.0
    }

    /// Number of features.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the set is empty (never true for a constructed value).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterates over the widths.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.0.iter().copied()
    }
}

impl From<&[usize]> for FeatureWidths {
    fn from(widths: &[usize]) -> Self {
        // lint: allow(L009) — configuration-time conversion; on the packet path only via `from` name fan-out
        FeatureWidths::new(widths.to_vec())
    }
}

/// An entropy vector `⟨h_{k1}, h_{k2}, …⟩` with its feature widths.
///
/// This is the feature representation handed to the classifiers in
/// `iustitia-ml`.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EntropyVector {
    widths: Vec<usize>,
    values: Vec<f64>,
}

impl EntropyVector {
    /// Computes the entropy vector of `data` for the given feature widths.
    pub fn compute(data: &[u8], widths: &FeatureWidths) -> Self {
        // lint: allow(L009) — one-shot API for the buffer-then-compute mode, once per flow decision
        let values = widths.iter().map(|k| entropy(data, k)).collect();
        // lint: allow(L009) — one-shot API for the buffer-then-compute mode, once per flow decision
        EntropyVector { widths: widths.as_slice().to_vec(), values }
    }

    /// Assembles a vector from already-computed per-width values
    /// (used by the incremental builder in [`crate::incremental`]).
    pub(crate) fn from_parts(widths: Vec<usize>, values: Vec<f64>) -> Self {
        debug_assert_eq!(widths.len(), values.len());
        EntropyVector { widths, values }
    }

    /// The entropy values, ordered like the feature widths.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The feature widths, ordered like the values.
    pub fn widths(&self) -> &[usize] {
        &self.widths
    }

    /// Number of features.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the vector has no features.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The value of `h_k` if width `k` is part of this vector.
    pub fn h(&self, k: usize) -> Option<f64> {
        self.widths.iter().position(|&w| w == k).map(|i| self.values[i])
    }

    /// Consumes the vector and returns the raw feature values.
    pub fn into_values(self) -> Vec<f64> {
        self.values
    }
}

/// Computes the normalized entropy `h_k` of `data` (Formula 1).
///
/// Returns 0 for inputs shorter than `k + 1` bytes (zero or one window).
/// The result is always within `[0, 1]`.
///
/// # Panics
///
/// Panics if `k` is outside `1..=16`.
///
/// # Examples
///
/// ```
/// use iustitia_entropy::entropy;
///
/// assert_eq!(entropy(&[42u8; 100], 1), 0.0); // constant → no diversity
/// let all: Vec<u8> = (0..=255u8).collect();
/// let h = entropy(&all, 1); // perfectly uniform over the whole alphabet
/// assert!((h - 1.0).abs() < 1e-12);
/// ```
pub fn entropy(data: &[u8], k: usize) -> f64 {
    let hist = GramHistogram::from_bytes(data, k);
    entropy_of_histogram(&hist)
}

/// Computes `h_k` from a pre-built histogram.
///
/// This is the exact counterpart of the streaming estimator in
/// [`crate::estimate`]; both plug `S_k = Σ mᵢ·log(mᵢ)` into Formula 1.
pub fn entropy_of_histogram(hist: &GramHistogram) -> f64 {
    let mut scratch = Vec::new();
    entropy_of_histogram_with(hist, &mut scratch)
}

/// [`entropy_of_histogram`] using a caller-owned count-scratch buffer
/// (see [`GramHistogram::sum_m_log_m_with`]) so repeated feature
/// finishes allocate nothing. Bit-identical to the plain version.
pub fn entropy_of_histogram_with(hist: &GramHistogram, scratch: &mut Vec<u64>) -> f64 {
    let m = hist.window_count();
    if m <= 1 || hist.distinct() <= 1 {
        // A single repeated gram has exactly zero entropy; computing it
        // through the formula would leave a one-ulp residue.
        return 0.0;
    }
    let m = m as f64;
    let bits = m.log2() - hist.sum_m_log_m_with(scratch) / m;
    let normalized = bits / (BITS_PER_BYTE * hist.k() as f64);
    normalized.clamp(0.0, 1.0)
}

/// Computes the raw Shannon entropy of the `k`-gram distribution in
/// **bits per element** (log base 2, not normalized by `|f_k|`).
///
/// Exposed because the divergence measures and several tests want the
/// un-normalized quantity.
pub fn shannon_entropy_bits(data: &[u8], k: usize) -> f64 {
    let hist = GramHistogram::from_bytes(data, k);
    let m = hist.window_count();
    if m <= 1 {
        return 0.0;
    }
    let m = m as f64;
    (m.log2() - hist.sum_m_log_m() / m).max(0.0)
}

/// Computes the entropy vector `⟨h_k : k ∈ widths⟩` of `data`.
///
/// Convenience wrapper over [`EntropyVector::compute`] returning the raw
/// feature values.
///
/// # Panics
///
/// Panics if any width is outside `1..=16`.
pub fn entropy_vector(data: &[u8], widths: &[usize]) -> Vec<f64> {
    widths.iter().map(|&k| entropy(data, k)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_data_has_zero_entropy() {
        for k in 1..=5 {
            assert_eq!(entropy(&[0xAB; 256], k), 0.0, "k={k}");
        }
    }

    #[test]
    fn empty_and_tiny_data_have_zero_entropy() {
        assert_eq!(entropy(b"", 1), 0.0);
        assert_eq!(entropy(b"x", 1), 0.0);
        assert_eq!(entropy(b"xy", 3), 0.0);
    }

    #[test]
    fn uniform_bytes_have_unit_entropy() {
        let all: Vec<u8> = (0..=255u8).collect();
        assert!((entropy(&all, 1) - 1.0).abs() < 1e-12);
        // Repeating the uniform alphabet keeps h1 ≈ 1.
        let repeated: Vec<u8> = all.iter().cycle().take(4096).copied().collect();
        assert!(entropy(&repeated, 1) > 0.999);
    }

    #[test]
    fn two_symbols_give_expected_h1() {
        // "abab..." : p(a)=p(b)=1/2 → 1 bit → normalized 1/8.
        let data: Vec<u8> = b"ab".iter().cycle().take(1000).copied().collect();
        let h = entropy(&data, 1);
        assert!((h - 1.0 / 8.0).abs() < 1e-9, "h1 = {h}");
    }

    #[test]
    fn manual_formula_check() {
        // data "aab": windows a,a,b → p=(2/3,1/3)
        // H = -(2/3)log2(2/3) - (1/3)log2(1/3) ≈ 0.9183 bits → /8
        let h = entropy(b"aab", 1);
        let expected = (-(2.0 / 3.0f64) * (2.0 / 3.0f64).log2()
            - (1.0 / 3.0f64) * (1.0 / 3.0f64).log2())
            / 8.0;
        assert!((h - expected).abs() < 1e-12);
    }

    #[test]
    fn entropy_is_bounded() {
        let mut data = Vec::new();
        for i in 0..2048u32 {
            data.push((i.wrapping_mul(2654435761) >> 13) as u8);
        }
        for k in 1..=10 {
            let h = entropy(&data, k);
            assert!((0.0..=1.0).contains(&h), "k={k} h={h}");
        }
    }

    #[test]
    fn higher_k_lowers_normalized_entropy_of_finite_random_data() {
        // For b-byte random data, h_k ≤ log2(b)/(8k): small, finite samples
        // can never fill alphabet f_k for k ≥ 2, so normalized entropy drops
        // with k. This is why Fig. 2(a)'s h3 axis tops out well below 1.
        let data: Vec<u8> = (0..4096u32).map(|i| (i.wrapping_mul(101) % 251) as u8).collect();
        let h1 = entropy(&data, 1);
        let h3 = entropy(&data, 3);
        let h5 = entropy(&data, 5);
        assert!(h1 > h3 && h3 > h5, "h1={h1} h3={h3} h5={h5}");
    }

    #[test]
    fn text_binary_encrypted_ordering_on_toy_data() {
        // Hypothesis 1 on toy inputs: text < encrypted on h1.
        let text: Vec<u8> = b"the quick brown fox jumps over the lazy dog. "
            .iter()
            .cycle()
            .take(2048)
            .copied()
            .collect();
        // xorshift pseudo-random bytes stand in for ciphertext
        let mut x = 0x9E3779B97F4A7C15u64;
        let enc: Vec<u8> = (0..2048)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 32) as u8
            })
            .collect();
        assert!(entropy(&text, 1) < entropy(&enc, 1));
        assert!(entropy(&text, 2) < entropy(&enc, 2));
    }

    #[test]
    fn vector_accessors() {
        let w = FeatureWidths::new(vec![1, 3, 5]);
        let v = EntropyVector::compute(b"hello world, hello entropy", &w);
        assert_eq!(v.len(), 3);
        assert_eq!(v.widths(), &[1, 3, 5]);
        assert!(v.h(3).is_some());
        assert!(v.h(2).is_none());
        assert_eq!(v.values().len(), 3);
        assert!(!v.is_empty());
    }

    #[test]
    fn preset_feature_sets_match_paper() {
        assert_eq!(FeatureWidths::cart_selected().as_slice(), &[1, 3, 4, 5]);
        assert_eq!(FeatureWidths::svm_selected().as_slice(), &[1, 2, 3, 5]);
        assert_eq!(FeatureWidths::full().len(), 10);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_widths_panic() {
        FeatureWidths::new(Vec::new());
    }

    #[test]
    fn shannon_bits_of_uniform_alphabet() {
        let all: Vec<u8> = (0..=255u8).collect();
        assert!((shannon_entropy_bits(&all, 1) - 8.0).abs() < 1e-12);
    }
}
