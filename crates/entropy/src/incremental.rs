//! Incremental (per-packet) construction of entropy vectors.
//!
//! The flow pipeline historically buffered the first `b` payload bytes
//! of a flow and computed [`EntropyVector::compute`] once the buffer
//! filled — O(`b`) heap per pending flow. This module replaces that
//! with a streaming builder, and the builder itself runs in a **single
//! pass**: one rolling packed window is advanced once per byte and
//! feeds every requested width simultaneously, instead of re-scanning
//! each chunk once per width.
//!
//! The single-pass window argument: the rolling key holds the last
//! 16 bytes fed (`key = (key << 8) | b`; older bytes fall off the top
//! of the `u128`). After byte number `t ≥ k` of the stream, the low
//! `8k` bits of the key are exactly the window of bytes
//! `t−k+1 ..= t` — the `t−k+1`-th `k`-gram of the concatenated input.
//! Each width `k` therefore records one window per byte once at least
//! `k` bytes have been fed, which enumerates precisely the
//! `total − k + 1` windows of the contiguous input, each exactly once,
//! regardless of how the input was chunked. Because the key carries
//! across [`update`](IncrementalVector::update) calls, no per-chunk
//! carry buffer is needed and chunked ≡ one-shot holds by construction.
//!
//! The **bit-identical-finish invariant**: [`IncrementalVector::finish`]
//! is bit-for-bit equal to [`EntropyVector::compute`] on the
//! concatenated chunks, because equal window enumerations give equal
//! gram-count multisets, and
//! [`sum_m_log_m`](GramHistogram::sum_m_log_m) sums counts in sorted
//! order — collapsing any iteration-order or storage-tier difference
//! before a single float is produced.

use crate::histogram::GramHistogram;
use crate::vector::{
    entropy_of_histogram, entropy_of_histogram_with, EntropyVector, FeatureWidths,
};

/// Streaming builder of an [`EntropyVector`], fed one chunk at a time.
///
/// # Examples
///
/// ```
/// use iustitia_entropy::{EntropyVector, FeatureWidths, IncrementalVector};
///
/// let widths = FeatureWidths::svm_selected();
/// let data = b"incremental equals one-shot, byte for byte";
/// let mut inc = IncrementalVector::new(&widths);
/// for chunk in data.chunks(7) {
///     inc.update(chunk);
/// }
/// assert_eq!(inc.finish().values(), EntropyVector::compute(data, &widths).values());
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalVector {
    widths: FeatureWidths,
    hists: Vec<GramHistogram>,
    /// Rolling window of the last ≤16 bytes fed (older bytes shift off
    /// the top; every `k ≤ 16` mask still sees its full window).
    key: u128,
    total: u64,
}

impl IncrementalVector {
    /// Creates an empty builder for the given feature widths.
    pub fn new(widths: &FeatureWidths) -> Self {
        IncrementalVector {
            // lint: allow(L009) — flow-setup cold path: the builder is constructed once per flow, then pooled
            widths: widths.clone(),
            // lint: allow(L009) — flow-setup cold path: the builder is constructed once per flow, then pooled
            hists: widths.iter().map(GramHistogram::new).collect(),
            key: 0,
            total: 0,
        }
    }

    /// Like [`new`](Self::new), but pre-sized for a flow that will feed
    /// about `bytes` payload bytes (the pipeline's classification
    /// window `b`), so filling the window never rehashes mid-flow.
    pub fn with_byte_hint(widths: &FeatureWidths, bytes: usize) -> Self {
        let mut v = Self::new(widths);
        v.reserve_bytes(bytes);
        v
    }

    /// Pre-sizes every per-width histogram for `bytes` total payload.
    pub fn reserve_bytes(&mut self, bytes: usize) {
        for hist in &mut self.hists {
            hist.reserve_bytes(bytes);
        }
    }

    /// Folds one chunk of payload into every per-width histogram.
    ///
    /// Each width consumes the chunk as one contiguous slab
    /// ([`GramHistogram::extend_packed_carry`]): the storage tier is
    /// resolved once per width per chunk and the dense `k = 1` / `k = 2`
    /// tiers run fixed-width-lane inner loops, instead of the historical
    /// per-byte loop that re-dispatched on every width for every byte.
    /// The enumerated windows are identical (see the module docs'
    /// rolling-window argument applied per width), so chunked ≡ one-shot
    /// still holds bit-for-bit.
    pub fn update(&mut self, chunk: &[u8]) {
        if chunk.is_empty() {
            return;
        }
        let (prev_key, total) = (self.key, self.total);
        for hist in &mut self.hists {
            hist.extend_packed_carry(prev_key, total, chunk);
        }
        // Advance the shared rolling window: only the last ≤16 bytes of
        // the chunk survive in the key (older ones shift off the top),
        // so folding just the tail is byte-for-byte what the per-byte
        // roll would leave behind.
        // lint: allow(L008) — start = len.saturating_sub(16) <= len, so the range is always valid
        let tail = &chunk[chunk.len().saturating_sub(16)..];
        let mut key = prev_key;
        for &b in tail {
            key = (key << 8) | u128::from(b);
        }
        self.key = key;
        self.total = total + chunk.len() as u64;
    }

    /// Resets the builder to its freshly-created state while keeping
    /// every histogram's allocations, so pooled flow state recycles
    /// without touching the allocator.
    pub fn reset(&mut self) {
        for hist in &mut self.hists {
            hist.clear();
        }
        self.key = 0;
        self.total = 0;
    }

    /// Total bytes fed so far.
    pub fn total_bytes(&self) -> u64 {
        self.total
    }

    /// The feature widths this builder produces.
    pub fn widths(&self) -> &FeatureWidths {
        &self.widths
    }

    /// Counters currently resident: one per distinct gram per width
    /// (the exact-mode per-flow state cost, Formula 3's `α`).
    pub fn counters_used(&self) -> usize {
        self.hists.iter().map(GramHistogram::counters_used).sum()
    }

    /// The entropy vector of everything fed so far. Bit-identical to
    /// [`EntropyVector::compute`] on the concatenated chunks.
    pub fn finish(&self) -> EntropyVector {
        EntropyVector::from_parts(
            // lint: allow(L009) — owned-result convenience API; the pipeline uses finish_entropies_into with pooled scratch
            self.widths.as_slice().to_vec(),
            // lint: allow(L009) — owned-result convenience API; the pipeline uses finish_entropies_into with pooled scratch
            self.hists.iter().map(entropy_of_histogram).collect(),
        )
    }

    /// Writes the feature values of everything fed so far into `out`
    /// (cleared first), using `counts_scratch` for the per-width count
    /// sorting — so a warm caller allocates nothing. Values are
    /// bit-identical to [`finish`](Self::finish).
    pub fn finish_entropies_into(&self, out: &mut Vec<f64>, counts_scratch: &mut Vec<u64>) {
        out.clear();
        out.extend(self.hists.iter().map(|h| entropy_of_histogram_with(h, counts_scratch)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_random(n: usize, seed: u64) -> Vec<u8> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 24) as u8
            })
            .collect()
    }

    #[test]
    fn one_byte_chunks_match_one_shot() {
        let widths = FeatureWidths::new(vec![1, 2, 3]);
        let data = pseudo_random(257, 9);
        let mut inc = IncrementalVector::new(&widths);
        for &b in &data {
            inc.update(&[b]);
        }
        assert_eq!(inc.finish().values(), EntropyVector::compute(&data, &widths).values());
        assert_eq!(inc.total_bytes(), 257);
    }

    #[test]
    fn straddling_splits_match_one_shot() {
        let widths = FeatureWidths::full();
        let data = pseudo_random(512, 21);
        // Splits chosen to land on and around every k−1 boundary.
        for cut in [1usize, 2, 3, 4, 8, 9, 10, 11, 255, 511] {
            let mut inc = IncrementalVector::new(&widths);
            inc.update(&data[..cut]);
            inc.update(&data[cut..]);
            assert_eq!(
                inc.finish().values(),
                EntropyVector::compute(&data, &widths).values(),
                "cut={cut}"
            );
        }
    }

    #[test]
    fn empty_and_short_inputs_are_zero() {
        let widths = FeatureWidths::svm_selected();
        let inc = IncrementalVector::new(&widths);
        assert_eq!(inc.finish().values(), vec![0.0; 4]);
        let mut inc = IncrementalVector::new(&widths);
        inc.update(b"");
        inc.update(b"a");
        assert_eq!(inc.finish().values(), EntropyVector::compute(b"a", &widths).values());
    }

    #[test]
    fn counters_track_distinct_grams() {
        let widths = FeatureWidths::new(vec![1, 2]);
        let mut inc = IncrementalVector::new(&widths);
        inc.update(b"ab");
        inc.update(b"ab");
        // distinct: {a,b} for k=1; {ab, ba} for k=2.
        assert_eq!(inc.counters_used(), 4);
    }

    #[test]
    fn width_one_only_needs_no_carry() {
        let widths = FeatureWidths::new(vec![1]);
        let data = pseudo_random(64, 3);
        let mut inc = IncrementalVector::new(&widths);
        for chunk in data.chunks(5) {
            inc.update(chunk);
        }
        assert_eq!(inc.finish().values(), EntropyVector::compute(&data, &widths).values());
    }

    #[test]
    fn width_sixteen_rolls_without_masking_loss() {
        let widths = FeatureWidths::new(vec![1, 16]);
        let data = pseudo_random(200, 77);
        let mut inc = IncrementalVector::new(&widths);
        for chunk in data.chunks(13) {
            inc.update(chunk);
        }
        assert_eq!(inc.finish().values(), EntropyVector::compute(&data, &widths).values());
    }

    #[test]
    fn reset_reuses_state_bit_identically() {
        let widths = FeatureWidths::full();
        let first = pseudo_random(300, 5);
        let second = pseudo_random(300, 6);
        let mut inc = IncrementalVector::new(&widths);
        for chunk in first.chunks(11) {
            inc.update(chunk);
        }
        inc.reset();
        assert_eq!(inc.total_bytes(), 0);
        assert_eq!(inc.counters_used(), 0);
        for chunk in second.chunks(11) {
            inc.update(chunk);
        }
        assert_eq!(inc.finish().values(), EntropyVector::compute(&second, &widths).values());
    }
}
