//! Incremental (per-packet) construction of entropy vectors.
//!
//! The flow pipeline historically buffered the first `b` payload bytes
//! of a flow and computed [`EntropyVector::compute`] once the buffer
//! filled — O(`b`) heap per pending flow. This module replaces that
//! with a streaming builder: each arriving chunk is folded into one
//! [`GramHistogram`] per feature width immediately, and only a
//! `max(k) − 1`-byte *carry* of the most recent bytes is retained so
//! grams straddling chunk boundaries are still counted.
//!
//! [`IncrementalVector::finish`] is **bit-identical** to
//! [`EntropyVector::compute`] on the concatenated chunks: feeding the
//! carry tail before each chunk reproduces exactly the windows of the
//! contiguous input (every window spans at most `k` consecutive bytes,
//! and the carry always holds the previous `min(total, k−1)` bytes, so
//! each window of the concatenation is counted exactly once — windows
//! entirely inside the carry are impossible because the carry is
//! shorter than `k`). Equal gram-count multisets then yield equal
//! floating-point entropies because
//! [`sum_m_log_m`](GramHistogram::sum_m_log_m) sums counts in sorted
//! order.

use crate::histogram::GramHistogram;
use crate::vector::{entropy_of_histogram, EntropyVector, FeatureWidths};

/// Streaming builder of an [`EntropyVector`], fed one chunk at a time.
///
/// # Examples
///
/// ```
/// use iustitia_entropy::{EntropyVector, FeatureWidths, IncrementalVector};
///
/// let widths = FeatureWidths::svm_selected();
/// let data = b"incremental equals one-shot, byte for byte";
/// let mut inc = IncrementalVector::new(&widths);
/// for chunk in data.chunks(7) {
///     inc.update(chunk);
/// }
/// assert_eq!(inc.finish().values(), EntropyVector::compute(data, &widths).values());
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalVector {
    widths: FeatureWidths,
    hists: Vec<GramHistogram>,
    /// Last `min(total, max_k − 1)` bytes seen, shared by all widths.
    carry: Vec<u8>,
    carry_cap: usize,
    total: u64,
}

impl IncrementalVector {
    /// Creates an empty builder for the given feature widths.
    pub fn new(widths: &FeatureWidths) -> Self {
        let max_k = widths.iter().max().unwrap_or(1);
        IncrementalVector {
            widths: widths.clone(),
            hists: widths.iter().map(GramHistogram::new).collect(),
            carry: Vec::with_capacity(max_k.saturating_sub(1)),
            carry_cap: max_k.saturating_sub(1),
            total: 0,
        }
    }

    /// Folds one chunk of payload into every per-width histogram.
    pub fn update(&mut self, chunk: &[u8]) {
        if chunk.is_empty() {
            return;
        }
        for hist in &mut self.hists {
            let tail = self.carry.len().min(hist.k() - 1);
            hist.extend_across(&self.carry[self.carry.len() - tail..], chunk);
        }
        if chunk.len() >= self.carry_cap {
            self.carry.clear();
            self.carry.extend_from_slice(&chunk[chunk.len() - self.carry_cap..]);
        } else {
            let keep = self.carry_cap - chunk.len();
            if self.carry.len() > keep {
                let drop = self.carry.len() - keep;
                self.carry.drain(..drop);
            }
            self.carry.extend_from_slice(chunk);
        }
        self.total += chunk.len() as u64;
    }

    /// Total bytes fed so far.
    pub fn total_bytes(&self) -> u64 {
        self.total
    }

    /// The feature widths this builder produces.
    pub fn widths(&self) -> &FeatureWidths {
        &self.widths
    }

    /// Counters currently resident: one per distinct gram per width
    /// (the exact-mode per-flow state cost, Formula 3's `α`).
    pub fn counters_used(&self) -> usize {
        self.hists.iter().map(GramHistogram::counters_used).sum()
    }

    /// The entropy vector of everything fed so far. Bit-identical to
    /// [`EntropyVector::compute`] on the concatenated chunks.
    pub fn finish(&self) -> EntropyVector {
        EntropyVector::from_parts(
            self.widths.as_slice().to_vec(),
            self.hists.iter().map(entropy_of_histogram).collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_random(n: usize, seed: u64) -> Vec<u8> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 24) as u8
            })
            .collect()
    }

    #[test]
    fn one_byte_chunks_match_one_shot() {
        let widths = FeatureWidths::new(vec![1, 2, 3]);
        let data = pseudo_random(257, 9);
        let mut inc = IncrementalVector::new(&widths);
        for &b in &data {
            inc.update(&[b]);
        }
        assert_eq!(inc.finish().values(), EntropyVector::compute(&data, &widths).values());
        assert_eq!(inc.total_bytes(), 257);
    }

    #[test]
    fn straddling_splits_match_one_shot() {
        let widths = FeatureWidths::full();
        let data = pseudo_random(512, 21);
        // Splits chosen to land on and around every k−1 boundary.
        for cut in [1usize, 2, 3, 4, 8, 9, 10, 11, 255, 511] {
            let mut inc = IncrementalVector::new(&widths);
            inc.update(&data[..cut]);
            inc.update(&data[cut..]);
            assert_eq!(
                inc.finish().values(),
                EntropyVector::compute(&data, &widths).values(),
                "cut={cut}"
            );
        }
    }

    #[test]
    fn empty_and_short_inputs_are_zero() {
        let widths = FeatureWidths::svm_selected();
        let inc = IncrementalVector::new(&widths);
        assert_eq!(inc.finish().values(), vec![0.0; 4]);
        let mut inc = IncrementalVector::new(&widths);
        inc.update(b"");
        inc.update(b"a");
        assert_eq!(inc.finish().values(), EntropyVector::compute(b"a", &widths).values());
    }

    #[test]
    fn counters_track_distinct_grams() {
        let widths = FeatureWidths::new(vec![1, 2]);
        let mut inc = IncrementalVector::new(&widths);
        inc.update(b"ab");
        inc.update(b"ab");
        // distinct: {a,b} for k=1; {ab, ba} for k=2.
        assert_eq!(inc.counters_used(), 4);
    }

    #[test]
    fn width_one_only_needs_no_carry() {
        let widths = FeatureWidths::new(vec![1]);
        let data = pseudo_random(64, 3);
        let mut inc = IncrementalVector::new(&widths);
        for chunk in data.chunks(5) {
            inc.update(chunk);
        }
        assert_eq!(inc.finish().values(), EntropyVector::compute(&data, &widths).values());
    }
}
