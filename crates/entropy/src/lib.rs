//! Information-theory substrate for the Iustitia flow-nature classifier.
//!
//! This crate implements everything Section 3 and Section 4.4 of the paper
//! *"Iustitia: An Information Theoretical Approach to High-speed Flow Nature
//! Identification"* (ICDCS 2009) rely on:
//!
//! * **k-gram histograms** over byte sequences ([`GramHistogram`]) — every
//!   consecutive window of `k` bytes is one element of the alphabet
//!   `f_k` with `|f_k| = 256^k`.
//! * **Normalized entropy** `h_k` of a byte sequence (Formula 1 of the
//!   paper), and **entropy vectors** `H_F = ⟨h_1, …, h_n⟩`
//!   ([`EntropyVector`], [`entropy_vector`]).
//! * **Kullback–Leibler** and **Jensen–Shannon divergence** (Formula 2),
//!   used to validate that a file prefix is representative of the whole
//!   file ([`divergence`]).
//! * **Streaming `(δ,ε)`-approximate entropy estimation** following
//!   Lall et al. (SIGMETRICS 2006) and the sampling procedure of
//!   Section 4.4.1 ([`estimate`]).
//!
//! # Example
//!
//! ```
//! use iustitia_entropy::{entropy, entropy_vector};
//!
//! // A very repetitive (low-entropy) message ...
//! let text = b"the cat sat on the mat and the cat sat again";
//! // ... versus bytes drawn uniformly at random (high entropy).
//! let noisy: Vec<u8> = (0..1024u32).map(|i| (i * 151 % 256) as u8).collect();
//!
//! let h_text = entropy(text, 1);
//! let h_noisy = entropy(&noisy, 1);
//! assert!(h_text < h_noisy);
//!
//! // The feature vector the classifier consumes: h_1 .. h_5.
//! let hv = entropy_vector(text, &[1, 2, 3, 4, 5]);
//! assert_eq!(hv.len(), 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod divergence;
pub mod estimate;
pub mod fastmap;
pub mod histogram;
pub mod incremental;
pub mod randomness;
pub mod vector;

pub use divergence::{jensen_shannon_divergence, kl_divergence, prefix_jsd, ByteDistribution};
pub use estimate::{
    counters_required, min_epsilon, EstimateError, EstimatorConfig, IncrementalEstimator,
    StreamingEntropyEstimator,
};
pub use fastmap::{FxBuildHasher, FxHashMap};
pub use histogram::GramHistogram;
pub use incremental::IncrementalVector;
pub use randomness::{battery_features, RandomnessBattery, BATTERY_FEATURES};
pub use vector::{
    entropy, entropy_of_histogram, entropy_of_histogram_with, entropy_vector, shannon_entropy_bits,
    EntropyVector, FeatureWidths,
};

/// Number of bits per byte; `|f_k| = 2^(BITS_PER_BYTE * k)`.
pub(crate) const BITS_PER_BYTE: f64 = 8.0;
