//! Property-based tests for the information-theory substrate.

use iustitia_entropy::{
    entropy, entropy_vector, jensen_shannon_divergence, kl_divergence, prefix_jsd,
    ByteDistribution, EstimatorConfig, FeatureWidths, GramHistogram, IncrementalVector,
    StreamingEntropyEstimator,
};
use proptest::prelude::*;

/// Splits `data` into consecutive chunks whose sizes cycle through
/// `cuts` (empty `cuts` means one chunk). Sizes are clamped to the
/// remaining length, so every byte appears in exactly one chunk.
fn packetize<'a>(data: &'a [u8], cuts: &[usize]) -> Vec<&'a [u8]> {
    let mut chunks = Vec::new();
    let mut pos = 0;
    let mut i = 0;
    while pos < data.len() {
        let take = cuts.get(i % cuts.len().max(1)).copied().unwrap_or(data.len());
        let take = take.clamp(1, data.len() - pos);
        chunks.push(&data[pos..pos + take]);
        pos += take;
        i += 1;
    }
    chunks
}

/// Reference gram counter: a plain `std` HashMap over raw windows.
/// Returns `(distinct, windows, sum_m_log_m)` with the sum taken in
/// sorted count order, exactly as `GramHistogram::sum_m_log_m` defines
/// it — so equality below is bit-for-bit, not approximate.
fn hashmap_model(data: &[u8], k: usize) -> (usize, u64, f64) {
    let mut model: std::collections::HashMap<&[u8], u64> = std::collections::HashMap::new();
    if data.len() >= k {
        for window in data.windows(k) {
            *model.entry(window).or_insert(0) += 1;
        }
    }
    let windows: u64 = model.values().sum();
    let mut counts: Vec<u64> = model.values().copied().collect();
    counts.sort_unstable();
    let sum = counts
        .into_iter()
        .map(|c| {
            let c = c as f64;
            c * c.log2()
        })
        .sum();
    (model.len(), windows, sum)
}

proptest! {
    #[test]
    fn entropy_is_always_in_unit_interval(data in proptest::collection::vec(any::<u8>(), 0..2048), k in 1usize..=10) {
        let h = entropy(&data, k);
        prop_assert!((0.0..=1.0).contains(&h), "h_{k} = {h}");
    }

    #[test]
    fn constant_data_has_zero_entropy(byte in any::<u8>(), len in 0usize..1024, k in 1usize..=8) {
        let data = vec![byte; len];
        prop_assert_eq!(entropy(&data, k), 0.0);
    }

    #[test]
    fn h1_is_permutation_invariant(mut data in proptest::collection::vec(any::<u8>(), 2..512)) {
        let before = entropy(&data, 1);
        data.sort_unstable();
        let after = entropy(&data, 1);
        prop_assert!((before - after).abs() < 1e-12, "{before} vs {after}");
    }

    #[test]
    fn h1_is_invariant_under_self_concatenation(data in proptest::collection::vec(any::<u8>(), 2..512)) {
        // Doubling the data leaves the byte distribution unchanged.
        let single = entropy(&data, 1);
        let mut doubled = data.clone();
        doubled.extend_from_slice(&data);
        let double = entropy(&doubled, 1);
        prop_assert!((single - double).abs() < 1e-9, "{single} vs {double}");
    }

    #[test]
    fn entropy_vector_matches_individual_calls(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let widths = [1usize, 2, 3, 5];
        let v = entropy_vector(&data, &widths);
        for (i, &k) in widths.iter().enumerate() {
            prop_assert_eq!(v[i], entropy(&data, k));
        }
    }

    #[test]
    fn histogram_counts_sum_to_window_count(data in proptest::collection::vec(any::<u8>(), 0..1024), k in 1usize..=8) {
        let h = GramHistogram::from_bytes(&data, k);
        let expected = data.len().saturating_sub(k.saturating_sub(1)) as u64;
        let expected = if data.len() < k { 0 } else { expected };
        prop_assert_eq!(h.window_count(), expected);
        prop_assert_eq!(h.counts().sum::<u64>(), expected);
        prop_assert!(h.distinct() as u64 <= expected);
    }

    #[test]
    fn jsd_is_symmetric_and_bounded(
        a in proptest::collection::vec(any::<u8>(), 1..512),
        b in proptest::collection::vec(any::<u8>(), 1..512),
        k in 1usize..=3,
    ) {
        let p = ByteDistribution::from_bytes(&a, k);
        let q = ByteDistribution::from_bytes(&b, k);
        let d1 = jensen_shannon_divergence(&p, &q);
        let d2 = jensen_shannon_divergence(&q, &p);
        prop_assert!((d1 - d2).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&d1), "jsd = {d1}");
    }

    #[test]
    fn jsd_of_distribution_with_itself_is_zero(a in proptest::collection::vec(any::<u8>(), 1..512), k in 1usize..=3) {
        let p = ByteDistribution::from_bytes(&a, k);
        prop_assert!(jensen_shannon_divergence(&p, &p) < 1e-12);
    }

    #[test]
    fn kld_is_nonnegative_when_finite(
        a in proptest::collection::vec(0u8..4, 1..256),
        b in proptest::collection::vec(0u8..4, 1..256),
    ) {
        // Small alphabet makes shared support likely; KLD ≥ 0 always.
        let p = ByteDistribution::from_bytes(&a, 1);
        let q = ByteDistribution::from_bytes(&b, 1);
        let d = kl_divergence(&p, &q);
        prop_assert!(d >= 0.0);
    }

    #[test]
    fn prefix_jsd_at_full_portion_is_zero(data in proptest::collection::vec(any::<u8>(), 8..512), k in 1usize..=2) {
        prop_assert!(prefix_jsd(&data, 1.0, k) < 1e-9);
    }

    #[test]
    fn estimator_output_is_bounded(
        data in proptest::collection::vec(any::<u8>(), 16..768),
        k in 2usize..=5,
        seed in any::<u64>(),
    ) {
        let cfg = EstimatorConfig::new(0.5, 0.5).expect("valid");
        let mut est = StreamingEntropyEstimator::with_seed(cfg, seed);
        let h = est.estimate_hk(&data, k).expect("k >= 2");
        prop_assert!((0.0..=1.0).contains(&h), "estimated h_{k} = {h}");
    }

    /// The tentpole equivalence, exact mode: feeding any packetization
    /// of a payload through [`IncrementalVector`] yields the same bits
    /// as the one-shot vector over the concatenation. Cut sizes from 1
    /// guarantee single-byte packets and splits that straddle every
    /// k-gram boundary for k in {1, 2, 3}.
    #[test]
    fn incremental_vector_is_packetization_invariant(
        data in proptest::collection::vec(any::<u8>(), 0..768),
        cuts in proptest::collection::vec(1usize..32, 0..24),
    ) {
        let widths = FeatureWidths::new(vec![1, 2, 3]);
        let mut session = IncrementalVector::new(&widths);
        for chunk in packetize(&data, &cuts) {
            session.update(chunk);
        }
        let streamed = session.finish();
        let one_shot = entropy_vector(&data, &[1, 2, 3]);
        prop_assert_eq!(streamed.values(), &one_shot[..], "exact mode must be bit-identical");
    }

    /// Same equivalence in estimated mode: with the same seed and the
    /// same `b_hint`, the incremental session is bit-identical to the
    /// one-shot estimate regardless of packetization (the sketch
    /// consumes bytes one at a time, so chunk boundaries are invisible).
    #[test]
    fn incremental_estimator_is_packetization_invariant(
        data in proptest::collection::vec(any::<u8>(), 0..512),
        cuts in proptest::collection::vec(1usize..16, 0..24),
        seed in any::<u64>(),
    ) {
        let widths = FeatureWidths::new(vec![1, 2, 3]);
        let cfg = EstimatorConfig::new(0.5, 0.5).expect("valid");
        let mut one_shot_est = StreamingEntropyEstimator::with_seed(cfg, seed);
        let one_shot = one_shot_est.estimate_vector(&data, &widths);

        let streaming_est = StreamingEntropyEstimator::with_seed(cfg, seed);
        let mut session = streaming_est.begin_incremental(&widths, data.len());
        for chunk in packetize(&data, &cuts) {
            session.update(chunk);
        }
        prop_assert_eq!(session.finish(), one_shot, "estimated mode must be bit-identical");
    }

    /// Degenerate packetization: a stream of 1-byte packets.
    #[test]
    fn one_byte_packets_match_one_shot(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let widths = FeatureWidths::new(vec![1, 2, 3]);
        let mut session = IncrementalVector::new(&widths);
        for &byte in &data {
            session.update(&[byte]);
        }
        prop_assert_eq!(session.finish().values(), &entropy_vector(&data, &[1, 2, 3])[..]);
    }

    /// Every storage tier (dense `k=1`, dense `k=2`, open-addressing
    /// `k≥3`) must agree exactly with a `std` HashMap reference on
    /// `(distinct, windows, sum_m_log_m)` — and on every individual
    /// gram count.
    #[test]
    fn histogram_tiers_match_hashmap_model(
        data in proptest::collection::vec(any::<u8>(), 0..1024),
        k in 1usize..=6,
    ) {
        let hist = GramHistogram::from_bytes(&data, k);
        let (distinct, windows, sum) = hashmap_model(&data, k);
        prop_assert_eq!(hist.distinct(), distinct);
        prop_assert_eq!(hist.window_count(), windows);
        prop_assert_eq!(hist.sum_m_log_m(), sum, "sorted-order sums must be bit-identical");
        if data.len() >= k {
            for window in data.windows(k).take(32) {
                let expected = data.windows(k).filter(|w| *w == window).count() as u64;
                prop_assert_eq!(hist.count_of(window), expected);
            }
        }
    }

    /// Open-addressing growth (tombstone-free: the table only ever
    /// inserts, so doubling + reinsertion must preserve every count).
    /// 4 KiB of arbitrary bytes forces thousands of distinct 3-grams —
    /// several doublings past the 16-slot initial table.
    #[test]
    fn open_table_growth_keeps_hashmap_equivalence(
        data in proptest::collection::vec(any::<u8>(), 2048..4096),
    ) {
        let hist = GramHistogram::from_bytes(&data, 3);
        let (distinct, windows, sum) = hashmap_model(&data, 3);
        prop_assert_eq!(hist.distinct(), distinct);
        prop_assert_eq!(hist.window_count(), windows);
        prop_assert_eq!(hist.sum_m_log_m(), sum);
    }

    /// `clear()` + refeed must be indistinguishable from a fresh
    /// histogram on every tier (the pool-recycling invariant).
    #[test]
    fn cleared_histogram_recounts_like_fresh(
        junk in proptest::collection::vec(any::<u8>(), 0..512),
        data in proptest::collection::vec(any::<u8>(), 0..512),
        k in 1usize..=5,
    ) {
        let mut recycled = GramHistogram::from_bytes(&junk, k);
        recycled.clear();
        recycled.extend_from_bytes(&data);
        prop_assert_eq!(recycled, GramHistogram::from_bytes(&data, k));
    }

    /// The single-pass multi-width update must equal independent
    /// per-width counting on any packetization: for each width, the
    /// rolling shared window enumerates exactly the windows a dedicated
    /// per-width scan of the concatenation would.
    #[test]
    fn single_pass_multi_width_equals_per_width(
        data in proptest::collection::vec(any::<u8>(), 0..768),
        cuts in proptest::collection::vec(1usize..32, 0..24),
    ) {
        let widths = FeatureWidths::new(vec![1, 2, 3, 5, 8]);
        let mut session = IncrementalVector::new(&widths);
        for chunk in packetize(&data, &cuts) {
            session.update(chunk);
        }
        let per_width: Vec<f64> = widths
            .iter()
            .map(|k| iustitia_entropy::entropy_of_histogram(&GramHistogram::from_bytes(&data, k)))
            .collect();
        prop_assert_eq!(session.finish().values(), &per_width[..]);
        prop_assert_eq!(session.total_bytes(), data.len() as u64);
    }

    /// The slab feed (tier resolved once per chunk, unrolled dense
    /// lanes) must be bit-identical to the degenerate one-byte-slab
    /// feed on every tier at once, including the k = 16 rolling edge
    /// where the window exactly fills the u128 — the witness that the
    /// fixed-width-lane rewrite changed no window enumeration.
    #[test]
    fn slab_feed_equals_byte_feed_at_all_paper_widths(
        data in proptest::collection::vec(any::<u8>(), 0..512),
        cuts in proptest::collection::vec(1usize..64, 0..16),
    ) {
        let widths = FeatureWidths::new(vec![1, 2, 3, 5, 10, 16]);
        let mut slab = IncrementalVector::new(&widths);
        for chunk in packetize(&data, &cuts) {
            slab.update(chunk);
        }
        let mut bytewise = IncrementalVector::new(&widths);
        for &b in &data {
            bytewise.update(&[b]);
        }
        prop_assert_eq!(slab.finish().values(), bytewise.finish().values());
        prop_assert_eq!(slab.counters_used(), bytewise.counters_used());
        prop_assert_eq!(slab.total_bytes(), bytewise.total_bytes());
    }

    #[test]
    fn estimator_counter_budget_is_monotone_in_epsilon(
        b in 64usize..8192,
        k in 2usize..=8,
    ) {
        let loose = EstimatorConfig::new(0.8, 0.5).expect("valid");
        let tight = EstimatorConfig::new(0.2, 0.5).expect("valid");
        let c_loose = iustitia_entropy::counters_required(&loose, k, b).expect("k >= 2");
        let c_tight = iustitia_entropy::counters_required(&tight, k, b).expect("k >= 2");
        prop_assert!(c_loose <= c_tight);
    }
}
