//! Property-based tests for the randomness-test battery: the
//! incremental [`RandomnessBattery`] must be bit-identical to the
//! one-shot [`battery_features`] under any packetization, and a
//! recycled (reset) battery must be indistinguishable from a fresh
//! one. These are the invariants that let the streaming pipeline pool
//! battery state per flow without ever reallocating.

use iustitia_entropy::{battery_features, RandomnessBattery, BATTERY_FEATURES};
use proptest::prelude::*;

/// Splits `data` into consecutive chunks whose sizes cycle through
/// `cuts` (empty `cuts` means one chunk). Sizes are clamped to the
/// remaining length, so every byte appears in exactly one chunk.
fn packetize<'a>(data: &'a [u8], cuts: &[usize]) -> Vec<&'a [u8]> {
    let mut chunks = Vec::new();
    let mut pos = 0;
    let mut i = 0;
    while pos < data.len() {
        let take = cuts.get(i % cuts.len().max(1)).copied().unwrap_or(data.len());
        let take = take.clamp(1, data.len() - pos);
        chunks.push(&data[pos..pos + take]);
        pos += take;
        i += 1;
    }
    chunks
}

proptest! {
    /// The battery's integer accumulators make chunk boundaries
    /// invisible: any packetization — including cut sizes of 1, which
    /// straddle every bit-run, autocorrelation-lag, and byte-run
    /// boundary — finishes to the same bits as the one-shot call.
    #[test]
    fn battery_is_packetization_invariant(
        data in proptest::collection::vec(any::<u8>(), 0..1024),
        cuts in proptest::collection::vec(1usize..48, 0..24),
    ) {
        let mut battery = RandomnessBattery::new();
        for chunk in packetize(&data, &cuts) {
            battery.update(chunk);
        }
        prop_assert_eq!(
            battery.finish(),
            battery_features(&data),
            "incremental battery must be bit-identical to one-shot"
        );
    }

    /// Degenerate packetization: a stream of 1-byte packets.
    #[test]
    fn one_byte_packets_match_one_shot(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut battery = RandomnessBattery::new();
        for &byte in &data {
            battery.update(&[byte]);
        }
        prop_assert_eq!(battery.finish(), battery_features(&data));
    }

    /// `reset()` + refeed must be indistinguishable from a fresh
    /// battery (the flow-state pool-recycling invariant): junk fed
    /// before the reset — under its own arbitrary packetization — must
    /// leave no trace in any of the six statistics.
    #[test]
    fn recycled_battery_matches_fresh(
        junk in proptest::collection::vec(any::<u8>(), 0..512),
        junk_cuts in proptest::collection::vec(1usize..32, 0..16),
        data in proptest::collection::vec(any::<u8>(), 0..512),
        cuts in proptest::collection::vec(1usize..32, 0..16),
    ) {
        let mut recycled = RandomnessBattery::new();
        for chunk in packetize(&junk, &junk_cuts) {
            recycled.update(chunk);
        }
        recycled.reset();
        for chunk in packetize(&data, &cuts) {
            recycled.update(chunk);
        }

        let mut fresh = RandomnessBattery::new();
        for chunk in packetize(&data, &cuts) {
            fresh.update(chunk);
        }
        prop_assert_eq!(recycled.finish(), fresh.finish());
    }

    /// Every statistic the battery emits is a bounded ratio; NaNs or
    /// values escaping [0, 1] would poison the SVM's RBF kernel.
    #[test]
    fn battery_features_are_bounded(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let features = battery_features(&data);
        prop_assert_eq!(features.len(), BATTERY_FEATURES);
        for (i, f) in features.iter().enumerate() {
            prop_assert!((0.0..=1.0).contains(f), "feature {i} = {f}");
        }
    }
}
