//! Labeled datasets and stratified splitting.
//!
//! The paper's evaluation uses 10-times cross-validation where each fold
//! draws 6000 files *equally from each class* (§3.2); [`Dataset`] supports
//! exactly that: stratified k-fold splits and balanced subsampling.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A labeled dataset of fixed-dimension `f64` feature vectors.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Dataset {
    n_features: usize,
    class_names: Vec<String>,
    samples: Vec<Vec<f64>>,
    labels: Vec<usize>,
}

impl Dataset {
    /// Creates an empty dataset with `n_features` features and the given
    /// class names (class index = position in `class_names`).
    ///
    /// # Panics
    ///
    /// Panics if `n_features == 0` or `class_names` is empty.
    pub fn new(n_features: usize, class_names: Vec<String>) -> Self {
        assert!(n_features > 0, "datasets need at least one feature");
        assert!(!class_names.is_empty(), "datasets need at least one class");
        Dataset { n_features, class_names, samples: Vec::new(), labels: Vec::new() }
    }

    /// Adds one labeled sample.
    ///
    /// # Panics
    ///
    /// Panics if the feature vector has the wrong length or the label is
    /// out of range.
    pub fn push(&mut self, features: Vec<f64>, label: usize) {
        // lint: allow(L008) — training-time API with a documented panic contract; chain is .push() name fan-out
        assert_eq!(features.len(), self.n_features, "feature dimensionality mismatch");
        // lint: allow(L008) — training-time API with a documented panic contract; chain is .push() name fan-out
        assert!(label < self.class_names.len(), "label {label} out of range");
        self.samples.push(features);
        self.labels.push(label);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Feature dimensionality.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.class_names.len()
    }

    /// Class names, indexed by label.
    pub fn class_names(&self) -> &[String] {
        &self.class_names
    }

    /// The feature vector of sample `i`.
    pub fn features(&self, i: usize) -> &[f64] {
        &self.samples[i]
    }

    /// The label of sample `i`.
    pub fn label(&self, i: usize) -> usize {
        self.labels[i]
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Iterates over `(features, label)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[f64], usize)> + '_ {
        self.samples.iter().map(|s| s.as_slice()).zip(self.labels.iter().copied())
    }

    /// Per-class sample counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_classes()];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }

    /// A new dataset containing the samples at `indices` (cloned).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let mut out = Dataset::new(self.n_features, self.class_names.clone());
        for &i in indices {
            out.push(self.samples[i].clone(), self.labels[i]);
        }
        out
    }

    /// A new dataset keeping only the feature columns in `columns`
    /// (in the given order) — used by feature selection.
    ///
    /// # Panics
    ///
    /// Panics if `columns` is empty or contains an out-of-range column.
    pub fn select_features(&self, columns: &[usize]) -> Dataset {
        assert!(!columns.is_empty(), "must keep at least one feature");
        for &c in columns {
            assert!(c < self.n_features, "column {c} out of range");
        }
        let mut out = Dataset::new(columns.len(), self.class_names.clone());
        for (s, &l) in self.samples.iter().zip(&self.labels) {
            out.push(columns.iter().map(|&c| s[c]).collect(), l);
        }
        out
    }

    /// Draws (up to) `per_class` samples of every class, uniformly without
    /// replacement — the paper's "6000 files equally drawn from each
    /// class" sampling.
    pub fn balanced_subsample(&self, per_class: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); self.n_classes()];
        for (i, &l) in self.labels.iter().enumerate() {
            by_class[l].push(i);
        }
        let mut chosen = Vec::new();
        for idxs in &mut by_class {
            idxs.shuffle(&mut rng);
            chosen.extend(idxs.iter().take(per_class).copied());
        }
        chosen.shuffle(&mut rng);
        self.subset(&chosen)
    }

    /// Stratified k-fold split: returns `k` disjoint index sets, each with
    /// (approximately) the same class proportions as the whole dataset.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2` or `k > len()`.
    pub fn stratified_folds(&self, k: usize, seed: u64) -> Vec<Vec<usize>> {
        assert!(k >= 2, "need at least 2 folds");
        assert!(k <= self.len(), "more folds than samples");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); self.n_classes()];
        for (i, &l) in self.labels.iter().enumerate() {
            by_class[l].push(i);
        }
        let mut folds: Vec<Vec<usize>> = vec![Vec::new(); k];
        for idxs in &mut by_class {
            idxs.shuffle(&mut rng);
            for (j, &i) in idxs.iter().enumerate() {
                folds[j % k].push(i);
            }
        }
        folds
    }

    /// Splits into `(train, test)` with `test_fraction` of samples held
    /// out, stratified by class.
    ///
    /// # Panics
    ///
    /// Panics if `test_fraction` is not in `(0, 1)`.
    pub fn train_test_split(&self, test_fraction: f64, seed: u64) -> (Dataset, Dataset) {
        assert!(test_fraction > 0.0 && test_fraction < 1.0, "test fraction must be in (0,1)");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); self.n_classes()];
        for (i, &l) in self.labels.iter().enumerate() {
            by_class[l].push(i);
        }
        let mut train = Vec::new();
        let mut test = Vec::new();
        for idxs in &mut by_class {
            idxs.shuffle(&mut rng);
            let n_test = ((idxs.len() as f64) * test_fraction).round() as usize;
            test.extend(idxs.iter().take(n_test).copied());
            train.extend(idxs.iter().skip(n_test).copied());
        }
        (self.subset(&train), self.subset(&test))
    }

    /// Merges another dataset with identical schema into this one.
    ///
    /// # Panics
    ///
    /// Panics if schemas (feature count, class names) differ.
    pub fn merge(&mut self, other: &Dataset) {
        assert_eq!(self.n_features, other.n_features, "feature count mismatch");
        assert_eq!(self.class_names, other.class_names, "class name mismatch");
        self.samples.extend(other.samples.iter().cloned());
        self.labels.extend_from_slice(&other.labels);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n_per_class: usize) -> Dataset {
        let mut ds = Dataset::new(2, vec!["a".into(), "b".into(), "c".into()]);
        for i in 0..n_per_class {
            let x = i as f64 / n_per_class as f64;
            ds.push(vec![x, 0.0], 0);
            ds.push(vec![x, 0.5], 1);
            ds.push(vec![x, 1.0], 2);
        }
        ds
    }

    #[test]
    fn push_and_accessors() {
        let ds = toy(10);
        assert_eq!(ds.len(), 30);
        assert_eq!(ds.n_features(), 2);
        assert_eq!(ds.n_classes(), 3);
        assert_eq!(ds.class_counts(), vec![10, 10, 10]);
        assert_eq!(ds.features(0).len(), 2);
        assert!(!ds.is_empty());
    }

    #[test]
    #[should_panic(expected = "dimensionality")]
    fn wrong_dims_panic() {
        let mut ds = Dataset::new(2, vec!["a".into()]);
        ds.push(vec![1.0], 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_label_panics() {
        let mut ds = Dataset::new(1, vec!["a".into()]);
        ds.push(vec![1.0], 1);
    }

    #[test]
    fn stratified_folds_cover_everything_disjointly() {
        let ds = toy(20);
        let folds = ds.stratified_folds(5, 42);
        assert_eq!(folds.len(), 5);
        let mut all: Vec<usize> = folds.iter().flatten().copied().collect();
        all.sort_unstable();
        let expect: Vec<usize> = (0..60).collect();
        assert_eq!(all, expect);
        // Each fold is class-balanced for this balanced input.
        for f in &folds {
            let sub = ds.subset(f);
            assert_eq!(sub.class_counts(), vec![4, 4, 4]);
        }
    }

    #[test]
    fn balanced_subsample_counts() {
        let mut ds = toy(50);
        // unbalance it
        for i in 0..37 {
            ds.push(vec![i as f64, 2.0], 0);
        }
        let sub = ds.balanced_subsample(30, 7);
        assert_eq!(sub.class_counts(), vec![30, 30, 30]);
        // asking for more than available caps at the class size
        let sub2 = ds.balanced_subsample(1000, 7);
        assert_eq!(sub2.class_counts(), vec![87, 50, 50]);
    }

    #[test]
    fn select_features_projects_columns() {
        let ds = toy(5);
        let proj = ds.select_features(&[1]);
        assert_eq!(proj.n_features(), 1);
        assert_eq!(proj.len(), ds.len());
        assert_eq!(proj.features(0), &[ds.features(0)[1]]);
    }

    #[test]
    fn train_test_split_is_stratified() {
        let ds = toy(100);
        let (train, test) = ds.train_test_split(0.25, 3);
        assert_eq!(train.len() + test.len(), ds.len());
        assert_eq!(test.class_counts(), vec![25, 25, 25]);
    }

    #[test]
    fn merge_appends() {
        let mut a = toy(3);
        let b = toy(2);
        a.merge(&b);
        assert_eq!(a.len(), 15);
    }

    #[test]
    fn subsample_is_deterministic_per_seed() {
        let ds = toy(40);
        let s1 = ds.balanced_subsample(10, 9);
        let s2 = ds.balanced_subsample(10, 9);
        assert_eq!(s1, s2);
    }
}
