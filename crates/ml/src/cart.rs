//! CART decision trees (Breiman, Friedman, Olshen & Stone 1984).
//!
//! Binary trees over continuous features, grown greedily by minimizing
//! Gini impurity, with minimal cost-complexity ("weakest link") pruning.
//! This is the decision-tree classifier the paper evaluates against the
//! SVM (Figures 2(b), 4, 6, 7(ii); Tables 1–3) and the engine behind the
//! pruning-vote feature selection of §4.1.

use crate::dataset::Dataset;
use crate::parallel::{run_indexed, Parallelism};
use crate::{Classifier, DimensionMismatch};

/// Growth parameters for [`DecisionTree::fit`].
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CartParams {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum number of samples a node must hold to be split further.
    pub min_samples_split: usize,
    /// Minimum weighted Gini decrease required to accept a split.
    pub min_impurity_decrease: f64,
    /// Worker threads for the per-feature best-split search. Never
    /// affects the grown tree — see [`crate::parallel`].
    pub parallelism: Parallelism,
}

impl Default for CartParams {
    /// Defaults tuned for the paper's 10-feature entropy vectors:
    /// depth ≤ 12, split nodes with ≥ 4 samples, any positive gain.
    fn default() -> Self {
        CartParams {
            max_depth: 12,
            min_samples_split: 4,
            min_impurity_decrease: 1e-7,
            parallelism: Parallelism::auto(),
        }
    }
}

/// One node of the tree, stored in an arena indexed by `usize`.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub(crate) enum NodeKind {
    Leaf,
    Split { feature: usize, threshold: f64, left: usize, right: usize },
}

#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub(crate) struct Node {
    /// Training class counts that reached this node (kept on internal
    /// nodes too, so pruning can collapse them into leaves).
    counts: Vec<u32>,
    pub(crate) kind: NodeKind,
}

impl Node {
    pub(crate) fn majority(&self) -> usize {
        self.counts.iter().enumerate().max_by_key(|&(_, &c)| c).map(|(i, _)| i).unwrap_or(0)
    }

    /// Fraction of training samples at this node that belong to its
    /// majority class — the leaf-purity margin used by the anytime
    /// classifier. Empty nodes count as fully pure.
    pub(crate) fn purity(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 1.0;
        }
        self.counts.iter().max().copied().unwrap_or(0) as f64 / total as f64
    }

    fn total(&self) -> u32 {
        self.counts.iter().sum()
    }

    /// Number of training errors if this node were a leaf.
    fn leaf_errors(&self) -> u32 {
        self.total() - self.counts.iter().max().copied().unwrap_or(0)
    }
}

/// A trained CART decision tree.
///
/// # Examples
///
/// ```
/// use iustitia_ml::cart::{CartParams, DecisionTree};
/// use iustitia_ml::dataset::Dataset;
/// use iustitia_ml::Classifier;
///
/// let mut ds = Dataset::new(1, vec!["no".into(), "yes".into()]);
/// for i in 0..20 {
///     ds.push(vec![i as f64], usize::from(i >= 10));
/// }
/// let tree = DecisionTree::fit(&ds, &CartParams::default());
/// assert_eq!(tree.predict(&[3.0]), 0);
/// assert_eq!(tree.predict(&[15.0]), 1);
/// assert!(tree.n_leaves() >= 2);
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    root: usize,
    n_classes: usize,
    n_features: usize,
}

fn gini(counts: &[u32]) -> f64 {
    let total: u32 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let t = total as f64;
    1.0 - counts.iter().map(|&c| (c as f64 / t).powi(2)).sum::<f64>()
}

struct BestSplit {
    feature: usize,
    threshold: f64,
    left_idx: Vec<usize>,
    right_idx: Vec<usize>,
}

impl DecisionTree {
    /// Grows a tree on `data` with the given parameters.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    pub fn fit(data: &Dataset, params: &CartParams) -> Self {
        assert!(!data.is_empty(), "cannot fit a tree on an empty dataset");
        let mut tree = DecisionTree {
            nodes: Vec::new(),
            root: 0,
            n_classes: data.n_classes(),
            n_features: data.n_features(),
        };
        let all: Vec<usize> = (0..data.len()).collect();
        tree.root = tree.grow(data, &all, 0, params);
        tree
    }

    fn class_counts(&self, data: &Dataset, idx: &[usize]) -> Vec<u32> {
        let mut counts = vec![0u32; self.n_classes];
        for &i in idx {
            counts[data.label(i)] += 1;
        }
        counts
    }

    fn grow(&mut self, data: &Dataset, idx: &[usize], depth: usize, params: &CartParams) -> usize {
        let counts = self.class_counts(data, idx);
        let node_gini = gini(&counts);
        let stop =
            depth >= params.max_depth || idx.len() < params.min_samples_split || node_gini == 0.0;
        if !stop {
            if let Some(split) = self.best_split(data, idx, node_gini, params) {
                let left = self.grow(data, &split.left_idx, depth + 1, params);
                let right = self.grow(data, &split.right_idx, depth + 1, params);
                self.nodes.push(Node {
                    counts,
                    kind: NodeKind::Split {
                        feature: split.feature,
                        threshold: split.threshold,
                        left,
                        right,
                    },
                });
                return self.nodes.len() - 1;
            }
        }
        self.nodes.push(Node { counts, kind: NodeKind::Leaf });
        self.nodes.len() - 1
    }

    /// Scans one feature for its best valid split point, returning
    /// `(threshold, gain)`. Ties within the feature keep the earliest
    /// window (strict `>` improvement), matching the historical
    /// single-loop scan.
    fn scan_feature(
        &self,
        data: &Dataset,
        idx: &[usize],
        parent_gini: f64,
        params: &CartParams,
        feature: usize,
        pairs: &mut Vec<(f64, usize)>,
    ) -> Option<(f64, f64)> {
        let n = idx.len() as f64;
        pairs.clear();
        pairs.extend(idx.iter().map(|&i| (data.features(i)[feature], data.label(i))));
        pairs.sort_by(|a, b| a.0.total_cmp(&b.0));

        let mut best: Option<(f64, f64)> = None; // (threshold, gain)
        let mut left_counts = vec![0u32; self.n_classes];
        let mut right_counts = self.class_counts(data, idx);
        let mut n_left = 0f64;
        for w in 0..pairs.len() - 1 {
            let (v, l) = pairs[w];
            left_counts[l] += 1;
            right_counts[l] -= 1;
            n_left += 1.0;
            let v_next = pairs[w + 1].0;
            if v_next <= v {
                continue; // not a valid split point
            }
            let n_right = n - n_left;
            let weighted = (n_left / n) * gini(&left_counts) + (n_right / n) * gini(&right_counts);
            let gain = parent_gini - weighted;
            if gain > params.min_impurity_decrease && best.is_none_or(|(_, g)| gain > g) {
                best = Some((0.5 * (v + v_next), gain));
            }
        }
        best
    }

    /// Minimum node size below which the per-feature scans run inline:
    /// spawning scoped threads per tree node only pays off when each
    /// feature sorts a non-trivial index slice.
    const PARALLEL_SPLIT_MIN_SAMPLES: usize = 512;

    fn best_split(
        &self,
        data: &Dataset,
        idx: &[usize],
        parent_gini: f64,
        params: &CartParams,
    ) -> Option<BestSplit> {
        // Feature scans are independent; run them on worker threads for
        // large nodes. Each scan computes the same floats either way,
        // and the feature-ascending reduction below with strict `>`
        // improvement reproduces the historical (feature, window)
        // iteration order exactly, so the thread count can never change
        // which split is chosen.
        let threads = params.parallelism.resolve();
        let per_feature: Vec<Option<(f64, f64)>> =
            if threads > 1 && idx.len() >= Self::PARALLEL_SPLIT_MIN_SAMPLES {
                run_indexed(threads, self.n_features, |feature| {
                    let mut pairs: Vec<(f64, usize)> = Vec::with_capacity(idx.len());
                    self.scan_feature(data, idx, parent_gini, params, feature, &mut pairs)
                })
            } else {
                let mut pairs: Vec<(f64, usize)> = Vec::with_capacity(idx.len());
                (0..self.n_features)
                    .map(|f| self.scan_feature(data, idx, parent_gini, params, f, &mut pairs))
                    .collect()
            };
        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, gain)
        for (feature, cand) in per_feature.into_iter().enumerate() {
            if let Some((threshold, gain)) = cand {
                if best.is_none_or(|(_, _, g)| gain > g) {
                    best = Some((feature, threshold, gain));
                }
            }
        }
        best.map(|(feature, threshold, _gain)| {
            let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
                idx.iter().partition(|&&i| data.features(i)[feature] <= threshold);
            BestSplit { feature, threshold, left_idx, right_idx }
        })
    }

    /// Number of nodes in the tree.
    pub fn n_nodes(&self) -> usize {
        self.count_reachable(self.root)
    }

    fn count_reachable(&self, node: usize) -> usize {
        match self.nodes[node].kind {
            NodeKind::Leaf => 1,
            NodeKind::Split { left, right, .. } => {
                1 + self.count_reachable(left) + self.count_reachable(right)
            }
        }
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        self.leaves_under(self.root)
    }

    fn leaves_under(&self, node: usize) -> usize {
        match self.nodes[node].kind {
            NodeKind::Leaf => 1,
            NodeKind::Split { left, right, .. } => {
                self.leaves_under(left) + self.leaves_under(right)
            }
        }
    }

    /// Tree depth (a single-leaf tree has depth 0).
    pub fn depth(&self) -> usize {
        self.depth_under(self.root)
    }

    fn depth_under(&self, node: usize) -> usize {
        match self.nodes[node].kind {
            NodeKind::Leaf => 0,
            NodeKind::Split { left, right, .. } => {
                1 + self.depth_under(left).max(self.depth_under(right))
            }
        }
    }

    /// The distinct features tested anywhere in the tree, ascending.
    pub fn features_used(&self) -> Vec<usize> {
        let mut used = vec![false; self.n_features];
        self.mark_features(self.root, &mut used);
        used.iter().enumerate().filter(|(_, &u)| u).map(|(i, _)| i).collect()
    }

    fn mark_features(&self, node: usize, used: &mut [bool]) {
        if let NodeKind::Split { feature, left, right, .. } = self.nodes[node].kind {
            used[feature] = true;
            self.mark_features(left, used);
            self.mark_features(right, used);
        }
    }

    /// Importance weight per feature: each split contributes
    /// `1 / (depth + 1)` to its feature, reflecting the paper's "the
    /// higher a feature is in a tree, the more effective it is".
    pub fn feature_importance(&self) -> Vec<f64> {
        let mut imp = vec![0.0; self.n_features];
        self.accumulate_importance(self.root, 0, &mut imp);
        imp
    }

    fn accumulate_importance(&self, node: usize, depth: usize, imp: &mut [f64]) {
        if let NodeKind::Split { feature, left, right, .. } = self.nodes[node].kind {
            imp[feature] += 1.0 / (depth as f64 + 1.0);
            self.accumulate_importance(left, depth + 1, imp);
            self.accumulate_importance(right, depth + 1, imp);
        }
    }

    /// Evaluates accuracy on a dataset.
    pub fn accuracy_on(&self, data: &Dataset) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let correct = data.iter().filter(|(x, y)| self.predict(x) == *y).count();
        correct as f64 / data.len() as f64
    }

    /// Produces the minimal cost-complexity pruning sequence
    /// `T_0 ⊃ T_1 ⊃ … ⊃ {root}`: each step collapses the internal node
    /// with the weakest link value
    /// `g(t) = (R(t) − R(T_t)) / (|leaves(T_t)| − 1)`.
    ///
    /// `T_0` (the unpruned tree) is included as the first element.
    pub fn pruning_sequence(&self) -> Vec<DecisionTree> {
        let mut seq = vec![self.clone()];
        let mut current = self.clone();
        while matches!(current.nodes[current.root].kind, NodeKind::Split { .. }) {
            current = current.collapse_weakest_link();
            seq.push(current.clone());
        }
        seq
    }

    /// Collapses the single internal node with minimal `g(t)` into a leaf.
    fn collapse_weakest_link(&self) -> DecisionTree {
        let mut best: Option<(usize, f64)> = None;
        self.find_weakest(self.root, &mut best);
        let mut out = self.clone();
        if let Some((node, _)) = best {
            out.nodes[node].kind = NodeKind::Leaf;
        }
        out
    }

    fn subtree_errors(&self, node: usize) -> u32 {
        match self.nodes[node].kind {
            NodeKind::Leaf => self.nodes[node].leaf_errors(),
            NodeKind::Split { left, right, .. } => {
                self.subtree_errors(left) + self.subtree_errors(right)
            }
        }
    }

    fn find_weakest(&self, node: usize, best: &mut Option<(usize, f64)>) {
        if let NodeKind::Split { left, right, .. } = self.nodes[node].kind {
            let r_t = self.nodes[node].leaf_errors() as f64;
            let r_subtree = self.subtree_errors(node) as f64;
            let leaves = self.leaves_under(node) as f64;
            let g = (r_t - r_subtree) / (leaves - 1.0).max(1.0);
            if best.is_none_or(|(_, bg)| g < bg) {
                *best = Some((node, g));
            }
            self.find_weakest(left, best);
            self.find_weakest(right, best);
        }
    }

    /// Prunes for feature selection (§4.1): walks the pruning sequence
    /// and returns the *smallest* tree whose accuracy on `validation`
    /// stays within `max_accuracy_drop` of the unpruned tree's.
    pub fn pruned_within(&self, validation: &Dataset, max_accuracy_drop: f64) -> DecisionTree {
        let baseline = self.accuracy_on(validation);
        let mut chosen = self.clone();
        for t in self.pruning_sequence() {
            if t.accuracy_on(validation) >= baseline - max_accuracy_drop {
                chosen = t;
            } else {
                break;
            }
        }
        chosen
    }

    /// Predicts the class index, or reports a feature-width mismatch.
    ///
    /// # Errors
    ///
    /// Returns [`DimensionMismatch`] when `features.len()` differs from
    /// the trained width.
    pub fn try_predict(&self, features: &[f64]) -> Result<usize, DimensionMismatch> {
        if features.len() != self.n_features {
            return Err(DimensionMismatch { expected: self.n_features, got: features.len() });
        }
        let mut node = self.root;
        loop {
            // lint: allow(L008) — node indices are in-bounds by tree construction
            match self.nodes[node].kind {
                // lint: allow(L008) — node indices are in-bounds by tree construction
                NodeKind::Leaf => return Ok(self.nodes[node].majority()),
                NodeKind::Split { feature, threshold, left, right } => {
                    // lint: allow(L008) — feature < n_features, checked against features.len() on entry
                    node = if features[feature] <= threshold { left } else { right };
                }
            }
        }
    }

    /// Feature-vector width the tree was trained on.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// The node arena (compiled-model flattening).
    pub(crate) fn arena(&self) -> &[Node] {
        &self.nodes
    }

    /// Index of the root node in the arena (compiled-model flattening).
    pub(crate) fn root_index(&self) -> usize {
        self.root
    }
}

impl Classifier for DecisionTree {
    /// # Panics
    ///
    /// Panics if `features` has the wrong dimensionality; use
    /// [`try_predict`](DecisionTree::try_predict) for a typed error.
    fn predict(&self, features: &[f64]) -> usize {
        match self.try_predict(features) {
            Ok(label) => label,
            // lint: allow(L008) — documented panicking wrapper; hot-path callers use try_predict (chain is .predict() fan-out)
            Err(e) => panic!("feature dimensionality mismatch: {e}"),
        }
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stripes(n: usize) -> Dataset {
        // Three horizontal stripes in 2-D: y < 0.33 → 0, < 0.66 → 1, else 2.
        let mut ds = Dataset::new(2, vec!["t".into(), "b".into(), "e".into()]);
        let mut v = 0.123f64;
        for _ in 0..n {
            v = (v * 997.13).fract();
            let x = v;
            v = (v * 613.57).fract();
            let y = v;
            let label = if y < 0.33 {
                0
            } else if y < 0.66 {
                1
            } else {
                2
            };
            ds.push(vec![x, y], label);
        }
        ds
    }

    #[test]
    fn gini_values() {
        assert_eq!(gini(&[10, 0]), 0.0);
        assert!((gini(&[5, 5]) - 0.5).abs() < 1e-12);
        assert!((gini(&[1, 1, 1]) - (1.0 - 3.0 * (1.0f64 / 9.0))).abs() < 1e-12);
        assert_eq!(gini(&[]), 0.0);
    }

    #[test]
    fn fits_separable_data_perfectly() {
        let ds = stripes(600);
        let tree = DecisionTree::fit(&ds, &CartParams::default());
        assert!(tree.accuracy_on(&ds) > 0.99);
        // Only feature 1 (y) matters.
        assert_eq!(tree.features_used(), vec![1]);
    }

    #[test]
    fn respects_max_depth() {
        let ds = stripes(500);
        let tree = DecisionTree::fit(&ds, &CartParams { max_depth: 1, ..CartParams::default() });
        assert!(tree.depth() <= 1);
        assert!(tree.n_leaves() <= 2);
    }

    #[test]
    fn pure_node_is_leaf() {
        let mut ds = Dataset::new(1, vec!["only".into()]);
        for i in 0..10 {
            ds.push(vec![i as f64], 0);
        }
        let tree = DecisionTree::fit(&ds, &CartParams::default());
        assert_eq!(tree.n_nodes(), 1);
        assert_eq!(tree.predict(&[100.0]), 0);
    }

    #[test]
    fn constant_features_yield_single_leaf() {
        let mut ds = Dataset::new(2, vec!["a".into(), "b".into()]);
        for i in 0..10 {
            ds.push(vec![1.0, 2.0], i % 2);
        }
        let tree = DecisionTree::fit(&ds, &CartParams::default());
        assert_eq!(tree.n_nodes(), 1, "no valid split points exist");
    }

    #[test]
    fn pruning_sequence_shrinks_to_root() {
        let ds = stripes(400);
        let tree = DecisionTree::fit(&ds, &CartParams::default());
        let seq = tree.pruning_sequence();
        assert!(seq.len() >= 2);
        // strictly decreasing leaf counts, ending in a single leaf
        for w in seq.windows(2) {
            assert!(w[1].n_leaves() < w[0].n_leaves());
        }
        assert_eq!(seq.last().unwrap().n_leaves(), 1);
    }

    #[test]
    fn pruned_within_keeps_accuracy() {
        let ds = stripes(800);
        let (train, val) = ds.train_test_split(0.3, 1);
        let tree = DecisionTree::fit(&train, &CartParams::default());
        let pruned = tree.pruned_within(&val, 0.02);
        assert!(pruned.n_nodes() <= tree.n_nodes());
        assert!(pruned.accuracy_on(&val) >= tree.accuracy_on(&val) - 0.02 - 1e-12);
    }

    #[test]
    fn feature_importance_prefers_informative_feature() {
        let ds = stripes(600);
        let tree = DecisionTree::fit(&ds, &CartParams::default());
        let imp = tree.feature_importance();
        assert!(imp[1] > imp[0]);
    }

    #[test]
    fn predict_on_noisy_overlapping_data_is_reasonable() {
        // add label noise; tree should still beat chance comfortably
        let mut ds = stripes(900);
        let noisy = stripes(90);
        for (x, y) in noisy.iter() {
            ds.push(x.to_vec(), (y + 1) % 3);
        }
        let (train, test) = ds.train_test_split(0.25, 5);
        let tree = DecisionTree::fit(&train, &CartParams::default());
        assert!(tree.accuracy_on(&test) > 0.7);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_fit_panics() {
        let ds = Dataset::new(1, vec!["x".into()]);
        DecisionTree::fit(&ds, &CartParams::default());
    }

    #[test]
    fn clone_preserves_structure() {
        let ds = stripes(200);
        let tree = DecisionTree::fit(&ds, &CartParams::default());
        let clone = tree.clone();
        assert_eq!(clone, tree);
        assert_eq!(clone.n_leaves(), tree.n_leaves());
    }

    #[test]
    fn parallel_fit_is_bit_identical_to_serial() {
        // 1200 samples > PARALLEL_SPLIT_MIN_SAMPLES so the root (and
        // first interior) splits actually take the threaded path.
        let ds = stripes(1200);
        let serial =
            CartParams { parallelism: crate::Parallelism::serial(), ..CartParams::default() };
        let parallel =
            CartParams { parallelism: crate::Parallelism::fixed(4), ..CartParams::default() };
        assert_eq!(DecisionTree::fit(&ds, &serial), DecisionTree::fit(&ds, &parallel));
    }

    #[test]
    fn wrong_width_is_a_typed_error() {
        let ds = stripes(100);
        let tree = DecisionTree::fit(&ds, &CartParams::default());
        assert_eq!(tree.try_predict(&[0.5]), Err(crate::DimensionMismatch { expected: 2, got: 1 }));
        assert!(tree.try_predict(&[0.5, 0.5]).is_ok());
    }

    #[test]
    #[should_panic(expected = "feature dimensionality mismatch")]
    fn wrong_width_panics_on_infallible_path() {
        let ds = stripes(100);
        DecisionTree::fit(&ds, &CartParams::default()).predict(&[0.5, 0.5, 0.5]);
    }
}
