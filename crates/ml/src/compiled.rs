//! Compiled (flattened, allocation-free) inference for trained models.
//!
//! The boxed training-time representations are convenient to grow but
//! slow to evaluate: [`DecisionTree::predict`] chases arena indices laid
//! out in construction order, and [`DagSvm::predict`] re-evaluates
//! `K(sv, x)` for every support vector of every binary classifier it
//! visits — even though the pairwise SVMs of one DAG share most of
//! their support vectors (they are rows of the same training set).
//!
//! Compiling produces cache- and branch-friendly equivalents:
//!
//! * [`CompiledTree`] — nodes flattened into one preorder array (child
//!   hot path adjacent to its parent, no `Box`, no per-node `enum`
//!   dispatch beyond a sentinel check).
//! * [`CompiledDag`] / [`CompiledVote`] — every *distinct* support
//!   vector stored once in a contiguous row-major matrix; each binary
//!   classifier holds (SV index, coefficient) terms plus a bias. During
//!   one `predict`, `K(sv, x)` is computed **at most once per distinct
//!   SV** (epoch-stamped memo) and shared across all classifiers the
//!   DAG visits. All scratch lives in the compiled model, so `predict`
//!   performs **zero heap allocations** (pinned by
//!   `crates/core/tests/pool_alloc.rs`).
//!
//! Every compiled predictor is bit-identical to its boxed source:
//!
//! * Tree: same `features[f] <= threshold` comparisons over the same
//!   thresholds; leaf labels are computed once at compile time by the
//!   same majority rule.
//! * SVM: a binary decision is `bias + Σᵢ coeffᵢ·K(svᵢ, x)` accumulated
//!   in the *original support-vector order* of that classifier, and SV
//!   dedup keys on exact `f64` bit patterns, so every `K` input — and
//!   therefore every intermediate float — is unchanged.

use std::collections::HashMap;

use crate::cart::{DecisionTree, NodeKind};
use crate::multiclass::{DagSvm, OneVsOneVote};
use crate::svm::Kernel;
use crate::{Classifier, DimensionMismatch};

/// Sentinel `feature` value marking a leaf node (its `left` field holds
/// the class label).
const LEAF: u32 = u32::MAX;

/// One flattened tree node. Leaves store their label in `left`, `LEAF`
/// in `feature`, and repurpose `threshold` (never compared on leaves)
/// for the training purity of the leaf — the anytime margin.
#[derive(Debug, Clone, Copy, PartialEq)]
struct FlatNode {
    threshold: f64,
    feature: u32,
    left: u32,
    right: u32,
}

/// An array-flattened [`DecisionTree`]: preorder nodes, no boxing, a
/// branch-predictable walk. Prediction-equivalent to the source tree.
///
/// # Examples
///
/// ```
/// use iustitia_ml::cart::{CartParams, DecisionTree};
/// use iustitia_ml::compiled::CompiledTree;
/// use iustitia_ml::dataset::Dataset;
/// use iustitia_ml::Classifier;
///
/// let mut ds = Dataset::new(1, vec!["no".into(), "yes".into()]);
/// for i in 0..20 {
///     ds.push(vec![i as f64], usize::from(i >= 10));
/// }
/// let tree = DecisionTree::fit(&ds, &CartParams::default());
/// let fast = CompiledTree::compile(&tree);
/// assert_eq!(fast.predict(&[3.0]), tree.predict(&[3.0]));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledTree {
    nodes: Vec<FlatNode>,
    n_classes: usize,
    n_features: usize,
}

impl CompiledTree {
    /// Flattens a trained tree into the compiled form.
    pub fn compile(tree: &DecisionTree) -> Self {
        let mut nodes = Vec::with_capacity(tree.n_nodes());
        flatten(tree, tree.root_index(), &mut nodes);
        CompiledTree { nodes, n_classes: tree.n_classes(), n_features: tree.n_features() }
    }

    /// Predicts the class index, or reports a feature-width mismatch
    /// instead of silently mis-evaluating (see
    /// [`DimensionMismatch`]).
    ///
    /// # Errors
    ///
    /// Returns [`DimensionMismatch`] when `features.len()` differs from
    /// the width the tree was trained on.
    pub fn try_predict(&self, features: &[f64]) -> Result<usize, DimensionMismatch> {
        if features.len() != self.n_features {
            return Err(DimensionMismatch { expected: self.n_features, got: features.len() });
        }
        let mut at = 0usize;
        loop {
            // lint: allow(L008) — child indices are validated against nodes.len() when the tree is flattened
            let node = &self.nodes[at];
            if node.feature == LEAF {
                return Ok(node.left as usize);
            }
            // lint: allow(L008) — node.feature < n_features, checked against features.len() on entry
            at = if features[node.feature as usize] <= node.threshold {
                node.left as usize
            } else {
                node.right as usize
            };
        }
    }

    /// Predicts the class index together with a confidence margin in
    /// `[0, 1]` — the training purity of the leaf that fired (fraction
    /// of that leaf's training samples in its majority class). The walk
    /// and the returned label are bit-identical to
    /// [`try_predict`](CompiledTree::try_predict).
    ///
    /// # Errors
    ///
    /// Returns [`DimensionMismatch`] when `features.len()` differs from
    /// the width the tree was trained on.
    pub fn try_predict_with_margin(
        &self,
        features: &[f64],
    ) -> Result<(usize, f64), DimensionMismatch> {
        if features.len() != self.n_features {
            return Err(DimensionMismatch { expected: self.n_features, got: features.len() });
        }
        let mut at = 0usize;
        loop {
            // lint: allow(L008) — child indices are validated against nodes.len() when the tree is flattened
            let node = &self.nodes[at];
            if node.feature == LEAF {
                return Ok((node.left as usize, node.threshold));
            }
            // lint: allow(L008) — node.feature < n_features, checked against features.len() on entry
            at = if features[node.feature as usize] <= node.threshold {
                node.left as usize
            } else {
                node.right as usize
            };
        }
    }

    /// Number of flattened nodes.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Feature-vector width the tree expects.
    pub fn n_features(&self) -> usize {
        self.n_features
    }
}

impl Classifier for CompiledTree {
    /// # Panics
    ///
    /// Panics if `features` has the wrong dimensionality; use
    /// [`try_predict`](CompiledTree::try_predict) for a typed error.
    fn predict(&self, features: &[f64]) -> usize {
        match self.try_predict(features) {
            Ok(label) => label,
            // lint: allow(L008) — documented panicking wrapper; hot-path callers use try_predict (chain is .predict() fan-out)
            Err(e) => panic!("feature dimensionality mismatch: {e}"),
        }
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }
}

/// Preorder-flattens the arena subtree rooted at `arena_idx`, returning
/// the flat index of the emitted node.
fn flatten(tree: &DecisionTree, arena_idx: usize, out: &mut Vec<FlatNode>) -> u32 {
    let slot = out.len() as u32;
    let node = &tree.arena()[arena_idx];
    match node.kind {
        NodeKind::Leaf => {
            // Leaves never consult `threshold` during a walk, so the slot
            // carries the leaf's training purity for `try_predict_with_margin`.
            out.push(FlatNode {
                threshold: node.purity(),
                feature: LEAF,
                left: node.majority() as u32,
                right: 0,
            });
        }
        NodeKind::Split { feature, threshold, left, right } => {
            out.push(FlatNode { threshold: 0.0, feature: LEAF, left: 0, right: 0 });
            let l = flatten(tree, left, out);
            let r = flatten(tree, right, out);
            out[slot as usize] = FlatNode { threshold, feature: feature as u32, left: l, right: r };
        }
    }
    slot
}

/// The shared compiled pairwise-SVM evaluation core: packed support
/// vectors, per-classifier coefficient slices, and (when support
/// vectors are shared between enough classifiers) an epoch-stamped
/// kernel memo that makes one predict evaluate each distinct SV at
/// most once.
#[derive(Debug, Clone, PartialEq)]
struct PackedPairwise {
    n_classes: usize,
    n_features: usize,
    kernel: Kernel,
    /// Packed support vectors, row-major (`n_svs × n_features`). Rows
    /// are deduplicated across classifiers when the memo is engaged,
    /// and stored once per term (row `t` = term `t`) otherwise.
    sv_data: Vec<f64>,
    n_svs: usize,
    /// Distinct support vectors across all classifiers (a stat — equal
    /// to `n_svs` only in the deduplicated layout).
    n_distinct: usize,
    /// CSR-style slice bounds into `term_sv`/`term_coeff`, one entry
    /// per pair rank plus a final end sentinel.
    pair_offsets: Vec<u32>,
    /// Per term: row index into `sv_data`.
    term_sv: Vec<u32>,
    /// Per term: `αᵢ·yᵢ` of that support vector in that classifier.
    term_coeff: Vec<f64>,
    /// Per pair rank: the classifier's bias.
    pair_bias: Vec<f64>,
    /// Scratch: memoized `K(sv, x)` for the current predict epoch.
    kval: Vec<f64>,
    /// Scratch: epoch stamp per distinct SV (`kval[i]` is valid iff
    /// `kval_epoch[i] == epoch`).
    kval_epoch: Vec<u64>,
    epoch: u64,
    /// Whether `decision` consults the kernel memo. Chosen at pack
    /// time: the memo costs a stamp check and two stores per term, so
    /// it only pays when enough terms share a support vector to skip
    /// their (much dearer) kernel evaluations.
    use_memo: bool,
    /// Whether row `t` of `sv_data` is term `t`'s support vector
    /// (true for the non-deduplicated layout), letting `decision`
    /// stream rows sequentially without the `term_sv` indirection.
    rows_identity: bool,
}

impl PackedPairwise {
    /// Packs the pairwise models (lexicographic pair order, as stored
    /// by `PairwiseSvms`) into the compiled layout.
    fn pack(n_classes: usize, models: &[&crate::svm::BinarySvm]) -> Self {
        let n_features = models.first().map_or(0, |m| m.n_features());
        let mut sv_data: Vec<f64> = Vec::new();
        let mut n_svs = 0usize;
        // Dedup on exact bit patterns: equal bits ⇒ identical K(sv, x)
        // for every x, so sharing rows cannot perturb a single float.
        let mut index_of: HashMap<Vec<u64>, u32> = HashMap::new();
        let mut pair_offsets: Vec<u32> = Vec::with_capacity(models.len() + 1);
        let mut term_sv: Vec<u32> = Vec::new();
        let mut term_coeff: Vec<f64> = Vec::new();
        let mut pair_bias: Vec<f64> = Vec::with_capacity(models.len());
        pair_offsets.push(0);
        for model in models {
            for (sv, &coeff) in model.support_vectors().iter().zip(model.coefficients()) {
                let bits: Vec<u64> = sv.iter().map(|v| v.to_bits()).collect();
                let row = *index_of.entry(bits).or_insert_with(|| {
                    sv_data.extend_from_slice(sv);
                    n_svs += 1;
                    (n_svs - 1) as u32
                });
                term_sv.push(row);
                term_coeff.push(coeff);
            }
            pair_offsets.push(term_sv.len() as u32);
            pair_bias.push(model.bias());
        }
        let kernel = models.first().map_or(Kernel::Linear, |m| m.kernel());
        // Engage the memo only when at least 1 in 8 terms re-uses a
        // packed row; below that the bookkeeping outweighs the skipped
        // kernel evaluations. Either path sums identical floats in
        // identical order, so the choice never changes a prediction.
        let n_distinct = n_svs;
        let shared_terms = term_sv.len() - n_distinct;
        let use_memo = shared_terms * 8 >= term_sv.len() && !term_sv.is_empty();
        if !use_memo {
            // Too little sharing to earn the `term_sv` indirection:
            // store every term's SV in term order instead, so a
            // decision streams rows sequentially (row `t` = term `t`).
            sv_data.clear();
            n_svs = 0;
            for (t, model) in models.iter().enumerate() {
                for sv in model.support_vectors() {
                    sv_data.extend_from_slice(sv);
                    n_svs += 1;
                }
                debug_assert_eq!(pair_offsets[t + 1] as usize, n_svs);
            }
            term_sv = (0..n_svs as u32).collect();
        }
        let rows_identity = !use_memo;
        PackedPairwise {
            n_classes,
            n_features,
            kernel,
            sv_data,
            n_svs,
            n_distinct,
            pair_offsets,
            term_sv,
            term_coeff,
            pair_bias,
            kval: vec![0.0; n_svs],
            kval_epoch: vec![0; n_svs],
            epoch: 0,
            use_memo,
            rows_identity,
        }
    }

    /// Index of the classifier deciding classes `i < j` (lexicographic
    /// pair rank, mirroring `PairwiseSvms::pair_index`).
    fn pair_index(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < j && j < self.n_classes);
        i * self.n_classes - i * (i + 1) / 2 + (j - i - 1)
    }

    /// Starts a new predict: all memoized kernel values become stale.
    fn begin_predict(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // One wrap every 2^64 predicts: invalidate explicitly so a
            // stale stamp can never alias the fresh epoch.
            self.kval_epoch.fill(u64::MAX);
            self.epoch = 1;
        }
    }

    /// The decision value of the pair-`rank` classifier: bias first,
    /// then coefficient terms in original support-vector order — the
    /// exact float accumulation of `BinarySvm::decision_value`. When
    /// the memo is engaged, each distinct SV's `K(sv, x)` is computed
    /// at most once per predict; otherwise a direct walk over the
    /// packed rows skips the stamp bookkeeping. Both paths sum the
    /// same floats in the same order.
    fn decision(&mut self, rank: usize, x: &[f64]) -> f64 {
        // lint: allow(L008) — rank < n_pairs; pair arrays are sized at compile()
        let mut f = self.pair_bias[rank];
        // lint: allow(L008) — pair_offsets has n_pairs + 1 entries; rank + 1 is in range
        let (start, end) = (self.pair_offsets[rank] as usize, self.pair_offsets[rank + 1] as usize);
        let nf = self.n_features;
        if self.use_memo {
            // lint: allow(L008) — row < n_rows: term_sv entries are validated at compile()
            let terms = self.term_sv[start..end].iter().zip(&self.term_coeff[start..end]);
            for (&row, &coeff) in terms {
                let row = row as usize;
                // lint: allow(L008) — packed rows are nf-wide and row < n_rows
                let k = if self.kval_epoch[row] == self.epoch {
                    // lint: allow(L008) — row < n_rows (packed at compile())
                    self.kval[row]
                } else {
                    // lint: allow(L008) — row < n_rows (packed at compile())
                    let v = self.kernel.eval(&self.sv_data[row * nf..(row + 1) * nf], x);
                    // lint: allow(L008) — row < n_rows (packed at compile())
                    self.kval[row] = v;
                    // lint: allow(L008) — row < n_rows (packed at compile())
                    self.kval_epoch[row] = self.epoch;
                    v
                };
                f += coeff * k;
            }
        } else if self.rows_identity {
            // Row `t` = term `t`: stream this classifier's block of
            // `sv_data` without touching `term_sv` at all.
            // lint: allow(L008) — start <= end <= n_rows: offsets are monotone by construction
            let rows = self.sv_data[start * nf..end * nf].chunks_exact(nf);
            // lint: allow(L008) — start <= end <= n_rows: offsets are monotone by construction
            for (sv, &coeff) in rows.zip(&self.term_coeff[start..end]) {
                f += coeff * self.kernel.eval(sv, x);
            }
        } else {
            // lint: allow(L008) — row < n_rows: term_sv entries are validated at compile()
            let terms = self.term_sv[start..end].iter().zip(&self.term_coeff[start..end]);
            for (&row, &coeff) in terms {
                let row = row as usize;
                // lint: allow(L008) — packed rows are nf-wide and row < n_rows
                f += coeff * self.kernel.eval(&self.sv_data[row * nf..(row + 1) * nf], x);
            }
        }
        f
    }

    /// Whether the `(i, j)` classifier prefers class `i`.
    fn prefers_first(&mut self, i: usize, j: usize, x: &[f64]) -> bool {
        let rank = self.pair_index(i, j);
        self.decision(rank, x) >= 0.0
    }

    fn check(&self, features: &[f64]) -> Result<(), DimensionMismatch> {
        if features.len() != self.n_features {
            return Err(DimensionMismatch { expected: self.n_features, got: features.len() });
        }
        Ok(())
    }
}

/// A compiled [`DagSvm`]: identical decision DAG, evaluated over the
/// packed shared-support-vector layout with zero allocations per
/// predict.
///
/// `predict` takes `&mut self` because the kernel memo and epoch are
/// scratch state owned by the model (this crate forbids `unsafe`, so no
/// interior mutability is used); the scratch never changes results.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledDag {
    packed: PackedPairwise,
}

impl CompiledDag {
    /// Packs a trained DAGSVM into the compiled layout.
    pub fn compile(dag: &DagSvm) -> Self {
        let models: Vec<&crate::svm::BinarySvm> = dag.pairwise_models().iter().collect();
        CompiledDag { packed: PackedPairwise::pack(dag.n_classes(), &models) }
    }

    /// Predicts the class index, or reports a feature-width mismatch.
    ///
    /// # Errors
    ///
    /// Returns [`DimensionMismatch`] when `features.len()` differs from
    /// the trained width.
    pub fn try_predict(&mut self, features: &[f64]) -> Result<usize, DimensionMismatch> {
        self.packed.check(features)?;
        self.packed.begin_predict();
        let mut lo = 0usize;
        let mut hi = self.packed.n_classes - 1;
        while lo != hi {
            if self.packed.prefers_first(lo, hi, features) {
                hi -= 1;
            } else {
                lo += 1;
            }
        }
        Ok(lo)
    }

    /// Predicts the class index together with a confidence margin in
    /// `[0, 1]`: the smallest absolute pairwise decision value `m` met
    /// along the DAG path, squashed as `m / (1 + m)` — a near-tie
    /// anywhere on the path drives the margin toward zero. The label is
    /// bit-identical to [`try_predict`](CompiledDag::try_predict): both
    /// branch on the same decision values.
    ///
    /// # Errors
    ///
    /// Returns [`DimensionMismatch`] when `features.len()` differs from
    /// the trained width.
    pub fn try_predict_with_margin(
        &mut self,
        features: &[f64],
    ) -> Result<(usize, f64), DimensionMismatch> {
        self.packed.check(features)?;
        self.packed.begin_predict();
        let mut lo = 0usize;
        let mut hi = self.packed.n_classes - 1;
        let mut min_abs = f64::INFINITY;
        while lo != hi {
            let rank = self.packed.pair_index(lo, hi);
            let f = self.packed.decision(rank, features);
            min_abs = min_abs.min(f.abs());
            if f >= 0.0 {
                hi -= 1;
            } else {
                lo += 1;
            }
        }
        // A single-class model walks no edges; treat it as fully confident.
        let margin = if min_abs.is_finite() { min_abs / (1.0 + min_abs) } else { 1.0 };
        Ok((lo, margin))
    }

    /// Predicts the class index.
    ///
    /// # Panics
    ///
    /// Panics if `features` has the wrong dimensionality; use
    /// [`try_predict`](CompiledDag::try_predict) for a typed error.
    pub fn predict(&mut self, features: &[f64]) -> usize {
        match self.try_predict(features) {
            Ok(label) => label,
            // lint: allow(L008) — documented panicking wrapper; hot-path callers use try_predict (chain is .predict() fan-out)
            Err(e) => panic!("feature dimensionality mismatch: {e}"),
        }
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.packed.n_classes
    }

    /// Feature-vector width the model expects.
    pub fn n_features(&self) -> usize {
        self.packed.n_features
    }

    /// Distinct support vectors across all binary classifiers (the
    /// packed matrix's row count when the memoized layout is chosen).
    pub fn n_distinct_support_vectors(&self) -> usize {
        self.packed.n_distinct
    }

    /// Total (SV, coefficient) terms across all binary classifiers —
    /// what an uncompiled evaluation would store per classifier.
    pub fn n_terms(&self) -> usize {
        self.packed.term_sv.len()
    }
}

/// A compiled [`OneVsOneVote`]: max-wins voting over the packed layout.
/// The vote tally is a scratch buffer owned by the model, so `predict`
/// allocates nothing.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledVote {
    packed: PackedPairwise,
    votes: Vec<usize>,
}

impl CompiledVote {
    /// Packs a trained one-vs-one voter into the compiled layout.
    pub fn compile(vote: &OneVsOneVote) -> Self {
        let models: Vec<&crate::svm::BinarySvm> = vote.pairwise_models().iter().collect();
        let packed = PackedPairwise::pack(vote.n_classes(), &models);
        let votes = vec![0usize; vote.n_classes()];
        CompiledVote { packed, votes }
    }

    /// Predicts the class index, or reports a feature-width mismatch.
    ///
    /// # Errors
    ///
    /// Returns [`DimensionMismatch`] when `features.len()` differs from
    /// the trained width.
    pub fn try_predict(&mut self, features: &[f64]) -> Result<usize, DimensionMismatch> {
        self.packed.check(features)?;
        self.packed.begin_predict();
        let c = self.packed.n_classes;
        self.votes.fill(0);
        for i in 0..c {
            for j in (i + 1)..c {
                if self.packed.prefers_first(i, j, features) {
                    // lint: allow(L008) — i < c and votes.len() == c
                    self.votes[i] += 1;
                } else {
                    // lint: allow(L008) — j < c and votes.len() == c
                    self.votes[j] += 1;
                }
            }
        }
        // max_by_key keeps the *last* maximum — the exact tie-break of
        // `OneVsOneVote::predict`.
        Ok(self.votes.iter().enumerate().max_by_key(|&(_, &v)| v).map(|(i, _)| i).unwrap_or(0))
    }

    /// Predicts the class index together with a confidence margin in
    /// `[0, 1]`: the vote spread `(best − runner-up) / (n_classes − 1)`
    /// of the one-vs-one tally. A unanimous winner scores 1, a tie
    /// scores 0. The label is bit-identical to
    /// [`try_predict`](CompiledVote::try_predict), which computes it.
    ///
    /// # Errors
    ///
    /// Returns [`DimensionMismatch`] when `features.len()` differs from
    /// the trained width.
    pub fn try_predict_with_margin(
        &mut self,
        features: &[f64],
    ) -> Result<(usize, f64), DimensionMismatch> {
        let label = self.try_predict(features)?;
        let best = self.votes.get(label).copied().unwrap_or(0);
        let runner_up =
            self.votes.iter().enumerate().filter(|&(i, _)| i != label).map(|(_, &v)| v).max();
        let denom = self.packed.n_classes.saturating_sub(1).max(1);
        let spread = best.saturating_sub(runner_up.unwrap_or(0));
        Ok((label, spread as f64 / denom as f64))
    }

    /// Predicts the class index.
    ///
    /// # Panics
    ///
    /// Panics if `features` has the wrong dimensionality; use
    /// [`try_predict`](CompiledVote::try_predict) for a typed error.
    pub fn predict(&mut self, features: &[f64]) -> usize {
        match self.try_predict(features) {
            Ok(label) => label,
            // lint: allow(L008) — documented panicking wrapper; hot-path callers use try_predict (chain is .predict() fan-out)
            Err(e) => panic!("feature dimensionality mismatch: {e}"),
        }
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.packed.n_classes
    }

    /// Feature-vector width the model expects.
    pub fn n_features(&self) -> usize {
        self.packed.n_features
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cart::CartParams;
    use crate::dataset::Dataset;
    use crate::svm::SvmParams;

    fn three_blobs(n_per: usize) -> Dataset {
        let mut ds = Dataset::new(2, vec!["t".into(), "b".into(), "e".into()]);
        let centers = [(0.2, 0.2), (0.8, 0.2), (0.5, 0.9)];
        let mut v = 0.41f64;
        for (label, &(cx, cy)) in centers.iter().enumerate() {
            for _ in 0..n_per {
                v = (v * 787.99).fract();
                let dx = (v - 0.5) * 0.3;
                v = (v * 541.17).fract();
                let dy = (v - 0.5) * 0.3;
                ds.push(vec![cx + dx, cy + dy], label);
            }
        }
        ds
    }

    fn probe_grid() -> Vec<Vec<f64>> {
        let mut probes = Vec::new();
        for xi in 0..25 {
            for yi in 0..25 {
                probes.push(vec![xi as f64 / 16.0 - 0.3, yi as f64 / 16.0 - 0.3]);
            }
        }
        probes
    }

    #[test]
    fn compiled_tree_matches_boxed_everywhere() {
        let ds = three_blobs(80);
        let tree = DecisionTree::fit(&ds, &CartParams::default());
        let fast = CompiledTree::compile(&tree);
        assert_eq!(fast.n_classes(), tree.n_classes());
        assert_eq!(fast.n_nodes(), tree.n_nodes());
        for probe in probe_grid() {
            assert_eq!(fast.predict(&probe), tree.predict(&probe), "probe {probe:?}");
        }
    }

    #[test]
    fn compiled_single_leaf_tree() {
        let mut ds = Dataset::new(1, vec!["only".into()]);
        for i in 0..10 {
            ds.push(vec![i as f64], 0);
        }
        let tree = DecisionTree::fit(&ds, &CartParams::default());
        let fast = CompiledTree::compile(&tree);
        assert_eq!(fast.n_nodes(), 1);
        assert_eq!(fast.predict(&[123.0]), 0);
    }

    #[test]
    fn compiled_dag_matches_boxed_everywhere() {
        let ds = three_blobs(50);
        let params =
            SvmParams { c: 10.0, kernel: Kernel::Rbf { gamma: 5.0 }, ..Default::default() };
        let dag = DagSvm::fit(&ds, &params);
        let mut fast = CompiledDag::compile(&dag);
        assert!(fast.n_distinct_support_vectors() <= fast.n_terms());
        for probe in probe_grid() {
            assert_eq!(fast.predict(&probe), dag.predict(&probe), "probe {probe:?}");
        }
    }

    #[test]
    fn compiled_vote_matches_boxed_everywhere() {
        let ds = three_blobs(50);
        let params =
            SvmParams { c: 10.0, kernel: Kernel::Rbf { gamma: 5.0 }, ..Default::default() };
        let vote = OneVsOneVote::fit(&ds, &params);
        let mut fast = CompiledVote::compile(&vote);
        for probe in probe_grid() {
            assert_eq!(fast.predict(&probe), vote.predict(&probe), "probe {probe:?}");
        }
    }

    #[test]
    fn dedup_shares_support_vectors_across_pairs() {
        // Every pairwise SVM trains on rows of the same dataset, so the
        // packed matrix must be strictly smaller than the term count
        // whenever two classifiers retain the same row.
        let ds = three_blobs(40);
        let params =
            SvmParams { c: 10.0, kernel: Kernel::Rbf { gamma: 5.0 }, ..Default::default() };
        let dag = DagSvm::fit(&ds, &params);
        let fast = CompiledDag::compile(&dag);
        let total_svs: usize = dag.pairwise_models().iter().map(|m| m.n_support_vectors()).sum();
        assert_eq!(fast.n_terms(), total_svs);
        assert!(
            fast.n_distinct_support_vectors() < total_svs,
            "distinct {} vs terms {}",
            fast.n_distinct_support_vectors(),
            total_svs
        );
    }

    #[test]
    fn wrong_width_is_a_typed_error() {
        let ds = three_blobs(30);
        let tree = DecisionTree::fit(&ds, &CartParams::default());
        let fast = CompiledTree::compile(&tree);
        assert_eq!(fast.try_predict(&[0.5]), Err(DimensionMismatch { expected: 2, got: 1 }));
        let params =
            SvmParams { c: 10.0, kernel: Kernel::Rbf { gamma: 5.0 }, ..Default::default() };
        let mut dag = CompiledDag::compile(&DagSvm::fit(&ds, &params));
        assert_eq!(
            dag.try_predict(&[0.5, 0.5, 0.5]),
            Err(DimensionMismatch { expected: 2, got: 3 })
        );
        let mut vote = CompiledVote::compile(&OneVsOneVote::fit(&ds, &params));
        assert_eq!(vote.try_predict(&[]), Err(DimensionMismatch { expected: 2, got: 0 }));
    }

    #[test]
    fn margins_agree_with_plain_predictions_and_stay_in_unit_range() {
        let ds = three_blobs(50);
        let tree = CompiledTree::compile(&DecisionTree::fit(&ds, &CartParams::default()));
        let params =
            SvmParams { c: 10.0, kernel: Kernel::Rbf { gamma: 5.0 }, ..Default::default() };
        let mut dag = CompiledDag::compile(&DagSvm::fit(&ds, &params));
        let mut vote = CompiledVote::compile(&OneVsOneVote::fit(&ds, &params));
        for probe in probe_grid() {
            let (tl, tm) = tree.try_predict_with_margin(&probe).unwrap();
            assert_eq!(tl, tree.try_predict(&probe).unwrap(), "tree label {probe:?}");
            assert!((0.0..=1.0).contains(&tm), "tree margin {tm}");
            let (dl, dm) = dag.try_predict_with_margin(&probe).unwrap();
            assert_eq!(dl, dag.try_predict(&probe).unwrap(), "dag label {probe:?}");
            assert!((0.0..=1.0).contains(&dm), "dag margin {dm}");
            let (vl, vm) = vote.try_predict_with_margin(&probe).unwrap();
            assert_eq!(vl, vote.try_predict(&probe).unwrap(), "vote label {probe:?}");
            assert!((0.0..=1.0).contains(&vm), "vote margin {vm}");
        }
    }

    #[test]
    fn leaf_purity_margin_is_one_on_separable_data() {
        let mut ds = Dataset::new(1, vec!["no".into(), "yes".into()]);
        for i in 0..20 {
            ds.push(vec![i as f64], usize::from(i >= 10));
        }
        let fast = CompiledTree::compile(&DecisionTree::fit(&ds, &CartParams::default()));
        let (label, margin) = fast.try_predict_with_margin(&[3.0]).unwrap();
        assert_eq!(label, 0);
        assert_eq!(margin, 1.0, "fully separable data grows pure leaves");
    }

    #[test]
    fn margin_errors_match_plain_errors() {
        let ds = three_blobs(30);
        let tree = CompiledTree::compile(&DecisionTree::fit(&ds, &CartParams::default()));
        assert_eq!(
            tree.try_predict_with_margin(&[0.5]),
            Err(DimensionMismatch { expected: 2, got: 1 })
        );
    }

    #[test]
    fn epoch_wrap_invalidates_memo() {
        let ds = three_blobs(30);
        let params =
            SvmParams { c: 10.0, kernel: Kernel::Rbf { gamma: 5.0 }, ..Default::default() };
        let dag = DagSvm::fit(&ds, &params);
        let mut fast = CompiledDag::compile(&dag);
        // Force the memoized path and the wrap on the next begin_predict.
        fast.packed.use_memo = true;
        fast.packed.epoch = u64::MAX;
        for probe in probe_grid().into_iter().take(20) {
            assert_eq!(fast.predict(&probe), dag.predict(&probe));
        }
    }

    #[test]
    fn memo_choice_never_changes_predictions() {
        let ds = three_blobs(40);
        let params =
            SvmParams { c: 10.0, kernel: Kernel::Rbf { gamma: 5.0 }, ..Default::default() };
        let dag = DagSvm::fit(&ds, &params);
        let mut memoized = CompiledDag::compile(&dag);
        memoized.packed.use_memo = true;
        let mut direct = memoized.clone();
        direct.packed.use_memo = false;
        for probe in probe_grid() {
            let want = dag.predict(&probe);
            assert_eq!(memoized.predict(&probe), want, "memo probe {probe:?}");
            assert_eq!(direct.predict(&probe), want, "direct probe {probe:?}");
        }
    }
}
