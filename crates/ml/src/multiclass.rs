//! Multi-class SVM combination: DAGSVM and one-vs-one voting.
//!
//! The paper uses **DAGSVM** (Platt, Cristianini & Shawe-Taylor 2000),
//! "the fastest among other multi-class voting methods" (§3.2, citing
//! Hsu & Lin 2002): train one binary SVM per unordered class pair, then
//! evaluate along a decision DAG that eliminates one candidate class per
//! kernel evaluation, so classification needs only `c − 1` of the
//! `c(c−1)/2` classifiers. One-vs-one majority voting is also provided
//! as the ablation baseline.

use crate::dataset::Dataset;
use crate::parallel::{run_indexed, Parallelism};
use crate::svm::{BinarySvm, SvmParams};
use crate::{Classifier, DimensionMismatch};

/// Which multi-class combination strategy to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum MultiClassStrategy {
    /// Decision-DAG evaluation (the paper's choice, `c − 1` evaluations).
    Dag,
    /// Max-wins voting over all `c(c−1)/2` classifiers.
    Vote,
}

/// The shared pairwise model set: one [`BinarySvm`] per unordered class
/// pair `(i, j)` with `i < j`, positive label = class `i`.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
struct PairwiseSvms {
    n_classes: usize,
    /// Indexed by pair rank of `(i, j)`, `i < j`.
    models: Vec<BinarySvm>,
}

impl PairwiseSvms {
    fn fit(data: &Dataset, params: &SvmParams) -> Self {
        let c = data.n_classes();
        assert!(c >= 2, "multi-class models need at least 2 classes");
        let pairs: Vec<(usize, usize)> =
            (0..c).flat_map(|i| ((i + 1)..c).map(move |j| (i, j))).collect();
        let threads = params.parallelism.resolve();
        let models = if threads > 1 && pairs.len() > 1 {
            // The k(k−1)/2 pairwise fits are independent, so they go to
            // worker threads; each inner fit runs its kernel rows
            // serially to keep the total worker count bounded by
            // `threads`. Every fit is deterministic either way, so
            // this reshuffle cannot change a single model.
            let inner = SvmParams { parallelism: Parallelism::serial(), ..*params };
            run_indexed(threads, pairs.len(), |p| {
                let (i, j) = pairs[p];
                BinarySvm::fit_pair(data, i, j, &inner)
            })
        } else {
            pairs.iter().map(|&(i, j)| BinarySvm::fit_pair(data, i, j, params)).collect()
        };
        PairwiseSvms { n_classes: c, models }
    }

    /// Feature width of the underlying binary models.
    fn n_features(&self) -> usize {
        self.models.first().map_or(0, |m| m.n_features())
    }

    fn check(&self, features: &[f64]) -> Result<(), DimensionMismatch> {
        let expected = self.n_features();
        if features.len() != expected {
            return Err(DimensionMismatch { expected, got: features.len() });
        }
        Ok(())
    }

    /// Index of the model deciding between classes `i < j`.
    fn pair_index(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < j && j < self.n_classes);
        // rank of (i, j) in lexicographic order
        let c = self.n_classes;
        i * c - i * (i + 1) / 2 + (j - i - 1)
    }

    /// Returns `true` if the pairwise SVM for `(i, j)` prefers class `i`.
    fn prefers_first(&self, i: usize, j: usize, features: &[f64]) -> bool {
        // lint: allow(L008) — pair_index(i, j) < models.len() for i < j < n_classes (triangular rank)
        self.models[self.pair_index(i, j)].predict(features)
    }
}

/// A DAGSVM multi-class classifier.
///
/// # Examples
///
/// ```
/// use iustitia_ml::dataset::Dataset;
/// use iustitia_ml::multiclass::DagSvm;
/// use iustitia_ml::svm::{Kernel, SvmParams};
/// use iustitia_ml::Classifier;
///
/// let mut ds = Dataset::new(1, vec!["lo".into(), "mid".into(), "hi".into()]);
/// for i in 0..30 {
///     ds.push(vec![i as f64 / 30.0], 0);
///     ds.push(vec![1.0 + i as f64 / 30.0], 1);
///     ds.push(vec![2.0 + i as f64 / 30.0], 2);
/// }
/// let params = SvmParams { c: 10.0, kernel: Kernel::Linear, ..Default::default() };
/// let dag = DagSvm::fit(&ds, &params);
/// assert_eq!(dag.predict(&[0.2]), 0);
/// assert_eq!(dag.predict(&[1.4]), 1);
/// assert_eq!(dag.predict(&[2.7]), 2);
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DagSvm {
    pairwise: PairwiseSvms,
}

impl DagSvm {
    /// Trains all pairwise SVMs on the dataset.
    ///
    /// # Panics
    ///
    /// Panics if the dataset has fewer than 2 classes or any class has
    /// no samples.
    pub fn fit(data: &Dataset, params: &SvmParams) -> Self {
        DagSvm { pairwise: PairwiseSvms::fit(data, params) }
    }

    /// Number of underlying binary classifiers (`c(c−1)/2`).
    pub fn n_binary_classifiers(&self) -> usize {
        self.pairwise.models.len()
    }

    /// Number of binary evaluations one prediction costs (`c − 1`).
    pub fn evaluations_per_prediction(&self) -> usize {
        self.pairwise.n_classes - 1
    }

    /// Feature-vector width the model expects.
    pub fn n_features(&self) -> usize {
        self.pairwise.n_features()
    }

    /// Predicts the class index, or reports a feature-width mismatch
    /// before any kernel is evaluated.
    ///
    /// # Errors
    ///
    /// Returns [`DimensionMismatch`] when `features.len()` differs from
    /// the trained width.
    pub fn try_predict(&self, features: &[f64]) -> Result<usize, DimensionMismatch> {
        self.pairwise.check(features)?;
        Ok(self.predict(features))
    }

    /// Pairwise binary models in lexicographic pair order
    /// (compiled-model packing).
    pub(crate) fn pairwise_models(&self) -> &[BinarySvm] {
        &self.pairwise.models
    }
}

impl Classifier for DagSvm {
    /// DAG evaluation: keep a candidate list of all classes; repeatedly
    /// test the first candidate against the last and eliminate the
    /// loser, until one class remains.
    fn predict(&self, features: &[f64]) -> usize {
        let mut lo = 0usize;
        let mut hi = self.pairwise.n_classes - 1;
        while lo != hi {
            if self.pairwise.prefers_first(lo, hi, features) {
                hi -= 1; // class `hi` eliminated
            } else {
                lo += 1; // class `lo` eliminated
            }
        }
        lo
    }

    fn n_classes(&self) -> usize {
        self.pairwise.n_classes
    }
}

/// One-vs-one max-wins voting over the same pairwise SVM set — the
/// slower baseline DAGSVM is compared against.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct OneVsOneVote {
    pairwise: PairwiseSvms,
}

impl OneVsOneVote {
    /// Trains all pairwise SVMs on the dataset.
    ///
    /// # Panics
    ///
    /// Panics if the dataset has fewer than 2 classes or any class has
    /// no samples.
    pub fn fit(data: &Dataset, params: &SvmParams) -> Self {
        OneVsOneVote { pairwise: PairwiseSvms::fit(data, params) }
    }

    /// Reuses an existing DAGSVM's pairwise models (training is the
    /// expensive part; only evaluation differs).
    pub fn from_dag(dag: &DagSvm) -> Self {
        OneVsOneVote { pairwise: dag.pairwise.clone() }
    }

    /// Feature-vector width the model expects.
    pub fn n_features(&self) -> usize {
        self.pairwise.n_features()
    }

    /// Predicts the class index, or reports a feature-width mismatch
    /// before any kernel is evaluated.
    ///
    /// # Errors
    ///
    /// Returns [`DimensionMismatch`] when `features.len()` differs from
    /// the trained width.
    pub fn try_predict(&self, features: &[f64]) -> Result<usize, DimensionMismatch> {
        self.pairwise.check(features)?;
        Ok(self.predict(features))
    }

    /// Pairwise binary models in lexicographic pair order
    /// (compiled-model packing).
    pub(crate) fn pairwise_models(&self) -> &[BinarySvm] {
        &self.pairwise.models
    }
}

impl Classifier for OneVsOneVote {
    fn predict(&self, features: &[f64]) -> usize {
        let c = self.pairwise.n_classes;
        // lint: allow(L009) — reference voting path; the pipeline uses CompiledVote with a pooled buffer
        let mut votes = vec![0usize; c];
        for i in 0..c {
            for j in (i + 1)..c {
                if self.pairwise.prefers_first(i, j, features) {
                    // lint: allow(L008) — i < c and votes.len() == c
                    votes[i] += 1;
                } else {
                    // lint: allow(L008) — j < c and votes.len() == c
                    votes[j] += 1;
                }
            }
        }
        votes.iter().enumerate().max_by_key(|&(_, &v)| v).map(|(i, _)| i).unwrap_or(0)
    }

    fn n_classes(&self) -> usize {
        self.pairwise.n_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::svm::Kernel;

    fn three_blobs(n_per: usize) -> Dataset {
        let mut ds = Dataset::new(2, vec!["t".into(), "b".into(), "e".into()]);
        let centers = [(0.2, 0.2), (0.8, 0.2), (0.5, 0.9)];
        let mut v = 0.41f64;
        for (label, &(cx, cy)) in centers.iter().enumerate() {
            for _ in 0..n_per {
                v = (v * 787.99).fract();
                let dx = (v - 0.5) * 0.2;
                v = (v * 541.17).fract();
                let dy = (v - 0.5) * 0.2;
                ds.push(vec![cx + dx, cy + dy], label);
            }
        }
        ds
    }

    fn params() -> SvmParams {
        SvmParams { c: 10.0, kernel: Kernel::Rbf { gamma: 5.0 }, ..Default::default() }
    }

    #[test]
    fn dag_classifies_blobs() {
        let ds = three_blobs(60);
        let dag = DagSvm::fit(&ds, &params());
        assert_eq!(dag.n_classes(), 3);
        assert_eq!(dag.n_binary_classifiers(), 3);
        assert_eq!(dag.evaluations_per_prediction(), 2);
        assert_eq!(dag.predict(&[0.2, 0.2]), 0);
        assert_eq!(dag.predict(&[0.8, 0.2]), 1);
        assert_eq!(dag.predict(&[0.5, 0.9]), 2);
    }

    #[test]
    fn vote_agrees_with_dag_on_clear_points() {
        let ds = three_blobs(60);
        let dag = DagSvm::fit(&ds, &params());
        let vote = OneVsOneVote::from_dag(&dag);
        for (x, y) in ds.iter() {
            assert_eq!(dag.predict(x), y);
            assert_eq!(vote.predict(x), y);
        }
    }

    #[test]
    fn pair_index_is_lexicographic() {
        let ds = three_blobs(20);
        let dag = DagSvm::fit(&ds, &params());
        // pairs for c=3: (0,1)→0, (0,2)→1, (1,2)→2
        assert_eq!(dag.pairwise.pair_index(0, 1), 0);
        assert_eq!(dag.pairwise.pair_index(0, 2), 1);
        assert_eq!(dag.pairwise.pair_index(1, 2), 2);
    }

    #[test]
    fn four_class_pair_indexing_and_prediction() {
        let mut ds = Dataset::new(1, (0..4).map(|i| format!("c{i}")).collect::<Vec<_>>());
        for i in 0..20 {
            for c in 0..4usize {
                ds.push(vec![c as f64 + i as f64 / 20.0], c);
            }
        }
        let p = SvmParams { c: 10.0, kernel: Kernel::Linear, ..Default::default() };
        let dag = DagSvm::fit(&ds, &p);
        assert_eq!(dag.n_binary_classifiers(), 6);
        assert_eq!(dag.pairwise.pair_index(0, 3), 2);
        assert_eq!(dag.pairwise.pair_index(1, 2), 3);
        assert_eq!(dag.pairwise.pair_index(2, 3), 5);
        for c in 0..4usize {
            assert_eq!(dag.predict(&[c as f64 + 0.5]), c, "class {c}");
        }
    }

    #[test]
    fn two_class_dag_uses_single_classifier() {
        let mut ds = Dataset::new(1, vec!["a".into(), "b".into()]);
        for i in 0..20 {
            ds.push(vec![i as f64], usize::from(i >= 10));
        }
        let p = SvmParams { c: 10.0, kernel: Kernel::Linear, ..Default::default() };
        let dag = DagSvm::fit(&ds, &p);
        assert_eq!(dag.n_binary_classifiers(), 1);
        assert_eq!(dag.evaluations_per_prediction(), 1);
        assert_eq!(dag.predict(&[2.0]), 0);
        assert_eq!(dag.predict(&[15.0]), 1);
    }

    #[test]
    fn predictions_are_always_valid_classes() {
        let ds = three_blobs(30);
        let dag = DagSvm::fit(&ds, &params());
        let vote = OneVsOneVote::from_dag(&dag);
        let mut v = 0.123f64;
        for _ in 0..50 {
            v = (v * 977.77).fract();
            let x = v * 2.0 - 0.5; // outside the training range too
            v = (v * 541.41).fract();
            let y = v * 2.0 - 0.5;
            assert!(dag.predict(&[x, y]) < 3);
            assert!(vote.predict(&[x, y]) < 3);
        }
    }

    #[test]
    fn vote_fit_directly() {
        let ds = three_blobs(40);
        let vote = OneVsOneVote::fit(&ds, &params());
        assert_eq!(vote.n_classes(), 3);
        assert_eq!(vote.predict(&[0.8, 0.2]), 1);
    }

    #[test]
    fn parallel_pairwise_fit_is_bit_identical_to_serial() {
        let ds = three_blobs(50);
        let serial = SvmParams { parallelism: Parallelism::serial(), ..params() };
        let parallel = SvmParams { parallelism: Parallelism::fixed(4), ..params() };
        assert_eq!(DagSvm::fit(&ds, &serial), DagSvm::fit(&ds, &parallel));
        assert_eq!(OneVsOneVote::fit(&ds, &serial), OneVsOneVote::fit(&ds, &parallel));
    }

    #[test]
    fn wrong_width_is_a_typed_error() {
        let ds = three_blobs(30);
        let dag = DagSvm::fit(&ds, &params());
        assert_eq!(dag.n_features(), 2);
        assert_eq!(dag.try_predict(&[0.5]), Err(crate::DimensionMismatch { expected: 2, got: 1 }));
        assert!(dag.try_predict(&[0.5, 0.5]).is_ok());
        let vote = OneVsOneVote::from_dag(&dag);
        assert_eq!(
            vote.try_predict(&[0.5, 0.5, 0.5]),
            Err(crate::DimensionMismatch { expected: 2, got: 3 })
        );
    }
}
