//! Deterministic data-parallel execution for training loops.
//!
//! Every parallel site in this crate (kernel-matrix rows, per-feature
//! split scans, pairwise SVM fits, cross-validation folds, forward-search
//! candidates) is an *embarrassingly parallel* map over an index range:
//! the work at index `i` depends only on `i` and shared read-only
//! inputs. [`run_indexed`] evaluates such a map on scoped threads
//! (`std::thread::scope`, no extra dependencies) and returns the results
//! **in index order**, so a caller that reduces the returned vector
//! left-to-right performs exactly the reduction the serial loop would —
//! the cornerstone of the crate-wide "parallel ≡ serial, bit for bit"
//! guarantee (see DESIGN.md row #26).
//!
//! Thread counts come from [`Parallelism`], which training parameter
//! structs ([`crate::svm::SvmParams`], [`crate::cart::CartParams`])
//! embed with an `auto` default.

/// How many worker threads a training loop may use.
///
/// `threads == 0` means "resolve from
/// [`std::thread::available_parallelism`] at run time"; `1` is exactly
/// the historical serial path (no threads are spawned at all); any
/// other value is used verbatim. Because every parallel loop in this
/// crate is deterministic, the thread count never changes results —
/// only wall-clock time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Parallelism {
    /// Worker thread count; `0` = auto-detect.
    pub threads: usize,
}

impl Parallelism {
    /// Resolve the thread count from the machine (`threads = 0`).
    pub fn auto() -> Self {
        Parallelism { threads: 0 }
    }

    /// Single-threaded: byte-for-byte the historical serial code path.
    pub fn serial() -> Self {
        Parallelism { threads: 1 }
    }

    /// Exactly `n` worker threads (`0` behaves like [`auto`](Self::auto)).
    pub fn fixed(n: usize) -> Self {
        Parallelism { threads: n }
    }

    /// The concrete worker count: `threads`, or the machine's available
    /// parallelism when `threads == 0` (falling back to 1 if the
    /// platform cannot report it).
    pub fn resolve(&self) -> usize {
        if self.threads == 0 {
            match std::thread::available_parallelism() {
                Ok(n) => n.get(),
                Err(_) => 1,
            }
        } else {
            self.threads
        }
    }
}

impl Default for Parallelism {
    /// Auto-detect (`threads = 0`).
    fn default() -> Self {
        Parallelism::auto()
    }
}

/// Evaluates `f(0), f(1), …, f(n - 1)` on up to `threads` scoped worker
/// threads and returns the results in index order.
///
/// Worker `w` handles indices `w, w + threads, w + 2·threads, …`
/// (interleaved distribution, so expensive early indices spread across
/// workers); results are tagged with their index and sorted before
/// returning, making the output independent of scheduling. With
/// `threads <= 1` or `n <= 1` no thread is spawned and the map runs
/// inline — the exact serial path.
///
/// # Panics
///
/// Re-raises (via [`std::panic::resume_unwind`]) any panic raised by
/// `f` on a worker thread.
pub fn run_indexed<T, F>(threads: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let workers = threads.min(n);
    let mut tagged: Vec<(usize, T)> = Vec::with_capacity(n);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let f = &f;
            handles.push(scope.spawn(move || {
                let mut part = Vec::with_capacity(n / workers + 1);
                let mut i = w;
                while i < n {
                    part.push((i, f(i)));
                    i += workers;
                }
                part
            }));
        }
        for handle in handles {
            match handle.join() {
                Ok(part) => tagged.extend(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    tagged.sort_by_key(|&(i, _)| i);
    tagged.into_iter().map(|(_, v)| v).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolves_threads() {
        assert_eq!(Parallelism::serial().resolve(), 1);
        assert_eq!(Parallelism::fixed(7).resolve(), 7);
        assert!(Parallelism::auto().resolve() >= 1);
        assert_eq!(Parallelism::default(), Parallelism::auto());
    }

    #[test]
    fn run_indexed_preserves_order() {
        for threads in [1, 2, 3, 8, 64] {
            let out = run_indexed(threads, 37, |i| i * i);
            assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn run_indexed_handles_edges() {
        assert_eq!(run_indexed(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(4, 1, |i| i + 10), vec![10]);
        assert_eq!(run_indexed(0, 3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn parallel_matches_serial_on_float_work() {
        let work = |i: usize| {
            let x = i as f64 * 0.37 + 1.0;
            x.ln() * x.sqrt() - (x * 3.1).sin()
        };
        let serial = run_indexed(1, 500, work);
        let parallel = run_indexed(6, 500, work);
        assert_eq!(serial, parallel, "bit-identical across thread counts");
    }

    #[test]
    fn worker_panic_propagates() {
        let caught = std::panic::catch_unwind(|| {
            run_indexed(3, 10, |i| {
                assert!(i != 7, "boom at 7");
                i
            })
        });
        assert!(caught.is_err());
    }
}
